#!/usr/bin/env python3
"""A small cellular access marketplace with verifiable billing (§4.3).

Three independent bTelcos serve the same broker's subscriber over time.
One of them pads its usage reports by 40%.  The demo shows the full
billing pipeline:

* UE and bTelco meters independently measure each session,
* both upload signed, encrypted traffic reports to the broker,
* the broker cross-checks them (Fig 5), accumulates mismatches into the
  dishonest bTelco's reputation, and starts *denying its attach
  requests* once the score crosses the threshold,
* honest sessions settle into invoices from the trusted UE measurements.

Run:  python examples/marketplace.py
"""

from repro.core.billing import REPORTER_BTELCO, REPORTER_UE, Meter
from repro.core.mobility import MobilityManager, build_cellbricks_network
from repro.net import Simulator

SITES = ("metro-cell", "mall-cell", "shady-cell")
FRAUD = {"shady-cell": 1.4}   # shady-cell overcounts DL by 40%
SESSION_TRAFFIC = [           # (dl_bytes, ul_bytes) per reporting interval
    (4_000_000, 400_000),
    (6_500_000, 500_000),
    (2_500_000, 300_000),
]


def main() -> None:
    sim = Simulator()
    network = build_cellbricks_network(sim, site_names=SITES,
                                       subscriber_id="alice")
    brokerd = network.brokerd
    manager = MobilityManager(network)

    print("Marketplace: 3 bTelcos, 1 broker, subscriber 'alice'")
    print(f"(shady-cell inflates its reports by "
          f"{(FRAUD['shady-cell'] - 1) * 100:.0f}%)\n")

    for round_number in range(2):
        for site_name in SITES:
            score = brokerd.reputation.btelco_score(site_name)
            if manager.ue is None:
                manager.start(site_name)
            else:
                manager.switch_to(site_name)
            sim.run(until=sim.now + 1.0)
            ue = manager.ue
            if ue.state != "ATTACHED":
                print(f"  {site_name:11s} DENIED "
                      f"(reputation {score:.2f})")
                continue
            session_id = ue.session_id
            grant = brokerd.sap.grants[session_id]

            # Simulate a usage session: both meters observe the traffic,
            # the dishonest bTelco scales what it reports.
            fraud = FRAUD.get(site_name, 1.0)
            ue_meter = ue.meter
            telco_meter = Meter(
                session_id=session_id, reporter=REPORTER_BTELCO,
                key=network.sites[site_name].agw.key,
                broker_public_key=brokerd.public_key,
                fraud_factor=fraud,
                session_started_at=sim.now)
            for dl, ul in SESSION_TRAFFIC:
                ue_meter.record_dl(dl)
                ue_meter.record_ul(ul)
                telco_meter.record_dl(dl)
                telco_meter.record_ul(ul)
                now = sim.now
                brokerd.billing.ingest(ue_meter.emit(now), now)
                brokerd.billing.ingest(telco_meter.emit(now), now)

            invoice = brokerd.billing.settle(session_id)
            mismatches = brokerd.billing.sessions[session_id].mismatches
            print(f"  {site_name:11s} session {session_id.split(':')[1]}: "
                  f"{invoice.dl_bytes / 1e6:5.1f} MB billed, "
                  f"${invoice.amount:.4f}, "
                  f"mismatches={mismatches}, "
                  f"reputation now "
                  f"{brokerd.reputation.btelco_score(site_name):.2f}"
                  f"{'  <- DISPUTED' if invoice.disputed else ''}")
        print()

    print("Final reputations:")
    for site_name in SITES:
        score = brokerd.reputation.btelco_score(site_name)
        verdict = ("admitted" if brokerd.reputation.btelco_acceptable(site_name)
                   else "BLOCKED from future attachments")
        print(f"  {site_name:11s} {score:.3f}  ({verdict})")


if __name__ == "__main__":
    main()
