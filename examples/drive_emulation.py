#!/usr/bin/env python3
"""A §6.2-style drive: MNO/TCP vs CellBricks/MPTCP, side by side.

Emulates a 90-second downtown day-time drive with two synchronized UEs —
one on today's architecture (TCP, IP preserved across handovers), one on
CellBricks (MPTCP, detach/re-attach with an IP change at every handover)
— running iperf, and prints the per-second throughput timeline around
each handover plus the end-to-end comparison.

Run:  python examples/drive_emulation.py
"""

from repro.emulation import (
    ARCH_CELLBRICKS,
    ARCH_MNO,
    EmulationConfig,
    PairedEmulation,
)
from repro.net import Simulator

DURATION = 90.0


def main() -> None:
    sim = Simulator()
    config = EmulationConfig(route="downtown", time_of_day="day",
                             duration=DURATION, seed=42)
    emulation = PairedEmulation(sim, config)
    # Make sure at least one handover lands mid-run for the timeline.
    if not emulation.handover_events:
        from repro.emulation.radio import HandoverEvent
        emulation.handover_events = [HandoverEvent(at=40.0, gap_s=0.08)]

    print(f"Downtown day drive, {DURATION:.0f}s, "
          f"{len(emulation.handover_events)} handover(s) at "
          f"{[round(e.at, 1) for e in emulation.handover_events]}")
    print("MNO keeps its IP; CellBricks detaches, waits d=31.68 ms to "
          "attach, and MPTCP opens a new subflow.\n")

    stats = emulation.run_iperf()
    mno, cb = stats[ARCH_MNO], stats[ARCH_CELLBRICKS]

    mno_rates = mno.rates_mbps(1.0, DURATION)
    cb_rates = cb.rates_mbps(1.0, DURATION)
    handover_seconds = {int(e.at) for e in emulation.handover_events}

    print(f"{'t(s)':>5s} {'MNO Mbps':>9s} {'CB Mbps':>9s}")
    for second, (m, c) in enumerate(zip(mno_rates, cb_rates)):
        nearby = any(abs(second - h) <= 4 for h in handover_seconds)
        if not nearby:
            continue
        marker = "  <- handover" if second in handover_seconds else ""
        print(f"{second:5d} {m:9.2f} {c:9.2f}{marker}")

    mno_avg = mno.average_mbps(DURATION)
    cb_avg = cb.average_mbps(DURATION)
    print(f"\naverages: MNO {mno_avg:.2f} Mbps, CellBricks {cb_avg:.2f} Mbps")
    print(f"slowdown: {(mno_avg - cb_avg) / mno_avg * 100:+.2f}% "
          f"(paper Table 1 envelope: -1.61% .. +3.06%)")


if __name__ == "__main__":
    main()
