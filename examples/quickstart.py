#!/usr/bin/env python3
"""Quickstart: attach a UE to two different bTelcos through its broker.

Builds a complete CellBricks network — a certificate authority, a broker
(brokerd + SubscriberDB), two independent bTelcos (eNodeB + AGW each),
and one subscriber UE — then:

1. attaches on-demand to bTelco A via the Secure Attachment Protocol,
2. "hands over" by detaching and independently attaching to bTelco B
   (host-driven mobility: no coordination between the two operators),
3. prints the attach latencies and what each party learned.

Run:  python examples/quickstart.py
"""

from repro.core.mobility import MobilityManager, build_cellbricks_network
from repro.net import Simulator


def main() -> None:
    sim = Simulator()
    network = build_cellbricks_network(
        sim, site_names=("coffee-shop-cell", "campus-cell"),
        subscriber_id="alice", broker_id="broker.example")

    print("Network: broker + %d bTelcos, subscriber 'alice'" %
          len(network.sites))
    print("Neither bTelco has ever heard of alice or her broker;")
    print("trust is established on-demand with certificates.\n")

    manager = MobilityManager(network)
    manager.start("coffee-shop-cell")
    sim.run(until=1.0)

    ue = manager.ue
    print(f"[t={sim.now:.2f}s] attached to coffee-shop-cell")
    print(f"  UE address     : {ue.ue_ip}")
    print(f"  attach latency : {manager.attach_latencies[0] * 1000:.2f} ms")
    print(f"  SAP session    : {ue.session_id}")

    agw = network.sites["coffee-shop-cell"].agw
    context = next(iter(agw.contexts.values()))
    print(f"  bTelco sees    : {context.subscriber_id!r} "
          f"(a pseudonym - no IMSI, no name)")
    print(f"  QoS from broker: QCI {context.bearer.qci}, "
          f"AMBR {context.bearer.ambr_dl_bps / 1e6:.0f}/"
          f"{context.bearer.ambr_ul_bps / 1e6:.0f} Mbps\n")

    # Host-driven mobility: detach, SAP-attach to the other operator.
    manager.switch_to("campus-cell")
    sim.run(until=2.0)
    print(f"[t={sim.now:.2f}s] switched to campus-cell "
          f"(no inter-bTelco coordination)")
    print(f"  new UE address : {ue.ue_ip}  (a different operator's pool)")
    print(f"  attach latency : {manager.attach_latencies[1] * 1000:.2f} ms")

    brokerd = network.brokerd
    print(f"\nBroker processed {brokerd.requests_approved} authorizations, "
          f"denied {brokerd.requests_denied}.")
    print("An application riding MPTCP would have kept its connection "
          "across the IP change - see drive_emulation.py.")


if __name__ == "__main__":
    main()
