#!/usr/bin/env python3
"""Seamless private-network integration (the paper's benefit (v)).

An employee's UE moves between a public macro bTelco and her employer's
private campus network.  Under CellBricks both are just bTelcos: the same
SAP attach works against both, the broker applies a different QoS plan on
the enterprise cell (higher AMBR, premium QCI 8), and a video stream over
MPTCP keeps playing across the transitions.

Run:  python examples/private_network_roaming.py
"""

from repro.apps import HlsPlayer, HlsServer, KIND_MPTCP
from repro.core.mobility import MobilityManager, build_cellbricks_network
from repro.core.qos import QosInfo
from repro.net import Simulator

PUBLIC = "public-macro"
PRIVATE = "enterprise-campus"


def main() -> None:
    sim = Simulator()
    network = build_cellbricks_network(
        sim, site_names=(PUBLIC, PRIVATE), subscriber_id="employee-7",
        with_data_path=True)
    # The broker provisions a premium plan used when capacity allows.
    network.brokerd.sap.subscribers["employee-7"].qos_plan = QosInfo(
        qci=8, ambr_dl_bps=50e6, ambr_ul_bps=20e6)

    path = network.data_path
    manager = MobilityManager(network, data_path=path)

    # A video session that must survive the public <-> private moves.
    HlsServer(KIND_MPTCP, path.server)
    player = HlsPlayer(KIND_MPTCP, path.ue, path.server.address)

    manager.start(PUBLIC)
    sim.run(until=1.0)
    print(f"[t={sim.now:5.2f}s] on {PUBLIC}: ip={manager.ue.ue_ip}")
    player.start(duration=60)
    sim.run(until=20.0)

    manager.switch_to(PRIVATE)  # walking into the office
    sim.run(until=22.0)
    bearer = next(iter(network.sites[PRIVATE].agw.contexts.values())).bearer
    print(f"[t={sim.now:5.2f}s] on {PRIVATE}: ip={manager.ue.ue_ip}, "
          f"QCI {bearer.qci}, AMBR {bearer.ambr_dl_bps / 1e6:.0f} Mbps")
    sim.run(until=40.0)

    manager.switch_to(PUBLIC)   # heading home
    sim.run(until=42.0)
    print(f"[t={sim.now:5.2f}s] back on {PUBLIC}: ip={manager.ue.ue_ip}")
    sim.run(until=62.0)

    stats = player.stats
    print(f"\nvideo across 2 network transitions: "
          f"{stats.segments_downloaded} segments, "
          f"avg level {stats.average_level:.2f}, "
          f"rebuffers {stats.rebuffer_events}")
    print(f"attach latencies: "
          f"{['%.1f ms' % (v * 1000) for v in manager.attach_latencies]}")
    print("Same protocol, same UE stack, zero roaming agreements.")


if __name__ == "__main__":
    main()
