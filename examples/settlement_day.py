#!/usr/bin/env python3
"""A business day in the CellBricks economy (§3 step 2 + §4.3).

One broker, two bTelcos, one subscriber moving between them.  For each
session: both sides meter the traffic, reports cross the wire to
brokerd, the broker cross-checks them, and at end-of-day each bTelco
files a signed usage claim.  The settlement engine pays exactly the
verified amounts, bills the subscriber at retail, and the broker keeps
the margin.  One bTelco pads its claim by 60% — and gets paid the
verified amount anyway, plus a dispute on its record.

Run:  python examples/settlement_day.py
"""

from repro.core.mobility import MobilityManager, build_cellbricks_network
from repro.core.settlement import SettlementEngine, make_claim
from repro.net import Simulator

SITES = ("metro-cell", "harbor-cell")
SESSIONS = (
    # (site, MB downlink, bTelco claim inflation)
    ("metro-cell", 120, 1.0),
    ("harbor-cell", 80, 1.6),    # harbor-cell pads its claim
    ("metro-cell", 200, 1.0),
)


def main() -> None:
    sim = Simulator()
    network = build_cellbricks_network(sim, site_names=SITES,
                                       subscriber_id="alice")
    brokerd = network.brokerd
    engine = SettlementEngine(brokerd.billing)
    for site in network.sites.values():
        engine.register_btelco(site.name, site.agw.key.public_key)

    manager = MobilityManager(network)
    claims = []

    print("A day of metered sessions:\n")
    for site_name, megabytes, inflation in SESSIONS:
        if manager.ue is None:
            manager.start(site_name)
        else:
            manager.switch_to(site_name)
        sim.run(until=sim.now + 1.0)
        agw = network.sites[site_name].agw
        session_id = manager.ue.session_id
        usage = megabytes * 1_000_000

        # Both meters observe the traffic; reports cross the wire.
        bearer = agw.spgw.bearer_for(agw.sessions[session_id].id_u_opaque)
        bearer.usage.dl_bytes = usage
        bearer.usage.ul_bytes = usage // 10
        agw.upload_reports()
        manager.ue.meter.record_dl(usage)
        manager.ue.meter.record_ul(usage // 10)
        brokerd.billing.ingest(manager.ue.meter.emit(sim.now), now=sim.now)
        sim.run(until=sim.now + 0.5)

        claims.append(make_claim(
            session_id, site_name, int(usage * inflation),
            usage // 10, agw.key))
        print(f"  {site_name:12s} session {session_id.split(':')[1]}: "
              f"{megabytes:4d} MB used"
              f"{'  (will claim x%.1f)' % inflation if inflation > 1 else ''}")

    print("\nEnd-of-day settlement:\n")
    for claim in claims:
        payment = engine.process_claim(claim)
        flag = "  <- DISPUTED, paid verified amount only" \
            if payment.disputed else ""
        print(f"  {claim.id_t:12s} claimed ${payment.claimed:.4f} "
              f"-> paid ${payment.paid:.4f}{flag}")

    print("\nBalances:")
    for site_name in SITES:
        print(f"  {site_name:12s} earned  ${engine.btelco_balance(site_name):.4f}")
    print(f"  {'alice':12s} owes    "
          f"${engine.subscriber_statement('alice'):.4f}")
    print(f"  {'broker':12s} margin  ${engine.broker_margin:.4f}")
    print(f"\ndisputes on record: {engine.disputes}")


if __name__ == "__main__":
    main()
