#!/usr/bin/env python3
"""CellBricks across generations: the same SAP, 4G and 5G cores.

Runs one attach/registration on each control plane — legacy baseline vs
CellBricks, LTE/EPC vs 5G SA — with the subscriber database / home
network / broker at an emulated us-west-1, and prints the latency grid.
The structural story: the baseline pays the cloud round trip twice (S6a
AIR+ULR in 4G; AUSF/UDM + RES* confirmation in 5G), SAP pays it once.

Run:  python examples/generations.py
"""

from repro.core import Brokerd, UeSapCredentials
from repro.core.btelco5g import CellBricksAmf, CellBricksUe5G
from repro.crypto import CertificateAuthority
from repro.crypto.keypool import pooled_keypair
from repro.fivegc import Amf, Ausf, Gnb, Smf, Udm, Ue5G, make_supi
from repro.fivegc.topology5g import (
    AMF_ADDRESS,
    AUSF_ADDRESS,
    BROKER_ADDRESS,
    GNB_ADDRESS,
    SMF_ADDRESS,
    Topology5G,
    UDM_ADDRESS,
)
from repro.lte.aka import UsimState
from repro.net import Simulator
from repro.testbed import run_attach_benchmark

PLACEMENT = "us-west-1"
K = bytes(range(16))


def run_5g(arch: str) -> float:
    sim = Simulator()
    topo = Topology5G.build(sim, PLACEMENT)
    if arch == "BL":
        home_key = pooled_keypair(880)
        udm = Udm(topo.udm_host, home_network_key=home_key)
        Ausf(topo.ausf_host, udm_ip=UDM_ADDRESS)
        Smf(topo.smf_host)
        amf = Amf(topo.amf_host, ausf_ip=AUSF_ADDRESS, smf_ip=SMF_ADDRESS)
        Gnb(topo.gnb_host, agw_ip=AMF_ADDRESS)
        supi = make_supi(11)
        udm.provision(supi, K)
        ue = Ue5G(topo.ue_host, GNB_ADDRESS, supi, UsimState(k=K),
                  home_key.public_key, serving_network=amf.serving_network)
    else:
        ca = CertificateAuthority(key=pooled_keypair(881))
        brokerd = Brokerd(topo.broker_host, id_b="b",
                          ca_public_key=ca.public_key,
                          key=pooled_keypair(882))
        telco_key = pooled_keypair(883)
        cert = ca.issue("t", "btelco", telco_key.public_key)
        Smf(topo.smf_host)
        amf = CellBricksAmf(topo.amf_host, broker_ip=BROKER_ADDRESS,
                            smf_ip=SMF_ADDRESS, id_t="t", key=telco_key,
                            certificate=cert, ca_public_key=ca.public_key)
        amf.trust_broker("b", brokerd.public_key)
        Gnb(topo.gnb_host, agw_ip=AMF_ADDRESS)
        ue_key = pooled_keypair(884)
        brokerd.enroll_subscriber("gen-demo", ue_key.public_key)
        creds = UeSapCredentials(id_u="gen-demo", id_b="b", ue_key=ue_key,
                                 broker_public_key=brokerd.public_key)
        ue = CellBricksUe5G(topo.ue_host, GNB_ADDRESS, creds,
                            target_id_t="t")
    results = []
    ue.on_registration_done = results.append
    ue.register()
    sim.run(until=2.0)
    assert results and results[0].success, results
    return results[0].latency * 1000


def main() -> None:
    print(f"Attach/registration latency at {PLACEMENT} "
          f"(cloud DB / home network / broker):\n")
    print(f"{'':14s}{'baseline':>10s} {'CellBricks':>11s} {'CB gain':>9s}")
    fourg_bl = run_attach_benchmark("BL", PLACEMENT, trials=10).total_ms
    fourg_cb = run_attach_benchmark("CB", PLACEMENT, trials=10).total_ms
    print(f"{'4G / EPC':14s}{fourg_bl:9.2f}m {fourg_cb:10.2f}m "
          f"{(fourg_bl - fourg_cb) / fourg_bl * 100:8.1f}%")
    fiveg_bl = run_5g("BL")
    fiveg_cb = run_5g("CB")
    print(f"{'5G / 5GC':14s}{fiveg_bl:9.2f}m {fiveg_cb:10.2f}m "
          f"{(fiveg_bl - fiveg_cb) / fiveg_bl * 100:8.1f}%")
    print("\nOne SAP round trip replaces two cloud round trips in both "
          "generations;\nthe 5G baseline's extra home-control leg makes "
          "CellBricks' win larger there.")


if __name__ == "__main__":
    main()
