"""iperf-style bulk throughput measurement (Table 1, Fig 8, Fig 9, Fig 10).

The server pushes a continuous downlink stream (how the paper runs iperf
against EC2); the client records every delivery with its timestamp so
benchmarks can compute averages, per-second time series (Fig 8/10), and
post-handover windows (Fig 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.analysis.stats import timeseries_rates
from repro.net import Host

from .transport import StreamClient, StreamServer

IPERF_PORT = 5201
BACKLOG_BYTES = 10_000_000_000  # effectively infinite source
#: inter-delivery gap (s) above which the client annotates the trace —
#: covers handover stalls (detach -> re-auth -> transport re-establish)
#: without firing on ordinary ACK-clocked spacing.
STALL_GAP_S = 0.1


@dataclass
class IperfStats:
    """Client-side delivery log."""

    started_at: float = 0.0
    deliveries: list = field(default_factory=list)  # (timestamp, nbytes)
    total_bytes: int = 0

    def record(self, timestamp: float, nbytes: int) -> None:
        self.deliveries.append((timestamp, nbytes))
        self.total_bytes += nbytes

    def average_mbps(self, duration: float) -> float:
        if duration <= 0:
            return 0.0
        return self.total_bytes * 8 / duration / 1e6

    def rates_mbps(self, bin_seconds: float, duration: float) -> list:
        relative = [(t - self.started_at, n) for t, n in self.deliveries]
        return timeseries_rates(relative, bin_seconds, duration)

    def bytes_between(self, start: float, end: float) -> int:
        return sum(n for t, n in self.deliveries if start <= t < end)

    def window_mbps(self, start: float, end: float) -> float:
        if end <= start:
            return 0.0
        return self.bytes_between(start, end) * 8 / (end - start) / 1e6


class IperfServer:
    """Pushes an unbounded stream to every accepted connection."""

    def __init__(self, kind: str, host: Host, port: int = IPERF_PORT):
        self.server = StreamServer(kind, host, port, self._on_peer)

    def _on_peer(self, peer) -> None:
        peer.send(BACKLOG_BYTES)

    def close(self) -> None:
        self.server.close()


class IperfClient:
    """Receives the stream and logs deliveries."""

    def __init__(self, kind: str, host: Host, server_ip: str,
                 port: int = IPERF_PORT, address_wait: float = 0.5):
        self.host = host
        self.sim = host.sim
        self.stats = IperfStats()
        self.client = StreamClient(kind, host, server_ip, port,
                                   address_wait=address_wait)
        self.client.on_data = self._on_data

    def start(self) -> None:
        self.stats.started_at = self.sim.now
        self.client.connect()

    def _on_data(self, nbytes: int) -> None:
        now = self.sim.now
        if self.stats.deliveries:
            gap = now - self.stats.deliveries[-1][0]
            if gap >= STALL_GAP_S:
                obs = getattr(self.sim, "obs", None)
                if obs is not None and obs.tracing:
                    obs.tracer.instant(
                        "iperf.delivery_gap", f"iperf:{self.host.name}",
                        now, category="app",
                        data={"gap_ms": round(gap * 1000.0, 3)})
        self.stats.record(now, nbytes)
