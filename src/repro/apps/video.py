"""HLS adaptive-bitrate video streaming (Table 1).

Mirrors the paper's setup: an nginx-HLS-style server offering the same
video transcoded at 6 quality levels (0-5, 144p to 720p) in fixed-length
segments, and an hls.js-style player that requests segments sequentially
over a persistent connection, adapting the level to its throughput
estimate and buffering several segments ahead (which is why the paper
finds video "least sensitive to the choice of handover schemes").

Request framing is in-band and size-encoded: a request is
``REQUEST_BASE + level`` bytes and at most one request is outstanding,
so the byte stream is unambiguous over both TCP and MPTCP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.stats import mean
from repro.net import Host

from .transport import StreamClient, StreamServer

VIDEO_PORT = 8080
SEGMENT_SECONDS = 4.0
#: bitrates (bps) for quality levels 0..5 (144p .. 720p ladder).
LEVEL_BITRATES = (145e3, 365e3, 730e3, 1_100e3, 2_200e3, 4_200e3)
REQUEST_BASE = 100
MAX_BUFFER_SECONDS = 24.0    # 6 segments ahead
MIN_START_BUFFER = 2 * SEGMENT_SECONDS  # hls.js-style startup threshold
EWMA_ALPHA = 0.4
SAFETY_FACTOR = 0.62


def segment_bytes(level: int) -> int:
    """On-the-wire size of one segment at quality ``level``."""
    return int(LEVEL_BITRATES[level] * SEGMENT_SECONDS / 8)


class HlsServer:
    """Serves size-encoded segment requests on a persistent stream."""

    def __init__(self, kind: str, host: Host, port: int = VIDEO_PORT):
        self.server = StreamServer(kind, host, port, self._on_peer)
        self.segments_served = 0

    def _on_peer(self, peer) -> None:
        pending = [0]

        def on_data(nbytes: int) -> None:
            pending[0] += nbytes
            while pending[0] >= REQUEST_BASE:
                # One request at a time: the residue encodes the level.
                take = min(pending[0], REQUEST_BASE + len(LEVEL_BITRATES) - 1)
                level = take - REQUEST_BASE
                pending[0] -= take
                self.segments_served += 1
                peer.send(segment_bytes(level))

        peer.on_data = on_data

    def close(self) -> None:
        self.server.close()


@dataclass
class PlaybackStats:
    """Player-side quality-of-experience metrics."""

    levels_played: list = field(default_factory=list)
    startup_delay: Optional[float] = None
    rebuffer_events: int = 0
    rebuffer_seconds: float = 0.0
    segments_downloaded: int = 0

    @property
    def average_level(self) -> float:
        return mean(self.levels_played) if self.levels_played else 0.0


class HlsPlayer:
    """Throughput-adaptive player with a segment buffer."""

    def __init__(self, kind: str, host: Host, server_ip: str,
                 port: int = VIDEO_PORT, address_wait: float = 0.5):
        self.host = host
        self.sim = host.sim
        self.stats = PlaybackStats()
        self.client = StreamClient(kind, host, server_ip, port,
                                   address_wait=address_wait)
        self.client.on_established = self._request_next
        self.client.on_data = self._on_data

        self.buffer_seconds = 0.0
        self.playing = False
        self.current_level = 0          # start conservatively, like hls.js
        self.throughput_ewma_bps: Optional[float] = None
        self._expected = 0
        self._request_started = 0.0
        self._requested_level = 0
        self._started_at: Optional[float] = None
        self._stop_at: Optional[float] = None
        self._last_drain = 0.0
        self._stalled_since: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self, duration: float) -> None:
        self._started_at = self.sim.now
        self._stop_at = self.sim.now + duration
        self._last_drain = self.sim.now
        self.client.connect()
        self._drain_tick()

    @property
    def done(self) -> bool:
        return self._stop_at is not None and self.sim.now >= self._stop_at

    # -- request/response loop ---------------------------------------------------
    def _request_next(self) -> None:
        if self.done or self._expected > 0:
            return
        if self.buffer_seconds >= MAX_BUFFER_SECONDS:
            self.sim.schedule(SEGMENT_SECONDS / 2, self._request_next)
            return
        level = self._choose_level()
        self._requested_level = level
        self._expected = segment_bytes(level)
        self._request_started = self.sim.now
        self.client.send(REQUEST_BASE + level)

    def _choose_level(self) -> int:
        if self.throughput_ewma_bps is None:
            return 0
        budget = self.throughput_ewma_bps * SAFETY_FACTOR
        level = 0
        for candidate, bitrate in enumerate(LEVEL_BITRATES):
            if bitrate <= budget:
                level = candidate
        return level

    def _on_data(self, nbytes: int) -> None:
        if self._expected <= 0:
            return
        self._expected -= nbytes
        if self._expected > 0:
            return
        # Segment complete: update ABR estimate and the buffer.
        elapsed = max(self.sim.now - self._request_started, 1e-6)
        sample = segment_bytes(self._requested_level) * 8 / elapsed
        if self.throughput_ewma_bps is None:
            self.throughput_ewma_bps = sample
        else:
            self.throughput_ewma_bps = (EWMA_ALPHA * sample
                                        + (1 - EWMA_ALPHA)
                                        * self.throughput_ewma_bps)
        self.stats.segments_downloaded += 1
        self.stats.levels_played.append(self._requested_level)
        self.buffer_seconds += SEGMENT_SECONDS
        if not self.playing and self.buffer_seconds >= MIN_START_BUFFER:
            self.playing = True
            if self.stats.startup_delay is None:
                self.stats.startup_delay = self.sim.now - self._started_at
            if self._stalled_since is not None:
                stalled = self.sim.now - self._stalled_since
                self.stats.rebuffer_seconds += stalled
                self._stalled_since = None
                obs = getattr(self.sim, "obs", None)
                if obs is not None and obs.tracing:
                    obs.tracer.instant(
                        "video.resume", f"video:{self.host.name}",
                        self.sim.now, category="app",
                        data={"stalled_ms": round(stalled * 1000.0, 3)})
        self._request_next()

    # -- playout drain -------------------------------------------------------------
    def _drain_tick(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_drain
        self._last_drain = now
        if self.playing:
            self.buffer_seconds -= elapsed
            if self.buffer_seconds <= 0:
                self.buffer_seconds = 0.0
                self.playing = False
                self.stats.rebuffer_events += 1
                self._stalled_since = now
                obs = getattr(self.sim, "obs", None)
                if obs is not None and obs.tracing:
                    obs.tracer.instant(
                        "video.rebuffer", f"video:{self.host.name}",
                        now, category="app")
        if not self.done:
            self.sim.schedule(0.25, self._drain_tick)
