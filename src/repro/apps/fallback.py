"""Incremental-deployment fallback: plain TCP + L7 restart (§4.2).

Until MPTCP is universally deployed, the paper's strategy is to "fallback
to TCP and rely on the application and/or L7 protocols (e.g., SIP
re-invite; HTTP range headers) to efficiently restart failed
connections".  SIP re-INVITE lives in :mod:`repro.apps.voip`; this module
implements the HTTP-range side: a download client that, when the UE's
address changes mid-transfer, opens a *new* TCP connection from the new
address and resumes with a Range request for the missing suffix — so only
the in-flight bytes are re-fetched, not the whole object.

Wire framing: a range request is ``RANGE_REQUEST_SIZE + kilobytes_offset``
bytes; the server replies with ``total - offset`` bytes.  Offsets are
rounded down to 1 KiB (range boundaries on real CDNs are similarly
coarse), so a restart may re-download up to 1 KiB.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net import Host, TcpConnection, TcpListener, UNSPECIFIED

FALLBACK_PORT = 8081
RANGE_REQUEST_SIZE = 600
RANGE_GRANULARITY = 1024


class RangeDownloadServer:
    """Serves one object of ``total_bytes``; honors Range offsets."""

    def __init__(self, host: Host, total_bytes: int,
                 port: int = FALLBACK_PORT):
        self.total_bytes = total_bytes
        self.requests = 0
        self.range_requests = 0
        self._listener = TcpListener(host, port, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        pending = [0]

        def on_data(nbytes: int, meta: object) -> None:
            pending[0] += nbytes
            if pending[0] >= RANGE_REQUEST_SIZE:
                offset_kib = pending[0] - RANGE_REQUEST_SIZE
                pending[0] = 0
                offset = offset_kib * RANGE_GRANULARITY
                self.requests += 1
                if offset > 0:
                    self.range_requests += 1
                remaining = max(0, self.total_bytes - offset)
                if remaining:
                    conn.send(remaining)

        conn.on_data = on_data

    def close(self) -> None:
        self._listener.close()


class RangeRestartDownloader:
    """Plain-TCP download that survives IP changes via Range restarts.

    This is the legacy-UE story: no MPTCP anywhere, yet a bTelco switch
    costs only a reconnect plus up to 1 KiB of duplicate data.
    """

    def __init__(self, host: Host, server_ip: str, total_bytes: int,
                 port: int = FALLBACK_PORT, restart_delay: float = 0.0):
        """``restart_delay`` models how long the *application* takes to
        notice the dead connection.  A CellBricks-aware client (like the
        modified pjsua) reacts to the address-change signal instantly
        (0.0); an unmodified legacy app only notices via socket timeouts
        (hundreds of ms to seconds)."""
        self.host = host
        self.sim = host.sim
        self.server_ip = server_ip
        self.port = port
        self.total_bytes = total_bytes
        self.restart_delay = restart_delay
        self.received = 0
        self.restarts = 0
        self.completed_at: Optional[float] = None
        self.on_complete: Optional[Callable[[], None]] = None
        self._conn: Optional[TcpConnection] = None
        self._started = False
        host.add_address_listener(self._on_address_change)

    def start(self) -> None:
        self._started = True
        self._open_connection()

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def _open_connection(self) -> None:
        conn = TcpConnection(self.host, self.server_ip, self.port)
        self._conn = conn
        conn.on_established = lambda: self._send_request(conn)
        conn.on_data = self._on_data
        conn.on_fail = lambda reason: self._maybe_restart()
        conn.connect()

    def _send_request(self, conn: TcpConnection) -> None:
        offset_kib = self.received // RANGE_GRANULARITY
        # Anything past the last whole KiB will arrive again; rewind the
        # counter so accounting stays exact.
        self.received = offset_kib * RANGE_GRANULARITY
        conn.send(RANGE_REQUEST_SIZE + offset_kib)

    def _on_data(self, nbytes: int, meta: object) -> None:
        if self.done:
            return
        self.received += nbytes
        if self.received >= self.total_bytes:
            self.received = self.total_bytes
            self.completed_at = self.sim.now
            if self._conn is not None:
                self._conn.abort("complete")
                self._conn = None
            if self.on_complete is not None:
                self.on_complete()

    def _on_address_change(self, old_ip: str, new_ip: str) -> None:
        if not self._started or self.done:
            return
        if new_ip == UNSPECIFIED:
            # Connection is dead the moment the address goes; drop it so
            # its retransmissions stop immediately.
            if self._conn is not None:
                self._conn.abort("address lost")
                self._conn = None
        else:
            self._maybe_restart()

    def _maybe_restart(self) -> None:
        if not self._started or self.done or not self.host.has_address:
            return
        self.restarts += 1
        if self.restart_delay > 0:
            self.sim.schedule(self.restart_delay, self._open_connection)
        else:
            self._open_connection()
