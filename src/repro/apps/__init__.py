"""Application workloads: the four app classes of the paper's Table 1.

* :mod:`repro.apps.ping` — network latency benchmark,
* :mod:`repro.apps.iperf` — bulk throughput,
* :mod:`repro.apps.voip` — RTP voice with SIP re-INVITE mobility,
* :mod:`repro.apps.video` — HLS adaptive-bitrate streaming,
* :mod:`repro.apps.web` — page loading,

all running over :mod:`repro.apps.transport`'s uniform TCP/MPTCP facade.
"""

from .fallback import RangeDownloadServer, RangeRestartDownloader
from .iperf import IperfClient, IperfServer, IperfStats, IPERF_PORT
from .ping import PingClient, PingServer, PingStats, PING_PORT
from .transport import (
    KIND_MPTCP,
    KIND_QUIC,
    KIND_TCP,
    StreamClient,
    StreamPeer,
    StreamServer,
)
from .video import (
    HlsPlayer,
    HlsServer,
    LEVEL_BITRATES,
    PlaybackStats,
    SEGMENT_SECONDS,
    VIDEO_PORT,
    segment_bytes,
)
from .voip import RtpStats, VoipCallee, VoipCaller, make_call
from .web import (
    PageLoadResult,
    WEB_PORT,
    WebClient,
    WebServer,
)

__all__ = [
    "HlsPlayer",
    "HlsServer",
    "IPERF_PORT",
    "IperfClient",
    "IperfServer",
    "IperfStats",
    "KIND_MPTCP",
    "KIND_QUIC",
    "KIND_TCP",
    "LEVEL_BITRATES",
    "PING_PORT",
    "PageLoadResult",
    "PingClient",
    "PingServer",
    "PingStats",
    "PlaybackStats",
    "RangeDownloadServer",
    "RangeRestartDownloader",
    "RtpStats",
    "SEGMENT_SECONDS",
    "StreamClient",
    "StreamPeer",
    "StreamServer",
    "VIDEO_PORT",
    "VoipCallee",
    "VoipCaller",
    "WEB_PORT",
    "WebClient",
    "WebServer",
    "make_call",
    "segment_bytes",
]
