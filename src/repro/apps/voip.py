"""VoIP: RTP-over-UDP with SIP re-INVITE on IP change (Table 1).

VoIP does not ride on TCP, so CellBricks handles its mobility with the
SIP re-invite mechanism (§6.2(iv)): when the UE's address changes, the
(modified-pjsua-like) client sends a re-INVITE from the new address and
both endpoints continue the RTP session there.

The call model is G.711: 50 packets/s of 160-byte payloads each way.
Quality is summarized as MOS via the E-model from the measured loss,
delay, and jitter (:mod:`repro.analysis.mos`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.mos import mos_from_network_stats
from repro.analysis.stats import mean
from repro.net import Host, Simulator, Timer, UdpSocket

RTP_PORT = 4000
SIP_PORT = 5060
PACKET_INTERVAL = 0.02      # 20 ms framing
RTP_PAYLOAD = 172           # 160 B G.711 + 12 B RTP header
REINVITE_SIZE = 600
SIP_RETRY_INTERVAL = 0.5    # SIP Timer A style INVITE retransmission


@dataclass
class RtpStats:
    """Receiver-side RTP statistics (one direction)."""

    received: int = 0
    expected_max_seq: int = 0
    delays: list = field(default_factory=list)

    @property
    def loss_rate(self) -> float:
        if self.expected_max_seq == 0:
            return 0.0
        return max(0.0, 1.0 - self.received / self.expected_max_seq)

    @property
    def avg_delay_ms(self) -> float:
        return mean(self.delays) * 1000 if self.delays else 0.0

    @property
    def jitter_ms(self) -> float:
        """Mean absolute inter-arrival delay variation (RFC 3550 style)."""
        if len(self.delays) < 2:
            return 0.0
        variations = [abs(self.delays[i] - self.delays[i - 1])
                      for i in range(1, len(self.delays))]
        return mean(variations) * 1000

    @property
    def mos(self) -> float:
        return mos_from_network_stats(self.avg_delay_ms, self.jitter_ms,
                                      self.loss_rate)


class _RtpEndpoint:
    """Shared send/receive machinery for both call legs."""

    def __init__(self, host: Host, rtp_port: int):
        self.host = host
        self.sim: Simulator = host.sim
        self.rtp = UdpSocket(host, rtp_port)
        self.rtp.on_datagram = self._on_rtp
        self.stats = RtpStats()
        self.peer_ip: Optional[str] = None
        self.peer_port: Optional[int] = None
        self._seq = 0
        self._running = False
        self._stop_at = 0.0

    @property
    def frames_sent(self) -> int:
        return self._seq

    def start_streaming(self, duration: float) -> None:
        self._running = True
        self._stop_at = self.sim.now + duration
        self._send_frame()

    def stop(self) -> None:
        self._running = False

    def _send_frame(self) -> None:
        if not self._running or self.sim.now >= self._stop_at:
            self._running = False
            return
        if self.peer_ip is not None:
            self._seq += 1
            self.rtp.send_to(self.peer_ip, self.peer_port, RTP_PAYLOAD,
                             (self._seq, self.sim.now))
        self.sim.schedule(PACKET_INTERVAL, self._send_frame)

    def _on_rtp(self, src_ip: str, src_port: int, body: object,
                sent_at: float) -> None:
        seq, t_sent = body
        self.stats.received += 1
        self.stats.expected_max_seq = max(self.stats.expected_max_seq, seq)
        self.stats.delays.append(self.sim.now - t_sent)


class VoipCallee(_RtpEndpoint):
    """The server-side call leg; follows re-INVITEs to the new address."""

    def __init__(self, host: Host, rtp_port: int = RTP_PORT,
                 sip_port: int = SIP_PORT):
        super().__init__(host, rtp_port)
        self.sip = UdpSocket(host, sip_port)
        self.sip.on_datagram = self._on_sip
        self.reinvites = 0

    def _on_sip(self, src_ip: str, src_port: int, body: object,
                sent_at: float) -> None:
        kind, rtp_port = body
        if kind in ("INVITE", "re-INVITE"):
            if kind == "re-INVITE":
                self.reinvites += 1
            self.peer_ip = src_ip
            self.peer_port = rtp_port
            self.sip.send_to(src_ip, src_port, 200, ("200 OK", self.rtp.port))


class VoipCaller(_RtpEndpoint):
    """The UE-side call leg (a pjsua-like client with re-invite support)."""

    def __init__(self, host: Host, callee_ip: str,
                 rtp_port: int = RTP_PORT + 1, sip_port: int = SIP_PORT,
                 reinvite_on_ip_change: bool = True):
        super().__init__(host, rtp_port)
        self.callee_ip = callee_ip
        self.callee_sip_port = sip_port
        self.sip = UdpSocket(host)
        self.sip.on_datagram = self._on_sip_reply
        self.reinvites_sent = 0
        self._sip_retry_timer = Timer(self.sim, self._retry_invite)
        self._pending_invite: Optional[str] = None
        if reinvite_on_ip_change:
            host.add_address_listener(self._on_address_change)

    def call(self, duration: float) -> None:
        """INVITE, then stream for ``duration`` seconds."""
        self._invite("INVITE")
        self.start_streaming(duration)

    def _invite(self, kind: str) -> None:
        # SIP retransmits INVITEs until a final response (Timer A); that
        # is what carries a re-INVITE across the radio gap of a handover.
        self._pending_invite = kind
        self.sip.send_to(self.callee_ip, self.callee_sip_port, REINVITE_SIZE,
                         (kind, self.rtp.port))
        self._sip_retry_timer.start(SIP_RETRY_INTERVAL)

    def _retry_invite(self) -> None:
        if self._pending_invite is None:
            return
        self.sip.send_to(self.callee_ip, self.callee_sip_port, REINVITE_SIZE,
                         (self._pending_invite, self.rtp.port))
        self._sip_retry_timer.start(SIP_RETRY_INTERVAL)

    def _on_sip_reply(self, src_ip: str, src_port: int, body: object,
                      sent_at: float) -> None:
        status, rtp_port = body
        if status == "200 OK":
            self._pending_invite = None
            self._sip_retry_timer.stop()
            self.peer_ip = self.callee_ip
            self.peer_port = rtp_port

    def _on_address_change(self, old_ip: str, new_ip: str) -> None:
        if new_ip != "0.0.0.0" and self._running:
            # "a host sends a SIP re-Invite message to its peer upon IP
            # changes allowing both endpoints to set up new RTP sessions".
            self.reinvites_sent += 1
            self._invite("re-INVITE")


def make_call(ue_host: Host, server_host: Host, duration: float,
              reinvite_on_ip_change: bool = True
              ) -> tuple[VoipCaller, VoipCallee]:
    """Set up a two-way call; returns (caller, callee) for stats reading.

    Downlink quality (what the user hears) is ``caller.stats``; uplink is
    ``callee.stats``.
    """
    callee = VoipCallee(server_host)
    caller = VoipCaller(ue_host, server_host.address,
                        reinvite_on_ip_change=reinvite_on_ip_change)
    caller.call(duration)
    callee.start_streaming(duration)
    return caller, callee
