"""Uniform byte-stream facade over TCP and MPTCP.

The paper's applications run unmodified over either transport ("MPTCP is
largely backward compatible with the existing socket API") — this module
gives our application models the same property: a client/server stream
pair that is constructed with ``kind="tcp"`` (the MNO baseline) or
``kind="mptcp"`` (CellBricks) and behaves identically above the API.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net import (
    DEFAULT_ADDRESS_WAIT,
    Host,
    MptcpConnection,
    MptcpListener,
    MptcpServerConnection,
    TcpConnection,
    TcpListener,
)
from repro.net.quic import QuicConnection, QuicListener, QuicServerConnection

KIND_TCP = "tcp"
KIND_MPTCP = "mptcp"
KIND_QUIC = "quic"


class StreamPeer:
    """Server-side accepted stream (either transport)."""

    def __init__(self, inner):
        self._inner = inner
        self.bytes_received = 0
        self.on_data: Optional[Callable[[int], None]] = None
        if isinstance(inner, (MptcpServerConnection, QuicServerConnection)):
            inner.on_data = self._handle
        else:
            inner.on_data = lambda nbytes, meta: self._handle(nbytes)

    def _handle(self, nbytes: int) -> None:
        self.bytes_received += nbytes
        if self.on_data is not None:
            self.on_data(nbytes)

    def send(self, nbytes: int) -> None:
        try:
            self._inner.send(nbytes)
        except RuntimeError:
            pass  # peer already closed (e.g. a delayed server response)

    def close(self) -> None:
        self._inner.close()


class StreamServer:
    """Listens on (host, port) and surfaces accepted :class:`StreamPeer`."""

    def __init__(self, kind: str, host: Host, port: int,
                 on_peer: Callable[[StreamPeer], None]):
        self.kind = kind
        self.peers: list[StreamPeer] = []

        def accept(inner):
            peer = StreamPeer(inner)
            self.peers.append(peer)
            on_peer(peer)

        if kind == KIND_TCP:
            self._listener = TcpListener(host, port, accept)
        elif kind == KIND_MPTCP:
            self._listener = MptcpListener(host, port, accept)
        elif kind == KIND_QUIC:
            self._listener = QuicListener(host, port, accept)
        else:
            raise ValueError(f"unknown transport kind {kind!r}")

    def close(self) -> None:
        self._listener.close()


class StreamClient:
    """Client-side stream: same API over TCP and MPTCP."""

    def __init__(self, kind: str, host: Host, server_ip: str, port: int,
                 address_wait: float = DEFAULT_ADDRESS_WAIT):
        self.kind = kind
        self._host = host
        self.bytes_received = 0
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[int], None]] = None
        self.on_fail: Optional[Callable[[str], None]] = None
        if kind == KIND_TCP:
            self._inner = TcpConnection(host, server_ip, port)
            self._inner.on_data = lambda nbytes, meta: self._handle(nbytes)
        elif kind == KIND_MPTCP:
            self._inner = MptcpConnection(host, server_ip, port,
                                          address_wait=address_wait)
            self._inner.on_data = self._handle
        elif kind == KIND_QUIC:
            self._inner = QuicConnection(host, server_ip, port)
            self._inner.on_data = self._handle
        else:
            raise ValueError(f"unknown transport kind {kind!r}")
        self._inner.on_established = self._established
        if hasattr(self._inner, "on_fail"):
            self._inner.on_fail = self._failed

    @property
    def inner(self):
        return self._inner

    def _handle(self, nbytes: int) -> None:
        self.bytes_received += nbytes
        obs = getattr(self._host.sim, "obs", None)
        if obs is not None and obs.active_migrations:
            self._obs_close_migration(obs)
        if self.on_data is not None:
            self.on_data(nbytes)

    def _obs_close_migration(self, obs) -> None:
        """First payload byte delivered after a switch: the stall is
        over.  Close the migration root the :class:`MobilityManager`
        registered for this host — its duration *is* the end-to-end
        stall the leg breakdown decomposes."""
        root = obs.active_migrations.pop(self._host.name, None)
        if root is None:
            return
        if root.end is None:
            obs.tracer.instant(
                "migration.first_data", "mobility", self._host.sim.now,
                trace_id=root.trace_id, parent_id=root.span_id,
                category="mobility")
            obs.tracer.finish(root, self._host.sim.now)

    def _established(self) -> None:
        if self.on_established is not None:
            self.on_established()

    def _failed(self, reason: str) -> None:
        if self.on_fail is not None:
            self.on_fail(reason)

    def connect(self) -> None:
        self._inner.connect()

    def send(self, nbytes: int) -> None:
        self._inner.send(nbytes)

    def close(self) -> None:
        self._inner.close()
