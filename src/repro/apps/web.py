"""Web page loading (Table 1's "Web: Avg. Load Time").

A browser-like client fetches a page over several parallel persistent
connections, with the traits that dominate real page loads:

* a TLS-style setup exchange on every connection (one extra round trip
  carrying handshake bytes),
* per-request server think time (backend latency),
* *dependency waves*: sub-resources discovered only after earlier ones
  arrive (the HTML reveals CSS/JS, which reveal images/fonts), which is
  why night-time loads are latency-bound (~1.8 s in Table 1) while
  day-time loads are bandwidth-bound (~5 s at the ~1.2 Mbps policed rate).

Request framing is in-band and size-encoded: a request for resource ``i``
is ``REQUEST_SIZE + i`` bytes (small enough to ride in one segment) and
each connection keeps at most one request outstanding, so both sides
decode the stream unambiguously over TCP and MPTCP alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net import Host

from .transport import StreamClient, StreamServer

WEB_PORT = 80
REQUEST_SIZE = 400                     # GET + headers
# The hello must fit one segment (<= MSS) so the in-band framing stays
# unambiguous; real ClientHellos are a few hundred bytes anyway.
TLS_HELLO_SIZE = 1300                  # ClientHello + key exchange
TLS_RESPONSE_SIZE = 3000               # ServerHello + certificate chain
MAIN_DOCUMENT_BYTES = 60_000
SERVER_THINK_TIME = 0.050              # backend latency per request
DEFAULT_OBJECT_BYTES = (
    # a typical mix: a few large images, many small assets (bytes)
    140_000, 110_000, 85_000, 65_000, 55_000, 45_000,
    38_000, 32_000, 27_000, 24_000, 20_000, 17_000,
    15_000, 13_000, 11_000, 10_000, 9_000, 8_000,
    7_000, 6_000, 5_000, 4_500, 4_000, 3_500,
)
PARALLEL_CONNECTIONS = 4
#: fraction of sub-resources discovered in each dependency wave
#: (HTML -> CSS/JS -> images/fonts).
DEFAULT_WAVES = (0.45, 0.35, 0.2)


class WebServer:
    """Serves TLS setup exchanges and size-indexed resource requests.

    Resource 0 is the main document; resource ``1 + i`` is the page's
    i-th sub-resource.
    """

    def __init__(self, kind: str, host: Host, port: int = WEB_PORT,
                 main_bytes: int = MAIN_DOCUMENT_BYTES,
                 object_bytes: tuple = DEFAULT_OBJECT_BYTES,
                 think_time: float = SERVER_THINK_TIME):
        self.sim = host.sim
        self.main_bytes = main_bytes
        self.object_bytes = list(object_bytes)
        self.think_time = think_time
        self.requests_served = 0
        self.handshakes = 0
        self.server = StreamServer(kind, host, port, self._on_peer)

    def resource_size(self, index: int) -> int:
        if index == 0:
            return self.main_bytes
        return self.object_bytes[(index - 1) % len(self.object_bytes)]

    def _on_peer(self, peer) -> None:
        pending = [0]

        def on_data(nbytes: int) -> None:
            # At most one request is outstanding per connection, so the
            # accumulated bytes form exactly one request (or handshake).
            pending[0] += nbytes
            if pending[0] >= TLS_HELLO_SIZE:
                pending[0] = 0
                self.handshakes += 1
                peer.send(TLS_RESPONSE_SIZE)
            elif pending[0] >= REQUEST_SIZE:
                index = pending[0] - REQUEST_SIZE
                pending[0] = 0
                self.requests_served += 1
                size = self.resource_size(index)
                if self.think_time > 0:
                    self.sim.schedule(self.think_time, peer.send, size)
                else:
                    peer.send(size)

        peer.on_data = on_data

    def close(self) -> None:
        self.server.close()


@dataclass
class PageLoadResult:
    load_time: float
    bytes_received: int
    objects_fetched: int


class WebClient:
    """Loads the page over ``parallel`` persistent streams with TLS setup
    and dependency waves."""

    def __init__(self, kind: str, host: Host, server_ip: str,
                 port: int = WEB_PORT,
                 object_bytes: tuple = DEFAULT_OBJECT_BYTES,
                 main_bytes: int = MAIN_DOCUMENT_BYTES,
                 address_wait: float = 0.5,
                 parallel: int = PARALLEL_CONNECTIONS,
                 waves: tuple = DEFAULT_WAVES):
        self.host = host
        self.sim = host.sim
        self.kind = kind
        self.server_ip = server_ip
        self.port = port
        self.address_wait = address_wait
        self.parallel = parallel
        self.object_sizes = list(object_bytes)
        self.main_bytes = main_bytes
        self.result: Optional[PageLoadResult] = None
        self.on_loaded = None

        # Partition sub-resources into discovery waves.
        self._waves: list[list[int]] = []
        indices = list(range(1, len(self.object_sizes) + 1))
        offset = 0
        for fraction in waves[:-1]:
            take = max(1, int(len(indices) * fraction))
            self._waves.append(indices[offset:offset + take])
            offset += take
        self._waves.append(indices[offset:])
        self._waves = [wave for wave in self._waves if wave]

        self._connections: list[StreamClient] = []
        self._started_at: Optional[float] = None
        self._fetch_queue: list[int] = []
        self._wave_index = 0
        self._wave_outstanding = 0
        self._bytes_total = 0
        self._expected: dict[int, int] = {}    # conn index -> bytes pending
        self._tls_pending: dict[int, bool] = {}
        self._idle: list[int] = []             # ready connections

    def load(self) -> None:
        """Start the page load; ``result`` is set when it completes."""
        self._started_at = self.sim.now
        self._bytes_total = 0
        first = self._make_connection(0)
        self._connections = [first]
        first.connect()

    def _resource_size(self, index: int) -> int:
        return self.object_sizes[index - 1]

    def _make_connection(self, index: int) -> StreamClient:
        client = StreamClient(self.kind, self.host, self.server_ip,
                              self.port, address_wait=self.address_wait)
        client.on_data = lambda nbytes, i=index: self._on_data(i, nbytes)
        client.on_established = lambda i=index: self._start_tls(i)
        self._tls_pending[index] = True
        return client

    def _start_tls(self, index: int) -> None:
        self._expected[index] = TLS_RESPONSE_SIZE
        self._connections[index].send(TLS_HELLO_SIZE)

    def _on_data(self, index: int, nbytes: int) -> None:
        remaining = self._expected.get(index, 0) - nbytes
        self._expected[index] = remaining
        if not self._tls_pending.get(index):
            self._bytes_total += nbytes
        if remaining > 0:
            return
        if self._tls_pending.get(index):
            self._tls_pending[index] = False
            if index == 0 and len(self._connections) == 1:
                # Main-document fetch happens on the first connection.
                self._expected[0] = self.main_bytes
                self._connections[0].send(REQUEST_SIZE)
            else:
                self._dispatch(index)
            return
        if index == 0 and len(self._connections) == 1:
            # Main document parsed: open the other connections and start
            # the first dependency wave.
            self._open_parallel_connections()
            self._begin_wave()
            self._dispatch(0)
            return
        self._wave_outstanding -= 1
        if not self._fetch_queue and self._wave_outstanding == 0:
            if self._wave_index >= len(self._waves):
                self._finish()
                return
            self._begin_wave()
        self._dispatch(index)

    def _open_parallel_connections(self) -> None:
        for index in range(1, self.parallel):
            conn = self._make_connection(index)
            self._connections.append(conn)
            conn.connect()

    def _begin_wave(self) -> None:
        if self._wave_index < len(self._waves):
            self._fetch_queue = list(self._waves[self._wave_index])
            self._wave_index += 1
            # Wake any connections that idled out at the end of a wave.
            while self._idle and self._fetch_queue:
                self._dispatch(self._idle.pop())

    def _dispatch(self, index: int) -> None:
        if not self._fetch_queue:
            if not self._waves_done():
                self._idle.append(index)
            return
        resource = self._fetch_queue.pop(0)
        self._wave_outstanding += 1
        self._expected[index] = self._resource_size(resource)
        self._connections[index].send(REQUEST_SIZE + resource)

    def _waves_done(self) -> bool:
        return (self._wave_index >= len(self._waves)
                and not self._fetch_queue and self._wave_outstanding == 0)

    def _finish(self) -> None:
        if self.result is not None:
            return
        self.result = PageLoadResult(
            load_time=self.sim.now - self._started_at,
            bytes_received=self._bytes_total,
            objects_fetched=len(self.object_sizes))
        for conn in self._connections:
            conn.close()
        if self.on_loaded is not None:
            self.on_loaded(self.result)
