"""ICMP-style ping over UDP: the paper's latency benchmark (Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.stats import mean, percentile
from repro.net import Host, Simulator, UdpSocket

PING_PORT = 7
PING_SIZE = 64


class PingServer:
    """UDP echo responder."""

    def __init__(self, host: Host, port: int = PING_PORT):
        self.socket = UdpSocket(host, port)
        self.socket.on_datagram = self._echo
        self.echoed = 0

    def _echo(self, src_ip: str, src_port: int, body: object,
              sent_at: float) -> None:
        self.echoed += 1
        self.socket.send_to(src_ip, src_port, PING_SIZE, body)

    def close(self) -> None:
        self.socket.close()


@dataclass
class PingStats:
    rtts: list = field(default_factory=list)
    sent: int = 0

    @property
    def received(self) -> int:
        return len(self.rtts)

    @property
    def loss_rate(self) -> float:
        return 1.0 - self.received / self.sent if self.sent else 0.0

    @property
    def p50_ms(self) -> float:
        return percentile(self.rtts, 50) * 1000 if self.rtts else float("nan")

    @property
    def avg_ms(self) -> float:
        return mean(self.rtts) * 1000 if self.rtts else float("nan")


class PingClient:
    """Sends one echo request per interval; tracks RTT samples.

    Requests sent while the UE has no address (mid-handover in
    CellBricks) simply count as lost — like a real ping process would
    observe.
    """

    def __init__(self, host: Host, server_ip: str, interval: float = 1.0,
                 port: int = PING_PORT):
        self.host = host
        self.sim: Simulator = host.sim
        self.server_ip = server_ip
        self.interval = interval
        self.port = port
        self.stats = PingStats()
        self.socket = UdpSocket(host)
        self.socket.on_datagram = self._on_reply
        self._seq = 0
        self._running = False
        self._stop_at: Optional[float] = None

    def start(self, duration: float) -> None:
        self._running = True
        self._stop_at = self.sim.now + duration
        self._tick()

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running or self.sim.now >= self._stop_at:
            self._running = False
            return
        self.stats.sent += 1
        self._seq += 1
        self.socket.send_to(self.server_ip, self.port, PING_SIZE,
                            (self._seq, self.sim.now))
        self.sim.schedule(self.interval, self._tick)

    def _on_reply(self, src_ip: str, src_port: int, body: object,
                  sent_at: float) -> None:
        _seq, t_sent = body
        self.stats.rtts.append(self.sim.now - t_sent)
