"""Small statistics helpers shared by the benchmarks and harnesses."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    value = ordered[low] * (1 - frac) + ordered[high] * frac
    # Clamp interpolation round-off back inside the sample range.
    return min(max(value, ordered[0]), ordered[-1])


def median(values: Sequence[float]) -> float:
    """The 50th percentile."""
    return percentile(values, 50)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two samples."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def slowdown_percent(baseline: float, measured: float) -> float:
    """The paper's 'Overall Perf. Slowdown' row: positive means the
    measured system is worse than the baseline.

    For higher-is-better metrics (throughput, MOS, quality level) call
    with both values directly; for lower-is-better metrics (load time)
    swap the arguments at the call site.
    """
    if baseline == 0:
        return 0.0
    return (baseline - measured) / baseline * 100.0


def timeseries_rates(samples: Sequence[tuple], bin_seconds: float,
                     duration: float) -> list:
    """Convert (timestamp, nbytes) delivery events into per-bin Mbps."""
    if bin_seconds <= 0:
        raise ValueError("bin size must be positive")
    bins = [0.0] * max(1, int(math.ceil(duration / bin_seconds)))
    for timestamp, nbytes in samples:
        index = int(timestamp / bin_seconds)
        if 0 <= index < len(bins):
            bins[index] += nbytes
    return [total * 8 / bin_seconds / 1e6 for total in bins]
