"""Terminal-friendly plots for the CLI: bar series and sparklines.

The paper's figures are line/bar charts; the CLI renders the same data as
monospace plots so experiments are inspectable without a plotting stack.
"""

from __future__ import annotations

from typing import Optional, Sequence

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], maximum: Optional[float] = None) -> str:
    """A one-line intensity strip of the series."""
    if not values:
        return ""
    top = maximum if maximum is not None else max(values)
    if top <= 0:
        return " " * len(values)
    out = []
    for value in values:
        level = int(min(max(value, 0.0), top) / top
                    * (len(_SPARK_LEVELS) - 1) + 0.5)
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def bar_chart(series: dict, width: int = 48,
              unit: str = "", fmt: str = "{:.2f}") -> str:
    """Horizontal bars, one per (label -> value) entry."""
    if not series:
        return ""
    top = max(series.values())
    label_width = max(len(label) for label in series)
    lines = []
    for label, value in series.items():
        filled = int(width * value / top + 0.5) if top > 0 else 0
        lines.append(f"{label:<{label_width}s} |{'#' * filled:<{width}s}| "
                     f"{fmt.format(value)}{unit}")
    return "\n".join(lines)


def timeline(values: Sequence[float], bin_label: str = "s",
             height: int = 8, width: Optional[int] = None,
             markers: Sequence[int] = ()) -> str:
    """A small column chart of a time series, with event markers.

    ``markers`` are bin indices annotated with ``v`` above the chart
    (handover events in the Fig 8 rendering).
    """
    if not values:
        return ""
    if width is not None and len(values) > width:
        # Downsample by averaging consecutive bins.
        factor = (len(values) + width - 1) // width
        values = [sum(values[i:i + factor]) / len(values[i:i + factor])
                  for i in range(0, len(values), factor)]
        markers = [m // factor for m in markers]
    top = max(values) or 1.0
    rows = []
    marker_row = [" "] * len(values)
    for index in markers:
        if 0 <= index < len(values):
            marker_row[index] = "v"
    rows.append("".join(marker_row))
    for level in range(height, 0, -1):
        threshold = top * (level - 0.5) / height
        rows.append("".join("#" if value >= threshold else " "
                            for value in values))
    rows.append("-" * len(values))
    rows.append(f"0..{len(values)}{bin_label}  (peak {top:.2f})")
    return "\n".join(rows)
