"""Analysis helpers: statistics, the E-model MOS, and table rendering."""

from .mos import (
    CallQuality,
    delay_impairment,
    loss_impairment,
    mos_from_network_stats,
    r_factor,
    r_to_mos,
)
from .textplot import bar_chart, sparkline, timeline
from .stats import (
    mean,
    median,
    percentile,
    slowdown_percent,
    stddev,
    timeseries_rates,
)

__all__ = [
    "CallQuality",
    "delay_impairment",
    "loss_impairment",
    "bar_chart",
    "mean",
    "median",
    "mos_from_network_stats",
    "percentile",
    "r_factor",
    "r_to_mos",
    "slowdown_percent",
    "sparkline",
    "stddev",
    "timeline",
    "timeseries_rates",
]
