"""Voice quality scoring: the ITU-T G.107 E-model, simplified.

The paper reports VoIP quality as the Mean Opinion Score "numerically
derived from the packet loss, latency, and jitter measured during the
call".  This module implements that derivation: the E-model's R-factor
from one-way delay (including the jitter buffer) and effective packet
loss, mapped to MOS.  A perfect narrowband call scores ~4.4; the paper's
Table 1 values sit at 4.25-4.38.
"""

from __future__ import annotations

from dataclasses import dataclass

R_MAX = 93.2          # default R for G.711 with no impairments
BPL_G711 = 25.1       # packet-loss robustness factor (with PLC)
IE_G711 = 0.0


def delay_impairment(one_way_delay_ms: float) -> float:
    """Id: impairment from mouth-to-ear delay (G.107 approximation)."""
    d = max(one_way_delay_ms, 0.0)
    impairment = 0.024 * d
    if d > 177.3:
        impairment += 0.11 * (d - 177.3)
    return impairment


def loss_impairment(loss_rate: float, burst_ratio: float = 1.0) -> float:
    """Ie-eff: impairment from packet loss (G.711 + PLC parameters)."""
    loss_pct = max(min(loss_rate, 1.0), 0.0) * 100.0
    return IE_G711 + (95.0 - IE_G711) * loss_pct / (
        loss_pct / max(burst_ratio, 1e-9) + BPL_G711)


def r_factor(one_way_delay_ms: float, loss_rate: float,
             burst_ratio: float = 1.0) -> float:
    """The E-model transmission rating."""
    r = R_MAX - delay_impairment(one_way_delay_ms) \
        - loss_impairment(loss_rate, burst_ratio)
    return max(0.0, min(100.0, r))


def r_to_mos(r: float) -> float:
    """ITU-T G.107 Annex B mapping from R to MOS (1.0 .. ~4.5)."""
    if r <= 0:
        return 1.0
    if r >= 100:
        return 4.5
    mos = 1.0 + 0.035 * r + 7e-6 * r * (r - 60.0) * (100.0 - r)
    # The cubic dips fractionally below 1.0 for very small R; MOS is
    # defined on [1.0, 4.5].
    return max(1.0, min(4.5, mos))


def mos_from_network_stats(one_way_delay_ms: float, jitter_ms: float,
                           loss_rate: float) -> float:
    """MOS from measured network stats.

    The jitter buffer must absorb jitter, so effective delay grows with
    it (a common de-jitter sizing rule: delay + 2x jitter).
    """
    effective_delay = one_way_delay_ms + 2.0 * max(jitter_ms, 0.0)
    return r_to_mos(r_factor(effective_delay, loss_rate))


@dataclass
class CallQuality:
    """Summarized quality of one (simulated) call."""

    one_way_delay_ms: float
    jitter_ms: float
    loss_rate: float

    @property
    def mos(self) -> float:
        return mos_from_network_stats(self.one_way_delay_ms,
                                      self.jitter_ms, self.loss_rate)
