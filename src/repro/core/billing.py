"""Verifiable billing (§4.3).

UE and bTelco *independently* measure each session's traffic and
periodically send encrypted, signed traffic reports to the broker.  The
broker aligns the two report streams by (session, sequence), compares the
reported downlink usage against a loss-aware threshold (Fig 5), records
mismatches into the reputation system, and settles charges from the
trusted (baseband-measured, tamper-resistant) UE reports.

Report contents follow the paper: session id, relative timestamp, usage
in bytes per direction, call/SMS counters, and the 3GPP QoS metrics
(bit rates, loss, delay) for both directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
import json
from typing import Optional

from repro.crypto import CryptoError, PrivateKey, PublicKey

from .reputation import ReputationSystem
from .sap import SapGrant

REPORTER_UE = "ue"
REPORTER_BTELCO = "btelco"

DEFAULT_EPSILON = 0.05   # fixed tolerance ratio (Fig 5)
DEFAULT_PRICE_PER_GB = 2.0


class BillingError(Exception):
    """Raised on malformed or unverifiable report uploads."""


@dataclass(frozen=True)
class TrafficReport:
    """One reporting interval's measurements (paper §4.3 item list)."""

    session_id: str
    seq: int                    # report sequence within the session
    interval_start: float       # relative timestamps within the session
    interval_end: float
    ul_bytes: int
    dl_bytes: int
    dl_loss_rate: float = 0.0
    ul_loss_rate: float = 0.0
    avg_dl_bitrate_bps: float = 0.0
    avg_ul_bitrate_bps: float = 0.0
    avg_delay_ms: float = 0.0
    call_seconds: float = 0.0
    sms_count: int = 0

    def to_bytes(self) -> bytes:
        return json.dumps(asdict(self), sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "TrafficReport":
        try:
            return cls(**json.loads(raw.decode()))
        except (TypeError, ValueError) as exc:
            raise BillingError(f"malformed traffic report: {exc}") from exc


@dataclass(frozen=True)
class TrafficReportUpload:
    """The wire form: Enc_pkB(report) signed by the reporter.

    Signing happens *inside the baseband* on the UE side (the paper's
    tamper-resistance argument); here that means the meter object signs
    before anything else can modify the values.
    """

    session_id: str
    seq: int
    reporter: str               # REPORTER_UE or REPORTER_BTELCO
    blob: bytes
    signature: bytes

    @property
    def wire_size(self) -> int:
        return len(self.blob) + len(self.signature) + 48


def make_upload(report: TrafficReport, reporter: str,
                reporter_key: PrivateKey,
                broker_public_key: PublicKey) -> TrafficReportUpload:
    """Seal and sign a report for upload."""
    blob = broker_public_key.encrypt(report.to_bytes())
    return TrafficReportUpload(
        session_id=report.session_id, seq=report.seq, reporter=reporter,
        blob=blob, signature=reporter_key.sign(blob))


@dataclass
class SessionLedger:
    """Broker-side per-session billing state."""

    grant: SapGrant
    ue_reports: dict = field(default_factory=dict)      # seq -> report
    btelco_reports: dict = field(default_factory=dict)
    checked_seqs: set = field(default_factory=set)
    mismatches: int = 0
    checked_pairs: int = 0
    billable_dl_bytes: int = 0
    billable_ul_bytes: int = 0
    #: set when the grant expired or was revoked: the verified totals are
    #: frozen for settlement and further uploads are refused.
    closed: bool = False


@dataclass(frozen=True)
class Invoice:
    """Broker -> subscriber (and bTelco settlement) summary."""

    session_id: str
    id_u: str
    id_t: str
    dl_bytes: int
    ul_bytes: int
    amount: float
    disputed: bool


@dataclass(frozen=True)
class ArchivedLedger:
    """Immutable settlement record of a retired session ledger.

    Once a session is settled, the broker has no reason to keep the raw
    report streams in memory — but billing disputes need the verified
    outcome long after the session ended.  The archive keeps exactly
    that: the invoice plus the cross-check evidence counts."""

    invoice: Invoice
    checked_pairs: int
    mismatches: int
    ue_report_count: int
    btelco_report_count: int
    settled_at: float


class BillingVerifier:
    """The broker's report cross-checker + settlement engine (Fig 5)."""

    def __init__(self, broker_key: PrivateKey,
                 reputation: Optional[ReputationSystem] = None,
                 epsilon: float = DEFAULT_EPSILON,
                 price_per_gb: float = DEFAULT_PRICE_PER_GB):
        self.broker_key = broker_key
        self.reputation = reputation or ReputationSystem()
        self.epsilon = epsilon
        self.price_per_gb = price_per_gb
        self.sessions: dict[str, SessionLedger] = {}
        #: key lookup for verifying report signatures:
        #: (session_id, reporter) -> PublicKey
        self.reporter_keys: dict[tuple, PublicKey] = {}
        self.rejected_uploads = 0
        #: report seqs that never got their counterpart by session close —
        #: lost uploads that would otherwise silently skew the Fig 5
        #: cross-check toward false accusations.
        self.reports_unmatched = 0
        #: append-only settlement history (see :meth:`archive_session`).
        self.archive: list[ArchivedLedger] = []
        self._archive_by_session: dict[str, ArchivedLedger] = {}
        self.ledgers_archived = 0
        #: audit hook: called with each :class:`ArchivedLedger` the
        #: moment it is written (an external audit log / dispute system).
        self.on_archive = None

    # -- session lifecycle --------------------------------------------------
    def open_session(self, grant: SapGrant,
                     ue_public_key: Optional[PublicKey] = None,
                     btelco_public_key: Optional[PublicKey] = None) -> None:
        self.sessions[grant.session_id] = SessionLedger(grant=grant)
        if ue_public_key is not None:
            self.reporter_keys[(grant.session_id, REPORTER_UE)] = ue_public_key
        if btelco_public_key is not None:
            self.reporter_keys[(grant.session_id, REPORTER_BTELCO)] = \
                btelco_public_key

    def register_reporter_key(self, session_id: str, reporter: str,
                              public_key: PublicKey) -> None:
        self.reporter_keys[(session_id, reporter)] = public_key

    def close_session(self, session_id: str) -> None:
        """Stop accepting reports for an ended (expired/revoked) session.

        The ledger itself survives — settlement still needs the verified
        totals — but the reporter-key entries are released so per-session
        broker state stops growing with attach history.
        """
        ledger = self.sessions.get(session_id)
        if ledger is not None and not ledger.closed:
            ledger.closed = True
            unmatched = (set(ledger.ue_reports)
                         ^ set(ledger.btelco_reports))
            self.reports_unmatched += len(unmatched)
        self.reporter_keys.pop((session_id, REPORTER_UE), None)
        self.reporter_keys.pop((session_id, REPORTER_BTELCO), None)

    # -- ingestion ------------------------------------------------------------
    def ingest(self, upload: TrafficReportUpload, now: float) -> bool:
        """Verify, decrypt, store, and cross-check one uploaded report.

        Returns True if the upload was accepted (regardless of whether the
        cross-check then flags a mismatch).
        """
        ledger = self.sessions.get(upload.session_id)
        if ledger is None or ledger.closed:
            self.rejected_uploads += 1
            return False
        key = self.reporter_keys.get((upload.session_id, upload.reporter))
        if key is not None and not key.verify(upload.blob, upload.signature):
            self.rejected_uploads += 1
            return False
        try:
            report = TrafficReport.from_bytes(
                self.broker_key.decrypt(upload.blob))
        except (CryptoError, BillingError):
            self.rejected_uploads += 1
            return False
        if report.session_id != upload.session_id:
            self.rejected_uploads += 1
            return False
        store = (ledger.ue_reports if upload.reporter == REPORTER_UE
                 else ledger.btelco_reports)
        store[report.seq] = report
        self._cross_check(ledger, report.seq, now)
        return True

    # -- the Fig 5 check -----------------------------------------------------------
    def _cross_check(self, ledger: SessionLedger, seq: int,
                     now: float) -> None:
        ue_report = ledger.ue_reports.get(seq)
        t_report = ledger.btelco_reports.get(seq)
        if ue_report is None or t_report is None:
            return  # wait for the counterpart
        if seq in ledger.checked_seqs:
            return  # replayed upload: already cross-checked and billed
        ledger.checked_seqs.add(seq)
        ledger.checked_pairs += 1
        grant = ledger.grant

        # threshold = (reported DL loss + epsilon) * claimed usage: traffic
        # the bTelco sent but the UE lost is legitimately uncounted at the
        # UE, so the tolerance scales with the observed loss rate.
        threshold = (ue_report.dl_loss_rate + self.epsilon) \
            * max(t_report.dl_bytes, 1)
        discrepancy = abs(t_report.dl_bytes - ue_report.dl_bytes)
        if discrepancy > threshold:
            ledger.mismatches += 1
            degree = discrepancy / max(threshold, 1.0)
            self.reputation.record_mismatch(
                grant.id_t, grant.session_id, seq, degree, at=now)
            if ue_report.dl_bytes > t_report.dl_bytes:
                # The UE claims *more* than the bTelco delivered — the UE
                # meter is the suspect (over-reporting helps nobody else).
                self.reputation.flag_ue(grant.id_u)
        else:
            self.reputation.record_ok(grant.id_t)
        # Settle from the (tamper-resistant) UE measurements.
        ledger.billable_dl_bytes += ue_report.dl_bytes
        ledger.billable_ul_bytes += ue_report.ul_bytes

    # -- settlement ---------------------------------------------------------------
    def settle(self, session_id: str) -> Invoice:
        """Produce the invoice for a session (B-to-U billing; T-to-B
        settlement uses the same numbers)."""
        ledger = self.sessions.get(session_id)
        if ledger is None:
            raise BillingError(f"unknown session {session_id}")
        total = ledger.billable_dl_bytes + ledger.billable_ul_bytes
        amount = total / 1e9 * self.price_per_gb
        return Invoice(
            session_id=session_id, id_u=ledger.grant.id_u,
            id_t=ledger.grant.id_t, dl_bytes=ledger.billable_dl_bytes,
            ul_bytes=ledger.billable_ul_bytes, amount=round(amount, 6),
            disputed=ledger.mismatches > 0)

    # -- archival ----------------------------------------------------------------
    def archive_session(self, session_id: str, now: float = 0.0) -> Invoice:
        """Settle a session and retire its ledger to the append-only archive.

        The live ledger (raw report streams, checked-seq set) is dropped —
        that is the memory the archive exists to reclaim — while the
        verified outcome stays retrievable forever via :meth:`audit`.
        Still-open sessions are closed first, so archiving an active
        session is an explicit early settlement, not an error.
        """
        ledger = self.sessions.get(session_id)
        if ledger is None:
            raise BillingError(f"unknown session {session_id}")
        if not ledger.closed:
            self.close_session(session_id)
        invoice = self.settle(session_id)
        record = ArchivedLedger(
            invoice=invoice, checked_pairs=ledger.checked_pairs,
            mismatches=ledger.mismatches,
            ue_report_count=len(ledger.ue_reports),
            btelco_report_count=len(ledger.btelco_reports),
            settled_at=now)
        del self.sessions[session_id]
        self.archive.append(record)
        self._archive_by_session[session_id] = record
        self.ledgers_archived += 1
        if self.on_archive is not None:
            self.on_archive(record)
        return invoice

    def audit(self, session_id: str) -> Optional[ArchivedLedger]:
        """Retrieve the archived settlement record for a session."""
        return self._archive_by_session.get(session_id)

    def audit_subscriber(self, id_u: str) -> tuple:
        """Every archived settlement for one subscriber, oldest first."""
        return tuple(record for record in self.archive
                     if record.invoice.id_u == id_u)


@dataclass
class Meter:
    """A traffic meter that emits signed report uploads.

    ``fraud_factor`` models dishonest reporting for the billing
    experiments: a bTelco inflating usage (> 1) or a tampered UE deflating
    it (< 1).  On an honest device this sits at exactly 1.0 — and on a real
    UE this code runs inside the baseband, which is why the broker can
    trust it (§4.3).
    """

    session_id: str
    reporter: str
    key: PrivateKey
    broker_public_key: PublicKey
    report_interval: float = 30.0
    fraud_factor: float = 1.0
    dl_bytes: int = 0
    ul_bytes: int = 0
    dl_lost_packets: int = 0
    dl_received_packets: int = 0
    seq: int = 0
    session_started_at: float = 0.0
    _last_report_at: float = 0.0

    def record_dl(self, nbytes: int) -> None:
        self.dl_bytes += nbytes
        self.dl_received_packets += 1

    def record_ul(self, nbytes: int) -> None:
        self.ul_bytes += nbytes

    def record_dl_loss(self, packets: int = 1) -> None:
        self.dl_lost_packets += packets

    def emit(self, now: float) -> TrafficReportUpload:
        """Build, sign, and reset the interval counters."""
        total_packets = self.dl_received_packets + self.dl_lost_packets
        loss = self.dl_lost_packets / total_packets if total_packets else 0.0
        interval = max(now - self._last_report_at, 1e-9)
        report = TrafficReport(
            session_id=self.session_id, seq=self.seq,
            interval_start=self._last_report_at - self.session_started_at,
            interval_end=now - self.session_started_at,
            ul_bytes=int(self.ul_bytes * self.fraud_factor),
            dl_bytes=int(self.dl_bytes * self.fraud_factor),
            dl_loss_rate=loss,
            avg_dl_bitrate_bps=self.dl_bytes * 8 / interval,
            avg_ul_bitrate_bps=self.ul_bytes * 8 / interval)
        upload = make_upload(report, self.reporter, self.key,
                             self.broker_public_key)
        self.seq += 1
        self._last_report_at = now
        self.dl_bytes = self.ul_bytes = 0
        self.dl_lost_packets = self.dl_received_packets = 0
        return upload
