"""Distributed broker shards: network-attached SAP shard hosts.

PR 5 sharded the broker's SAP state *in process*; this module moves each
shard onto its own simulated host, reached over real signaling links, so
the retransmission / loss / outage semantics of the reliable transport
apply to the broker's own internals end-to-end:

* :class:`ShardHost` — a :class:`~repro.lte.signaling.SignalingNode`
  wrapping a single-shard :class:`~repro.core.sap.BrokerSap`.  Each
  shard runs as a primary + a warm standby replica pair; the primary
  streams its session-state mutations (replay-window nonces, grants,
  idempotency-cache entries) to the replica as sequenced, idempotent
  :class:`ReplicaUpdate` batches.  ``crash()`` is fail-stop: all state
  is lost and every datagram is dropped until ``restart()``.

* :class:`ShardFrontend` — lives inside ``brokerd``: decrypts the
  authVec just enough to route by the consistent-hash ring, forwards
  auth requests to the owning shard host, health-checks every host with
  heartbeat probes, and on a detected death promotes the warm replica.
  Between detection and promotion the shard is *degraded*: cached
  (retransmit-replay) responses are served from the replica and fresh
  auths fail fast with the retryable ``degraded`` denial cause instead
  of timing out.

* Rebalances (``add_shard`` / ``remove_shard`` / ``set_shard_count``)
  are network protocols: chunked :class:`HandoffChunk` state transfers
  with sequence numbers, idempotent application, and resume-after-loss,
  relayed through the frontend (shard hosts only have links to the
  broker and to their own replica).  Attaches that land mid-handoff for
  a moving subscriber are parked at the frontend and forwarded after
  commit — never dropped.

The provisioning plane (subscriber enrollment, suspension flags, lawful
intercept mandates) is modeled as a strongly-consistent subscriber DB
shared by the broker fleet: the same :class:`BrokerSubscriber` records
are enrolled into every host's SAP, so a revocation's *suspension* is
globally visible immediately while the bTelco-facing revocation push
remains the real ack'd network protocol.  Session state — the part the
paper's security argument depends on across failures — is what moves
over the wire.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto import CryptoError
from repro.lte.signaling import CounterAttr, SignalingNode
from repro.net import Host, Link

from .broker import (
    AUTH_REQUEST_PROCESSING,
    AUTHVEC_DECRYPT_COST,
)
from .messages import (
    AuthVec,
    BrokerAuthResponse,
    DenialCause,
    MessageError,
)
from .sap import BrokerSap, SapError, ShardRouter

__all__ = [
    "ShardHost",
    "ShardFrontend",
    "deploy_shard_hosts",
    "ShardAuthRequest",
    "ShardAuthResponse",
]


# -- shard protocol messages ------------------------------------------------

@dataclass(frozen=True)
class ShardAuthRequest:
    """Frontend -> shard host: one routed SAP authentication request.

    ``replay_only`` marks a forward to an unpromoted standby during
    degraded mode: it may serve the replicated idempotency cache but
    must fast-fail fresh auths with a retryable denial.
    """

    auth_req_t: object
    reply_token: int = 0
    replay_only: bool = False


@dataclass(frozen=True)
class ShardAuthResponse:
    """Shard host -> frontend: the SAP verdict plus, on approval, the
    minted grant so the frontend can keep its billing/revocation
    bookkeeping without a second round trip."""

    approved: bool
    reply_token: int = 0
    auth_resp_t: object = None
    auth_resp_u: object = None
    grant: object = None
    cause: str = ""
    retryable: bool = False
    cached: bool = False


@dataclass(frozen=True)
class ShardScopeNotice:
    """Frontend -> shard host: advance a grant's authoritative
    scope-attach counter (a bTelco validated a scope-local attach and
    notified the broker; brokerd already checked the notice signature)."""

    session_id: str
    counter: int
    reply_token: int = 0


@dataclass(frozen=True)
class ShardScopeAck:
    """Shard host -> frontend: verdict on a scope-counter advance."""

    session_id: str
    counter: int
    reply_token: int = 0
    accepted: bool = False
    retryable: bool = False
    cause: str = ""


@dataclass(frozen=True)
class ShardHeartbeat:
    """Frontend -> shard host liveness probe (plain datagram: losing a
    few of these *is* the failure signal, so no retransmission)."""

    seq: int


@dataclass(frozen=True)
class ShardHeartbeatAck:
    seq: int
    shard_id: int
    role: str


@dataclass(frozen=True)
class ReplicaUpdate:
    """Primary -> replica: one sequenced batch of idempotent state ops.

    Ops are tuples: ``("nonce", nonce, id_u, window_end)``,
    ``("grant", grant)``, ``("response", digest, triple, expires_at)``,
    ``("tombstone", session_id, id_u, expires_at)``,
    ``("scope_counter", session_id, counter)``,
    ``("forget", id_u)``, ``("reset",)``.
    """

    shard_id: int
    seq: int
    ops: tuple = ()


@dataclass(frozen=True)
class ReplicaUpdateAck:
    shard_id: int
    seq: int


@dataclass(frozen=True)
class PromoteReplica:
    """Frontend -> standby: take over as primary (epoch fences a stale
    promotion that crosses a later failover)."""

    shard_id: int
    epoch: int


@dataclass(frozen=True)
class PromoteAck:
    shard_id: int
    epoch: int
    applied_seq: int


@dataclass(frozen=True)
class ResyncPeer:
    """Frontend -> current primary: your peer rejoined empty; restart
    the replication stream from a full snapshot."""

    shard_id: int
    epoch: int


@dataclass(frozen=True)
class ResyncAck:
    shard_id: int
    epoch: int


@dataclass(frozen=True)
class HandoffBegin:
    """Frontend -> source shard: stream the session state of
    ``moving_ids`` to ``target_shard`` (chunks relayed via the
    frontend — shard hosts have no direct links to each other)."""

    handoff_id: int
    shard_id: int
    target_shard: int
    moving_ids: tuple


@dataclass(frozen=True)
class HandoffBeginAck:
    handoff_id: int
    entries: int


@dataclass(frozen=True)
class HandoffChunk:
    """One sequenced slice of a handoff.  Applied idempotently at the
    target (dedup by ``(handoff_id, seq)``), so retransmission and
    restart-after-loss are safe."""

    handoff_id: int
    source_shard: int
    target_shard: int
    seq: int
    last: bool
    entries: tuple = ()


@dataclass(frozen=True)
class HandoffChunkAck:
    handoff_id: int
    seq: int
    last: bool = False


@dataclass(frozen=True)
class HandoffCommit:
    """Frontend -> source shard, after every chunk of the rebalance is
    acked: drop the moved state (and tell your replica to forget it)."""

    handoff_id: int
    shard_id: int
    moving_ids: tuple


@dataclass(frozen=True)
class HandoffCommitAck:
    handoff_id: int


# Frontend-side processing costs for the shard protocol on brokerd.
FRONTEND_PROCESSING_COSTS = {
    ShardAuthResponse: 0.0001,
    ShardHeartbeatAck: 0.00002,
    ShardScopeAck: 0.00005,
    PromoteAck: 0.0001,
    ResyncAck: 0.00005,
    HandoffBeginAck: 0.00005,
    HandoffChunk: 0.0002,      # relay: queue + forward
    HandoffChunkAck: 0.00005,
    HandoffCommitAck: 0.00005,
}


# -- the shard host ---------------------------------------------------------

class ShardHost(SignalingNode):
    """One network-attached SAP shard (primary or warm replica).

    Embeds a single-shard :class:`BrokerSap` keyed with the broker's own
    key (same trust domain — the fleet *is* the broker), namespaced via
    ``session_prefix`` so two hosts of the same broker can never mint
    colliding session ids, even across a crash/promotion cycle (the
    prefix carries a generation number bumped on every crash).
    """

    processing_costs = {
        ShardAuthRequest: AUTH_REQUEST_PROCESSING,
        ShardScopeNotice: 0.0002,
        ShardHeartbeat: 0.00002,
        ReplicaUpdate: 0.0002,
        PromoteReplica: 0.0001,
        ResyncPeer: 0.0002,
        HandoffBegin: 0.0002,
        HandoffChunk: 0.0002,
        HandoffCommit: 0.0001,
    }
    obs_category = "cloud"
    _SPAN_NAMES = {ShardAuthRequest: "sap.shard_verify"}

    #: replication batch cadence (primary -> replica flush timer).
    replication_interval = 0.05
    #: stop retrying replication this long after the last peer ack
    #: (the peer is presumed dead; the frontend resyncs it on rejoin).
    replication_giveup = 5.0
    #: state entries per handoff chunk.
    handoff_chunk_entries = 8

    auths_served = CounterAttr("shard.auths_served")
    auths_denied = CounterAttr("shard.auths_denied")
    degraded_denials = CounterAttr("shard.degraded_denials")
    cache_serves = CounterAttr("shard.cache_serves")
    repl_batches_sent = CounterAttr("shard.repl_batches_sent")
    repl_ops_applied = CounterAttr("shard.repl_ops_applied")
    repl_giveups = CounterAttr("shard.repl_giveups")
    handoff_chunks_sent = CounterAttr("shard.handoff_chunks_sent")
    handoff_chunk_retx = CounterAttr("shard.handoff_chunk_retx")
    promotions = CounterAttr("shard.promotions")
    crashes = CounterAttr("shard.crashes")
    scope_advances = CounterAttr("shard.scope_advances")
    scope_nacks = CounterAttr("shard.scope_nacks")

    def span_name(self, message: object) -> str:
        name = self._SPAN_NAMES.get(type(message))
        return name if name is not None else super().span_name(message)

    def __init__(self, host: Host, shard_id: int, id_b: str, key,
                 ca_public_key, *, frontend_ip: str, peer_ip: str,
                 session_ttl: float = 3600.0, is_replica: bool = False,
                 name: Optional[str] = None):
        suffix = "r" if is_replica else ""
        super().__init__(host, name or f"shard{shard_id}{suffix}")
        self.shard_id = shard_id
        self.id_b = id_b
        self.key = key
        self.ca_public_key = ca_public_key
        self.session_ttl = session_ttl
        self.frontend_ip = frontend_ip
        self.peer_ip = peer_ip
        self.is_replica = is_replica
        self._base_suffix = suffix
        self.crashed = False
        #: bumped on every crash so a reborn host mints in a fresh
        #: session-id namespace (no collision with its pre-crash grants).
        self.generation = 0
        #: policy hook mirrored from brokerd (reputation checks apply at
        #: the shard, exactly as they did in the in-process broker).
        self.authorize_btelco: Optional[Callable] = None
        self.sap = self._new_sap()
        # -- replication: primary side -----------------------------------
        self.replicating = not is_replica
        self._repl_log: list = []
        self._repl_seq = 0
        self._repl_inflight: Optional[ReplicaUpdate] = None
        self._repl_timer = None
        self._repl_last_ack_at = 0.0
        # -- replication: replica side -----------------------------------
        self._applied_seq = 0
        # -- handoff state ------------------------------------------------
        #: outbound: handoff_id -> {"chunks": [...], "next": int}
        self._handoffs_out: dict[int, dict] = {}
        #: inbound dedup: (handoff_id, seq) pairs already applied.
        self._chunks_applied: set = set()
        self.auths_served = 0
        self.auths_denied = 0
        self.degraded_denials = 0
        self.cache_serves = 0
        self.repl_batches_sent = 0
        self.repl_ops_applied = 0
        self.repl_giveups = 0
        self.handoff_chunks_sent = 0
        self.handoff_chunk_retx = 0
        self.promotions = 0
        self.crashes = 0
        self.scope_advances = 0
        self.scope_nacks = 0
        self.on(ShardAuthRequest, self._handle_auth)
        self.on(ShardScopeNotice, self._handle_scope_notice)
        self.on(ShardHeartbeat, self._handle_heartbeat)
        self.on(ReplicaUpdate, self._handle_replica_update)
        self.on(ReplicaUpdateAck, self._handle_replica_ack)
        self.on(PromoteReplica, self._handle_promote)
        self.on(ResyncPeer, self._handle_resync)
        self.on(HandoffBegin, self._handle_handoff_begin)
        self.on(HandoffChunk, self._handle_handoff_chunk)
        self.on(HandoffChunkAck, self._handle_handoff_chunk_ack)
        self.on(HandoffCommit, self._handle_handoff_commit)

    # -- lifecycle -----------------------------------------------------------
    def _session_prefix(self) -> str:
        gen = f"g{self.generation}" if self.generation else ""
        return f"{self.id_b}/s{self.shard_id}{self._base_suffix}{gen}"

    def _new_sap(self) -> BrokerSap:
        sap = BrokerSap(id_b=self.id_b, key=self.key,
                        ca_public_key=self.ca_public_key,
                        session_ttl=self.session_ttl,
                        metrics=self.metrics, num_shards=1,
                        session_prefix=self._session_prefix())
        sap.authorize_btelco = self._authorize_proxy
        return sap

    def _authorize_proxy(self, id_t: str) -> Optional[str]:
        if self.authorize_btelco is None:
            return None
        return self.authorize_btelco(id_t)

    @property
    def role(self) -> str:
        return "replica" if self.is_replica else "primary"

    def crash(self) -> None:
        """Fail-stop: lose all state, drop every datagram until restart."""
        if self.crashed:
            return
        self.crashed = True
        self.crashes += 1
        self.generation += 1
        for correlation_id in list(self._pending_requests):
            self.cancel_request(correlation_id)
        if self._repl_timer is not None:
            self._repl_timer.cancel()
            self._repl_timer = None
        self._repl_log.clear()
        self._repl_inflight = None
        self._repl_seq = 0
        self._applied_seq = 0
        self._handoffs_out.clear()
        self._chunks_applied.clear()
        self._request_cache.clear()
        self._request_cache_expiry.clear()
        self.sap = self._new_sap()
        # A crashed node no longer streams state anywhere.
        self.replicating = False
        self._update_repl_gauges()

    def restart(self) -> None:
        """Rejoin empty.  The frontend notices the heartbeat acks
        resuming and re-provisions subscribers + orders a resync from
        the current primary; until then this node is a bare standby."""
        if not self.crashed:
            return
        self.crashed = False
        self.is_replica = True   # whoever survived is the primary now

    def _on_datagram(self, src_ip: str, src_port: int, body: object,
                     sent_at: float) -> None:
        if self.crashed:
            return
        super()._on_datagram(src_ip, src_port, body, sent_at)

    def _clear_session_state(self) -> None:
        shard = self.sap.shards[0]
        shard.seen_nonces.clear()
        shard.nonce_expiry.clear()
        shard.grants.clear()
        shard.grant_expiry.clear()
        shard.sessions_by_ue.clear()
        shard.revoked_sessions.clear()
        shard.scope_counters.clear()
        self.sap._response_cache.clear()
        self.sap._response_cache_expiry.clear()

    # -- auth serving --------------------------------------------------------
    def _handle_auth(self, src_ip: str, request: ShardAuthRequest) -> None:
        now = self.sim.now
        sap = self.sap
        sap.begin_window(now)
        digest = sap._request_digest(request.auth_req_t)
        cached = sap.lookup_cached(digest)
        if cached is not None:
            sealed_t, sealed_u, grant = cached
            self.cache_serves += 1
            self.send(src_ip, ShardAuthResponse(
                approved=True, reply_token=request.reply_token,
                auth_resp_t=sealed_t, auth_resp_u=sealed_u, grant=grant,
                cached=True),
                size=sealed_t.wire_size + sealed_u.wire_size + 96)
            return
        if self.is_replica:
            # Unpromoted standby: degraded mode serves only the
            # replicated idempotency cache; fresh auths fail fast with
            # a retryable cause so the UE backs off instead of timing
            # out against a dead primary.
            self.degraded_denials += 1
            self.send(src_ip, ShardAuthResponse(
                approved=False, reply_token=request.reply_token,
                cause=(f"{DenialCause.DEGRADED.value}: shard "
                       f"{self.shard_id} failing over"),
                retryable=True), size=96)
            return
        try:
            prepared = sap.prevalidate(request.auth_req_t, now)
        except SapError as exc:
            self.auths_denied += 1
            self.send(src_ip, ShardAuthResponse(
                approved=False, reply_token=request.reply_token,
                cause=str(exc)), size=96)
            return
        nonce = prepared.auth_vec.nonce
        id_u = prepared.auth_vec.id_u
        try:
            sealed_t, sealed_u, grant = sap.finish_request(prepared, now)
        except SapError as exc:
            # A policy denial still consumed the nonce: replicate the
            # replay-window entry so the denial survives a failover.
            entry = sap.shards[0].seen_nonces.get(nonce)
            if entry is not None:
                self._queue_op(("nonce", nonce, id_u, entry[0]))
            self.auths_denied += 1
            self.send(src_ip, ShardAuthResponse(
                approved=False, reply_token=request.reply_token,
                cause=str(exc)), size=96)
            return
        self.auths_served += 1
        self._queue_op(("nonce", nonce, id_u, now + sap.session_ttl))
        self._queue_op(("grant", grant))
        self._queue_op(("response", digest, (sealed_t, sealed_u, grant),
                        now + min(sap.response_cache_ttl,
                                  sap.session_ttl)))
        self.send(src_ip, ShardAuthResponse(
            approved=True, reply_token=request.reply_token,
            auth_resp_t=sealed_t, auth_resp_u=sealed_u, grant=grant),
            size=sealed_t.wire_size + sealed_u.wire_size + 96)

    def _handle_scope_notice(self, src_ip: str,
                             notice: ShardScopeNotice) -> None:
        """Advance the authoritative scope-attach counter for a grant.
        Brokerd already verified the notifying bTelco's signature; the
        shard only arbitrates the counter and the session's liveness."""
        if self.is_replica:
            # Same degraded posture as fresh auths: the bTelco's
            # reliable notice retries until the failover settles.
            self.send(src_ip, ShardScopeAck(
                session_id=notice.session_id, counter=notice.counter,
                reply_token=notice.reply_token, accepted=False,
                retryable=True,
                cause=(f"{DenialCause.DEGRADED.value}: shard "
                       f"{self.shard_id} failing over")), size=64)
            return
        accepted, retryable, cause = self.sap.note_scope_attach(
            notice.session_id, notice.counter, self.sim.now)
        if accepted:
            self.scope_advances += 1
            self._queue_op(("scope_counter", notice.session_id,
                            notice.counter))
        else:
            self.scope_nacks += 1
        self.send(src_ip, ShardScopeAck(
            session_id=notice.session_id, counter=notice.counter,
            reply_token=notice.reply_token, accepted=accepted,
            retryable=retryable, cause=cause), size=64)

    def _handle_heartbeat(self, src_ip: str, probe: ShardHeartbeat) -> None:
        self.send(src_ip, ShardHeartbeatAck(
            seq=probe.seq, shard_id=self.shard_id, role=self.role),
            size=32)

    # -- replication: primary side ------------------------------------------
    @property
    def repl_backlog_ops(self) -> int:
        """Ops minted but not yet acked by the replica (queued + the
        frozen in-flight batch)."""
        inflight = self._repl_inflight
        return len(self._repl_log) + (len(inflight.ops)
                                      if inflight is not None else 0)

    @property
    def repl_lag_s(self) -> float:
        """Time since the replica last confirmed the stream.  Zero when
        nothing is outstanding — an idle primary is not lagging."""
        if self._repl_inflight is None and not self._repl_log:
            return 0.0
        return self.sim.now - self._repl_last_ack_at

    def _update_repl_gauges(self) -> None:
        self.metrics.gauge("shard.repl_backlog_ops").set(
            self.repl_backlog_ops)
        self.metrics.gauge("shard.repl_lag_s").set(
            round(self.repl_lag_s, 9))

    def _queue_op(self, op: tuple) -> None:
        if not self.replicating or self.crashed:
            return
        self._repl_log.append(op)
        self._update_repl_gauges()
        if self._repl_timer is None:
            self._repl_timer = self.sim.schedule(
                self.replication_interval, self._flush_repl)

    def _flush_repl(self) -> None:
        self._repl_timer = None
        if self.crashed or not self.replicating:
            return
        if self._repl_inflight is not None:
            return   # serialized stream: next batch goes after the ack
        if not self._repl_log:
            return
        self._repl_seq += 1
        update = ReplicaUpdate(shard_id=self.shard_id, seq=self._repl_seq,
                               ops=tuple(self._repl_log))
        self._repl_log.clear()
        self._repl_inflight = update
        self.repl_batches_sent += 1
        self._update_repl_gauges()
        self._transmit_repl()

    def _transmit_repl(self) -> None:
        update = self._repl_inflight
        if update is None or self.crashed or not self.replicating:
            return
        self.send_request(
            self.peer_ip, update, size=64 + 96 * len(update.ops),
            timeout=0.2, max_attempts=4,
            on_give_up=lambda _msg: self._repl_gave_up())

    def _repl_gave_up(self) -> None:
        """The in-flight batch never got acked.  Keep the *same* frozen
        (seq, ops) batch and retransmit it as a fresh request — the seq
        must not be reused for different ops, or a batch that was
        delivered (ack lost) would swallow the replacement."""
        self.repl_giveups += 1
        if self.crashed or not self.replicating:
            return
        if self.sim.now - self._repl_last_ack_at > self.replication_giveup:
            # Peer presumed dead: stop streaming (bounded event queue);
            # the frontend resyncs it from scratch when it rejoins.
            self.replicating = False
            self._repl_inflight = None
            self._repl_log.clear()
            self._update_repl_gauges()
            return
        self._update_repl_gauges()
        self.sim.schedule(self.replication_interval, self._transmit_repl)

    def _handle_replica_ack(self, src_ip: str,
                            ack: ReplicaUpdateAck) -> None:
        inflight = self._repl_inflight
        if inflight is None or ack.seq != inflight.seq:
            return
        self._repl_inflight = None
        self._repl_last_ack_at = self.sim.now
        self._update_repl_gauges()
        if self._repl_log and self._repl_timer is None:
            self._repl_timer = self.sim.schedule(
                self.replication_interval, self._flush_repl)

    def start_resync(self) -> None:
        """Snapshot the full session state and restart the replication
        stream from seq 1 (the peer rejoined empty)."""
        shard = self.sap.shards[0]
        ops: list = [("reset",)]
        for nonce in sorted(shard.seen_nonces):
            window_end, id_u = shard.seen_nonces[nonce]
            ops.append(("nonce", nonce, id_u, window_end))
        for session_id in sorted(shard.grants):
            ops.append(("grant", shard.grants[session_id]))
        for session_id in sorted(shard.revoked_sessions):
            id_u, expires_at = shard.revoked_sessions[session_id]
            ops.append(("tombstone", session_id, id_u, expires_at))
        for session_id in sorted(shard.scope_counters):
            ops.append(("scope_counter", session_id,
                        shard.scope_counters[session_id]))
        for digest in sorted(self.sap._response_cache):
            triple = self.sap._response_cache[digest]
            ops.append(("response", digest, triple,
                        self.sim.now + self.sap.response_cache_ttl))
        self._repl_seq = 0
        self._repl_inflight = None
        self._repl_log = ops
        self._repl_last_ack_at = self.sim.now
        self.replicating = True
        if self._repl_timer is None:
            self._repl_timer = self.sim.schedule(0.0, self._flush_repl)

    def _handle_resync(self, src_ip: str, order: ResyncPeer) -> None:
        self.start_resync()
        self.send(src_ip, ResyncAck(shard_id=self.shard_id,
                                    epoch=order.epoch), size=32)

    # -- replication: replica side ------------------------------------------
    def _handle_replica_update(self, src_ip: str,
                               update: ReplicaUpdate) -> None:
        if update.seq <= self._applied_seq:
            # App-level duplicate (give-up + retransmit under a new
            # correlation id): already applied, just re-ack.
            self.send(src_ip, ReplicaUpdateAck(
                shard_id=update.shard_id, seq=update.seq), size=32)
            return
        if update.seq == self._applied_seq + 1 or update.ops[:1] == (
                ("reset",),):
            for op in update.ops:
                self._apply_op(op)
                self.repl_ops_applied += 1
            self._applied_seq = update.seq
            self.send(src_ip, ReplicaUpdateAck(
                shard_id=update.shard_id, seq=update.seq), size=32)
        # A gap (seq > applied + 1 without a reset) is unsatisfiable
        # with the serialized stream; drop and let the sender retry.

    def _apply_op(self, op: tuple) -> None:
        kind = op[0]
        sap = self.sap
        shard = sap.shards[0]
        if kind == "reset":
            self._clear_session_state()
        elif kind == "nonce":
            _, nonce, id_u, window_end = op
            if nonce not in shard.seen_nonces:
                shard.note_nonce(nonce, id_u, window_end)
        elif kind == "grant":
            grant = op[1]
            if grant.session_id in shard.grants \
                    or grant.session_id in shard.revoked_sessions:
                return
            shard.grants[grant.session_id] = grant
            shard.sessions_by_ue.setdefault(grant.id_u, set()).add(
                grant.session_id)
            heapq.heappush(shard.grant_expiry,
                           (grant.expires_at, grant.session_id))
        elif kind == "response":
            _, digest, triple, expires_at = op
            if digest not in sap._response_cache:
                sap._response_cache[digest] = triple
                heapq.heappush(sap._response_cache_expiry,
                               (expires_at, digest))
        elif kind == "tombstone":
            _, session_id, id_u, expires_at = op
            grant = shard.grants.pop(session_id, None)
            if grant is not None:
                sessions = shard.sessions_by_ue.get(id_u)
                if sessions is not None:
                    sessions.discard(session_id)
                    if not sessions:
                        del shard.sessions_by_ue[id_u]
            shard.revoked_sessions[session_id] = (id_u, expires_at)
            heapq.heappush(shard.grant_expiry, (expires_at, session_id))
        elif kind == "scope_counter":
            _, session_id, counter = op
            # Max-merge: duplicated / reordered batches never regress
            # the replay floor.
            if counter > shard.scope_counters.get(session_id, 0):
                shard.scope_counters[session_id] = counter
        elif kind == "forget":
            self._drop_subscriber_state(op[1])

    def _drop_subscriber_state(self, id_u: str) -> None:
        """Forget one subscriber's session state (post-handoff commit).
        Heap entries left behind go stale and are skipped lazily."""
        sap = self.sap
        shard = sap.shards[0]
        for nonce in [n for n, (_, owner) in shard.seen_nonces.items()
                      if owner == id_u]:
            del shard.seen_nonces[nonce]
        owned = set(shard.sessions_by_ue.pop(id_u, set()))
        for session_id in sorted(owned):
            shard.grants.pop(session_id, None)
        for session_id in [s for s, (owner, _)
                           in shard.revoked_sessions.items()
                           if owner == id_u]:
            owned.add(session_id)
            del shard.revoked_sessions[session_id]
        for session_id in owned:
            shard.scope_counters.pop(session_id, None)
        for digest in [d for d, triple in sap._response_cache.items()
                       if triple[2].id_u == id_u]:
            del sap._response_cache[digest]

    # -- promotion -----------------------------------------------------------
    def _handle_promote(self, src_ip: str, order: PromoteReplica) -> None:
        if self.is_replica:
            self.is_replica = False
            self.promotions += 1
            # The old primary is presumed dead; no peer to stream to
            # until the frontend orders a resync.
            self.replicating = False
        self.send(src_ip, PromoteAck(
            shard_id=self.shard_id, epoch=order.epoch,
            applied_seq=self._applied_seq), size=32)

    # -- handoff: source side ------------------------------------------------
    def _collect_handoff(self, moving: set) -> list:
        """Deterministic snapshot of the session state owned by the
        moving subscribers (sorted iteration -> identical chunking on
        identically-seeded runs)."""
        sap = self.sap
        shard = sap.shards[0]
        entries: list = []
        for nonce in sorted(n for n, (_, owner)
                            in shard.seen_nonces.items()
                            if owner in moving):
            window_end, owner = shard.seen_nonces[nonce]
            entries.append(("nonce", nonce, owner, window_end))
        for session_id in sorted(s for s, g in shard.grants.items()
                                 if g.id_u in moving):
            entries.append(("grant", shard.grants[session_id]))
        for session_id in sorted(s for s, (owner, _)
                                 in shard.revoked_sessions.items()
                                 if owner in moving):
            owner, expires_at = shard.revoked_sessions[session_id]
            entries.append(("tombstone", session_id, owner, expires_at))
        owned = {s for s, g in shard.grants.items() if g.id_u in moving}
        owned |= {s for s, (owner, _) in shard.revoked_sessions.items()
                  if owner in moving}
        for session_id in sorted(owned & shard.scope_counters.keys()):
            entries.append(("scope_counter", session_id,
                            shard.scope_counters[session_id]))
        for digest in sorted(d for d, triple
                             in sap._response_cache.items()
                             if triple[2].id_u in moving):
            entries.append(("response", digest,
                            sap._response_cache[digest],
                            self.sim.now + sap.response_cache_ttl))
        return entries

    def _handle_handoff_begin(self, src_ip: str,
                              begin: HandoffBegin) -> None:
        entries = self._collect_handoff(set(begin.moving_ids))
        per = self.handoff_chunk_entries
        slices = [tuple(entries[i:i + per])
                  for i in range(0, len(entries), per)] or [()]
        chunks = [HandoffChunk(handoff_id=begin.handoff_id,
                               source_shard=self.shard_id,
                               target_shard=begin.target_shard,
                               seq=index + 1,
                               last=(index == len(slices) - 1),
                               entries=chunk_entries)
                  for index, chunk_entries in enumerate(slices)]
        self._handoffs_out[begin.handoff_id] = {
            "chunks": chunks, "next": 0}
        self.send(src_ip, HandoffBeginAck(
            handoff_id=begin.handoff_id, entries=len(entries)), size=32)
        self._send_next_chunk(begin.handoff_id)

    def _send_next_chunk(self, handoff_id: int) -> None:
        state = self._handoffs_out.get(handoff_id)
        if state is None or self.crashed:
            return
        if state["next"] >= len(state["chunks"]):
            return   # all chunks acked; waiting for the commit
        chunk = state["chunks"][state["next"]]
        self.handoff_chunks_sent += 1
        self.send_request(
            self.frontend_ip, chunk, size=64 + 96 * len(chunk.entries),
            timeout=0.3, max_attempts=6,
            on_retransmit=lambda _m, _n: self._note_chunk_retx(),
            on_give_up=lambda _m, h=handoff_id: self._chunk_gave_up(h))

    def _note_chunk_retx(self) -> None:
        self.handoff_chunk_retx += 1

    def _chunk_gave_up(self, handoff_id: int) -> None:
        """The relay (or the target behind it) never acked: resend the
        same chunk as a fresh request — application is idempotent."""
        if handoff_id in self._handoffs_out and not self.crashed:
            self.handoff_chunk_retx += 1
            self.sim.schedule(self.replication_interval,
                              self._send_next_chunk, handoff_id)

    def _handle_handoff_chunk_ack(self, src_ip: str,
                                  ack: HandoffChunkAck) -> None:
        state = self._handoffs_out.get(ack.handoff_id)
        if state is None:
            return
        chunks = state["chunks"]
        if state["next"] < len(chunks) \
                and chunks[state["next"]].seq == ack.seq:
            state["next"] += 1
            self._send_next_chunk(ack.handoff_id)

    # -- handoff: target side ------------------------------------------------
    def _handle_handoff_chunk(self, src_ip: str,
                              chunk: HandoffChunk) -> None:
        key = (chunk.handoff_id, chunk.seq)
        if key not in self._chunks_applied:
            self._chunks_applied.add(key)
            for op in chunk.entries:
                self._apply_op(op)
                # The target replicates inherited state to its own
                # standby like any other mutation.
                self._queue_op(op)
        self.send(src_ip, HandoffChunkAck(
            handoff_id=chunk.handoff_id, seq=chunk.seq,
            last=chunk.last), size=32)

    def _handle_handoff_commit(self, src_ip: str,
                               commit: HandoffCommit) -> None:
        if commit.handoff_id in self._handoffs_out:
            del self._handoffs_out[commit.handoff_id]
            for id_u in sorted(commit.moving_ids):
                self._drop_subscriber_state(id_u)
                self._queue_op(("forget", id_u))
        self.send(src_ip, HandoffCommitAck(
            handoff_id=commit.handoff_id), size=32)

    def stats(self) -> dict:
        stats = {
            "shard_id": self.shard_id,
            "role": self.role,
            "crashed": self.crashed,
            "generation": self.generation,
            "auths_served": self.auths_served,
            "auths_denied": self.auths_denied,
            "degraded_denials": self.degraded_denials,
            "cache_serves": self.cache_serves,
            "repl_batches_sent": self.repl_batches_sent,
            "repl_ops_applied": self.repl_ops_applied,
            "repl_giveups": self.repl_giveups,
            "repl_applied_seq": self._applied_seq,
            "repl_backlog_ops": self.repl_backlog_ops,
            "repl_lag_s": round(self.repl_lag_s, 9),
            "handoff_chunks_sent": self.handoff_chunks_sent,
            "handoff_chunk_retx": self.handoff_chunk_retx,
            "promotions": self.promotions,
            "crashes": self.crashes,
            "scope_advances": self.scope_advances,
            "scope_nacks": self.scope_nacks,
            "sap": self.sap.stats(),
        }
        stats.update(self.reliable_stats())
        return stats


# -- the frontend -----------------------------------------------------------

@dataclass
class _PendingAttach:
    """One attach forwarded to (or parked for) a shard host."""

    src_ip: str
    request: object            # the AGW's BrokerAuthRequest
    deferred: object
    id_u: Optional[str]
    shard_id: int
    attempts: int = 0


@dataclass
class _ShardState:
    """Frontend-side view of one shard's primary/standby pair."""

    shard_id: int
    primary_addr: str
    standby_addr: str
    hosts: dict                # addr -> ShardHost (chaos / provisioning)
    active: bool = False
    status: str = "healthy"    # healthy | degraded | down
    last_ack: dict = field(default_factory=dict)   # addr -> sim time
    alive: dict = field(default_factory=dict)      # addr -> bool
    epoch: int = 0
    failover_started: float = 0.0
    gauge: object = None


class ShardFrontend:
    """Routes, health-checks, fails over, and rebalances shard hosts.

    Lives inside ``brokerd`` (all its I/O goes through the daemon's
    signaling socket); holds the consistent-hash ring, the pending-attach
    table, the failure detector, and the billing/revocation mirror that
    keeps ``revoke_subscriber`` synchronous at the frontend while session
    state lives on the shard hosts.
    """

    heartbeat_interval = 0.2
    detection_timeout = 0.65
    #: reliable-forward knobs for auth requests to shard hosts.
    forward_timeout = 0.25
    forward_attempts = 3
    max_reforwards = 3
    #: stop the heartbeat timer this long after the last auth activity
    #: (restarted lazily) so an idle simulation can quiesce.
    idle_stop = 2.0
    #: hard cap on supervising unhealthy shards with no traffic.
    down_patience = 30.0
    recent_auth_cap = 512

    def __init__(self, brokerd, states: dict, active: list):
        self.brokerd = brokerd
        self.sim = brokerd.sim
        self.metrics = brokerd.metrics
        self.states: dict[int, _ShardState] = states
        self.ring = ShardRouter()
        self.active_ids: list[int] = sorted(active)
        for sid in self.active_ids:
            self.ring.add(sid)
        self.spare_ids: list[int] = sorted(
            sid for sid in states if sid not in set(active))
        now = self.sim.now
        for sid, st in sorted(states.items()):
            st.gauge = self.metrics.gauge("broker.shard_health",
                                          shard=str(sid))
            st.active = sid in set(active)
            st.gauge.set(1 if st.active else 0)
            for addr in (st.primary_addr, st.standby_addr):
                st.last_ack[addr] = now
                st.alive[addr] = True
        self.failovers_total = self.metrics.counter(
            "broker.failovers_total")
        self.handoff_chunks_retried = self.metrics.counter(
            "broker.handoff_chunks_retried")
        self.degraded_denials = self.metrics.counter(
            "broker.degraded_denials")
        self.parked_attaches = self.metrics.counter(
            "broker.parked_attaches")
        self.forward_giveups = self.metrics.counter(
            "broker.forward_giveups")
        self.rebalances_total = self.metrics.counter(
            "broker.rebalances_total")
        self.resyncs_total = self.metrics.counter("broker.resyncs_total")
        self._next_token = 1
        self._next_handoff = 1
        self._pending: dict[int, _PendingAttach] = {}
        #: reply_token -> (src_ip, notice, deferred) scope notices
        #: forwarded to their owning shard and awaiting the verdict.
        self._pending_scope: dict[int, tuple] = {}
        #: session_id -> id_u, for routing scope notices to the shard
        #: that owns the grant (notices carry only the session id).
        self._session_owner: dict[str, str] = {}
        #: id_u -> {session_id: grant} mirror for synchronous revocation.
        self._grants_by_ue: dict[str, dict] = {}
        self._expiry_heap: list = []
        #: recent approved auths (for drills probing replay-across-
        #: failover): dicts with at/auth_req_u/id_t/id_u/shard.
        self.recent_auths: list = []
        self.failover_log: list = []
        self.rebalance_log: list = []
        self._rebalance: Optional[dict] = None
        #: (handoff_id, seq) -> (deferred, source_addr) chunk relays.
        self._relay: dict = {}
        self._hb_seq = 0
        self._hb_running = False
        self._last_activity = now
        self._start_heartbeats()

    def broker_processing_costs(self) -> dict:
        return dict(FRONTEND_PROCESSING_COSTS)

    def _obs_instant(self, name: str, ctx: Optional[tuple] = None,
                     **data) -> None:
        """Point event in the frontend's routing plane.  With ``ctx``
        (a deferred reply's captured ``(trace_id, span_id)``) the event
        lands inside the attach trace it concerns, so a slow broker-ha
        attach decomposes into *which* failover step delayed it."""
        obs = getattr(self.sim, "obs", None)
        if obs is None or not obs.tracing:
            return
        trace_id, parent_id = ctx if ctx is not None else (0, 0)
        obs.tracer.instant(name, "frontend", self.sim.now,
                           trace_id=trace_id, parent_id=parent_id,
                           category="cloud", data=data or None)

    # -- health checking -----------------------------------------------------
    def _start_heartbeats(self) -> None:
        if not self._hb_running:
            self._hb_running = True
            # The detector was off: stale last-ack timestamps are not
            # evidence of death, so every live endpoint gets a full
            # detection window before it can be declared dead.
            now = self.sim.now
            for st in self.states.values():
                for addr, alive in st.alive.items():
                    if alive:
                        st.last_ack[addr] = now
            self.sim.schedule(0.0, self._hb_tick)

    def _hb_tick(self) -> None:
        now = self.sim.now
        self._hb_seq += 1
        for sid in self.active_ids:
            st = self.states[sid]
            for addr in (st.primary_addr, st.standby_addr):
                self.brokerd.send(addr, ShardHeartbeat(seq=self._hb_seq),
                                  size=32)
            self._check_endpoints(st, now)
        idle = now - self._last_activity
        # Keep probing past the activity window only while there is
        # something to supervise (an unhealthy shard that might rejoin,
        # a rebalance in flight) — and even then give up after
        # ``down_patience`` so a permanently-lost host cannot keep the
        # simulation's event queue alive forever.  The next attach (or
        # rebalance call) restarts the detector.
        busy = (idle <= self.idle_stop
                or (idle <= self.down_patience
                    and (self._rebalance is not None
                         or any(self.states[sid].status != "healthy"
                                for sid in self.active_ids))))
        if busy:
            self.sim.schedule(self.heartbeat_interval, self._hb_tick)
        else:
            self._hb_running = False

    def _check_endpoints(self, st: _ShardState, now: float) -> None:
        for addr in (st.primary_addr, st.standby_addr):
            if st.alive.get(addr) \
                    and now - st.last_ack[addr] > self.detection_timeout:
                st.alive[addr] = False
                if addr == st.primary_addr and st.status == "healthy":
                    self._begin_failover(st)

    def _begin_failover(self, st: _ShardState) -> None:
        st.status = "degraded"
        st.epoch += 1
        st.failover_started = self.sim.now
        st.gauge.set(0)
        self.failovers_total.inc()
        self._obs_instant("broker.failover", shard=st.shard_id,
                          epoch=st.epoch, primary=st.primary_addr)
        self._send_promote(st)

    def _send_promote(self, st: _ShardState) -> None:
        epoch = st.epoch
        self.brokerd.send_request(
            st.standby_addr,
            PromoteReplica(shard_id=st.shard_id, epoch=epoch),
            size=32, timeout=0.15, max_attempts=8,
            on_give_up=lambda _m: self._promote_gave_up(st, epoch))

    def _promote_gave_up(self, st: _ShardState, epoch: int) -> None:
        if st.epoch == epoch and st.status == "degraded":
            # Standby unreachable too: total shard loss.  Fresh auths
            # keep fast-failing; a later heartbeat ack re-triggers the
            # promotion.
            st.status = "down"

    def _on_heartbeat_ack(self, src_ip: str,
                          ack: ShardHeartbeatAck) -> None:
        st = self.states.get(ack.shard_id)
        if st is None or src_ip not in st.last_ack:
            return
        st.last_ack[src_ip] = self.sim.now
        if st.alive.get(src_ip):
            return
        st.alive[src_ip] = True
        if src_ip == st.standby_addr:
            if st.status == "healthy":
                self._order_resync(st)
            else:
                # Total-loss recovery: the standby rejoined empty and
                # there is no live peer to resync from, so re-push the
                # provisioning plane (subscriber DB, LI mandates) right
                # away — a promotion can land on it at any moment (an
                # in-flight retransmit while degraded, or the one sent
                # below).  Session state died with the shard, but
                # enrolled subscribers must not be denied as unknown.
                self._reprovision(st.hosts[src_ip])
                if st.status == "down":
                    st.status = "degraded"
                    self._send_promote(st)

    def _on_promote_ack(self, src_ip: str, ack: PromoteAck) -> None:
        st = self.states.get(ack.shard_id)
        if st is None or ack.epoch != st.epoch \
                or st.status not in ("degraded", "down"):
            return
        st.primary_addr, st.standby_addr = \
            st.standby_addr, st.primary_addr
        st.status = "healthy"
        st.gauge.set(1)
        self._obs_instant(
            "broker.promoted", shard=st.shard_id, epoch=st.epoch,
            promotion_ms=round(
                (self.sim.now - st.failover_started) * 1000.0, 3))
        now = self.sim.now
        self.failover_log.append({
            "shard": st.shard_id,
            "detected_at": round(st.failover_started, 6),
            "promoted_at": round(now, 6),
            "promotion_s": round(now - st.failover_started, 6),
        })
        if st.alive.get(st.standby_addr):
            # The old primary restarted before promotion finished: it
            # rejoined empty, so resync it from the new primary now.
            self._order_resync(st)
        if self._rebalance is not None:
            self._restart_handoffs_from(st.shard_id)

    def _order_resync(self, st: _ShardState) -> None:
        self.resyncs_total.inc()
        self._reprovision(st.hosts[st.standby_addr])
        self.brokerd.send_request(
            st.primary_addr,
            ResyncPeer(shard_id=st.shard_id, epoch=st.epoch),
            size=32, timeout=0.3, max_attempts=6)

    def _reprovision(self, host: ShardHost) -> None:
        """Re-push the provisioning plane (subscriber DB, LI mandates)
        into a host that rejoined empty."""
        for subscriber in self.brokerd.sap.subscribers.values():
            host.sap.enroll(subscriber)
        host.sap.li_targets = self.brokerd.sap.li_targets
        host.sap.btelco_directory = self.brokerd.sap.btelco_directory

    # -- attach routing ------------------------------------------------------
    def notify_activity(self) -> None:
        self._last_activity = self.sim.now
        self._start_heartbeats()

    def handle_auth(self, src_ip: str, request) -> None:
        """Entry point from ``Brokerd._handle_auth_request``."""
        self.notify_activity()
        self._sweep_expiries(self.sim.now)
        deferred = self.brokerd.defer_reply()
        scale = self.brokerd._cost_scale()
        self.brokerd.charge(AUTHVEC_DECRYPT_COST * scale)
        id_u: Optional[str] = None
        try:
            auth_vec = AuthVec.from_bytes(self.brokerd.key.decrypt(
                request.auth_req_t.auth_req_u.auth_vec_encrypted))
            id_u = auth_vec.id_u
        except (CryptoError, MessageError):
            pass   # undecryptable: any shard will deny it properly
        if self._rebalance is not None and id_u is not None \
                and id_u in self._rebalance["moving"]:
            # Mid-handoff: park rather than risk serving from a shard
            # that no longer (or does not yet) own the state.
            self.parked_attaches.inc()
            self._rebalance["parked"].append(
                (src_ip, request, deferred, id_u))
            return
        shard_id = self.ring.shard_for(id_u) if id_u is not None \
            else self.active_ids[0]
        token = self._next_token
        self._next_token += 1
        self._pending[token] = _PendingAttach(
            src_ip=src_ip, request=request, deferred=deferred,
            id_u=id_u, shard_id=shard_id)
        self._transmit_forward(token)

    def _transmit_forward(self, token: int) -> None:
        record = self._pending.get(token)
        if record is None:
            return
        st = self.states[record.shard_id]
        if st.status == "down":
            self._pending.pop(token, None)
            self._deny_degraded(record)
            return
        if st.status == "degraded":
            # Serve retransmit-replays from the still-syncing replica;
            # fresh auths will fast-fail there with a retryable cause.
            addr, replay_only = st.standby_addr, True
            self._obs_instant(
                "broker.failover_reroute",
                ctx=getattr(record.deferred, "obs_ctx", None),
                shard=record.shard_id, standby=addr,
                attempt=record.attempts)
        else:
            addr, replay_only = st.primary_addr, False
        forward = ShardAuthRequest(
            auth_req_t=record.request.auth_req_t,
            reply_token=token, replay_only=replay_only)
        self.brokerd.send_request(
            addr, forward, size=record.request.auth_req_t.wire_size + 16,
            timeout=self.forward_timeout,
            max_attempts=self.forward_attempts,
            on_give_up=lambda _m, t=token: self._forward_gave_up(t))

    def _forward_gave_up(self, token: int) -> None:
        record = self._pending.get(token)
        if record is None:
            return
        self.forward_giveups.inc()
        record.attempts += 1
        if record.attempts <= self.max_reforwards:
            # Re-resolve the shard's current primary (a promotion may
            # have happened while we were retransmitting) and try again.
            self._transmit_forward(token)
        else:
            self._pending.pop(token, None)
            self._deny_degraded(record)

    def _deny_degraded(self, record: _PendingAttach) -> None:
        self.brokerd.requests_denied += 1
        self.degraded_denials.inc()
        self._obs_instant(
            "attach.degraded_denial",
            ctx=getattr(record.deferred, "obs_ctx", None),
            shard=record.shard_id, attempts=record.attempts)
        response = BrokerAuthResponse(
            approved=False,
            cause=(f"{DenialCause.DEGRADED.value}: shard "
                   f"{record.shard_id} unavailable"),
            retryable=True,
            reply_token=record.request.reply_token)
        record.deferred.send(record.src_ip, response, size=96)
        record.deferred.complete()

    def _on_shard_auth_response(self, src_ip: str,
                                resp: ShardAuthResponse) -> None:
        record = self._pending.pop(resp.reply_token, None)
        if record is None:
            return   # late duplicate after give-up / failover re-route
        if resp.approved:
            self._complete_approved(record, resp)
            return
        self.brokerd.requests_denied += 1
        if resp.cause.startswith(DenialCause.DEGRADED.value):
            self.degraded_denials.inc()
        response = BrokerAuthResponse(
            approved=False, cause=resp.cause, retryable=resp.retryable,
            reply_token=record.request.reply_token)
        record.deferred.send(record.src_ip, response, size=96)
        record.deferred.complete()

    def _complete_approved(self, record: _PendingAttach,
                           resp: ShardAuthResponse) -> None:
        brokerd = self.brokerd
        grant = resp.grant
        brokerd.requests_approved += 1
        brokerd._session_btelco[grant.session_id] = record.src_ip
        brokerd._btelco_keys[record.src_ip] = \
            record.request.auth_req_t.t_certificate.public_key
        subscriber = brokerd.sap.subscriber(grant.id_u)
        if grant.session_id not in brokerd.billing.sessions \
                and subscriber is not None:
            brokerd.billing.open_session(
                grant, ue_public_key=subscriber.public_key,
                btelco_public_key=brokerd._btelco_keys[record.src_ip])
        self._grants_by_ue.setdefault(grant.id_u, {})[grant.session_id] \
            = grant
        self._session_owner[grant.session_id] = grant.id_u
        heapq.heappush(self._expiry_heap,
                       (grant.expires_at, grant.session_id, grant.id_u))
        if not resp.cached:
            self.recent_auths.append({
                "at": self.sim.now,
                "auth_req_u": record.request.auth_req_t.auth_req_u,
                "id_t": record.request.auth_req_t.id_t,
                "id_u": grant.id_u,
                "shard_id": record.shard_id,
            })
            if len(self.recent_auths) > self.recent_auth_cap:
                del self.recent_auths[:len(self.recent_auths)
                                      - self.recent_auth_cap]
        response = BrokerAuthResponse(
            approved=True, auth_resp_t=resp.auth_resp_t,
            auth_resp_u=resp.auth_resp_u,
            reply_token=record.request.reply_token)
        record.deferred.send(
            record.src_ip, response,
            size=resp.auth_resp_t.wire_size
            + resp.auth_resp_u.wire_size + 64)
        record.deferred.complete()

    # -- scope notices -------------------------------------------------------
    def handle_scope_notice(self, src_ip: str, notice) -> None:
        """Entry point from ``Brokerd._handle_scope_notice`` (signature
        already verified there): route the counter advance to the shard
        owning the grant and ack the bTelco with its verdict."""
        self.notify_activity()
        deferred = self.brokerd.defer_reply()
        id_u = self._session_owner.get(notice.session_id)
        if id_u is None:
            # No live grant behind this session id anywhere: terminal,
            # the bTelco must tear the scope-local session down.
            self.brokerd._finish_scope_notice(
                src_ip, notice, False, False,
                DenialCause.UNKNOWN_SUBSCRIBER.value, deferred=deferred)
            return
        if self._rebalance is not None \
                and id_u in self._rebalance["moving"]:
            # Mid-handoff: neither shard safely owns the counter yet.
            self.brokerd._finish_scope_notice(
                src_ip, notice, False, True,
                f"{DenialCause.DEGRADED.value}: rebalance in flight",
                deferred=deferred)
            return
        shard_id = self.ring.shard_for(id_u)
        st = self.states[shard_id]
        if st.status != "healthy":
            # The bTelco's reliable notice retries once the failover
            # settles; the replicated counter floor survives it.
            self.degraded_denials.inc()
            self.brokerd._finish_scope_notice(
                src_ip, notice, False, True,
                f"{DenialCause.DEGRADED.value}: shard {shard_id} "
                f"unavailable", deferred=deferred)
            return
        token = self._next_token
        self._next_token += 1
        self._pending_scope[token] = (src_ip, notice, deferred)
        self.brokerd.send_request(
            st.primary_addr,
            ShardScopeNotice(session_id=notice.session_id,
                             counter=notice.counter, reply_token=token),
            size=96, timeout=self.forward_timeout,
            max_attempts=self.forward_attempts,
            on_give_up=lambda _m, t=token: self._scope_forward_gave_up(t))

    def _scope_forward_gave_up(self, token: int) -> None:
        pending = self._pending_scope.pop(token, None)
        if pending is None:
            return
        src_ip, notice, deferred = pending
        self.forward_giveups.inc()
        self.brokerd._finish_scope_notice(
            src_ip, notice, False, True,
            f"{DenialCause.DEGRADED.value}: scope notice forward "
            f"timed out", deferred=deferred)

    def _on_shard_scope_ack(self, src_ip: str,
                            ack: ShardScopeAck) -> None:
        pending = self._pending_scope.pop(ack.reply_token, None)
        if pending is None:
            return   # late duplicate after give-up
        orig_src_ip, notice, deferred = pending
        self.brokerd._finish_scope_notice(
            orig_src_ip, notice, ack.accepted, ack.retryable, ack.cause,
            deferred=deferred)

    def _sweep_expiries(self, now: float) -> None:
        while self._expiry_heap and self._expiry_heap[0][0] <= now:
            _, session_id, id_u = heapq.heappop(self._expiry_heap)
            grants = self._grants_by_ue.get(id_u)
            if grants is None or session_id not in grants:
                continue   # revoked earlier; nothing left to close
            del grants[session_id]
            if not grants:
                del self._grants_by_ue[id_u]
            self._session_owner.pop(session_id, None)
            self.brokerd._session_btelco.pop(session_id, None)
            self.brokerd.billing.close_session(session_id)

    # -- provisioning plane --------------------------------------------------
    def enroll(self, subscriber) -> None:
        """Provision a subscriber on every host (strongly-consistent
        subscriber DB: the *same* object is shared everywhere)."""
        for _, st in sorted(self.states.items()):
            for addr in (st.primary_addr, st.standby_addr):
                st.hosts[addr].sap.enroll(subscriber)

    def revoke(self, id_u: str) -> list:
        """Suspend ``id_u`` everywhere and return its live grants (from
        the frontend mirror) for the daemon's revocation push."""
        self.brokerd.sap.revoke(id_u)   # directory: suspends the shared
        # subscriber object, so every host sees it instantly.
        for _, st in sorted(self.states.items()):
            for addr in (st.primary_addr, st.standby_addr):
                st.hosts[addr].sap.revoke(id_u)
        return list(self._grants_by_ue.pop(id_u, {}).values())

    # -- rebalancing ---------------------------------------------------------
    def set_shard_count(self, count: int) -> None:
        if count < 1:
            raise ValueError("need at least one shard")
        if count > len(self.states):
            raise ValueError(
                f"only {len(self.states)} shard hosts deployed")
        if count == len(self.active_ids):
            return
        if count > len(self.active_ids):
            joiners = self.spare_ids[:count - len(self.active_ids)]
            new_active = sorted(self.active_ids + joiners)
        else:
            new_active = sorted(self.active_ids)[:count]
        self._rebalance_to(new_active)

    def add_shard(self) -> int:
        if not self.spare_ids:
            raise ValueError("no spare shard hosts left")
        joiner = self.spare_ids[0]
        self._rebalance_to(sorted(self.active_ids + [joiner]))
        return joiner

    def remove_shard(self, shard_id: int) -> None:
        if shard_id not in self.active_ids:
            raise ValueError(f"shard {shard_id} is not active")
        if len(self.active_ids) == 1:
            raise ValueError("cannot remove the last shard")
        self._rebalance_to(
            [sid for sid in self.active_ids if sid != shard_id])

    def _rebalance_to(self, new_active: list) -> None:
        if self._rebalance is not None:
            raise RuntimeError("rebalance already in flight")
        self.notify_activity()
        new_ring = ShardRouter()
        for sid in new_active:
            new_ring.add(sid)
        moves: dict = {}
        for id_u in sorted(self.brokerd.sap.subscribers):
            old_sid = self.ring.shard_for(id_u)
            new_sid = new_ring.shard_for(id_u)
            if old_sid != new_sid and old_sid in self.active_ids:
                moves.setdefault((old_sid, new_sid), []).append(id_u)
        joiners = [sid for sid in new_active
                   if sid not in self.active_ids]
        leavers = [sid for sid in self.active_ids
                   if sid not in new_active]
        now = self.sim.now
        for sid in joiners:
            st = self.states[sid]
            st.active = True
            st.gauge.set(1)
            for addr in (st.primary_addr, st.standby_addr):
                st.last_ack[addr] = now
                st.alive[addr] = True
        self.active_ids = sorted(set(self.active_ids) | set(joiners))
        self.rebalances_total.inc()
        self._rebalance = {
            "new_ring": new_ring,
            "new_active": sorted(new_active),
            "leavers": leavers,
            "moving": {id_u for ids in moves.values() for id_u in ids},
            "pairs": {},
            "parked": [],
            "started": now,
        }
        if not moves:
            self._commit_rebalance()
            return
        for (src, tgt), ids in sorted(moves.items()):
            handoff_id = self._next_handoff
            self._next_handoff += 1
            self._rebalance["pairs"][handoff_id] = {
                "src": src, "tgt": tgt, "ids": sorted(ids),
                "done": False, "begins": 0}
            self._send_handoff_begin(handoff_id)

    def _send_handoff_begin(self, handoff_id: int) -> None:
        rb = self._rebalance
        if rb is None or handoff_id not in rb["pairs"]:
            return
        pair = rb["pairs"][handoff_id]
        pair["begins"] += 1
        if pair["begins"] > 20:
            return   # bound the event queue; drill gates will flag it
        st = self.states[pair["src"]]
        begin = HandoffBegin(
            handoff_id=handoff_id, shard_id=pair["src"],
            target_shard=pair["tgt"], moving_ids=tuple(pair["ids"]))
        self.brokerd.send_request(
            st.primary_addr, begin, size=48 + 8 * len(pair["ids"]),
            timeout=0.3, max_attempts=6,
            on_give_up=lambda _m, h=handoff_id:
                self._send_handoff_begin(h))

    def _restart_handoffs_from(self, shard_id: int) -> None:
        """After a source shard failed over mid-handoff, restart its
        incomplete handoffs under fresh ids against the new primary
        (chunk application at the target is idempotent)."""
        rb = self._rebalance
        if rb is None:
            return
        for handoff_id in sorted(list(rb["pairs"])):
            pair = rb["pairs"][handoff_id]
            if pair["src"] != shard_id or pair["done"]:
                continue
            del rb["pairs"][handoff_id]
            new_id = self._next_handoff
            self._next_handoff += 1
            rb["pairs"][new_id] = dict(pair, begins=0)
            self._send_handoff_begin(new_id)

    # Chunk relay: the source host talks to the frontend (its only
    # route), which forwards to the target shard's current primary.
    def _on_handoff_chunk(self, src_ip: str, chunk: HandoffChunk) -> None:
        self.notify_activity()
        deferred = self.brokerd.defer_reply()
        key = (chunk.handoff_id, chunk.seq)
        self._relay[key] = (deferred, src_ip)
        addr = self.states[chunk.target_shard].primary_addr
        self.brokerd.send_request(
            addr, chunk, size=64 + 96 * len(chunk.entries),
            timeout=self.forward_timeout, max_attempts=4,
            on_give_up=lambda _m, k=key: self._relay.pop(k, None))

    def _on_handoff_chunk_ack(self, src_ip: str,
                              ack: HandoffChunkAck) -> None:
        entry = self._relay.pop((ack.handoff_id, ack.seq), None)
        if entry is not None:
            deferred, source_addr = entry
            deferred.send(source_addr, ack, size=32)
            deferred.complete()
        if ack.last:
            self._pair_transferred(ack.handoff_id)

    def _pair_transferred(self, handoff_id: int) -> None:
        rb = self._rebalance
        if rb is None or handoff_id not in rb["pairs"]:
            return
        rb["pairs"][handoff_id]["done"] = True
        if all(pair["done"] for pair in rb["pairs"].values()):
            self._commit_rebalance()

    def _commit_rebalance(self) -> None:
        rb = self._rebalance
        self.ring = rb["new_ring"]
        for sid in rb["leavers"]:
            st = self.states[sid]
            st.active = False
            st.gauge.set(0)
        self.active_ids = rb["new_active"]
        self.spare_ids = sorted(sid for sid in self.states
                                if sid not in set(self.active_ids))
        for handoff_id, pair in sorted(rb["pairs"].items()):
            st = self.states[pair["src"]]
            commit = HandoffCommit(
                handoff_id=handoff_id, shard_id=pair["src"],
                moving_ids=tuple(pair["ids"]))
            self.brokerd.send_request(
                st.primary_addr, commit, size=48 + 8 * len(pair["ids"]),
                timeout=0.3, max_attempts=6)
        parked = rb["parked"]
        self._rebalance = None
        self.rebalance_log.append({
            "at": round(self.sim.now, 6),
            "duration_s": round(self.sim.now - rb["started"], 6),
            "moved": len(rb["moving"]),
            "parked": len(parked),
            "active": list(self.active_ids),
        })
        for src_ip, request, deferred, id_u in parked:
            shard_id = self.ring.shard_for(id_u)
            token = self._next_token
            self._next_token += 1
            self._pending[token] = _PendingAttach(
                src_ip=src_ip, request=request, deferred=deferred,
                id_u=id_u, shard_id=shard_id)
            self._transmit_forward(token)

    def note_retransmitted(self, message) -> None:
        """Fed from ``Brokerd.note_retransmitted_request``."""
        if isinstance(message, HandoffChunk):
            self.handoff_chunks_retried.inc()

    def stats(self) -> dict:
        return {
            "active_shards": list(self.active_ids),
            "spare_shards": list(self.spare_ids),
            "shard_status": {
                str(sid): self.states[sid].status
                for sid in sorted(self.states)},
            "failovers_total": self.failovers_total.value,
            "failover_log": list(self.failover_log),
            "rebalances_total": self.rebalances_total.value,
            "rebalance_log": list(self.rebalance_log),
            "resyncs_total": self.resyncs_total.value,
            "degraded_denials": self.degraded_denials.value,
            "parked_attaches": self.parked_attaches.value,
            "forward_giveups": self.forward_giveups.value,
            "handoff_chunks_retried": self.handoff_chunks_retried.value,
            "pending_forwards": len(self._pending),
            "hosts": {
                f"{sid}:{'primary' if addr == st.primary_addr else 'standby'}":
                    st.hosts[addr].stats()
                for sid, st in sorted(self.states.items())
                for addr in (st.primary_addr, st.standby_addr)},
        }


# -- deployment -------------------------------------------------------------

def deploy_shard_hosts(network, *, num_shards: int = 2, spares: int = 0,
                       heartbeat_interval: float = 0.2,
                       detection_timeout: float = 0.65,
                       replication_interval: float = 0.05,
                       link_delay: float = 0.002,
                       bandwidth_bps: float = 1e9) -> ShardFrontend:
    """Turn ``network.brokerd`` into a distributed broker.

    For every shard (plus ``spares`` warm spares for scale-out drills)
    this builds a primary host, a replica host, links to the broker host
    and between the pair, provisions the existing subscriber DB onto
    both, and installs a :class:`ShardFrontend` into the daemon.
    """
    brokerd = network.brokerd
    sim = network.sim
    broker_host = network.broker_host
    states: dict[int, _ShardState] = {}
    shard_hosts: dict[str, ShardHost] = {}
    for sid in range(num_shards + spares):
        primary_host = Host(sim, f"shard{sid}-host",
                            address=f"52.21.{sid}.1")
        replica_host = Host(sim, f"shard{sid}r-host",
                            address=f"52.22.{sid}.1")
        primary = ShardHost(
            primary_host, sid, brokerd.id_b, brokerd.key,
            brokerd.sap.ca_public_key,
            frontend_ip=broker_host.address,
            peer_ip=replica_host.address,
            session_ttl=brokerd.sap.session_ttl)
        replica = ShardHost(
            replica_host, sid, brokerd.id_b, brokerd.key,
            brokerd.sap.ca_public_key,
            frontend_ip=broker_host.address,
            peer_ip=primary_host.address,
            session_ttl=brokerd.sap.session_ttl, is_replica=True)
        for host in (primary, replica):
            host.replication_interval = replication_interval
            host.authorize_btelco = brokerd._btelco_policy
            host.sap.li_targets = brokerd.sap.li_targets
            # Shared bTelco directory (same trust domain as the
            # subscriber DB): scope tokens minted at any shard can
            # seal session keys for every registered site.
            host.sap.btelco_directory = brokerd.sap.btelco_directory
            for subscriber in brokerd.sap.subscribers.values():
                host.sap.enroll(subscriber)
        uplink = Link(sim, f"shard{sid}-broker", broker_host,
                      primary_host, bandwidth_bps, link_delay)
        uplink_r = Link(sim, f"shard{sid}r-broker", broker_host,
                        replica_host, bandwidth_bps, link_delay)
        repl_link = Link(sim, f"shard{sid}-repl", primary_host,
                         replica_host, bandwidth_bps, link_delay)
        broker_host.add_route(
            primary_host.address.rsplit(".", 1)[0], uplink)
        primary_host.add_route(
            broker_host.address.rsplit(".", 1)[0], uplink)
        broker_host.add_route(
            replica_host.address.rsplit(".", 1)[0], uplink_r)
        replica_host.add_route(
            broker_host.address.rsplit(".", 1)[0], uplink_r)
        primary_host.add_route(
            replica_host.address.rsplit(".", 1)[0], repl_link)
        replica_host.add_route(
            primary_host.address.rsplit(".", 1)[0], repl_link)
        for link in (uplink, uplink_r, repl_link):
            network.links[link.name] = link
        states[sid] = _ShardState(
            shard_id=sid,
            primary_addr=primary_host.address,
            standby_addr=replica_host.address,
            hosts={primary_host.address: primary,
                   replica_host.address: replica})
        shard_hosts[primary.name] = primary
        shard_hosts[replica.name] = replica
    frontend = ShardFrontend(
        brokerd, states, active=list(range(num_shards)))
    frontend.heartbeat_interval = heartbeat_interval
    frontend.detection_timeout = detection_timeout
    brokerd.configure_distributed(frontend)
    chaos_nodes = getattr(network, "chaos_nodes", None) or {}
    chaos_nodes.update(shard_hosts)
    network.chaos_nodes = chaos_nodes
    network.shard_hosts = shard_hosts
    network.frontend = frontend
    return frontend
