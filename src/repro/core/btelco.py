"""The bTelco: a CellBricks-enabled access gateway.

:class:`CellBricksAgw` subclasses the baseline :class:`repro.lte.Agw`
exactly the way the prototype extends Magma's AGW (§5): new NAS messages
and handlers for SAP, while the SMC / session-establishment machinery is
inherited unmodified.  Key behavioural differences:

* authentication goes UE -> bTelco -> broker -> bTelco -> UE in **one**
  round-trip to the cloud (the baseline pays two: AIR + ULR);
* there is **no** subscriber database lookup — the bTelco serves users it
  has never seen, holding only the broker-signed authorization;
* the UE is identified by an opaque per-session pseudonym, never an IMSI;
* QoS parameters arrive from the broker (qosInfo) instead of a local
  subscription profile.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.crypto import Certificate, PrivateKey, PublicKey
from repro.lte import s6a
from repro.lte.agw import Agw, UeContext
from repro.lte.signaling import CounterAttr
from repro.lte.nas import (
    NasMessage,
    SapAttachChallenge,
    SapAttachReject,
    SapAttachRequest,
    SapScopedAttachRequest,
)
from repro.lte.security import SecurityContext
from repro.net import Host

from .billing import Meter, REPORTER_BTELCO
from .intercept import LawfulInterceptFunction
from .messages import (
    BrokerAuthRequest,
    BrokerAuthResponse,
    DenialCause,
    ReportAck,
    RevocationAck,
    ScopeAttachAck,
    ScopeAttachNotice,
    SessionRevocation,
    SessionRevocationBatch,
)
from .qos import QosCapabilities
from .sap import AuthorizedSession, BtelcoSap, BtelcoSapConfig, SapError

# CellBricks AGW processing costs (seconds).  The deltas vs the baseline
# table come from SAP's crypto (sign authReqT; verify + decrypt authRespT)
# replacing vector handling + the ULR leg; the sums reproduce Fig 7's
# "AGW + Brokerd" bars.
CELLBRICKS_COSTS = {
    "sap_attach_request": 0.0053,
    "broker_auth_response": 0.0055,
    "smc_complete": 0.0046,     # includes immediate session establishment
    "attach_complete": 0.0015,
    # Scoped re-attach (§4.2): verify the broker signature on the token,
    # decrypt our ess entry, check one MAC — no authReqT signing and no
    # broker round-trip on the critical path.
    "scoped_attach_request": 0.0018,
}


class CellBricksAgw(Agw):
    """A bTelco site: AGW with SAP in place of EPS-AKA + S6a."""

    expired_sessions = CounterAttr("btelco.expired_sessions")
    revoked_sessions = CounterAttr("btelco.revoked_sessions")
    revocation_dups = CounterAttr("btelco.revocation_dups")
    revocation_acks_sent = CounterAttr("btelco.revocation_acks_sent")
    dup_attach_requests = CounterAttr("btelco.dup_attach_requests")
    broker_timeouts = CounterAttr("btelco.broker_timeouts")
    reports_retried = CounterAttr("btelco.reports_retried")
    reports_lost = CounterAttr("btelco.reports_lost")
    reports_acked = CounterAttr("btelco.reports_acked")
    scoped_attaches = CounterAttr("btelco.scoped_attaches")
    scoped_rejects = CounterAttr("btelco.scoped_rejects")
    scope_replays_denied = CounterAttr("btelco.scope_replays_denied")
    scope_notices_sent = CounterAttr("btelco.scope_notices_sent")
    scope_notice_nacks = CounterAttr("btelco.scope_notice_nacks")

    def nas_span_name(self, nas: NasMessage) -> str:
        if isinstance(nas, SapAttachRequest):
            return "sap.btelco_sign"
        if isinstance(nas, SapScopedAttachRequest):
            return "sap.btelco_scope_validate"
        return super().nas_span_name(nas)

    def span_name(self, message: object) -> str:
        if isinstance(message, BrokerAuthResponse):
            return "sap.btelco_verify"
        if isinstance(message, SessionRevocationBatch):
            return "revocation.btelco_batch"
        if isinstance(message, SessionRevocation):
            return "revocation.btelco_apply"
        if isinstance(message, ReportAck):
            return "billing.report_ack"
        return super().span_name(message)

    def __init__(self, host: Host, broker_ip: str, id_t: str,
                 key: PrivateKey, certificate: Certificate,
                 ca_public_key: PublicKey,
                 qos_capabilities: Optional[QosCapabilities] = None,
                 name: str = "btelco-agw",
                 ue_pool_prefix: str = "10.128.0"):
        # No SubscriberDB: the broker replaces it (hence the empty ip).
        super().__init__(host, subscriber_db_ip="0.0.0.0", name=name,
                         ue_pool_prefix=ue_pool_prefix)
        self.broker_ip = broker_ip
        #: multi-tenancy: requests route to the broker the UE names in
        #: authReqU.idB ("a single bTelco cell site can support multiple
        #: brokers", §3.1).  ``broker_ip`` is the single-broker fallback.
        self.broker_endpoints: dict[str, str] = {}
        self.sap = BtelcoSap(BtelcoSapConfig(
            id_t=id_t, key=key, certificate=certificate,
            qos_capabilities=qos_capabilities or QosCapabilities(),
            ca_public_key=ca_public_key))
        self.id_t = id_t
        self.key = key
        self.broker_public_keys: dict[str, PublicKey] = {}
        self.sessions: dict[str, AuthorizedSession] = {}
        self.session_brokers: dict[str, str] = {}   # session -> id_b
        self.meters: dict[str, Meter] = {}
        self.li = LawfulInterceptFunction(operator=id_t)
        self._pending: dict[int, UeContext] = {}  # reply_token -> context
        self._tokens = itertools.count(1)
        self.expired_sessions = 0
        self.revoked_sessions = 0
        self.revocation_dups = 0
        self.revocation_acks_sent = 0
        self.dup_attach_requests = 0
        self.broker_timeouts = 0
        self.reports_retried = 0
        self.reports_lost = 0
        self.reports_acked = 0
        self.scoped_attaches = 0
        self.scoped_rejects = 0
        self.scope_replays_denied = 0
        self.scope_notices_sent = 0
        self.scope_notice_nacks = 0
        #: seconds of service rendered by scoped sessions the broker
        #: later vetoed (fleet-drive gate: must stay 0.0).
        self.scope_unauthorized_session_s = 0.0
        #: per-grant highest attach counter seen at *this* site — the
        #: local replay floor for mobility-scoped re-attaches (the broker
        #: holds the authoritative cross-site floor).
        self._scope_counters: dict[str, int] = {}
        #: session_id -> (token, counter, attempt) notices still awaiting
        #: a broker verdict (retryable nacks re-notify with backoff).
        self._scope_notice_pending: dict[str, tuple] = {}
        self.sap_costs = dict(CELLBRICKS_COSTS)
        self.on(BrokerAuthResponse, self._handle_broker_response)
        self.on(ScopeAttachAck, self._handle_scope_ack)
        self.on(SessionRevocation, self._handle_session_revocation)
        self.on(SessionRevocationBatch, self._handle_revocation_batch)
        self.on(ReportAck, self._handle_report_ack)

    # -- cost model overrides -------------------------------------------------
    def nas_processing_cost(self, nas: NasMessage) -> float:
        if isinstance(nas, SapAttachRequest):
            return self.sap_costs["sap_attach_request"]
        if isinstance(nas, SapScopedAttachRequest):
            return self.sap_costs["scoped_attach_request"]
        return super().nas_processing_cost(nas)

    def processing_cost(self, message: object) -> float:
        if isinstance(message, BrokerAuthResponse):
            return self.sap_costs["broker_auth_response"]
        from repro.lte.enodeb import S1UplinkNas
        from repro.lte.nas import AttachComplete, SecurityModeComplete
        if isinstance(message, S1UplinkNas):
            if isinstance(message.nas, SecurityModeComplete):
                return self.sap_costs["smc_complete"]
            if isinstance(message.nas, AttachComplete):
                return self.sap_costs["attach_complete"]
        return super().processing_cost(message)

    # -- broker trust bootstrap ---------------------------------------------------
    def trust_broker(self, id_b: str, public_key: PublicKey,
                     endpoint_ip: Optional[str] = None) -> None:
        """Record a broker's public key (normally learned from its
        CA-signed certificate on first contact) and, optionally, the
        address its brokerd answers on."""
        self.broker_public_keys[id_b] = public_key
        if endpoint_ip is not None:
            self.broker_endpoints[id_b] = endpoint_ip

    def broker_endpoint(self, id_b: str) -> str:
        """Where to send SAP requests for broker ``id_b``."""
        return self.broker_endpoints.get(id_b, self.broker_ip)

    # -- SAP flow --------------------------------------------------------------------
    def handle_extension_nas(self, context: UeContext,
                             nas: NasMessage) -> None:
        if isinstance(nas, SapAttachRequest):
            self._on_sap_attach_request(context, nas)
        elif isinstance(nas, SapScopedAttachRequest):
            self._on_sap_scoped_attach(context, nas)

    def _on_sap_attach_request(self, context: UeContext,
                               request: SapAttachRequest) -> None:
        key = request.auth_req_u.auth_vec_encrypted
        if context.sap_request_key == key:
            # A retransmission of the attempt we are already serving: the
            # enb_ue_id is stable per UE, so the context tells us exactly
            # which leg to replay (idempotent — nothing re-executes).
            self.dup_attach_requests += 1
            if context.state == "WAIT_BROKER":
                return  # broker leg in flight and retransmitting itself
            if context.state == "WAIT_SMC_COMPLETE" \
                    and context.sap_challenge is not None:
                # The challenge and/or SMC downlink was lost: replay both.
                self.downlink(context, context.sap_challenge)
                self.send_smc(context)
            return
        # Fresh attempt (new nonce): drop any stale broker leg first.
        if context.broker_token is not None:
            self._pending.pop(context.broker_token, None)
            self.cancel_request(context.broker_corr_id)
            context.broker_token = None
        context.sap_request_key = key
        context.sap_challenge = None
        context.state = "WAIT_BROKER"
        context.attach_started_at = self.sim.now
        context.broker_id = request.auth_req_u.id_b
        auth_req_t = self.sap.augment_request(request.auth_req_u)
        token = next(self._tokens)
        self._pending[token] = context
        context.broker_token = token
        wire = BrokerAuthRequest(auth_req_t=auth_req_t, reply_token=token)
        # Reliable leg: the broker round-trip crosses the backhaul/cloud
        # path, so it is retransmitted with backoff; if the broker stays
        # unreachable past the budget the UE gets a clean reject.
        context.broker_corr_id = self.send_request(
            self.broker_endpoint(request.auth_req_u.id_b), wire,
            size=auth_req_t.wire_size + 32,
            on_give_up=lambda _msg, t=token: self._broker_gave_up(t))

    def _broker_gave_up(self, token: int) -> None:
        context = self._pending.pop(token, None)
        if context is None or context.state != "WAIT_BROKER":
            return
        self.broker_timeouts += 1
        self.attaches_rejected += 1
        context.state = "REJECTED"
        context.broker_token = None
        self.downlink(context, SapAttachReject(cause="broker unreachable"))

    def _handle_broker_response(self, src_ip: str,
                                response: BrokerAuthResponse) -> None:
        context = self._pending.pop(response.reply_token, None)
        if context is None or context.state != "WAIT_BROKER":
            return
        context.broker_token = None
        if not response.approved:
            self.attaches_rejected += 1
            context.state = "REJECTED"
            self.downlink(context, SapAttachReject(
                cause=response.cause,
                retryable=getattr(response, "retryable", False)))
            return
        broker_key = self.broker_public_keys.get(
            getattr(context, "broker_id", ""))
        if broker_key is None:
            self.attaches_rejected += 1
            context.state = "REJECTED"
            self.downlink(context, SapAttachReject(cause="unknown broker"))
            return
        try:
            session = self.sap.process_authorization(
                response.auth_resp_t, broker_key,
                broker_certificate=None, now=self.sim.now)
        except SapError as exc:
            self.attaches_rejected += 1
            context.state = "REJECTED"
            self.downlink(context, SapAttachReject(cause=str(exc)))
            return
        # The broker-issued ss becomes KASME; SMC proceeds as today.
        context.subscriber_id = session.id_u_opaque
        context.security = SecurityContext(kasme=session.ss)
        context.subscription = s6a.SubscriptionData(
            qci=session.qos_info.qci,
            ambr_dl_bps=session.qos_info.ambr_dl_bps,
            ambr_ul_bps=session.qos_info.ambr_ul_bps)
        self.sessions[session.session_id] = session
        self.session_brokers[session.session_id] = \
            getattr(context, "broker_id", "")
        context.sap_session = session
        # Step 4: forward authRespU, then activate security.  The
        # challenge is cached on the context so a retransmitted attach
        # request can replay this leg without consulting the broker.
        challenge = SapAttachChallenge(auth_resp_u=response.auth_resp_u)
        context.sap_challenge = challenge
        self.downlink(context, challenge)
        context.state = "WAIT_SMC_COMPLETE"
        self.send_smc(context)

    # -- mobility-scoped re-attach (§4.2) ----------------------------------------------
    def _on_sap_scoped_attach(self, context: UeContext,
                              request: SapScopedAttachRequest) -> None:
        """Scope-local re-attach: validate the broker-signed token right
        here — signature, scope membership, expiry, possession MAC and
        the monotonic attach counter — with **no** broker round-trip.
        The broker is told asynchronously (:meth:`_notify_scope_attach`)
        so revocation routing, billing and the authoritative cross-site
        replay floor stay correct."""
        token = request.token
        key = ("scope", token.sig, request.counter)
        if context.sap_request_key == key:
            # Retransmission of the attempt we already served: replay the
            # SMC leg (there is no challenge downlink on the scoped path).
            self.dup_attach_requests += 1
            if context.state == "WAIT_SMC_COMPLETE":
                self.send_smc(context)
            return
        # Fresh attempt: drop any stale broker leg from a prior full
        # attach on this context.
        if context.broker_token is not None:
            self._pending.pop(context.broker_token, None)
            self.cancel_request(context.broker_corr_id)
            context.broker_token = None
        context.sap_request_key = key
        context.sap_challenge = None
        context.attach_started_at = self.sim.now
        context.broker_id = token.id_b
        try:
            session = self.sap.validate_scoped_attach(
                token, request.counter, request.mac,
                self.broker_public_keys, self.sim.now,
                self._scope_counters.get(token.session_id, 0))
        except SapError as exc:
            self.scoped_rejects += 1
            if exc.cause == DenialCause.REPLAY:
                self.scope_replays_denied += 1
            self.attaches_rejected += 1
            context.state = "REJECTED"
            self.downlink(context, SapAttachReject(cause=str(exc)))
            return
        # Commit the local replay floor only after full validation so
        # probes cannot burn counters.
        self._scope_counters[token.session_id] = request.counter
        self.scoped_attaches += 1
        context.subscriber_id = session.id_u_opaque
        context.security = SecurityContext(kasme=session.ss)
        context.subscription = s6a.SubscriptionData(
            qci=session.qos_info.qci,
            ambr_dl_bps=session.qos_info.ambr_dl_bps,
            ambr_ul_bps=session.qos_info.ambr_ul_bps)
        self.sessions[session.session_id] = session
        self.session_brokers[session.session_id] = token.id_b
        context.sap_session = session
        # Both sides already hold ss: skip the challenge downlink and go
        # straight to SMC.
        context.state = "WAIT_SMC_COMPLETE"
        self.send_smc(context)
        self._notify_scope_attach(token, request.counter)

    def validate_scope_probe(self, token, counter: int,
                             mac: bytes) -> Optional[str]:
        """Dry-run a scoped attach against this site's local state and
        return the denial cause (``None`` if it would be accepted).
        Read-only — no counter is committed, no session created.  Used
        by harnesses to assert that replayed / out-of-scope / expired
        grants are denied without perturbing live state."""
        try:
            self.sap.validate_scoped_attach(
                token, counter, mac, self.broker_public_keys, self.sim.now,
                self._scope_counters.get(token.session_id, 0))
        except SapError as exc:
            cause = exc.cause
            return cause.value if cause is not None else str(exc)
        return None

    #: retryable-nack re-notify schedule (broker shard failing over).
    scope_notice_backoff = 0.5
    scope_notice_max_attempts = 6

    def _notify_scope_attach(self, token, counter: int,
                             attempt: int = 0) -> None:
        """Asynchronously tell the issuing broker about the scope-local
        attach (reliable leg, off the attach critical path): it advances
        the authoritative replay floor, re-points revocation routing at
        this site, and keeps billing session continuity."""
        unsigned = ScopeAttachNotice(session_id=token.session_id,
                                     counter=counter, id_t=self.id_t)
        notice = ScopeAttachNotice(
            session_id=token.session_id, counter=counter, id_t=self.id_t,
            certificate=self.sap.config.certificate,
            signature=self.key.sign(unsigned.signed_bytes()))
        self.scope_notices_sent += 1
        self._scope_notice_pending[token.session_id] = \
            (token, counter, attempt)
        self.send_request(self.broker_endpoint(token.id_b), notice,
                          size=notice.wire_size)

    def _handle_scope_ack(self, src_ip: str, ack: ScopeAttachAck) -> None:
        pending = self._scope_notice_pending.get(ack.session_id)
        if ack.accepted:
            self._scope_notice_pending.pop(ack.session_id, None)
            return
        if ack.retryable:
            # A broker shard is failing over: the nack completed our
            # reliable request, so *we* own the retry.  Re-notify with
            # backoff while the session is still live — the counter
            # floor must eventually reach the broker.
            if pending is not None and pending[1] == ack.counter:
                token, counter, attempt = pending
                if attempt + 1 < self.scope_notice_max_attempts \
                        and ack.session_id in self.sessions:
                    self.sim.schedule(
                        self.scope_notice_backoff * (attempt + 1),
                        self._notify_scope_attach, token, counter,
                        attempt + 1)
                else:
                    self._scope_notice_pending.pop(ack.session_id, None)
            return
        self._scope_notice_pending.pop(ack.session_id, None)
        # Terminal nack: the broker says this scoped attach must not
        # stand (revoked, expired, or a cross-site replay our local
        # floor could not see).  Withdraw the session now.
        self.scope_notice_nacks += 1
        self.sap.revoke_session(ack.session_id)
        if ack.session_id not in self.sessions:
            return
        self.revoked_sessions += 1
        context = next(
            (c for c in self.contexts.values()
             if getattr(getattr(c, "sap_session", None), "session_id",
                        None) == ack.session_id),
            None)
        if context is not None:
            # Service rendered between the optimistic local validation
            # and the broker's veto was unauthorized — account for it
            # (the fleet-drive gate requires this stays 0).
            started = getattr(context, "attach_started_at", None)
            if started is not None:
                self.scope_unauthorized_session_s += \
                    max(0.0, self.sim.now - started)
        if context is not None and context.state == "ATTACHED":
            self._teardown_session(context, ack.session_id)
        else:
            # Mid-attach: _on_attach_complete refuses revoked sessions.
            self.meters.pop(ack.session_id, None)
            self.sessions.pop(ack.session_id, None)
            self.session_brokers.pop(ack.session_id, None)

    def after_security_established(self, context: UeContext) -> None:
        """No ULR: straight to session establishment (the Fig 7 win)."""
        self.establish_session(context)
        session = context.sap_session
        if session is not None:
            # The broker's authorization has a lifetime; serving past it
            # would be unauthorized service.  Schedule enforcement.
            delay = max(0.0, session.expires_at - self.sim.now)
            self.sim.schedule(delay, self._expire_session,
                              session.session_id, context.enb_ue_id)

    def _expire_session(self, session_id: str, enb_ue_id: int) -> None:
        """Authorization lifetime reached: network-initiated detach."""
        context = self.contexts.get(enb_ue_id)
        session = self.sessions.get(session_id)
        if context is None or session is None:
            return
        if getattr(context.sap_session, "session_id", None) != session_id:
            return  # the UE re-attached under a newer authorization
        if context.state != "ATTACHED":
            return
        self.expired_sessions += 1
        self._teardown_session(context, session_id)

    def _teardown_session(self, context: UeContext, session_id: str) -> None:
        """Network-initiated detach: release the session's every resource."""
        self.li.deactivate(session_id, self.sim.now)
        self.meters.pop(session_id, None)
        self.sessions.pop(session_id, None)
        self.session_brokers.pop(session_id, None)
        from repro.lte.enodeb import S1UeContextRelease
        from repro.lte.nas import DetachRequest
        self.downlink_protected(context, DetachRequest())
        if context.bearer is not None and context.bearer.active:
            self.spgw.delete_bearer(context.bearer.ebi)
        context.state = "DETACHED"
        self.send(context.enb_ip,
                  S1UeContextRelease(enb_ue_id=context.enb_ue_id), size=32)
        self.contexts.pop(context.enb_ue_id, None)

    def _handle_session_revocation(self, src_ip: str,
                                   notice: SessionRevocation) -> None:
        """Legacy single-notice revocation (kept for compatibility with
        brokers that do not batch)."""
        self._apply_revocation(notice)

    def _handle_revocation_batch(self, src_ip: str,
                                 batch: SessionRevocationBatch) -> None:
        """Apply every revocation in the batch and return a signed ack.

        Idempotent per notice: a batch retransmitted past the transport's
        dedup window re-acks without double-detaching anything, so the
        broker's retry loop always converges.
        """
        session_ids = []
        for notice in batch.revocations:
            self._apply_revocation(notice)
            session_ids.append(notice.session_id)
        ack_ids = tuple(sorted(session_ids))
        unsigned = RevocationAck(batch_id=batch.batch_id, id_t=self.id_t,
                                 session_ids=ack_ids)
        ack = RevocationAck(batch_id=batch.batch_id, id_t=self.id_t,
                            session_ids=ack_ids,
                            signature=self.key.sign(unsigned.signed_bytes()))
        self.revocation_acks_sent += 1
        self.send(src_ip, ack, size=96 + 16 * len(ack_ids))

    def _apply_revocation(self, notice: SessionRevocation) -> None:
        """Broker withdrew an authorization we hold: serving this session
        any further would be unauthorized service, so detach it now and
        refuse the grant if it is ever presented again."""
        if not self.sap.session_authorized(notice.session_id):
            # Already applied (duplicate notice): nothing to tear down.
            self.revocation_dups += 1
            return
        self.sap.revoke_session(notice.session_id)
        if notice.session_id not in self.sessions:
            return
        self.revoked_sessions += 1
        context = next(
            (c for c in self.contexts.values()
             if getattr(getattr(c, "sap_session", None), "session_id",
                        None) == notice.session_id),
            None)
        if context is not None and context.state == "ATTACHED":
            self._teardown_session(context, notice.session_id)
        else:
            # Mid-attach or already torn down: just drop the bookkeeping;
            # _on_attach_complete refuses revoked sessions.
            self.meters.pop(notice.session_id, None)
            self.sessions.pop(notice.session_id, None)
            self.session_brokers.pop(notice.session_id, None)

    def _on_attach_complete(self, context: UeContext) -> None:
        super()._on_attach_complete(context)
        session = getattr(context, "sap_session", None)
        if session is not None and context.state == "ATTACHED" \
                and not self.sap.session_authorized(session.session_id):
            # The grant was revoked while the attach was in flight.
            self.revoked_sessions += 1
            self._teardown_session(context, session.session_id)
            return
        if context.state == "ATTACHED" and session is not None:
            broker_key = self.broker_public_keys.get(
                getattr(context, "broker_id", ""))
            if broker_key is not None:
                self.meters[session.session_id] = Meter(
                    session_id=session.session_id,
                    reporter=REPORTER_BTELCO, key=self.key,
                    broker_public_key=broker_key,
                    session_started_at=self.sim.now)
            if session.lawful_intercept:
                # The broker mandated interception for this session; we
                # advertised the capability, so activate it now.
                self.li.activate(session.session_id, self.sim.now,
                                 session.id_u_opaque)

    # -- session cleanup on UE-initiated detach ----------------------------------------
    def _on_detach(self, context: UeContext, request=None) -> None:
        """A UE-initiated detach must release the SAP session bookkeeping
        too, or ``sessions``/``meters`` grow with every detach-reattach
        cycle (and unauthorized-session accounting reads stale entries)."""
        self._drop_session_state(context)
        super()._on_detach(context, request)

    def _abandon_attach(self, context: UeContext) -> None:
        self._drop_session_state(context)
        super()._abandon_attach(context)

    def _drop_session_state(self, context: UeContext) -> None:
        session = getattr(context, "sap_session", None)
        if session is None:
            return
        session_id = session.session_id
        self.li.deactivate(session_id, self.sim.now)
        self.meters.pop(session_id, None)
        self.sessions.pop(session_id, None)
        self.session_brokers.pop(session_id, None)

    # -- billing ------------------------------------------------------------------------
    def upload_reports(self) -> int:
        """Emit one traffic report per active session to the broker.

        Uploads ride the reliable-request facility: a lost report would
        leave its (session, seq) pair unmatched at the broker and skew
        the §4.3 discrepancy check toward false accusations, so they are
        retransmitted until the broker's :class:`ReportAck` arrives.
        """
        sent = 0
        for session_id, meter in self.meters.items():
            bearer = self.spgw.bearer_for(
                self.sessions[session_id].id_u_opaque)
            if bearer is not None:
                # Sync the meter with the PGW usage counters.
                meter.dl_bytes = bearer.usage.dl_bytes
                meter.ul_bytes = bearer.usage.ul_bytes
                bearer.usage.dl_bytes = 0
                bearer.usage.ul_bytes = 0
            self.li.record_usage(session_id, self.sim.now,
                                 meter.dl_bytes, meter.ul_bytes)
            upload = meter.emit(self.sim.now)
            destination = self.broker_endpoint(
                self.session_brokers.get(session_id, ""))
            # Per-report retry tally: if the report is eventually lost,
            # its retries are rolled back from ``reports_retried`` so the
            # counter means "retries that preceded a delivery" and never
            # drifts when a retried report fails anyway.
            tally = [0]
            self.send_request(
                destination, upload, size=upload.wire_size,
                on_give_up=lambda _msg, t=tally: self._report_gave_up(t),
                on_retransmit=lambda _msg, _n, t=tally:
                    self._note_report_retry(t))
            sent += 1
        return sent

    def _note_report_retry(self, tally: list) -> None:
        tally[0] += 1
        self.reports_retried += 1

    def _report_gave_up(self, tally: list) -> None:
        self.reports_retried -= tally[0]
        self.reports_lost += 1

    def _handle_report_ack(self, src_ip: str, ack: ReportAck) -> None:
        self.reports_acked += 1

    # -- introspection ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot: attach/session lifecycle + reliability."""
        stats = {
            "attaches_completed": self.attaches_completed,
            "attaches_rejected": self.attaches_rejected,
            "sessions_active": len(self.sessions),
            "meters_active": len(self.meters),
            "contexts_active": len(self.contexts),
            "expired_sessions": self.expired_sessions,
            "revoked_sessions": self.revoked_sessions,
            "revocation_dups": self.revocation_dups,
            "revocation_acks_sent": self.revocation_acks_sent,
            "dup_attach_requests": self.dup_attach_requests,
            "broker_timeouts": self.broker_timeouts,
            "accept_retransmissions": self.accept_retransmissions,
            "accept_give_ups": self.accept_give_ups,
            "reports_retried": self.reports_retried,
            "reports_lost": self.reports_lost,
            "reports_acked": self.reports_acked,
            "scoped_attaches": self.scoped_attaches,
            "scoped_rejects": self.scoped_rejects,
            "scope_replays_denied": self.scope_replays_denied,
            "scope_notices_sent": self.scope_notices_sent,
            "scope_notice_nacks": self.scope_notice_nacks,
            "scope_unauthorized_session_s":
                round(self.scope_unauthorized_session_s, 9),
        }
        stats.update(self.reliable_stats())
        return stats
