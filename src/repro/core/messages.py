"""SAP wire messages (Fig 2 / Fig 3 of the paper).

All payloads that cross trust boundaries are canonically serialized
(sorted-key JSON over hex-encoded byte fields) so signatures are
well-defined, then encrypted to the recipient's public key and signed by
the sender.  Field names follow the paper: ``authVec``, ``authReqU``,
``authReqT``, ``authRespT``, ``authRespU``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.crypto import Certificate, PrivateKey, PublicKey

from .qos import QosCapabilities, QosInfo

NONCE_SIZE = 16


class MessageError(Exception):
    """Raised when a SAP message fails to parse or validate."""


class DenialCause(str, Enum):
    """Why an attachment (or an existing session) was refused.

    Carried on :class:`~repro.core.sap.SapError` and aggregated into the
    broker's ``attach_denied`` counters; ``REVOKED`` additionally rides
    the :class:`SessionRevocation` cascade to the serving bTelco.
    """

    BAD_CERTIFICATE = "bad_certificate"
    BAD_SIGNATURE = "bad_signature"
    MALFORMED = "malformed"
    MISMATCH = "mismatch"
    UNKNOWN_SUBSCRIBER = "unknown_subscriber"
    SUSPENDED = "suspended"
    REVOKED = "revoked"
    REPLAY = "replay"
    POLICY = "policy"
    LI_UNSUPPORTED = "li_unsupported"
    EXPIRED = "expired"
    #: transient broker-side condition (shard failed over, replica still
    #: syncing): the *same* request is expected to succeed shortly, so
    #: attach paths should back off and retry instead of EMM-resetting.
    DEGRADED = "degraded"
    OTHER = "other"


#: Denial causes that signal a transient condition worth retrying.
RETRYABLE_DENIAL_CAUSES = frozenset({DenialCause.DEGRADED})


def denial_is_retryable(cause) -> bool:
    """Whether a :class:`DenialCause` (or its string value) is transient."""
    try:
        cause = DenialCause(cause)
    except ValueError:
        return False
    return cause in RETRYABLE_DENIAL_CAUSES


def _canonical(obj: dict) -> bytes:
    return json.dumps(obj, sort_keys=True).encode()


def _parse(raw: bytes) -> dict:
    try:
        return json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MessageError(f"malformed SAP payload: {exc}") from exc


# -- authVec -----------------------------------------------------------------

@dataclass(frozen=True)
class AuthVec:
    """The plaintext authentication vector (idU, idB, idT, n).

    Only the broker can read it — the UE encrypts it under pkB, so the
    bTelco never sees idU (no IMSI catching).

    ``scope`` is an optional mobility-scope request (§4.2): a dict
    ``{"telcos": [...], "ttl": seconds}`` asking the broker to mint a
    :class:`ScopeToken` alongside the grant.  Riding *inside* the
    encrypted+signed authVec means neither the serving bTelco nor an
    on-path attacker can widen the requested scope.
    """

    id_u: str
    id_b: str
    id_t: str
    nonce: bytes
    scope: Optional[dict] = None

    def to_bytes(self) -> bytes:
        data = {"idU": self.id_u, "idB": self.id_b,
                "idT": self.id_t, "n": self.nonce.hex()}
        if self.scope is not None:
            data["scope"] = self.scope
        return _canonical(data)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AuthVec":
        data = _parse(raw)
        try:
            return cls(id_u=data["idU"], id_b=data["idB"], id_t=data["idT"],
                       nonce=bytes.fromhex(data["n"]),
                       scope=data.get("scope"))
        except (KeyError, ValueError) as exc:
            raise MessageError(f"bad authVec: {exc}") from exc


# -- authReqU ------------------------------------------------------------------

@dataclass(frozen=True)
class AuthReqU:
    """UE -> bTelco: (sig_authvec, authVec*, idB)."""

    sig_authvec: bytes        # Sign_skU(authVec*)
    auth_vec_encrypted: bytes  # Enc_pkB(authVec)
    id_b: str                 # routable broker identifier

    @property
    def wire_size(self) -> int:
        return (len(self.sig_authvec) + len(self.auth_vec_encrypted)
                + len(self.id_b) + 16)


# -- authReqT -------------------------------------------------------------------

@dataclass(frozen=True)
class AuthReqT:
    """bTelco -> broker: the UE request augmented with the bTelco's
    identity, certificate, service parameters, and signature."""

    auth_req_u: AuthReqU
    id_t: str
    qos_cap: QosCapabilities
    t_certificate: Certificate
    sig_t: bytes               # Sign_skT over the augmented request
    lawful_intercept: bool = False

    def signed_bytes(self) -> bytes:
        return signed_bytes_for_auth_req_t(
            self.auth_req_u, self.id_t, self.qos_cap, self.lawful_intercept)

    @property
    def wire_size(self) -> int:
        return self.auth_req_u.wire_size + len(self.sig_t) + 420


def signed_bytes_for_auth_req_t(auth_req_u: AuthReqU, id_t: str,
                                qos_cap: QosCapabilities,
                                lawful_intercept: bool) -> bytes:
    return _canonical({
        "authReqU.sig": auth_req_u.sig_authvec.hex(),
        "authReqU.vec": auth_req_u.auth_vec_encrypted.hex(),
        "authReqU.idB": auth_req_u.id_b,
        "idT": id_t,
        "qosCap": {
            "qcis": list(qos_cap.supported_qcis),
            "dl": qos_cap.max_ambr_dl_bps,
            "ul": qos_cap.max_ambr_ul_bps,
            "li": qos_cap.supports_lawful_intercept,
        },
        "li": lawful_intercept,
    })


# -- broker responses -----------------------------------------------------------

@dataclass(frozen=True)
class AuthRespT:
    """Broker -> bTelco plaintext: (idU_opaque, idT, ss, qosInfo).

    ``id_u_opaque`` is a broker-scoped pseudonym, *not* the IMSI — the
    bTelco gets a stable billing handle without learning the subscriber
    identity.
    """

    id_u_opaque: str
    id_t: str
    ss: bytes                  # the shared secret -> KASME
    qos_info: QosInfo
    session_id: str
    expires_at: float
    #: broker-mandated lawful intercept for this session (negotiated via
    #: qosCap.supports_lawful_intercept; see [4, 8, 36] in the paper).
    lawful_intercept: bool = False

    def to_bytes(self) -> bytes:
        return _canonical({
            "idU": self.id_u_opaque, "idT": self.id_t, "ss": self.ss.hex(),
            "qos": {"qci": self.qos_info.qci,
                    "dl": self.qos_info.ambr_dl_bps,
                    "ul": self.qos_info.ambr_ul_bps,
                    "arp": self.qos_info.arp_priority},
            "sid": self.session_id, "exp": self.expires_at,
            "li": self.lawful_intercept})

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AuthRespT":
        data = _parse(raw)
        try:
            qos = QosInfo(qci=data["qos"]["qci"],
                          ambr_dl_bps=data["qos"]["dl"],
                          ambr_ul_bps=data["qos"]["ul"],
                          arp_priority=data["qos"]["arp"])
            return cls(id_u_opaque=data["idU"], id_t=data["idT"],
                       ss=bytes.fromhex(data["ss"]), qos_info=qos,
                       session_id=data["sid"], expires_at=data["exp"],
                       lawful_intercept=data.get("li", False))
        except (KeyError, ValueError) as exc:
            raise MessageError(f"bad authRespT: {exc}") from exc


@dataclass(frozen=True)
class AuthRespU:
    """Broker -> UE plaintext: (idU, idT, ss, n).

    The echoed nonce proves freshness; the signature over the sealed blob
    proves it came from the broker.
    """

    id_u: str
    id_t: str
    ss: bytes
    nonce: bytes
    session_id: str
    #: optional broker-minted mobility :class:`ScopeToken` (§4.2) — the
    #: UE presents it on scope-local re-attaches instead of a fresh
    #: authReqU.
    scope: Optional["ScopeToken"] = None

    def to_bytes(self) -> bytes:
        data = {"idU": self.id_u, "idT": self.id_t,
                "ss": self.ss.hex(), "n": self.nonce.hex(),
                "sid": self.session_id}
        if self.scope is not None:
            data["scope"] = self.scope.to_wire()
        return _canonical(data)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AuthRespU":
        data = _parse(raw)
        try:
            scope = None
            if data.get("scope") is not None:
                scope = ScopeToken.from_wire(data["scope"])
            return cls(id_u=data["idU"], id_t=data["idT"],
                       ss=bytes.fromhex(data["ss"]),
                       nonce=bytes.fromhex(data["n"]),
                       session_id=data["sid"], scope=scope)
        except (KeyError, ValueError) as exc:
            raise MessageError(f"bad authRespU: {exc}") from exc


@dataclass(frozen=True)
class SealedResponse:
    """A (ciphertext, signature) pair: Enc_pk_recipient(payload) signed by
    the broker so the recipient can authenticate the source."""

    blob: bytes
    sig_b: bytes

    def verify(self, broker_key: PublicKey) -> bool:
        return broker_key.verify(self.blob, self.sig_b)

    @property
    def wire_size(self) -> int:
        return len(self.blob) + len(self.sig_b)


def seal_and_sign(payload: bytes, recipient: PublicKey,
                  broker_key: PrivateKey) -> SealedResponse:
    """Encrypt ``payload`` to the recipient and sign the ciphertext."""
    blob = recipient.encrypt(payload)
    return SealedResponse(blob=blob, sig_b=broker_key.sign(blob))


# -- signaling-plane envelopes (bTelco <-> broker transport) ----------------------

@dataclass(frozen=True)
class BrokerAuthRequest:
    """bTelco -> brokerd transport message carrying authReqT."""

    auth_req_t: AuthReqT
    reply_token: int = 0


@dataclass(frozen=True)
class BrokerAuthResponse:
    """brokerd -> bTelco: both sealed sub-responses, or a denial."""

    approved: bool
    auth_resp_t: object = None   # SealedResponse for the bTelco
    auth_resp_u: object = None   # SealedResponse forwarded verbatim to the UE
    cause: str = ""
    reply_token: int = 0
    #: denial is transient (degraded shard) — the bTelco should tell the
    #: UE to back off and retry rather than give up.
    retryable: bool = False


@dataclass(frozen=True)
class SessionRevocation:
    """brokerd -> bTelco: a previously issued authorization is withdrawn.

    Key revocation at the broker (§4.1) must cascade to grants already in
    the field: the serving bTelco is told to stop honouring the session
    (identified only by its pseudonymous handles, never the IMSI).
    """

    session_id: str
    id_u_opaque: str = ""
    cause: str = DenialCause.REVOKED.value


@dataclass(frozen=True)
class SessionRevocationBatch:
    """brokerd -> bTelco: all withdrawn sessions for one serving bTelco.

    Sent reliably (retransmitted with backoff until the signed
    :class:`RevocationAck` comes back, or every grant in the batch has
    expired on its own) — a lost notice must never leave an unauthorized
    session running.
    """

    batch_id: int
    id_b: str
    revocations: tuple = ()   # tuple[SessionRevocation, ...]

    @property
    def wire_size(self) -> int:
        return 64 + 96 * len(self.revocations)


def revocation_ack_signed_bytes(batch_id: int, id_t: str,
                                session_ids: tuple) -> bytes:
    return _canonical({"batch": batch_id, "idT": id_t,
                       "sids": sorted(session_ids)})


@dataclass(frozen=True)
class RevocationAck:
    """bTelco -> brokerd: signed proof the revocation batch was applied.

    The signature (under the bTelco key the broker authenticated at SAP
    time) prevents an on-path attacker from forging the ack and keeping a
    revoked session alive until grant expiry.
    """

    batch_id: int
    id_t: str
    session_ids: tuple = ()
    signature: bytes = b""

    def signed_bytes(self) -> bytes:
        return revocation_ack_signed_bytes(self.batch_id, self.id_t,
                                           self.session_ids)

    def verify(self, btelco_key: PublicKey) -> bool:
        return btelco_key.verify(self.signed_bytes(), self.signature)


# -- mobility-scoped grants (§4.2: grant reuse across bTelco switches) ----------

@dataclass(frozen=True)
class ScopeToken:
    """A broker-signed mobility scope riding alongside a grant.

    ``payload`` (canonically serialized under the broker signature):

    * ``sid``  — the grant's session id (billing/revocation handle);
    * ``idU``  — the opaque per-session pseudonym (never the IMSI);
    * ``idB``  — the minting broker, so the validating bTelco picks the
      right trusted key;
    * ``scope`` — sorted list of bTelco ids the grant may roam to;
    * ``exp``  — absolute expiry (min of requested TTL and grant life);
    * ``qos``  — the grant's qosInfo (``{"qci","dl","ul","arp"}``);
    * ``li``   — broker-mandated lawful intercept flag;
    * ``ess``  — per-bTelco sealed copies of the shared secret:
      ``{id_t: hex(Enc_pk_idT(ss))}``.  authRespT is sealed to the
      *original* serving bTelco only, so without this map an in-scope
      bTelco could verify the token but never recover ss -> KASME.

    Any bTelco in the scope validates the token **locally**: broker
    signature, membership, expiry, then proof-of-possession of ss via
    :func:`scope_attach_mac` and a per-grant monotonic attach counter.
    """

    payload: dict
    sig: bytes

    def signed_bytes(self) -> bytes:
        return _canonical(self.payload)

    def verify(self, broker_key: PublicKey) -> bool:
        return broker_key.verify(self.signed_bytes(), self.sig)

    @property
    def session_id(self) -> str:
        return self.payload.get("sid", "")

    @property
    def id_b(self) -> str:
        return self.payload.get("idB", "")

    @property
    def id_u_opaque(self) -> str:
        return self.payload.get("idU", "")

    @property
    def expires_at(self) -> float:
        return float(self.payload.get("exp", 0.0))

    @property
    def telcos(self) -> tuple:
        return tuple(self.payload.get("scope", ()))

    def sealed_ss_for(self, id_t: str) -> Optional[bytes]:
        blob = self.payload.get("ess", {}).get(id_t)
        return bytes.fromhex(blob) if blob else None

    def covers(self, id_t: str, now: float) -> bool:
        """Scope membership + expiry (signature/counter checked apart)."""
        return (id_t in self.payload.get("scope", ())
                and id_t in self.payload.get("ess", {})
                and now < self.expires_at)

    def to_wire(self) -> dict:
        return {"payload": self.payload, "sig": self.sig.hex()}

    @classmethod
    def from_wire(cls, data: dict) -> "ScopeToken":
        try:
            return cls(payload=data["payload"],
                       sig=bytes.fromhex(data["sig"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise MessageError(f"bad scope token: {exc}") from exc

    @property
    def wire_size(self) -> int:
        return len(self.signed_bytes()) + len(self.sig)


def scope_attach_mac(ss: bytes, session_id: str, counter: int,
                     id_t: str) -> bytes:
    """Proof-of-possession MAC for a scoped attach.

    Keyed with the grant's shared secret (which only the subscriber and
    in-scope bTelcos can recover) over the (sid, counter, target) triple
    — binding the counter and the *target* bTelco kills cut-and-paste
    replay of a sniffed scoped attach at a different site.
    """
    return hashlib.sha256(ss + _canonical(
        {"ctr": counter, "idT": id_t, "sid": session_id})).digest()


@dataclass(frozen=True)
class ScopeAttachNotice:
    """bTelco -> brokerd (async, reliable): a scope-local attach happened.

    The broker round-trip is *off* the attach critical path — this
    notice keeps revocation cascades routed to the new serving bTelco,
    keeps the billing ledger open under the same session id, and lets
    the broker's authoritative per-grant counter catch cross-site
    replays.  ``certificate`` authenticates the notifying bTelco.
    """

    session_id: str
    counter: int
    id_t: str
    certificate: Certificate = None
    signature: bytes = b""

    def signed_bytes(self) -> bytes:
        return _canonical({"ctr": self.counter, "idT": self.id_t,
                           "sid": self.session_id})

    @property
    def wire_size(self) -> int:
        return 480 + len(self.signature)


@dataclass(frozen=True)
class ScopeAttachAck:
    """brokerd -> bTelco: verdict on a :class:`ScopeAttachNotice`.

    A terminal nack (revoked grant, unknown session, replayed counter)
    obliges the bTelco to tear the scope-local session down — the local
    validation was optimistic and the broker is authoritative.
    """

    session_id: str
    counter: int
    accepted: bool
    retryable: bool = False
    cause: str = ""


@dataclass(frozen=True)
class ReportAck:
    """brokerd -> bTelco: a TrafficReportUpload was ingested.

    Acknowledges the (session, seq, reporter) triple so the uploader can
    stop retransmitting; the §4.3 discrepancy check relies on *both*
    reports of a pair arriving, so lost uploads must be retried rather
    than silently skewing the cross-check toward false accusations.
    """

    session_id: str
    seq: int
    reporter: str = ""
