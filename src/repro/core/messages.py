"""SAP wire messages (Fig 2 / Fig 3 of the paper).

All payloads that cross trust boundaries are canonically serialized
(sorted-key JSON over hex-encoded byte fields) so signatures are
well-defined, then encrypted to the recipient's public key and signed by
the sender.  Field names follow the paper: ``authVec``, ``authReqU``,
``authReqT``, ``authRespT``, ``authRespU``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

from repro.crypto import Certificate, PrivateKey, PublicKey

from .qos import QosCapabilities, QosInfo

NONCE_SIZE = 16


class MessageError(Exception):
    """Raised when a SAP message fails to parse or validate."""


class DenialCause(str, Enum):
    """Why an attachment (or an existing session) was refused.

    Carried on :class:`~repro.core.sap.SapError` and aggregated into the
    broker's ``attach_denied`` counters; ``REVOKED`` additionally rides
    the :class:`SessionRevocation` cascade to the serving bTelco.
    """

    BAD_CERTIFICATE = "bad_certificate"
    BAD_SIGNATURE = "bad_signature"
    MALFORMED = "malformed"
    MISMATCH = "mismatch"
    UNKNOWN_SUBSCRIBER = "unknown_subscriber"
    SUSPENDED = "suspended"
    REVOKED = "revoked"
    REPLAY = "replay"
    POLICY = "policy"
    LI_UNSUPPORTED = "li_unsupported"
    EXPIRED = "expired"
    #: transient broker-side condition (shard failed over, replica still
    #: syncing): the *same* request is expected to succeed shortly, so
    #: attach paths should back off and retry instead of EMM-resetting.
    DEGRADED = "degraded"
    OTHER = "other"


#: Denial causes that signal a transient condition worth retrying.
RETRYABLE_DENIAL_CAUSES = frozenset({DenialCause.DEGRADED})


def denial_is_retryable(cause) -> bool:
    """Whether a :class:`DenialCause` (or its string value) is transient."""
    try:
        cause = DenialCause(cause)
    except ValueError:
        return False
    return cause in RETRYABLE_DENIAL_CAUSES


def _canonical(obj: dict) -> bytes:
    return json.dumps(obj, sort_keys=True).encode()


def _parse(raw: bytes) -> dict:
    try:
        return json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MessageError(f"malformed SAP payload: {exc}") from exc


# -- authVec -----------------------------------------------------------------

@dataclass(frozen=True)
class AuthVec:
    """The plaintext authentication vector (idU, idB, idT, n).

    Only the broker can read it — the UE encrypts it under pkB, so the
    bTelco never sees idU (no IMSI catching).
    """

    id_u: str
    id_b: str
    id_t: str
    nonce: bytes

    def to_bytes(self) -> bytes:
        return _canonical({"idU": self.id_u, "idB": self.id_b,
                           "idT": self.id_t, "n": self.nonce.hex()})

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AuthVec":
        data = _parse(raw)
        try:
            return cls(id_u=data["idU"], id_b=data["idB"], id_t=data["idT"],
                       nonce=bytes.fromhex(data["n"]))
        except (KeyError, ValueError) as exc:
            raise MessageError(f"bad authVec: {exc}") from exc


# -- authReqU ------------------------------------------------------------------

@dataclass(frozen=True)
class AuthReqU:
    """UE -> bTelco: (sig_authvec, authVec*, idB)."""

    sig_authvec: bytes        # Sign_skU(authVec*)
    auth_vec_encrypted: bytes  # Enc_pkB(authVec)
    id_b: str                 # routable broker identifier

    @property
    def wire_size(self) -> int:
        return (len(self.sig_authvec) + len(self.auth_vec_encrypted)
                + len(self.id_b) + 16)


# -- authReqT -------------------------------------------------------------------

@dataclass(frozen=True)
class AuthReqT:
    """bTelco -> broker: the UE request augmented with the bTelco's
    identity, certificate, service parameters, and signature."""

    auth_req_u: AuthReqU
    id_t: str
    qos_cap: QosCapabilities
    t_certificate: Certificate
    sig_t: bytes               # Sign_skT over the augmented request
    lawful_intercept: bool = False

    def signed_bytes(self) -> bytes:
        return signed_bytes_for_auth_req_t(
            self.auth_req_u, self.id_t, self.qos_cap, self.lawful_intercept)

    @property
    def wire_size(self) -> int:
        return self.auth_req_u.wire_size + len(self.sig_t) + 420


def signed_bytes_for_auth_req_t(auth_req_u: AuthReqU, id_t: str,
                                qos_cap: QosCapabilities,
                                lawful_intercept: bool) -> bytes:
    return _canonical({
        "authReqU.sig": auth_req_u.sig_authvec.hex(),
        "authReqU.vec": auth_req_u.auth_vec_encrypted.hex(),
        "authReqU.idB": auth_req_u.id_b,
        "idT": id_t,
        "qosCap": {
            "qcis": list(qos_cap.supported_qcis),
            "dl": qos_cap.max_ambr_dl_bps,
            "ul": qos_cap.max_ambr_ul_bps,
            "li": qos_cap.supports_lawful_intercept,
        },
        "li": lawful_intercept,
    })


# -- broker responses -----------------------------------------------------------

@dataclass(frozen=True)
class AuthRespT:
    """Broker -> bTelco plaintext: (idU_opaque, idT, ss, qosInfo).

    ``id_u_opaque`` is a broker-scoped pseudonym, *not* the IMSI — the
    bTelco gets a stable billing handle without learning the subscriber
    identity.
    """

    id_u_opaque: str
    id_t: str
    ss: bytes                  # the shared secret -> KASME
    qos_info: QosInfo
    session_id: str
    expires_at: float
    #: broker-mandated lawful intercept for this session (negotiated via
    #: qosCap.supports_lawful_intercept; see [4, 8, 36] in the paper).
    lawful_intercept: bool = False

    def to_bytes(self) -> bytes:
        return _canonical({
            "idU": self.id_u_opaque, "idT": self.id_t, "ss": self.ss.hex(),
            "qos": {"qci": self.qos_info.qci,
                    "dl": self.qos_info.ambr_dl_bps,
                    "ul": self.qos_info.ambr_ul_bps,
                    "arp": self.qos_info.arp_priority},
            "sid": self.session_id, "exp": self.expires_at,
            "li": self.lawful_intercept})

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AuthRespT":
        data = _parse(raw)
        try:
            qos = QosInfo(qci=data["qos"]["qci"],
                          ambr_dl_bps=data["qos"]["dl"],
                          ambr_ul_bps=data["qos"]["ul"],
                          arp_priority=data["qos"]["arp"])
            return cls(id_u_opaque=data["idU"], id_t=data["idT"],
                       ss=bytes.fromhex(data["ss"]), qos_info=qos,
                       session_id=data["sid"], expires_at=data["exp"],
                       lawful_intercept=data.get("li", False))
        except (KeyError, ValueError) as exc:
            raise MessageError(f"bad authRespT: {exc}") from exc


@dataclass(frozen=True)
class AuthRespU:
    """Broker -> UE plaintext: (idU, idT, ss, n).

    The echoed nonce proves freshness; the signature over the sealed blob
    proves it came from the broker.
    """

    id_u: str
    id_t: str
    ss: bytes
    nonce: bytes
    session_id: str

    def to_bytes(self) -> bytes:
        return _canonical({"idU": self.id_u, "idT": self.id_t,
                           "ss": self.ss.hex(), "n": self.nonce.hex(),
                           "sid": self.session_id})

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AuthRespU":
        data = _parse(raw)
        try:
            return cls(id_u=data["idU"], id_t=data["idT"],
                       ss=bytes.fromhex(data["ss"]),
                       nonce=bytes.fromhex(data["n"]), session_id=data["sid"])
        except (KeyError, ValueError) as exc:
            raise MessageError(f"bad authRespU: {exc}") from exc


@dataclass(frozen=True)
class SealedResponse:
    """A (ciphertext, signature) pair: Enc_pk_recipient(payload) signed by
    the broker so the recipient can authenticate the source."""

    blob: bytes
    sig_b: bytes

    def verify(self, broker_key: PublicKey) -> bool:
        return broker_key.verify(self.blob, self.sig_b)

    @property
    def wire_size(self) -> int:
        return len(self.blob) + len(self.sig_b)


def seal_and_sign(payload: bytes, recipient: PublicKey,
                  broker_key: PrivateKey) -> SealedResponse:
    """Encrypt ``payload`` to the recipient and sign the ciphertext."""
    blob = recipient.encrypt(payload)
    return SealedResponse(blob=blob, sig_b=broker_key.sign(blob))


# -- signaling-plane envelopes (bTelco <-> broker transport) ----------------------

@dataclass(frozen=True)
class BrokerAuthRequest:
    """bTelco -> brokerd transport message carrying authReqT."""

    auth_req_t: AuthReqT
    reply_token: int = 0


@dataclass(frozen=True)
class BrokerAuthResponse:
    """brokerd -> bTelco: both sealed sub-responses, or a denial."""

    approved: bool
    auth_resp_t: object = None   # SealedResponse for the bTelco
    auth_resp_u: object = None   # SealedResponse forwarded verbatim to the UE
    cause: str = ""
    reply_token: int = 0
    #: denial is transient (degraded shard) — the bTelco should tell the
    #: UE to back off and retry rather than give up.
    retryable: bool = False


@dataclass(frozen=True)
class SessionRevocation:
    """brokerd -> bTelco: a previously issued authorization is withdrawn.

    Key revocation at the broker (§4.1) must cascade to grants already in
    the field: the serving bTelco is told to stop honouring the session
    (identified only by its pseudonymous handles, never the IMSI).
    """

    session_id: str
    id_u_opaque: str = ""
    cause: str = DenialCause.REVOKED.value


@dataclass(frozen=True)
class SessionRevocationBatch:
    """brokerd -> bTelco: all withdrawn sessions for one serving bTelco.

    Sent reliably (retransmitted with backoff until the signed
    :class:`RevocationAck` comes back, or every grant in the batch has
    expired on its own) — a lost notice must never leave an unauthorized
    session running.
    """

    batch_id: int
    id_b: str
    revocations: tuple = ()   # tuple[SessionRevocation, ...]

    @property
    def wire_size(self) -> int:
        return 64 + 96 * len(self.revocations)


def revocation_ack_signed_bytes(batch_id: int, id_t: str,
                                session_ids: tuple) -> bytes:
    return _canonical({"batch": batch_id, "idT": id_t,
                       "sids": sorted(session_ids)})


@dataclass(frozen=True)
class RevocationAck:
    """bTelco -> brokerd: signed proof the revocation batch was applied.

    The signature (under the bTelco key the broker authenticated at SAP
    time) prevents an on-path attacker from forging the ack and keeping a
    revoked session alive until grant expiry.
    """

    batch_id: int
    id_t: str
    session_ids: tuple = ()
    signature: bytes = b""

    def signed_bytes(self) -> bytes:
        return revocation_ack_signed_bytes(self.batch_id, self.id_t,
                                           self.session_ids)

    def verify(self, btelco_key: PublicKey) -> bool:
        return btelco_key.verify(self.signed_bytes(), self.signature)


@dataclass(frozen=True)
class ReportAck:
    """brokerd -> bTelco: a TrafficReportUpload was ingested.

    Acknowledges the (session, seq, reporter) triple so the uploader can
    stop retransmitting; the §4.3 discrepancy check relies on *both*
    reports of a pair arriving, so lost uploads must be retried rather
    than silently skewing the cross-check toward false accusations.
    """

    session_id: str
    seq: int
    reporter: str = ""
