"""Host-driven mobility orchestration (§4.2) and full-network scenarios.

CellBricks "essentially eliminates the concept of a handover: a user
simply detaches from one cell tower and independently attaches to a new
tower via the SAP protocol".  :class:`MobilityManager` implements that
loop end to end:

1. detach from the current bTelco (radio bearer torn down, IP
   invalidated — which wakes the MPTCP path manager),
2. run SAP against the new bTelco's AGW through its eNodeB,
3. install the PGW-assigned address on the data plane (MPTCP then opens
   the replacement subflow).

:func:`build_cellbricks_network` assembles a complete multi-bTelco
network — CA, broker, N bTelco sites, one UE — used by the integration
tests and the marketplace example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto import CertificateAuthority
from repro.crypto.keypool import pooled_keypair
from repro.lte import ENodeB
from repro.net import CellularPath, Host, Link, Simulator

from .broker import Brokerd
from .btelco import CellBricksAgw
from .qos import QosCapabilities
from .sap import UeSapCredentials
from .ue_agent import CellBricksUe

SIGNALING_BANDWIDTH = 1e9


@dataclass
class BtelcoSite:
    """One bTelco deployment: eNodeB + AGW (+ their hosts and prefix)."""

    name: str
    enb_host: Host
    agw_host: Host
    enb: ENodeB
    agw: CellBricksAgw
    pool_prefix: str

    @property
    def enb_address(self) -> str:
        return self.enb_host.address


@dataclass
class CellBricksNetwork:
    """Everything :func:`build_cellbricks_network` wires together."""

    sim: Simulator
    ca: CertificateAuthority
    broker_host: Host
    brokerd: Brokerd
    sites: dict[str, BtelcoSite]
    ue_host: Host
    credentials: UeSapCredentials
    data_path: Optional[CellularPath] = None
    #: every signaling link by name (``<site>-sig-radio``,
    #: ``<site>-backhaul``, ``<site>-broker``) — the fault-injection
    #: surface the chaos harness drives.  Defaults to an empty dict (a
    #: bare ``None`` here used to crash chaos-harness callers iterating
    #: a hand-constructed network's links).
    links: dict[str, Link] = field(default_factory=dict)


def build_cellbricks_network(
        sim: Simulator, site_names: tuple = ("btelco-a", "btelco-b"),
        subscriber_id: str = "alice",
        broker_id: str = "brokerd.example",
        with_data_path: bool = False,
        broker_link_delay: float = 0.0025,
        seed: int = 7) -> CellBricksNetwork:
    """Assemble a CA, a broker, N bTelco sites, and one enrolled UE.

    Every bTelco gets a CA-signed certificate and its own UE address pool
    (``10.<128+i>.0/24``); none of them knows the subscriber — only the
    broker does.  The UE host is connected to every site's eNodeB (as if
    all towers were in radio range) so tests can switch at will.
    """
    rng = random.Random(seed)
    ca = CertificateAuthority(key=pooled_keypair(seed * 100))

    broker_host = Host(sim, "broker-host", address="52.20.0.1")
    brokerd = Brokerd(broker_host, id_b=broker_id,
                      ca_public_key=ca.public_key,
                      key=pooled_keypair(seed * 100 + 1))

    ue_key = pooled_keypair(seed * 100 + 2)
    credentials = UeSapCredentials(
        id_u=subscriber_id, id_b=broker_id, ue_key=ue_key,
        broker_public_key=brokerd.public_key)
    brokerd.enroll_subscriber(subscriber_id, ue_key.public_key)

    ue_host = Host(sim, "ue-host", address="10.250.0.2")

    sites: dict[str, BtelcoSite] = {}
    links: dict[str, Link] = {}
    for index, name in enumerate(site_names):
        enb_host = Host(sim, f"{name}-enb",
                        address=f"10.25{index}.0.1")
        agw_host = Host(sim, f"{name}-agw",
                        address=f"10.24{index}.0.1")
        key = pooled_keypair(seed * 100 + 3 + index)
        certificate = ca.issue(name, "btelco", key.public_key)
        agw = CellBricksAgw(
            agw_host, broker_ip=broker_host.address, id_t=name,
            key=key, certificate=certificate, ca_public_key=ca.public_key,
            qos_capabilities=QosCapabilities(supported_qcis=(1, 8, 9)),
            name=f"{name}-agw", ue_pool_prefix=f"10.{128 + index}.0")
        agw.trust_broker(broker_id, brokerd.public_key)
        # Pre-register the site in the broker's bTelco directory so a
        # UE can request a mobility scope covering it before ever
        # attaching there (§4.2 scoped grants).
        brokerd.register_btelco(certificate, 0.0)
        enb = ENodeB(enb_host, agw_ip=agw_host.address, name=f"{name}-enb")

        # Signaling links: UE <-> eNB, eNB <-> AGW, AGW <-> broker.
        radio = Link(sim, f"{name}-sig-radio", ue_host, enb_host,
                     bandwidth_bps=SIGNALING_BANDWIDTH, delay_s=0.0001)
        backhaul = Link(sim, f"{name}-backhaul", enb_host, agw_host,
                        bandwidth_bps=SIGNALING_BANDWIDTH, delay_s=0.00015)
        broker_link = Link(sim, f"{name}-broker", agw_host, broker_host,
                           bandwidth_bps=SIGNALING_BANDWIDTH,
                           delay_s=broker_link_delay)
        ue_host.add_route(enb_host.address.rsplit(".", 1)[0], radio)
        enb_host.add_route(agw_host.address.rsplit(".", 1)[0], backhaul)
        enb_host.add_route(ue_host.address.rsplit(".", 1)[0], radio)
        agw_host.add_route(enb_host.address.rsplit(".", 1)[0], backhaul)
        agw_host.add_route(broker_host.address.rsplit(".", 1)[0], broker_link)
        broker_host.add_route(agw_host.address.rsplit(".", 1)[0], broker_link)

        links[radio.name] = radio
        links[backhaul.name] = backhaul
        links[broker_link.name] = broker_link

        sites[name] = BtelcoSite(name=name, enb_host=enb_host,
                                 agw_host=agw_host, enb=enb, agw=agw,
                                 pool_prefix=f"10.{128 + index}.0")

    data_path = None
    if with_data_path:
        data_path = CellularPath(sim, name="data", seed=seed)

    return CellBricksNetwork(sim=sim, ca=ca, broker_host=broker_host,
                             brokerd=brokerd, sites=sites, ue_host=ue_host,
                             credentials=credentials, data_path=data_path,
                             links=links)


class MobilityManager:
    """Drives the detach -> SAP attach -> address install loop for one UE.

    The signaling UE host and the data-plane UE host may be the same host
    or distinct ones (the paper's emulation separates them: real control
    plane measured on the testbed, data plane emulated over T-Mobile).
    """

    def __init__(self, network: CellBricksNetwork,
                 data_path: Optional[CellularPath] = None,
                 detach_interruption: float = 0.05,
                 enforce_qos: bool = False,
                 ue_class: Optional[type] = None):
        self.network = network
        self.sim = network.sim
        # ``network`` may be the 5G dataclass (same site/ue_host shape via
        # its RAT-generic aliases); it carries no data_path field.
        self.data_path = data_path or getattr(network, "data_path", None)
        #: UE agent class — defaults to the LTE CellBricks UE; pass
        #: ``CellBricksUe5G`` with a 5G network for host-driven mobility
        #: across gNB sites (both classes share the attach()/retarget()/
        #: detach_and_forget()/on_attach_done surface).
        self.ue_class = ue_class or CellBricksUe
        self.detach_interruption = detach_interruption
        #: when True, the serving bTelco's PGW polices the UE's downlink
        #: to the broker-assigned AMBR (the qosInfo enforcement of §4.1).
        self.enforce_qos = enforce_qos
        self.current_site: Optional[BtelcoSite] = None
        #: the site an in-flight switch is attaching to.  ``current_site``
        #: commits to it only when the attach fully succeeds (5G: PDU
        #: session included) — a *failed* switch must not leave
        #: ``current_site`` pointing at a bTelco the UE never attached to
        #: (the next migration span would misreport ``from_site`` and
        #: ``on_failed`` would receive the wrong site).
        self.target_site: Optional[BtelcoSite] = None
        #: True between a failed switch and the next successful attach:
        #: the UE is attached nowhere, and ``current_site`` still names
        #: the last site it *was* attached to so a drive can
        #: :meth:`reattach` there.
        self.detached = False
        self.ue: Optional[CellBricksUe] = None
        self.attach_latencies: list[float] = []
        self.switches = 0
        #: attaches that came back unsuccessful — without this counter a
        #: megaload/chaos drive silently under-reported (``switches`` was
        #: already incremented, the failure vanished).
        self.attach_failures = 0
        #: failure cause -> count, for drive-level diagnosis.
        self.failure_causes: dict[str, int] = {}
        #: fired with (site, result) after each successful attach
        self.on_attached: Optional[Callable] = None
        #: fired with (site, result) after each *failed* attach
        self.on_failed: Optional[Callable] = None
        #: open ``migration`` root span for the in-flight switch (closed
        #: by the app layer when the first post-switch byte is delivered,
        #: or superseded by the next switch).
        self._migration_span = None

    # -- observability ----------------------------------------------------
    def _obs_begin_migration(self, site_name: str) -> None:
        """Open the handover stall's root span and register it so the
        transport (MPTCP/QUIC) and app layers can parent under / close
        it.  The signaling UE's re-attach is parented here too."""
        obs = getattr(self.sim, "obs", None)
        if obs is None or not obs.tracing:
            return
        key = self.data_path.ue.name if self.data_path is not None \
            else self.network.ue_host.name
        prior = obs.active_migrations.pop(key, None)
        if prior is not None and prior.end is None:
            obs.tracer.finish(prior, self.sim.now, status="superseded")
        root = obs.tracer.start_trace("migration", "mobility", "mobility",
                                      start=self.sim.now)
        root.data = {"from_site": self.current_site.name,
                     "to_site": site_name}
        obs.active_migrations[key] = root
        self._migration_span = root
        self.ue._obs_parent_ctx = root.context
        obs.tracer.instant(
            "migration.detach", "mobility", self.sim.now,
            trace_id=root.trace_id, parent_id=root.span_id,
            category="mobility",
            data={"interruption_s": self.detach_interruption})

    def _obs_end_reauth(self, status: str) -> None:
        """Record the broker re-auth leg (switch start -> attach done)
        under the open migration root; on failure the root itself closes
        with an error status (no data will flow to close it)."""
        root = self._migration_span
        if root is None:
            return
        self.ue._obs_parent_ctx = None
        obs = getattr(self.sim, "obs", None)
        if obs is None or not obs.tracing:
            return
        if root.end is not None:
            self._migration_span = None
            return
        leg = obs.tracer.begin(
            "migration.reauth", "mobility", "mobility",
            start=root.start, end=self.sim.now,
            trace_id=root.trace_id, parent_id=root.span_id)
        leg.status = status
        if status != "ok":
            obs.tracer.finish(root, self.sim.now, status=status)
            self._migration_span = None

    def start(self, site_name: str) -> None:
        """Initial attach (no prior detach)."""
        site = self.network.sites[site_name]
        self.ue = self.ue_class(self.network.ue_host, site.enb_address,
                                self.network.credentials,
                                target_id_t=site.name)
        self.ue.on_attach_done = self._attach_done
        self.current_site = site
        self.target_site = site
        self.ue.attach()

    def switch_to(self, site_name: str) -> None:
        """Host-driven 'handover': detach, SAP-attach to the new bTelco."""
        if self.ue is None:
            raise RuntimeError("call start() first")
        site = self.network.sites[site_name]
        self.switches += 1
        self._obs_begin_migration(site_name)
        if self.data_path is not None:
            self.data_path.detach(interruption_s=self.detach_interruption)
        # Courtesy switch-off detach towards the old bTelco (it frees the
        # bearer immediately instead of waiting for session expiry).
        self.ue.detach_and_forget()
        self.ue.retarget(site.enb_address, site.name)
        self.target_site = site
        self.ue.attach()

    def reattach(self) -> None:
        """Re-attach to the last successfully-attached site after a
        failed switch (the UE is attached nowhere; ``current_site``
        still names where it last held a bearer)."""
        if self.ue is None or self.current_site is None:
            raise RuntimeError("nothing to re-attach to")
        site = self.current_site
        self.ue.retarget(site.enb_address, site.name)
        self.target_site = site
        self.ue.attach()

    def _commit_site(self, site) -> None:
        """The attach fully succeeded: only now does the UE *hold* a
        bearer at ``site``."""
        self.current_site = site
        self.target_site = None
        self.detached = False

    def _attach_failed(self, site, result,
                       default_cause: str = "unspecified") -> None:
        self.attach_failures += 1
        cause = getattr(result, "cause", "") or default_cause
        self.failure_causes[cause] = self.failure_causes.get(cause, 0) + 1
        self.detached = True
        self.target_site = None
        self._obs_end_reauth("error")
        if self.on_failed is not None:
            self.on_failed(site, result)

    def _attach_done(self, result) -> None:
        site = self.target_site or self.current_site
        if not result.success:
            self._attach_failed(site, result)
            return
        ue_ip = getattr(result, "ue_ip", None)
        if ue_ip is None and hasattr(self.ue, "establish_session"):
            # 5G: registration grants no bearer IP — that comes from the
            # PDU session.  The re-auth leg of a switch isn't over until
            # the session is up, so the span closes — and the switch's
            # latency is recorded — in _session_done.
            self.ue.on_session_done = lambda sres: \
                self._session_done(result, sres)
            self.ue.establish_session()
            return
        self.attach_latencies.append(result.latency)
        self._commit_site(site)
        self._obs_end_reauth("ok")
        self._install_and_notify(result, ue_ip)

    def _session_done(self, reg_result, session_result) -> None:
        """5G PDU-session completion: the point the bearer is usable."""
        site = self.target_site or self.current_site
        if not session_result.success:
            self._attach_failed(site, session_result,
                                default_cause="session")
            return
        # Full re-auth time: registration plus the PDU-session leg, the
        # same interval the reauth span covers.  Recording it here (not
        # in _attach_done) keeps a switch whose session later fails out
        # of the success-latency series.
        self.attach_latencies.append(
            reg_result.latency + session_result.latency)
        self._commit_site(site)
        self._obs_end_reauth("ok")
        self._install_and_notify(reg_result, session_result.ue_ip)

    def _install_and_notify(self, result, ue_ip: Optional[str]) -> None:
        if self.data_path is not None and ue_ip is not None:
            self.data_path.install_ue_address(ue_ip)
            if self.enforce_qos:
                self._apply_ambr(ue_ip)
        if self.on_attached is not None:
            self.on_attached(self.current_site, result)

    def _apply_ambr(self, ue_ip: str) -> None:
        """Install the bearer's AMBR as a PGW policer on the data plane.

        O(1) via the SPGW's ``ue_ip`` index — the previous full-bearer
        scan was O(bearers) on every attach, quadratic over a fleet.
        """
        bearer = self.current_site.agw.spgw.bearer_by_ip(ue_ip)
        if bearer is not None:
            self.data_path.set_shaper_rate(bearer.ambr_dl_bps)
