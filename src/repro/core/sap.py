"""SAP — the Secure Attachment Protocol (§4.1, Fig 2 & Fig 3).

Pure protocol logic, independent of the signaling transport: the
procedures run at the UE (:class:`UeSap`), the bTelco
(:class:`BtelcoSap`), and the broker (:class:`BrokerSap`).  The LTE-side
components (:mod:`repro.core.ue_agent`, :mod:`repro.core.btelco`,
:mod:`repro.core.broker`) drive these over NAS / the bTelco-broker
channel.

Security goals realized here (paper's requirements i-iii):

* mutual authentication UE <-> broker — the UE proves itself via the
  signature over the encrypted authVec; the broker proves itself via its
  signature over authRespU carrying the UE's fresh nonce;
* mutual authentication bTelco <-> broker — certificate-based, both ways;
* authorization — authRespT, signed by the broker, is the bTelco's
  irrefutable proof that serving this (pseudonymous) UE was authorized.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto import (
    Certificate,
    CertificateError,
    CryptoError,
    PrivateKey,
    PublicKey,
    validate_certificate,
)

from .messages import (
    AuthReqT,
    AuthReqU,
    AuthRespT,
    AuthRespU,
    AuthVec,
    MessageError,
    NONCE_SIZE,
    SealedResponse,
    seal_and_sign,
    signed_bytes_for_auth_req_t,
)
from .qos import QosCapabilities, QosInfo, select_qos

SS_SIZE = 32  # shared secret = KASME master key


class SapError(Exception):
    """Raised when a SAP check fails (authentication, freshness, ...)."""


# ---------------------------------------------------------------------------
# UE side (Fig 2)
# ---------------------------------------------------------------------------

@dataclass
class UeSapCredentials:
    """What the SIM card stores: U's keypair and B's public key (§4.1:
    "U only requires a small set of static parameters...  embedded in the
    U's SIM card")."""

    id_u: str
    id_b: str
    ue_key: PrivateKey
    broker_public_key: PublicKey


class UeSap:
    """UE-side SAP procedures."""

    def __init__(self, credentials: UeSapCredentials,
                 rng_nonce: Optional[Callable[[], bytes]] = None):
        self.credentials = credentials
        self._nonce_source = rng_nonce or (lambda: secrets.token_bytes(NONCE_SIZE))
        self._outstanding_nonce: Optional[bytes] = None
        self._target_id_t: Optional[str] = None

    def craft_request(self, id_t: str) -> AuthReqU:
        """Steps 1-4 of Fig 2: build authReqU for bTelco ``id_t``."""
        creds = self.credentials
        nonce = self._nonce_source()
        self._outstanding_nonce = nonce
        self._target_id_t = id_t
        auth_vec = AuthVec(id_u=creds.id_u, id_b=creds.id_b, id_t=id_t,
                           nonce=nonce)
        encrypted = creds.broker_public_key.encrypt(auth_vec.to_bytes())
        signature = creds.ue_key.sign(encrypted)
        return AuthReqU(sig_authvec=signature, auth_vec_encrypted=encrypted,
                        id_b=creds.id_b)

    def process_response(self, sealed: SealedResponse) -> AuthRespU:
        """Steps 5-6 of Fig 2: authenticate B, recover ss, check freshness.

        Raises :class:`SapError` on any failure.
        """
        creds = self.credentials
        if not sealed.verify(creds.broker_public_key):
            raise SapError("authRespU: broker signature invalid")
        try:
            payload = creds.ue_key.decrypt(sealed.blob)
            response = AuthRespU.from_bytes(payload)
        except (CryptoError, MessageError) as exc:
            raise SapError(f"authRespU: {exc}") from exc
        if self._outstanding_nonce is None \
                or response.nonce != self._outstanding_nonce:
            raise SapError("authRespU: nonce mismatch (replay?)")
        if response.id_u != creds.id_u:
            raise SapError("authRespU: wrong UE identity")
        if response.id_t != self._target_id_t:
            raise SapError("authRespU: wrong bTelco identity")
        self._outstanding_nonce = None
        return response


# ---------------------------------------------------------------------------
# bTelco side (Fig 3, top)
# ---------------------------------------------------------------------------

@dataclass
class BtelcoSapConfig:
    id_t: str
    key: PrivateKey
    certificate: Certificate
    qos_capabilities: QosCapabilities = field(default_factory=QosCapabilities)
    ca_public_key: Optional[PublicKey] = None  # to validate broker certs


@dataclass
class AuthorizedSession:
    """What the bTelco retains after a successful SAP run."""

    id_u_opaque: str
    ss: bytes
    qos_info: QosInfo
    session_id: str
    expires_at: float
    authorization: SealedResponse  # irrefutable broker-signed proof
    lawful_intercept: bool = False


class BtelcoSap:
    """bTelco-side SAP procedures."""

    def __init__(self, config: BtelcoSapConfig):
        self.config = config

    def augment_request(self, auth_req_u: AuthReqU,
                        lawful_intercept: bool = False) -> AuthReqT:
        """Build authReqT: add identity, cert, qosCap; sign the result."""
        cfg = self.config
        to_sign = signed_bytes_for_auth_req_t(
            auth_req_u, cfg.id_t, cfg.qos_capabilities, lawful_intercept)
        return AuthReqT(auth_req_u=auth_req_u, id_t=cfg.id_t,
                        qos_cap=cfg.qos_capabilities,
                        t_certificate=cfg.certificate,
                        sig_t=cfg.key.sign(to_sign),
                        lawful_intercept=lawful_intercept)

    def process_authorization(self, sealed: SealedResponse,
                              broker_public_key: PublicKey,
                              broker_certificate: Optional[Certificate],
                              now: float) -> AuthorizedSession:
        """Validate authRespT: authenticate B and extract (ss, qosInfo)."""
        if broker_certificate is not None:
            if self.config.ca_public_key is None:
                raise SapError("no CA key configured to validate broker cert")
            try:
                validate_certificate(broker_certificate,
                                     self.config.ca_public_key, now,
                                     expected_role="broker")
            except CertificateError as exc:
                raise SapError(f"broker certificate invalid: {exc}") from exc
            broker_public_key = broker_certificate.public_key
        if not sealed.verify(broker_public_key):
            raise SapError("authRespT: broker signature invalid")
        try:
            payload = self.config.key.decrypt(sealed.blob)
            response = AuthRespT.from_bytes(payload)
        except (CryptoError, MessageError) as exc:
            raise SapError(f"authRespT: {exc}") from exc
        if response.id_t != self.config.id_t:
            raise SapError("authRespT: authorization is for a different bTelco")
        if response.expires_at < now:
            raise SapError("authRespT: authorization expired")
        if not self.config.qos_capabilities.can_satisfy(response.qos_info):
            raise SapError("authRespT: qosInfo exceeds advertised capability")
        return AuthorizedSession(
            id_u_opaque=response.id_u_opaque, ss=response.ss,
            qos_info=response.qos_info, session_id=response.session_id,
            expires_at=response.expires_at, authorization=sealed,
            lawful_intercept=response.lawful_intercept)


# ---------------------------------------------------------------------------
# Broker side (Fig 3, bottom)
# ---------------------------------------------------------------------------

@dataclass
class BrokerSubscriber:
    """A subscriber record in the broker's SubscriberDB."""

    id_u: str
    public_key: PublicKey
    qos_plan: QosInfo = field(default_factory=QosInfo)
    suspended: bool = False


@dataclass
class SapGrant:
    """The broker's bookkeeping for one approved attachment."""

    id_u: str
    id_u_opaque: str
    id_t: str
    session_id: str
    ss: bytes
    qos_info: QosInfo
    granted_at: float
    expires_at: float


class BrokerSap:
    """Broker-side SAP procedures: authenticate U and T, authorize, and
    mint the two sealed responses."""

    def __init__(self, id_b: str, key: PrivateKey,
                 ca_public_key: PublicKey,
                 session_ttl: float = 3600.0):
        self.id_b = id_b
        self.key = key
        self.ca_public_key = ca_public_key
        self.session_ttl = session_ttl
        self.subscribers: dict[str, BrokerSubscriber] = {}
        self.grants: dict[str, SapGrant] = {}   # session_id -> grant
        #: subscribers under a lawful-intercept mandate (court orders).
        self.li_targets: set[str] = set()
        self._session_counter = 0
        self._seen_nonces: set[bytes] = set()
        #: policy hook: returns None to approve or a denial cause string.
        self.authorize_btelco: Callable[[str], Optional[str]] = lambda id_t: None

    # -- provisioning -----------------------------------------------------------
    def enroll(self, subscriber: BrokerSubscriber) -> None:
        self.subscribers[subscriber.id_u] = subscriber

    def revoke(self, id_u: str) -> None:
        """Revoke a UE's key by invalidating it in the database (§4.1)."""
        if id_u in self.subscribers:
            self.subscribers[id_u].suspended = True

    # -- the handler of Fig 3 (bottom) --------------------------------------------
    def process_request(self, request: AuthReqT, now: float
                        ) -> tuple[SealedResponse, SealedResponse, SapGrant]:
        """Authenticate U and T; authorize; return (authRespT, authRespU).

        Raises :class:`SapError` with a denial cause on any failure.
        """
        # 1. Authenticate T: certificate chain + signature over the request.
        try:
            validate_certificate(request.t_certificate, self.ca_public_key,
                                 now, expected_role="btelco")
        except CertificateError as exc:
            raise SapError(f"bTelco certificate invalid: {exc}") from exc
        if request.t_certificate.subject != request.id_t:
            raise SapError("bTelco identity does not match certificate")
        if not request.t_certificate.public_key.verify(
                request.signed_bytes(), request.sig_t):
            raise SapError("authReqT: bTelco signature invalid")

        # 2. Decrypt authVec and authenticate U.
        try:
            auth_vec = AuthVec.from_bytes(
                self.key.decrypt(request.auth_req_u.auth_vec_encrypted))
        except (CryptoError, MessageError) as exc:
            raise SapError(f"authVec: {exc}") from exc
        if auth_vec.id_b != self.id_b:
            raise SapError("authVec addressed to a different broker")
        if auth_vec.id_t != request.id_t:
            raise SapError("authVec bTelco mismatch (relay attack?)")
        subscriber = self.subscribers.get(auth_vec.id_u)
        if subscriber is None:
            raise SapError("unknown subscriber")
        if subscriber.suspended:
            raise SapError("subscriber suspended")
        if not subscriber.public_key.verify(
                request.auth_req_u.auth_vec_encrypted,
                request.auth_req_u.sig_authvec):
            raise SapError("authReqU: UE signature invalid")
        if auth_vec.nonce in self._seen_nonces:
            raise SapError("replayed nonce")
        self._seen_nonces.add(auth_vec.nonce)

        # 3. Authorization policy (profiles, reputation, ...).
        cause = self.authorize_btelco(request.id_t)
        if cause is not None:
            raise SapError(f"bTelco not authorized: {cause}")
        # 3b. Lawful intercept: a mandated subscriber may only be served
        # by bTelcos that advertise LI capability (negotiated in SAP).
        li_required = auth_vec.id_u in self.li_targets
        if li_required and not request.qos_cap.supports_lawful_intercept:
            raise SapError("lawful intercept required but unsupported")

        # 4. Mint the session: shared secret, pseudonym, QoS selection.
        ss = secrets.token_bytes(SS_SIZE)
        self._session_counter += 1
        session_id = f"{self.id_b}:{self._session_counter:08d}"
        id_u_opaque = f"anon-{self.id_b}-{self._session_counter:08d}"
        qos_info = select_qos(request.qos_cap, subscriber.qos_plan)
        expires_at = now + self.session_ttl

        resp_t = AuthRespT(id_u_opaque=id_u_opaque, id_t=request.id_t,
                           ss=ss, qos_info=qos_info, session_id=session_id,
                           expires_at=expires_at,
                           lawful_intercept=li_required)
        resp_u = AuthRespU(id_u=auth_vec.id_u, id_t=request.id_t, ss=ss,
                           nonce=auth_vec.nonce, session_id=session_id)
        sealed_t = seal_and_sign(resp_t.to_bytes(),
                                 request.t_certificate.public_key, self.key)
        sealed_u = seal_and_sign(resp_u.to_bytes(), subscriber.public_key,
                                 self.key)
        grant = SapGrant(id_u=auth_vec.id_u, id_u_opaque=id_u_opaque,
                         id_t=request.id_t, session_id=session_id, ss=ss,
                         qos_info=qos_info, granted_at=now,
                         expires_at=expires_at)
        self.grants[session_id] = grant
        return sealed_t, sealed_u, grant
