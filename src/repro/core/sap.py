"""SAP — the Secure Attachment Protocol (§4.1, Fig 2 & Fig 3).

Pure protocol logic, independent of the signaling transport: the
procedures run at the UE (:class:`UeSap`), the bTelco
(:class:`BtelcoSap`), and the broker (:class:`BrokerSap`).  The LTE-side
components (:mod:`repro.core.ue_agent`, :mod:`repro.core.btelco`,
:mod:`repro.core.broker`) drive these over NAS / the bTelco-broker
channel.

Security goals realized here (paper's requirements i-iii):

* mutual authentication UE <-> broker — the UE proves itself via the
  signature over the encrypted authVec; the broker proves itself via its
  signature over authRespU carrying the UE's fresh nonce;
* mutual authentication bTelco <-> broker — certificate-based, both ways;
* authorization — authRespT, signed by the broker, is the bTelco's
  irrefutable proof that serving this (pseudonymous) UE was authorized.
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
import secrets
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs import CounterAttr, MetricsRegistry

from repro.crypto import (
    Certificate,
    CertificateError,
    CryptoError,
    PrivateKey,
    PublicKey,
    validate_certificate,
)

from .messages import (
    AuthReqT,
    AuthReqU,
    AuthRespT,
    AuthRespU,
    AuthVec,
    DenialCause,
    MessageError,
    NONCE_SIZE,
    ScopeToken,
    SealedResponse,
    scope_attach_mac,
    seal_and_sign,
    signed_bytes_for_auth_req_t,
)
from .qos import QosCapabilities, QosInfo, select_qos

SS_SIZE = 32  # shared secret = KASME master key


class SapError(Exception):
    """Raised when a SAP check fails (authentication, freshness, ...).

    ``cause`` classifies the denial (see :class:`DenialCause`) so callers
    can aggregate counters and surface machine-readable reasons without
    parsing the human-oriented message.
    """

    def __init__(self, message: str,
                 cause: DenialCause = DenialCause.OTHER):
        super().__init__(message)
        self.cause = cause


# ---------------------------------------------------------------------------
# UE side (Fig 2)
# ---------------------------------------------------------------------------

@dataclass
class UeSapCredentials:
    """What the SIM card stores: U's keypair and B's public key (§4.1:
    "U only requires a small set of static parameters...  embedded in the
    U's SIM card")."""

    id_u: str
    id_b: str
    ue_key: PrivateKey
    broker_public_key: PublicKey


class UeSap:
    """UE-side SAP procedures."""

    def __init__(self, credentials: UeSapCredentials,
                 rng_nonce: Optional[Callable[[], bytes]] = None):
        self.credentials = credentials
        self._nonce_source = rng_nonce or (lambda: secrets.token_bytes(NONCE_SIZE))
        self._outstanding_nonce: Optional[bytes] = None
        self._target_id_t: Optional[str] = None

    def craft_request(self, id_t: str,
                      scope: Optional[dict] = None) -> AuthReqU:
        """Steps 1-4 of Fig 2: build authReqU for bTelco ``id_t``.

        ``scope`` optionally asks the broker for a mobility scope
        (``{"telcos": [...], "ttl": seconds}``); it rides inside the
        encrypted+signed authVec so nobody on path can widen it.
        """
        creds = self.credentials
        nonce = self._nonce_source()
        self._outstanding_nonce = nonce
        self._target_id_t = id_t
        auth_vec = AuthVec(id_u=creds.id_u, id_b=creds.id_b, id_t=id_t,
                           nonce=nonce, scope=scope)
        encrypted = creds.broker_public_key.encrypt(auth_vec.to_bytes())
        signature = creds.ue_key.sign(encrypted)
        return AuthReqU(sig_authvec=signature, auth_vec_encrypted=encrypted,
                        id_b=creds.id_b)

    def abandon(self) -> None:
        """Discard the outstanding (nonce, target) pair.

        Called when an attach attempt is given up (retransmission budget
        exhausted): no late-arriving response may validate against the
        abandoned nonce, and the next attach crafts a fresh request.
        """
        self._outstanding_nonce = None
        self._target_id_t = None

    def process_response(self, sealed: SealedResponse) -> AuthRespU:
        """Steps 5-6 of Fig 2: authenticate B, recover ss, check freshness.

        Raises :class:`SapError` on any failure.  The outstanding
        (nonce, target) pair is single-use: it is cleared on success *and*
        on failure, so a stale target can never validate a later response
        and any failed exchange forces a fresh :meth:`craft_request`.
        """
        creds = self.credentials
        try:
            if not sealed.verify(creds.broker_public_key):
                raise SapError("authRespU: broker signature invalid",
                               cause=DenialCause.BAD_SIGNATURE)
            try:
                payload = creds.ue_key.decrypt(sealed.blob)
                response = AuthRespU.from_bytes(payload)
            except (CryptoError, MessageError) as exc:
                raise SapError(f"authRespU: {exc}",
                               cause=DenialCause.MALFORMED) from exc
            if self._outstanding_nonce is None \
                    or response.nonce != self._outstanding_nonce:
                raise SapError("authRespU: nonce mismatch (replay?)",
                               cause=DenialCause.REPLAY)
            if response.id_u != creds.id_u:
                raise SapError("authRespU: wrong UE identity",
                               cause=DenialCause.MISMATCH)
            if response.id_t != self._target_id_t:
                raise SapError("authRespU: wrong bTelco identity",
                               cause=DenialCause.MISMATCH)
        finally:
            self._outstanding_nonce = None
            self._target_id_t = None
        return response


@dataclass
class MobilityGrant:
    """UE-side retained state for scope-local re-attach (§4.2).

    Survives ``detach_and_forget`` (unlike the per-attach EMM state):
    while the scope covers the target bTelco and has not expired, a
    re-attach presents the token + a fresh monotonic counter instead of
    crafting a new authReqU.
    """

    token: ScopeToken
    session_id: str
    ss: bytes
    #: next attach counter to present — globally monotonic per grant
    #: across every bTelco in the scope.
    next_counter: int = 1

    def covers(self, id_t: str, now: float) -> bool:
        return self.token.covers(id_t, now)


# ---------------------------------------------------------------------------
# bTelco side (Fig 3, top)
# ---------------------------------------------------------------------------

@dataclass
class BtelcoSapConfig:
    id_t: str
    key: PrivateKey
    certificate: Certificate
    qos_capabilities: QosCapabilities = field(default_factory=QosCapabilities)
    ca_public_key: Optional[PublicKey] = None  # to validate broker certs


@dataclass
class AuthorizedSession:
    """What the bTelco retains after a successful SAP run."""

    id_u_opaque: str
    ss: bytes
    qos_info: QosInfo
    session_id: str
    expires_at: float
    #: irrefutable broker-signed proof: the sealed authRespT for a full
    #: SAP run, or the :class:`~repro.core.messages.ScopeToken` for a
    #: scope-local re-attach.
    authorization: object
    lawful_intercept: bool = False


class BtelcoSap:
    """bTelco-side SAP procedures."""

    def __init__(self, config: BtelcoSapConfig):
        self.config = config
        #: grants the broker has withdrawn (revocation cascade): sessions
        #: listed here must no longer be honoured or re-validated.
        self.revoked_sessions: set[str] = set()

    def revoke_session(self, session_id: str) -> None:
        """Record a broker-side revocation of an issued authorization."""
        self.revoked_sessions.add(session_id)

    def session_authorized(self, session_id: str) -> bool:
        return session_id not in self.revoked_sessions

    def augment_request(self, auth_req_u: AuthReqU,
                        lawful_intercept: bool = False) -> AuthReqT:
        """Build authReqT: add identity, cert, qosCap; sign the result."""
        cfg = self.config
        to_sign = signed_bytes_for_auth_req_t(
            auth_req_u, cfg.id_t, cfg.qos_capabilities, lawful_intercept)
        return AuthReqT(auth_req_u=auth_req_u, id_t=cfg.id_t,
                        qos_cap=cfg.qos_capabilities,
                        t_certificate=cfg.certificate,
                        sig_t=cfg.key.sign(to_sign),
                        lawful_intercept=lawful_intercept)

    def process_authorization(self, sealed: SealedResponse,
                              broker_public_key: PublicKey,
                              broker_certificate: Optional[Certificate],
                              now: float) -> AuthorizedSession:
        """Validate authRespT: authenticate B and extract (ss, qosInfo)."""
        if broker_certificate is not None:
            if self.config.ca_public_key is None:
                raise SapError("no CA key configured to validate broker cert")
            try:
                validate_certificate(broker_certificate,
                                     self.config.ca_public_key, now,
                                     expected_role="broker")
            except CertificateError as exc:
                raise SapError(f"broker certificate invalid: {exc}") from exc
            broker_public_key = broker_certificate.public_key
        if not sealed.verify(broker_public_key):
            raise SapError("authRespT: broker signature invalid")
        try:
            payload = self.config.key.decrypt(sealed.blob)
            response = AuthRespT.from_bytes(payload)
        except (CryptoError, MessageError) as exc:
            raise SapError(f"authRespT: {exc}") from exc
        if response.id_t != self.config.id_t:
            raise SapError("authRespT: authorization is for a different bTelco",
                           cause=DenialCause.MISMATCH)
        if response.session_id in self.revoked_sessions:
            raise SapError("authRespT: session revoked",
                           cause=DenialCause.REVOKED)
        if response.expires_at < now:
            raise SapError("authRespT: authorization expired",
                           cause=DenialCause.EXPIRED)
        if not self.config.qos_capabilities.can_satisfy(response.qos_info):
            raise SapError("authRespT: qosInfo exceeds advertised capability")
        return AuthorizedSession(
            id_u_opaque=response.id_u_opaque, ss=response.ss,
            qos_info=response.qos_info, session_id=response.session_id,
            expires_at=response.expires_at, authorization=sealed,
            lawful_intercept=response.lawful_intercept)

    def validate_scoped_attach(self, token: ScopeToken, counter: int,
                               mac: bytes,
                               broker_public_keys: dict,
                               now: float,
                               highest_counter: int) -> AuthorizedSession:
        """Validate a scope-local re-attach **locally** — no broker RTT.

        Checks, in order: the broker signature over the token payload,
        scope membership + expiry, no local revocation tombstone,
        recovery of ss from our sealed ``ess`` entry, the UE's
        proof-of-possession MAC, and the monotonic attach counter
        against ``highest_counter`` (the highest this bTelco has seen
        for the grant).  Read-only: a pure function of its arguments —
        the caller commits the counter only when it actually admits the
        UE, so probes cannot burn counters.
        """
        broker_key = broker_public_keys.get(token.id_b)
        if broker_key is None:
            raise SapError("scope: token from an unknown broker",
                           cause=DenialCause.MISMATCH)
        if not token.verify(broker_key):
            raise SapError("scope: broker signature invalid",
                           cause=DenialCause.BAD_SIGNATURE)
        if not token.covers(self.config.id_t, now):
            if now >= token.expires_at:
                raise SapError("scope: token expired",
                               cause=DenialCause.EXPIRED)
            raise SapError("scope: bTelco not in the grant's scope",
                           cause=DenialCause.POLICY)
        if token.session_id in self.revoked_sessions:
            raise SapError("scope: session revoked",
                           cause=DenialCause.REVOKED)
        try:
            ss = self.config.key.decrypt(token.sealed_ss_for(
                self.config.id_t))
        except CryptoError as exc:
            raise SapError(f"scope: sealed ss undecryptable: {exc}",
                           cause=DenialCause.MALFORMED) from exc
        if scope_attach_mac(ss, token.session_id, counter,
                            self.config.id_t) != mac:
            raise SapError("scope: possession MAC invalid",
                           cause=DenialCause.BAD_SIGNATURE)
        if counter <= highest_counter:
            raise SapError("scope: replayed attach counter",
                           cause=DenialCause.REPLAY)
        qos = token.payload.get("qos", {})
        qos_info = QosInfo(qci=qos.get("qci", 9),
                           ambr_dl_bps=qos.get("dl", 20e6),
                           ambr_ul_bps=qos.get("ul", 10e6),
                           arp_priority=qos.get("arp", 9))
        if not self.config.qos_capabilities.can_satisfy(qos_info):
            raise SapError("scope: qosInfo exceeds advertised capability")
        return AuthorizedSession(
            id_u_opaque=token.id_u_opaque, ss=ss, qos_info=qos_info,
            session_id=token.session_id, expires_at=token.expires_at,
            authorization=token,
            lawful_intercept=bool(token.payload.get("li", False)))


# ---------------------------------------------------------------------------
# Broker side (Fig 3, bottom)
# ---------------------------------------------------------------------------

@dataclass
class BrokerSubscriber:
    """A subscriber record in the broker's SubscriberDB."""

    id_u: str
    public_key: PublicKey
    qos_plan: QosInfo = field(default_factory=QosInfo)
    suspended: bool = False


@dataclass
class SapGrant:
    """The broker's bookkeeping for one approved attachment."""

    id_u: str
    id_u_opaque: str
    id_t: str
    session_id: str
    ss: bytes
    qos_info: QosInfo
    granted_at: float
    expires_at: float


class ShardRouter:
    """Deterministic consistent-hash ring mapping ``id_u`` to a shard id.

    SHA-256 points with virtual nodes: adding or removing a shard moves
    only ~1/N of the keyspace, and placement is a pure function of the
    id — no randomness, no clock — so identically-seeded runs (and
    distinct processes) agree on every assignment.
    """

    VIRTUAL_NODES = 64

    def __init__(self, shard_ids=()):
        self._shards: set[int] = set()
        self._points: list[int] = []
        self._owners: list[int] = []
        for shard_id in shard_ids:
            self.add(shard_id)

    @staticmethod
    def _point(token: str) -> int:
        return int.from_bytes(
            hashlib.sha256(token.encode("utf-8")).digest()[:8], "big")

    def _rebuild(self, entries: list[tuple[int, int]]) -> None:
        entries.sort()
        self._points = [point for point, _ in entries]
        self._owners = [owner for _, owner in entries]

    def add(self, shard_id: int) -> None:
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id} already on the ring")
        self._shards.add(shard_id)
        entries = list(zip(self._points, self._owners))
        entries.extend(
            (self._point(f"shard:{shard_id}:{replica}"), shard_id)
            for replica in range(self.VIRTUAL_NODES))
        self._rebuild(entries)

    def remove(self, shard_id: int) -> None:
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id} not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.discard(shard_id)
        self._rebuild([(point, owner)
                       for point, owner in zip(self._points, self._owners)
                       if owner != shard_id])

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._shards))

    def shard_for(self, id_u: str) -> int:
        """The shard owning ``id_u`` (first ring point clockwise)."""
        if not self._points:
            raise ValueError("empty shard ring")
        index = bisect.bisect_right(self._points, self._point(f"u:{id_u}"))
        if index == len(self._points):
            index = 0
        return self._owners[index]


class SapShard:
    """One consistent-hash partition of the broker's SAP state.

    Everything keyed (directly or transitively) by ``id_u`` lives here:
    the subscriber records, their outstanding grants and expiry heap,
    the replay window for their nonces, and revoked-session tombstones.
    Each shard tallies its own labeled counters, so a fleet snapshot
    shows per-shard load skew.
    """

    def __init__(self, shard_id: int, metrics: MetricsRegistry):
        self.shard_id = shard_id
        self.subscribers: dict[str, BrokerSubscriber] = {}
        self.grants: dict[str, SapGrant] = {}   # session_id -> grant
        #: replay window: nonce -> (end of window, owning subscriber).
        #: The owner is carried so a rebalance can hand the entry to the
        #: subscriber's new shard with its window intact.
        self.seen_nonces: dict[bytes, tuple[float, str]] = {}
        self.nonce_expiry: list[tuple[float, bytes]] = []    # min-heap
        self.grant_expiry: list[tuple[float, str]] = []      # min-heap
        self.sessions_by_ue: dict[str, set[str]] = {}
        #: sessions revoked before natural expiry:
        #: session_id -> (owner, original expiry) so the tombstone and
        #: its eviction deadline survive a handoff.
        self.revoked_sessions: dict[str, tuple[str, float]] = {}
        #: per-grant highest attach counter seen via scope-attach
        #: notices — the broker's *authoritative* replay floor for
        #: mobility-scoped re-attaches (replicated by shard hosts, moved
        #: with the subscriber on rebalance).
        self.scope_counters: dict[str, int] = {}
        label = str(shard_id)
        self.attach_ok = metrics.counter("sap.shard.attach_ok", shard=label)
        self.replay_hits = metrics.counter(
            "sap.shard.replay_hits", shard=label)
        self.grants_expired = metrics.counter(
            "sap.shard.grants_expired", shard=label)
        self.grants_revoked = metrics.counter(
            "sap.shard.grants_revoked", shard=label)
        self.scope_attaches = metrics.counter(
            "sap.shard.scope_attaches", shard=label)

    def evict_nonces(self, now: float) -> None:
        """Drop nonces whose replay window has closed (monotone sweep).

        Heap entries whose nonce has moved to another shard (rebalance)
        or was already evicted are skipped — stale entries are lazily
        discarded rather than eagerly rewritten at handoff time.
        """
        heap = self.nonce_expiry
        while heap and heap[0][0] <= now:
            _, nonce = heapq.heappop(heap)
            entry = self.seen_nonces.get(nonce)
            if entry is not None and entry[0] <= now:
                del self.seen_nonces[nonce]

    def note_nonce(self, nonce: bytes, id_u: str, window_end: float) -> None:
        self.seen_nonces[nonce] = (window_end, id_u)
        heapq.heappush(self.nonce_expiry, (window_end, nonce))

    def stats(self) -> dict:
        return {
            "shard": self.shard_id,
            "attach_ok": self.attach_ok.value,
            "replay_hits": self.replay_hits.value,
            "grants_active": len(self.grants),
            "grants_expired": self.grants_expired.value,
            "grants_revoked": self.grants_revoked.value,
            "replay_cache_size": len(self.seen_nonces),
            "subscribers": len(self.subscribers),
            "scope_attaches": self.scope_attaches.value,
            "scope_counters": len(self.scope_counters),
        }


@dataclass
class PreparedAuth:
    """Output of :meth:`BrokerSap.prevalidate`: a request whose signatures
    and authVec have been checked, routed to its shard, and now only
    needs the shard-serialized replay/policy/mint stage."""

    request: AuthReqT
    digest: bytes
    auth_vec: AuthVec
    subscriber: BrokerSubscriber
    shard_id: int


class BrokerSap:
    """Broker-side SAP procedures: authenticate U and T, authorize, and
    mint the two sealed responses.

    Session-lifecycle state is O(active sessions), not O(all history):

    * the replay cache maps each accepted nonce to the end of its
      ``session_ttl``-sized window and is monotonically evicted on every
      :meth:`process_request` call — a nonce reused inside the window is
      rejected, and the cache never outgrows the live window;
    * grants carry an expiry and are garbage-collected by
      :meth:`expire_grants`, which also runs amortized from the request
      hot path;
    * :meth:`revoke` cascades to the subscriber's outstanding grants
      (``on_grant_revoked`` lets the hosting broker notify bTelcos).

    Sharding: all per-subscriber state is partitioned into
    :class:`SapShard` instances behind a :class:`ShardRouter`
    (consistent hashing on ``id_u``), so a hosting daemon can serve
    shards concurrently and rebalance them online
    (:meth:`add_shard` / :meth:`remove_shard` hand state off with replay
    windows intact).  ``num_shards=1`` (the default) is behaviorally
    identical to the historical unsharded broker, and the legacy
    attribute surface (``subscribers``, ``grants``, ``_seen_nonces``,
    ...) is preserved as merged views over the shards.

    The request path is split into two stages so a batching daemon can
    overlap work: :meth:`prevalidate` (certificate + signature checks
    and authVec decryption — parallelizable, no shard state touched)
    and :meth:`finish_request` (replay window, policy, minting —
    serialized per shard).  :meth:`process_request` composes the two
    and remains the one-call API.
    """

    #: how long a minted response stays replayable for retransmitted
    #: requests (idempotency window; clamped to ``session_ttl``).
    response_cache_ttl = 30.0

    #: longest mobility-scope TTL the broker will sign (policy knob —
    #: the scope is also clamped to the grant's own lifetime).
    scope_ttl_max = 600.0

    # -- registry-backed lifecycle counters --------------------------------
    attach_ok = CounterAttr("sap.attach_ok")
    replay_hits = CounterAttr("sap.replay_hits")
    grants_expired = CounterAttr("sap.grants_expired")
    grants_revoked = CounterAttr("sap.grants_revoked")
    dup_requests_served = CounterAttr("sap.dup_requests_served")

    def __init__(self, id_b: str, key: PrivateKey,
                 ca_public_key: PublicKey,
                 session_ttl: float = 3600.0,
                 metrics: Optional[MetricsRegistry] = None,
                 num_shards: int = 1,
                 session_prefix: Optional[str] = None):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        #: counters land here; the hosting daemon passes its own registry
        #: so SAP tallies appear in the node's fleet-mergeable snapshot.
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry(node=f"sap:{id_b}")
        self.id_b = id_b
        self.key = key
        self.ca_public_key = ca_public_key
        self.session_ttl = session_ttl
        #: session-id/pseudonym namespace.  Defaults to ``id_b``; a
        #: network-attached shard host overrides it so sessions minted by
        #: distinct hosts of the same broker can never collide.
        self._session_prefix = session_prefix or id_b
        #: subscribers under a lawful-intercept mandate (court orders).
        #: Broker-global: LI is a legal-process flag, not session state.
        self.li_targets: set[str] = set()
        self._session_counter = 0
        self.router = ShardRouter()
        self._shards: dict[int, SapShard] = {}
        for shard_id in range(num_shards):
            self._shards[shard_id] = SapShard(shard_id, self.metrics)
            self.router.add(shard_id)
        self._next_shard_id = num_shards
        #: idempotency cache: request digest -> the minted response
        #: triple, so a *retransmitted* request (bit-identical, thus the
        #: same nonce) re-serves the original grant instead of tripping
        #: the replay window.  A *different* request reusing the nonce
        #: (different digest) still lands in the replay check.  Kept at
        #: the router level: the digest is known before the authVec is
        #: decrypted (i.e. before the owning shard is), and duplicates
        #: must short-circuit ahead of any shard work.
        self._response_cache: dict[bytes, tuple] = {}
        self._response_cache_expiry: list[tuple[float, bytes]] = []  # heap
        #: bTelco directory for mobility scopes: id_t -> public key of
        #: every CA-validated site the broker has seen (explicitly via
        #: :meth:`register_btelco` or implicitly from processed
        #: authReqTs).  Scope tokens can only name directory members —
        #: each needs a sealed copy of ss encrypted to that site's key.
        self.btelco_directory: dict[str, PublicKey] = {}
        #: policy hook: returns None to approve or a denial cause string.
        self.authorize_btelco: Callable[[str], Optional[str]] = lambda id_t: None
        #: lifecycle hooks for the hosting broker daemon.
        self.on_grant_expired: Optional[Callable[[SapGrant], None]] = None
        self.on_grant_revoked: Optional[Callable[[SapGrant], None]] = None
        # -- lifecycle counters (see stats()) --
        self.attach_ok = 0
        #: DenialCause value -> n, as a registry-backed counter family
        #: (keeps the Counter-style ``[cause] += 1`` / ``dict(...)`` API).
        self.attach_denied = self.metrics.counter_vec(
            "sap.attach_denied", "cause")
        self.replay_hits = 0
        self.grants_expired = 0
        self.grants_revoked = 0
        self.dup_requests_served = 0

    # -- sharding ---------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[SapShard, ...]:
        """The shards in id order (stable iteration for sweeps/stats)."""
        return tuple(self._shards[i] for i in sorted(self._shards))

    def shard_of(self, id_u: str) -> SapShard:
        return self._shards[self.router.shard_for(id_u)]

    def subscriber(self, id_u: str) -> Optional[BrokerSubscriber]:
        """O(1) subscriber lookup (use instead of the merged view)."""
        return self.shard_of(id_u).subscribers.get(id_u)

    def shard_for_session(self, session_id: str) -> Optional[int]:
        """Which shard owns a session (live grant or revoked tombstone)."""
        for shard in self.shards:
            if session_id in shard.grants \
                    or session_id in shard.revoked_sessions:
                return shard.shard_id
        return None

    def add_shard(self) -> int:
        """Grow the ring by one shard and hand off the state it now owns."""
        shard_id = self._next_shard_id
        self._next_shard_id += 1
        self._shards[shard_id] = SapShard(shard_id, self.metrics)
        self.router.add(shard_id)
        self._rebalance()
        return shard_id

    def remove_shard(self, shard_id: int) -> None:
        """Retire a shard, redistributing its state over the ring."""
        if shard_id not in self._shards:
            raise ValueError(f"no shard {shard_id}")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self.router.remove(shard_id)
        retired = self._shards.pop(shard_id)
        self._rebalance(extra=retired)

    def set_shard_count(self, count: int) -> None:
        """Deterministically grow/shrink to ``count`` shards."""
        if count < 1:
            raise ValueError("num_shards must be >= 1")
        while len(self._shards) < count:
            self.add_shard()
        while len(self._shards) > count:
            self.remove_shard(max(self._shards))

    def _rebalance(self, extra: Optional[SapShard] = None) -> None:
        """Move every subscriber whose router target changed.

        Deterministic: shards and subscribers are visited in sorted
        order, so two runs performing the same add/remove sequence land
        every entry identically.
        """
        sources = list(self.shards)
        if extra is not None:
            sources.append(extra)
        moves = []
        for source in sources:
            for id_u in sorted(source.subscribers):
                target_id = self.router.shard_for(id_u)
                if target_id != source.shard_id:
                    moves.append((id_u, source, self._shards[target_id]))
        for id_u, source, target in moves:
            self._move_subscriber(id_u, source, target)

    def _move_subscriber(self, id_u: str, source: SapShard,
                         target: SapShard) -> None:
        """Hand one subscriber's state to its new shard.

        Replay-window entries move with their windows intact (a nonce
        seen before the rebalance is still denied after it), and revoked
        tombstones keep their original eviction deadline.  Heap entries
        left behind in the source become stale and are skipped by the
        lazy sweeps.
        """
        target.subscribers[id_u] = source.subscribers.pop(id_u)
        sessions = source.sessions_by_ue.pop(id_u, None)
        if sessions:
            target.sessions_by_ue[id_u] = sessions
            for session_id in sorted(sessions):
                grant = source.grants.pop(session_id, None)
                if grant is not None:
                    target.grants[session_id] = grant
                    heapq.heappush(target.grant_expiry,
                                   (grant.expires_at, session_id))
        tombstones = sorted(
            session_id
            for session_id, (owner, _) in source.revoked_sessions.items()
            if owner == id_u)
        for session_id in tombstones:
            owner, expires_at = source.revoked_sessions.pop(session_id)
            target.revoked_sessions[session_id] = (owner, expires_at)
            heapq.heappush(target.grant_expiry, (expires_at, session_id))
        # Scope counters ride with their session (live grant or
        # tombstone): the replay floor must survive the handoff.
        for session_id in sorted(sessions or ()) + tombstones:
            counter = source.scope_counters.pop(session_id, None)
            if counter is not None:
                target.scope_counters[session_id] = counter
        moved_nonces = sorted(
            nonce for nonce, (_, owner) in source.seen_nonces.items()
            if owner == id_u)
        for nonce in moved_nonces:
            window_end, owner = source.seen_nonces.pop(nonce)
            target.note_nonce(nonce, owner, window_end)

    # -- legacy views ------------------------------------------------------------
    # The unsharded broker exposed flat dicts; tests, benches, and the
    # CLI read them.  Each is now a merged copy over the shards (records
    # are shared, so mutating a looked-up subscriber still works).  Hot
    # paths use the per-shard structures directly.
    @property
    def subscribers(self) -> dict[str, BrokerSubscriber]:
        merged: dict[str, BrokerSubscriber] = {}
        for shard in self.shards:
            merged.update(shard.subscribers)
        return merged

    @property
    def grants(self) -> dict[str, SapGrant]:
        merged: dict[str, SapGrant] = {}
        for shard in self.shards:
            merged.update(shard.grants)
        return merged

    @property
    def revoked_sessions(self) -> set[str]:
        merged: set[str] = set()
        for shard in self.shards:
            merged.update(shard.revoked_sessions)
        return merged

    @property
    def _seen_nonces(self) -> dict[bytes, float]:
        return {nonce: window_end
                for shard in self.shards
                for nonce, (window_end, _) in shard.seen_nonces.items()}

    @property
    def _nonce_expiry(self) -> list[tuple[float, bytes]]:
        return sorted(entry for shard in self.shards
                      for entry in shard.nonce_expiry)

    @property
    def _grant_expiry(self) -> list[tuple[float, str]]:
        return sorted(entry for shard in self.shards
                      for entry in shard.grant_expiry)

    @property
    def _sessions_by_ue(self) -> dict[str, set[str]]:
        merged: dict[str, set[str]] = {}
        for shard in self.shards:
            merged.update(shard.sessions_by_ue)
        return merged

    # -- provisioning -----------------------------------------------------------
    def enroll(self, subscriber: BrokerSubscriber) -> None:
        self.shard_of(subscriber.id_u).subscribers[subscriber.id_u] = \
            subscriber

    def register_btelco(self, certificate: Certificate,
                        now: float) -> bool:
        """Admit a bTelco into the mobility-scope directory.

        CA-validated; also called implicitly for every authReqT that
        passes certificate checks, so the directory self-populates as
        sites first touch the broker.
        """
        try:
            validate_certificate(certificate, self.ca_public_key, now,
                                 expected_role="btelco")
        except CertificateError:
            return False
        self.btelco_directory[certificate.subject] = certificate.public_key
        return True

    def revoke(self, id_u: str) -> list[SapGrant]:
        """Revoke a UE's key by invalidating it in the database (§4.1).

        The revocation cascades: every outstanding grant issued to the
        subscriber is withdrawn immediately (returned so the broker can
        notify the serving bTelcos), not merely left to expire.
        """
        shard = self.shard_of(id_u)
        subscriber = shard.subscribers.get(id_u)
        if subscriber is not None:
            subscriber.suspended = True
        revoked: list[SapGrant] = []
        for session_id in sorted(shard.sessions_by_ue.pop(id_u, ())):
            grant = shard.grants.pop(session_id, None)
            if grant is None:
                continue
            shard.revoked_sessions[session_id] = (id_u, grant.expires_at)
            self.grants_revoked += 1
            shard.grants_revoked.inc()
            revoked.append(grant)
            if self.on_grant_revoked is not None:
                self.on_grant_revoked(grant)
        return revoked

    # -- lifecycle bookkeeping ----------------------------------------------------
    @property
    def grants_active(self) -> int:
        return sum(len(shard.grants) for shard in self.shards)

    def stats(self) -> dict:
        """Counter snapshot (bounded-memory evidence for benchmarks).

        The flat keys are the historical single-broker view; ``shards``
        adds the per-shard breakdown without disturbing them.
        """
        return {
            "attach_ok": self.attach_ok,
            "attach_denied": dict(self.attach_denied),
            "replay_hits": self.replay_hits,
            "grants_active": self.grants_active,
            "grants_expired": self.grants_expired,
            "grants_revoked": self.grants_revoked,
            "dup_requests_served": self.dup_requests_served,
            "replay_cache_size": sum(
                len(shard.seen_nonces) for shard in self.shards),
            "response_cache_size": len(self._response_cache),
            "subscribers": sum(
                len(shard.subscribers) for shard in self.shards),
            "num_shards": self.num_shards,
            "shards": [shard.stats() for shard in self.shards],
        }

    def _evict_nonces(self, now: float) -> None:
        """Drop nonces whose replay window has closed (monotone sweep)."""
        for shard in self.shards:
            shard.evict_nonces(now)

    @staticmethod
    def _request_digest(request: AuthReqT) -> bytes:
        """Idempotency key: the exact bytes the bTelco signed + its
        signature — bit-identical retransmissions collide, anything else
        (including a tampered request reusing a seen nonce) does not."""
        return hashlib.sha256(request.signed_bytes()
                              + request.sig_t).digest()

    def _evict_response_cache(self, now: float) -> None:
        heap = self._response_cache_expiry
        while heap and heap[0][0] <= now:
            _, digest = heapq.heappop(heap)
            self._response_cache.pop(digest, None)

    def expire_grants(self, now: float) -> list[SapGrant]:
        """Garbage-collect grants past their authorization lifetime.

        Also forgets revoked-session tombstones once the session's
        original lifetime has passed (a bTelco would reject it as expired
        anyway), keeping every lifecycle structure O(active sessions).
        Shards are swept in id order so callback order is deterministic.
        """
        expired: list[SapGrant] = []
        for shard in self.shards:
            heap = shard.grant_expiry
            while heap and heap[0][0] <= now:
                _, session_id = heapq.heappop(heap)
                if shard.revoked_sessions.pop(session_id, None) is not None:
                    shard.scope_counters.pop(session_id, None)
                grant = shard.grants.get(session_id)
                if grant is None or grant.expires_at > now:
                    continue
                del shard.grants[session_id]
                shard.scope_counters.pop(session_id, None)
                sessions = shard.sessions_by_ue.get(grant.id_u)
                if sessions is not None:
                    sessions.discard(session_id)
                    if not sessions:
                        del shard.sessions_by_ue[grant.id_u]
                self.grants_expired += 1
                shard.grants_expired.inc()
                expired.append(grant)
                if self.on_grant_expired is not None:
                    self.on_grant_expired(grant)
        return expired

    def _deny(self, cause: DenialCause, message: str) -> None:
        raise SapError(message, cause=cause)

    def _note_denial(self, exc: SapError) -> None:
        self.attach_denied[exc.cause.value] += 1
        if exc.cause is DenialCause.REPLAY:
            self.replay_hits += 1

    # -- the handler of Fig 3 (bottom) --------------------------------------------
    def begin_window(self, now: float) -> None:
        """Amortized lifecycle sweeps that precede request processing."""
        self._evict_nonces(now)
        self._evict_response_cache(now)
        self.expire_grants(now)

    def lookup_cached(self, digest: bytes) -> Optional[tuple]:
        """Serve a bit-identical retransmission from the idempotency
        cache (counts as a dup, not a new attach)."""
        cached = self._response_cache.get(digest)
        if cached is not None:
            self.dup_requests_served += 1
        return cached

    def process_request(self, request: AuthReqT, now: float
                        ) -> tuple[SealedResponse, SealedResponse, SapGrant]:
        """Authenticate U and T; authorize; return (authRespT, authRespU).

        Raises :class:`SapError` with a denial cause on any failure.

        Idempotent under retransmission: a bit-identical duplicate inside
        the response-cache window re-serves the originally minted
        (authRespT, authRespU, grant) triple instead of being denied by
        the nonce replay window.
        """
        self.begin_window(now)
        cached = self.lookup_cached(self._request_digest(request))
        if cached is not None:
            return cached
        return self.finish_request(self.prevalidate(request, now), now)

    def prevalidate(self, request: AuthReqT, now: float) -> PreparedAuth:
        """Stage A: authenticate T and U, decrypt the authVec, and route
        to the owning shard.  Touches no shard state, so a batching
        daemon may run many prevalidations concurrently (denials are
        counted here, exactly once per request)."""
        try:
            # 1. Authenticate T: certificate chain + signature over the
            # request.
            try:
                validate_certificate(request.t_certificate,
                                     self.ca_public_key,
                                     now, expected_role="btelco")
            except CertificateError as exc:
                raise SapError(f"bTelco certificate invalid: {exc}",
                               cause=DenialCause.BAD_CERTIFICATE) from exc
            if request.t_certificate.subject != request.id_t:
                self._deny(DenialCause.MISMATCH,
                           "bTelco identity does not match certificate")
            if not request.t_certificate.public_key.verify(
                    request.signed_bytes(), request.sig_t):
                self._deny(DenialCause.BAD_SIGNATURE,
                           "authReqT: bTelco signature invalid")
            # The certificate just validated: remember the site so scope
            # tokens can seal ss to it.
            self.btelco_directory[request.id_t] = \
                request.t_certificate.public_key

            # 2. Decrypt authVec and authenticate U.
            try:
                auth_vec = AuthVec.from_bytes(
                    self.key.decrypt(request.auth_req_u.auth_vec_encrypted))
            except (CryptoError, MessageError) as exc:
                raise SapError(f"authVec: {exc}",
                               cause=DenialCause.MALFORMED) from exc
            if auth_vec.id_b != self.id_b:
                self._deny(DenialCause.MISMATCH,
                           "authVec addressed to a different broker")
            if auth_vec.id_t != request.id_t:
                self._deny(DenialCause.MISMATCH,
                           "authVec bTelco mismatch (relay attack?)")
            shard_id = self.router.shard_for(auth_vec.id_u)
            subscriber = self._shards[shard_id].subscribers.get(
                auth_vec.id_u)
            if subscriber is None:
                self._deny(DenialCause.UNKNOWN_SUBSCRIBER,
                           "unknown subscriber")
            if subscriber.suspended:
                self._deny(DenialCause.SUSPENDED, "subscriber suspended")
            if not subscriber.public_key.verify(
                    request.auth_req_u.auth_vec_encrypted,
                    request.auth_req_u.sig_authvec):
                self._deny(DenialCause.BAD_SIGNATURE,
                           "authReqU: UE signature invalid")
        except SapError as exc:
            self._note_denial(exc)
            raise
        return PreparedAuth(request=request,
                            digest=self._request_digest(request),
                            auth_vec=auth_vec, subscriber=subscriber,
                            shard_id=shard_id)

    def finish_request(self, prepared: PreparedAuth, now: float
                       ) -> tuple[SealedResponse, SealedResponse, SapGrant]:
        """Stage B: replay window, policy, and minting — the part that
        mutates shard state and therefore serializes per shard."""
        request = prepared.request
        auth_vec = prepared.auth_vec
        subscriber = prepared.subscriber
        shard = self._shards[prepared.shard_id]
        try:
            if auth_vec.nonce in shard.seen_nonces:
                shard.replay_hits.inc()
                self._deny(DenialCause.REPLAY, "replayed nonce")
            shard.note_nonce(auth_vec.nonce, auth_vec.id_u,
                             now + self.session_ttl)

            # 3. Authorization policy (profiles, reputation, ...).
            cause = self.authorize_btelco(request.id_t)
            if cause is not None:
                self._deny(DenialCause.POLICY,
                           f"bTelco not authorized: {cause}")
            # 3b. Lawful intercept: a mandated subscriber may only be
            # served by bTelcos that advertise LI capability (negotiated
            # in SAP).
            li_required = auth_vec.id_u in self.li_targets
            if li_required and not request.qos_cap.supports_lawful_intercept:
                self._deny(DenialCause.LI_UNSUPPORTED,
                           "lawful intercept required but unsupported")
        except SapError as exc:
            self._note_denial(exc)
            raise

        # 4. Mint the session: shared secret, pseudonym, QoS selection.
        ss = secrets.token_bytes(SS_SIZE)
        self._session_counter += 1
        session_id = f"{self._session_prefix}:{self._session_counter:08d}"
        id_u_opaque = \
            f"anon-{self._session_prefix}-{self._session_counter:08d}"
        qos_info = select_qos(request.qos_cap, subscriber.qos_plan)
        expires_at = now + self.session_ttl

        resp_t = AuthRespT(id_u_opaque=id_u_opaque, id_t=request.id_t,
                           ss=ss, qos_info=qos_info, session_id=session_id,
                           expires_at=expires_at,
                           lawful_intercept=li_required)
        scope_token = None
        if auth_vec.scope:
            scope_token = self._mint_scope_token(
                auth_vec.scope, request.id_t, session_id, id_u_opaque, ss,
                qos_info, li_required, expires_at, now)
        resp_u = AuthRespU(id_u=auth_vec.id_u, id_t=request.id_t, ss=ss,
                           nonce=auth_vec.nonce, session_id=session_id,
                           scope=scope_token)
        sealed_t = seal_and_sign(resp_t.to_bytes(),
                                 request.t_certificate.public_key, self.key)
        sealed_u = seal_and_sign(resp_u.to_bytes(), subscriber.public_key,
                                 self.key)
        grant = SapGrant(id_u=auth_vec.id_u, id_u_opaque=id_u_opaque,
                         id_t=request.id_t, session_id=session_id, ss=ss,
                         qos_info=qos_info, granted_at=now,
                         expires_at=expires_at)
        shard.grants[session_id] = grant
        shard.sessions_by_ue.setdefault(grant.id_u, set()).add(session_id)
        heapq.heappush(shard.grant_expiry, (expires_at, session_id))
        result = (sealed_t, sealed_u, grant)
        self.attach_ok += 1
        shard.attach_ok.inc()
        self._response_cache[prepared.digest] = result
        heapq.heappush(
            self._response_cache_expiry,
            (now + min(self.response_cache_ttl, self.session_ttl),
             prepared.digest))
        return result

    # -- mobility scopes (§4.2 grant reuse) ---------------------------------------
    def _mint_scope_token(self, scope_req: dict, id_t: str,
                          session_id: str, id_u_opaque: str, ss: bytes,
                          qos_info: QosInfo, li_required: bool,
                          grant_expires_at: float,
                          now: float) -> Optional[ScopeToken]:
        """Sign a mobility scope into the grant being minted.

        The granted scope is the *intersection* of the request with the
        bTelco directory (ss can only be sealed to keys the broker has
        validated), always including the serving site; the TTL is
        clamped by ``scope_ttl_max`` and the grant's own lifetime.
        Returns None when nothing in the request is grantable.
        """
        requested = set(scope_req.get("telcos", ())) | {id_t}
        telcos = sorted(requested & set(self.btelco_directory))
        if not telcos:
            return None
        ttl = float(scope_req.get("ttl", self.scope_ttl_max))
        expires_at = min(now + max(0.0, min(ttl, self.scope_ttl_max)),
                         grant_expires_at)
        ess = {t: self.btelco_directory[t].encrypt(ss).hex()
               for t in telcos}
        payload = {
            "sid": session_id, "idU": id_u_opaque, "idB": self.id_b,
            "scope": telcos, "exp": expires_at,
            "qos": {"qci": qos_info.qci, "dl": qos_info.ambr_dl_bps,
                    "ul": qos_info.ambr_ul_bps,
                    "arp": qos_info.arp_priority},
            "li": li_required, "ess": ess,
        }
        token = ScopeToken(payload=payload, sig=b"")
        return ScopeToken(payload=payload,
                          sig=self.key.sign(token.signed_bytes()))

    def note_scope_attach(self, session_id: str, counter: int,
                          now: float) -> tuple[bool, bool, str]:
        """Authoritative verdict on a scope-local attach notice.

        Returns ``(accepted, retryable, cause)``.  Accepting records the
        counter as the new per-grant floor — a *cross-site* replay of an
        already-used counter (which the replaying bTelco's local
        highest-seen floor cannot catch) is denied here, and the
        notifying bTelco then tears the session down.
        """
        for shard in self.shards:
            if session_id in shard.revoked_sessions:
                return False, False, DenialCause.REVOKED.value
            grant = shard.grants.get(session_id)
            if grant is None:
                continue
            if grant.expires_at <= now:
                return False, False, DenialCause.EXPIRED.value
            if counter <= shard.scope_counters.get(session_id, 0):
                self.replay_hits += 1
                shard.replay_hits.inc()
                return False, False, DenialCause.REPLAY.value
            shard.scope_counters[session_id] = counter
            shard.scope_attaches.inc()
            return True, False, ""
        return False, False, DenialCause.UNKNOWN_SUBSCRIBER.value
