"""CellBricks over 5G: SAP replacing 5G-AKA in the AMF and UE.

The paper's architecture is generation-agnostic ("the cellular core —
called EPC in LTE, or 5GC in 5G"); this module applies the identical SAP
refactoring to the 5G control plane.  The baseline 5G registration pays
*two* visited↔home round trips (AUSF/UDM authenticate + the RES*
confirmation); SAP replaces both with one broker round trip, so the
Fig 7-style win grows under 5G — quantified in the XTRA-5G benchmark.

Reliability/lifecycle parity with the LTE bTelco
(:class:`repro.core.btelco.CellBricksAgw`):

* the broker leg rides ``send_request`` — a lost ``BrokerAuthRequest``
  or ``BrokerAuthResponse`` retransmits with backoff instead of wedging
  the context in ``WAIT_BROKER``, and a broker that stays unreachable
  past the budget yields a clean reject (``_pending_sap`` never leaks);
* grants are enforced: expiry tears the session down with a
  network-initiated deregistration, and the broker's signed
  ``SessionRevocationBatch``/``RevocationAck`` cascade is honoured
  (idempotently), so a revoked 5G session converges to zero
  unauthorized-session-seconds even under loss;
* retransmitted SAP registrations are absorbed by replaying the cached
  challenge + SMC instead of consulting the broker again.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.crypto import Certificate, PrivateKey, PublicKey
from repro.fivegc import nas5g
from repro.fivegc.nf import Amf, UeContext5G
from repro.fivegc.ue5g import Ue5G
from repro.lte.nas import NasMessage
from repro.lte.security import SecurityContext
from repro.lte.signaling import CounterAttr
from repro.net import Host

from .messages import (
    BrokerAuthRequest,
    BrokerAuthResponse,
    DenialCause,
    RevocationAck,
    ScopeAttachAck,
    ScopeAttachNotice,
    SessionRevocation,
    SessionRevocationBatch,
    scope_attach_mac,
)
from .qos import QosCapabilities
from .sap import (
    AuthorizedSession,
    BtelcoSap,
    BtelcoSapConfig,
    MobilityGrant,
    SapError,
    UeSap,
    UeSapCredentials,
)

CB_AMF_COSTS = {
    "sap_registration": 0.0055,
    "broker_auth_response": 0.0057,
    # Scoped re-registration (§4.2): local token validation only.
    "scoped_registration": 0.0019,
}


class CellBricksAmf(Amf):
    """A 5G bTelco site: AMF with SAP, no AUSF/UDM dependency."""

    # Same metric names as the LTE bTelco so fleet-wide registry merges
    # aggregate per-protocol counters across generations.
    expired_sessions = CounterAttr("btelco.expired_sessions")
    revoked_sessions = CounterAttr("btelco.revoked_sessions")
    revocation_dups = CounterAttr("btelco.revocation_dups")
    revocation_acks_sent = CounterAttr("btelco.revocation_acks_sent")
    dup_attach_requests = CounterAttr("btelco.dup_attach_requests")
    broker_timeouts = CounterAttr("btelco.broker_timeouts")
    scoped_attaches = CounterAttr("btelco.scoped_attaches")
    scoped_rejects = CounterAttr("btelco.scoped_rejects")
    scope_replays_denied = CounterAttr("btelco.scope_replays_denied")
    scope_notices_sent = CounterAttr("btelco.scope_notices_sent")
    scope_notice_nacks = CounterAttr("btelco.scope_notice_nacks")

    def nas_span_name(self, nas: NasMessage) -> str:
        if isinstance(nas, nas5g.SapRegistrationRequest):
            return "sap.btelco_sign"
        if isinstance(nas, nas5g.SapScopedRegistrationRequest):
            return "sap.btelco_scope_validate"
        return super().nas_span_name(nas)

    def span_name(self, message: object) -> str:
        if isinstance(message, BrokerAuthResponse):
            return "sap.btelco_verify"
        if isinstance(message, SessionRevocationBatch):
            return "revocation.btelco_batch"
        if isinstance(message, SessionRevocation):
            return "revocation.btelco_apply"
        return super().span_name(message)

    def __init__(self, host: Host, broker_ip: str, smf_ip: str, id_t: str,
                 key: PrivateKey, certificate: Certificate,
                 ca_public_key: PublicKey,
                 qos_capabilities: Optional[QosCapabilities] = None,
                 name: str = "cb-amf"):
        super().__init__(host, ausf_ip="0.0.0.0", smf_ip=smf_ip, name=name)
        self.broker_ip = broker_ip
        self.id_t = id_t
        self.key = key
        self.sap = BtelcoSap(BtelcoSapConfig(
            id_t=id_t, key=key, certificate=certificate,
            qos_capabilities=qos_capabilities or QosCapabilities(),
            ca_public_key=ca_public_key))
        self.broker_public_keys: dict[str, PublicKey] = {}
        self.sessions: dict[str, AuthorizedSession] = {}
        self.session_brokers: dict[str, str] = {}   # session -> id_b
        self._pending_sap: dict[int, UeContext5G] = {}
        self._tokens = itertools.count(1)
        self.expired_sessions = 0
        self.revoked_sessions = 0
        self.revocation_dups = 0
        self.revocation_acks_sent = 0
        self.dup_attach_requests = 0
        self.broker_timeouts = 0
        self.scoped_attaches = 0
        self.scoped_rejects = 0
        self.scope_replays_denied = 0
        self.scope_notices_sent = 0
        self.scope_notice_nacks = 0
        #: seconds of service rendered by scoped sessions the broker
        #: later vetoed (fleet-drive gate: must stay 0.0).
        self.scope_unauthorized_session_s = 0.0
        #: per-grant highest attach counter seen at *this* site (the
        #: local replay floor; the broker holds the cross-site floor).
        self._scope_counters: dict[str, int] = {}
        #: session_id -> (token, counter, attempt) notices still awaiting
        #: a broker verdict (retryable nacks re-notify with backoff).
        self._scope_notice_pending: dict[str, tuple] = {}
        self.sap_costs = dict(CB_AMF_COSTS)
        self.on(BrokerAuthResponse, self._handle_broker_response)
        self.on(ScopeAttachAck, self._handle_scope_ack)
        self.on(SessionRevocation, self._handle_session_revocation)
        self.on(SessionRevocationBatch, self._handle_revocation_batch)

    def trust_broker(self, id_b: str, public_key: PublicKey) -> None:
        self.broker_public_keys[id_b] = public_key

    # -- cost model -------------------------------------------------------------
    def nas_processing_cost(self, nas: NasMessage) -> float:
        if isinstance(nas, nas5g.SapRegistrationRequest):
            return self.sap_costs["sap_registration"]
        if isinstance(nas, nas5g.SapScopedRegistrationRequest):
            return self.sap_costs["scoped_registration"]
        return super().nas_processing_cost(nas)

    def processing_cost(self, message: object) -> float:
        if isinstance(message, BrokerAuthResponse):
            return self.sap_costs["broker_auth_response"]
        return super().processing_cost(message)

    # -- SAP flow ------------------------------------------------------------------
    def nas_initiates(self, nas: NasMessage) -> bool:
        return super().nas_initiates(nas) \
            or isinstance(nas, (nas5g.SapRegistrationRequest,
                                nas5g.SapScopedRegistrationRequest))

    def handle_extension_nas(self, context: UeContext5G,
                             nas: NasMessage) -> None:
        if isinstance(nas, nas5g.SapRegistrationRequest):
            self._on_sap_registration(context, nas)
        elif isinstance(nas, nas5g.SapScopedRegistrationRequest):
            self._on_sap_scoped_registration(context, nas)

    def _on_sap_registration(self, context: UeContext5G,
                             request: nas5g.SapRegistrationRequest) -> None:
        key = request.auth_req_u.auth_vec_encrypted
        if context.sap_request_key == key:
            # A retransmission of the attempt we are already serving: the
            # ran_ue_id is stable per UE, so the context tells us exactly
            # which leg to replay (idempotent — nothing re-executes).
            self.dup_attach_requests += 1
            if context.state == "WAIT_BROKER":
                return  # broker leg in flight and retransmitting itself
            if context.state == "WAIT_SMC_COMPLETE" \
                    and context.sap_challenge is not None:
                # The challenge and/or SMC downlink was lost: replay both.
                self.downlink(context, context.sap_challenge)
                self.send_smc5g(context)
            return
        # Fresh attempt (new nonce): drop any stale broker leg first.
        if context.broker_token is not None:
            self._pending_sap.pop(context.broker_token, None)
            self.cancel_request(context.broker_corr_id)
            context.broker_token = None
        context.sap_request_key = key
        context.sap_challenge = None
        context.sap_session = None
        context.state = "WAIT_BROKER"
        context.registration_started_at = self.sim.now
        context.broker_id = request.auth_req_u.id_b
        self._watch_registration(context)
        auth_req_t = self.sap.augment_request(request.auth_req_u)
        token = next(self._tokens)
        self._pending_sap[token] = context
        context.broker_token = token
        wire = BrokerAuthRequest(auth_req_t=auth_req_t, reply_token=token)
        # Reliable leg: the broker round-trip crosses the backhaul/cloud
        # path, so it is retransmitted with backoff; if the broker stays
        # unreachable past the budget the UE gets a clean reject and the
        # pending entry is reclaimed (no WAIT_BROKER wedge).
        context.broker_corr_id = self.send_request(
            self.broker_ip, wire, size=auth_req_t.wire_size + 32,
            on_give_up=lambda _msg, t=token: self._broker_gave_up(t))

    def _broker_gave_up(self, token: int) -> None:
        context = self._pending_sap.pop(token, None)
        if context is None or context.state != "WAIT_BROKER":
            return
        self.broker_timeouts += 1
        context.broker_token = None
        self.reject(context, "broker unreachable")

    def _handle_broker_response(self, src_ip: str,
                                response: BrokerAuthResponse) -> None:
        context = self._pending_sap.pop(response.reply_token, None)
        if context is None or context.state != "WAIT_BROKER":
            return
        context.broker_token = None
        if not response.approved:
            self.reject(context, response.cause,
                        retryable=getattr(response, "retryable", False))
            return
        broker_key = self.broker_public_keys.get(
            getattr(context, "broker_id", ""))
        if broker_key is None:
            self.reject(context, "unknown broker")
            return
        try:
            session = self.sap.process_authorization(
                response.auth_resp_t, broker_key, None, now=self.sim.now)
        except SapError as exc:
            self.reject(context, str(exc))
            return
        context.supi = session.id_u_opaque   # pseudonym, never the SUPI
        context.security = SecurityContext(kasme=session.ss)
        context.sap_session = session
        self.sessions[session.session_id] = session
        self.session_brokers[session.session_id] = \
            getattr(context, "broker_id", "")
        # Step 4: forward authRespU, then activate security.  The
        # challenge is cached on the context so a retransmitted SAP
        # registration can replay this leg without re-asking the broker.
        challenge = nas5g.SapRegistrationChallenge(
            auth_resp_u=response.auth_resp_u)
        context.sap_challenge = challenge
        self.downlink(context, challenge)
        context.state = "WAIT_SMC_COMPLETE"
        self.send_smc5g(context)

    # -- mobility-scoped re-registration (§4.2) --------------------------------------
    def _on_sap_scoped_registration(
            self, context: UeContext5G,
            request: nas5g.SapScopedRegistrationRequest) -> None:
        """Scope-local re-registration: the broker-signed token is
        validated entirely at the AMF (signature, scope, expiry, MAC,
        monotonic counter) — no broker round-trip; the broker is told
        asynchronously."""
        token = request.token
        key = ("scope", token.sig, request.counter)
        if context.sap_request_key == key:
            self.dup_attach_requests += 1
            if context.state == "WAIT_SMC_COMPLETE":
                self.send_smc5g(context)
            return
        if context.broker_token is not None:
            self._pending_sap.pop(context.broker_token, None)
            self.cancel_request(context.broker_corr_id)
            context.broker_token = None
        context.sap_request_key = key
        context.sap_challenge = None
        context.registration_started_at = self.sim.now
        context.broker_id = token.id_b
        try:
            session = self.sap.validate_scoped_attach(
                token, request.counter, request.mac,
                self.broker_public_keys, self.sim.now,
                self._scope_counters.get(token.session_id, 0))
        except SapError as exc:
            self.scoped_rejects += 1
            if exc.cause == DenialCause.REPLAY:
                self.scope_replays_denied += 1
            self.reject(context, str(exc))
            return
        # Commit the local replay floor only after full validation.
        self._scope_counters[token.session_id] = request.counter
        self.scoped_attaches += 1
        self._watch_registration(context)
        context.supi = session.id_u_opaque
        context.security = SecurityContext(kasme=session.ss)
        context.sap_session = session
        self.sessions[session.session_id] = session
        self.session_brokers[session.session_id] = token.id_b
        # Both sides already hold ss: no challenge downlink, straight to
        # the SMC.
        context.state = "WAIT_SMC_COMPLETE"
        self.send_smc5g(context)
        self._notify_scope_attach(token, request.counter)

    def validate_scope_probe(self, token, counter: int,
                             mac: bytes) -> Optional[str]:
        """Dry-run a scoped registration (read-only; no counter commit,
        no session).  Returns the denial cause, or ``None`` if the
        attach would be accepted."""
        try:
            self.sap.validate_scoped_attach(
                token, counter, mac, self.broker_public_keys, self.sim.now,
                self._scope_counters.get(token.session_id, 0))
        except SapError as exc:
            cause = exc.cause
            return cause.value if cause is not None else str(exc)
        return None

    #: retryable-nack re-notify schedule (broker shard failing over).
    scope_notice_backoff = 0.5
    scope_notice_max_attempts = 6

    def _notify_scope_attach(self, token, counter: int,
                             attempt: int = 0) -> None:
        unsigned = ScopeAttachNotice(session_id=token.session_id,
                                     counter=counter, id_t=self.id_t)
        notice = ScopeAttachNotice(
            session_id=token.session_id, counter=counter, id_t=self.id_t,
            certificate=self.sap.config.certificate,
            signature=self.key.sign(unsigned.signed_bytes()))
        self.scope_notices_sent += 1
        self._scope_notice_pending[token.session_id] = \
            (token, counter, attempt)
        self.send_request(self.broker_ip, notice, size=notice.wire_size)

    def _handle_scope_ack(self, src_ip: str, ack: ScopeAttachAck) -> None:
        pending = self._scope_notice_pending.get(ack.session_id)
        if ack.accepted:
            self._scope_notice_pending.pop(ack.session_id, None)
            return
        if ack.retryable:
            # Shard failing over: the nack completed our reliable
            # request, so this site owns the retry until the counter
            # floor reaches the broker (or the session dies).
            if pending is not None and pending[1] == ack.counter:
                token, counter, attempt = pending
                if attempt + 1 < self.scope_notice_max_attempts \
                        and ack.session_id in self.sessions:
                    self.sim.schedule(
                        self.scope_notice_backoff * (attempt + 1),
                        self._notify_scope_attach, token, counter,
                        attempt + 1)
                else:
                    self._scope_notice_pending.pop(ack.session_id, None)
            return
        self._scope_notice_pending.pop(ack.session_id, None)
        # Terminal nack (revoked / expired / cross-site replay): the
        # scoped registration must not stand.
        self.scope_notice_nacks += 1
        self.sap.revoke_session(ack.session_id)
        if ack.session_id not in self.sessions:
            return
        self.revoked_sessions += 1
        context = next(
            (c for c in self.contexts.values()
             if getattr(getattr(c, "sap_session", None), "session_id",
                        None) == ack.session_id),
            None)
        if context is not None:
            # Service rendered between the optimistic local validation
            # and the broker's veto was unauthorized — account for it
            # (the fleet-drive gate requires this stays 0).
            started = getattr(context, "registration_started_at", None)
            if started is not None:
                self.scope_unauthorized_session_s += \
                    max(0.0, self.sim.now - started)
        if context is not None \
                and context.state in ("REGISTERED", "WAIT_SMF"):
            self._teardown_session(context, ack.session_id)
        else:
            self.sessions.pop(ack.session_id, None)
            self.session_brokers.pop(ack.session_id, None)

    # -- grant lifecycle ------------------------------------------------------------
    def after_security_established(self, context: UeContext5G) -> None:
        super().after_security_established(context)
        session = context.sap_session
        if session is not None:
            # The broker's authorization has a lifetime; serving past it
            # would be unauthorized service.  Schedule enforcement.
            delay = max(0.0, session.expires_at - self.sim.now)
            self.sim.schedule(delay, self._expire_session,
                              session.session_id, context.ran_ue_id)

    def _expire_session(self, session_id: str, ran_ue_id: int) -> None:
        """Authorization lifetime reached: network-initiated teardown."""
        context = self.contexts.get(ran_ue_id)
        session = self.sessions.get(session_id)
        if context is None or session is None:
            return
        if getattr(context.sap_session, "session_id", None) != session_id:
            return  # the UE re-registered under a newer authorization
        if context.state not in ("REGISTERED", "WAIT_SMF"):
            return
        self.expired_sessions += 1
        self._teardown_session(context, session_id)

    def _teardown_session(self, context: UeContext5G,
                          session_id: str) -> None:
        """Network-initiated deregistration: drop every resource the
        session holds (the downlink precedes the S1 release so it still
        routes through the gNB's ue-id mapping)."""
        self.sessions.pop(session_id, None)
        self.session_brokers.pop(session_id, None)
        context.sap_session = None
        self.downlink(context, nas5g.DeregistrationRequest5G())
        context.state = "DEREGISTERED"
        self._release_ue(context)

    # -- revocation cascade ----------------------------------------------------------
    def _handle_session_revocation(self, src_ip: str,
                                   notice: SessionRevocation) -> None:
        """Legacy single-notice revocation (kept for compatibility with
        brokers that do not batch)."""
        self._apply_revocation(notice)

    def _handle_revocation_batch(self, src_ip: str,
                                 batch: SessionRevocationBatch) -> None:
        """Apply every revocation in the batch and return a signed ack.

        Idempotent per notice: a batch retransmitted past the transport's
        dedup window re-acks without double-deregistering anything, so
        the broker's retry loop always converges.
        """
        session_ids = []
        for notice in batch.revocations:
            self._apply_revocation(notice)
            session_ids.append(notice.session_id)
        ack_ids = tuple(sorted(session_ids))
        unsigned = RevocationAck(batch_id=batch.batch_id, id_t=self.id_t,
                                 session_ids=ack_ids)
        ack = RevocationAck(batch_id=batch.batch_id, id_t=self.id_t,
                            session_ids=ack_ids,
                            signature=self.key.sign(unsigned.signed_bytes()))
        self.revocation_acks_sent += 1
        self.send(src_ip, ack, size=96 + 16 * len(ack_ids))

    def _apply_revocation(self, notice: SessionRevocation) -> None:
        """Broker withdrew an authorization we hold: serving this session
        any further would be unauthorized service, so deregister it now
        and refuse the grant if it is ever presented again."""
        if not self.sap.session_authorized(notice.session_id):
            # Already applied (duplicate notice): nothing to tear down.
            self.revocation_dups += 1
            return
        self.sap.revoke_session(notice.session_id)
        if notice.session_id not in self.sessions:
            return
        self.revoked_sessions += 1
        context = next(
            (c for c in self.contexts.values()
             if getattr(getattr(c, "sap_session", None), "session_id",
                        None) == notice.session_id),
            None)
        if context is not None \
                and context.state in ("REGISTERED", "WAIT_SMF"):
            self._teardown_session(context, notice.session_id)
        else:
            # Mid-registration or already torn down: just drop the
            # bookkeeping; _on_registration_complete refuses revoked
            # sessions.
            self.sessions.pop(notice.session_id, None)
            self.session_brokers.pop(notice.session_id, None)

    def _on_registration_complete(self, context: UeContext5G) -> None:
        super()._on_registration_complete(context)
        session = getattr(context, "sap_session", None)
        if session is not None and context.state == "REGISTERED" \
                and not self.sap.session_authorized(session.session_id):
            # The grant was revoked while the registration was in flight.
            self.revoked_sessions += 1
            self._teardown_session(context, session.session_id)

    # -- terminal cleanup --------------------------------------------------------------
    def context_released(self, context: UeContext5G) -> None:
        """Any terminal transition (reject, abandon, deregister, deadline
        GC) reclaims the broker leg and the session bookkeeping, so
        ``_pending_sap``/``sessions`` cannot leak."""
        if context.broker_token is not None:
            self._pending_sap.pop(context.broker_token, None)
            self.cancel_request(context.broker_corr_id)
            context.broker_token = None
        session = getattr(context, "sap_session", None)
        if session is not None:
            self.sessions.pop(session.session_id, None)
            self.session_brokers.pop(session.session_id, None)
            context.sap_session = None
        super().context_released(context)

    # -- introspection -----------------------------------------------------------------
    def stats(self) -> dict:
        stats = super().stats()
        stats.update({
            "sessions_active": len(self.sessions),
            "pending_sap": len(self._pending_sap),
            "expired_sessions": self.expired_sessions,
            "revoked_sessions": self.revoked_sessions,
            "revocation_dups": self.revocation_dups,
            "revocation_acks_sent": self.revocation_acks_sent,
            "dup_attach_requests": self.dup_attach_requests,
            "broker_timeouts": self.broker_timeouts,
            "scoped_attaches": self.scoped_attaches,
            "scoped_rejects": self.scoped_rejects,
            "scope_replays_denied": self.scope_replays_denied,
            "scope_notices_sent": self.scope_notices_sent,
            "scope_notice_nacks": self.scope_notice_nacks,
            "scope_unauthorized_session_s":
                round(self.scope_unauthorized_session_s, 9),
        })
        stats.update(self.reliable_stats())
        return stats


class CellBricksUe5G(Ue5G):
    """5G UE running SAP instead of 5G-AKA."""

    craft_span_name = "sap.ue_craft"
    _SPAN_NAMES = dict(Ue5G._SPAN_NAMES)
    _SPAN_NAMES[nas5g.SapRegistrationChallenge] = "sap.ue_verify"

    def __init__(self, host: Host, gnb_ip: str,
                 credentials: UeSapCredentials, target_id_t: str,
                 name: str = "cb-ue5g"):
        super().__init__(host, gnb_ip, supi=None, usim=None,
                         home_network_key=None,
                         serving_network=target_id_t, name=name)
        self.credentials = credentials
        self.sap = UeSap(credentials)
        self.target_id_t = target_id_t
        self.session_id: Optional[str] = None
        #: optional scope request dict ({"telcos": [...], "ttl": s}) sent
        #: inside the encrypted authVec on the next full registration.
        self.scope_request: Optional[dict] = None
        #: broker-issued mobility grant — survives deregister_and_forget
        #: so the next in-scope registration skips the broker.
        self.mobility_grant: Optional[MobilityGrant] = None
        self._scoped_attempt = False
        self.scoped_attaches = 0
        self.scoped_fallbacks = 0
        self.processing_costs = dict(Ue5G.processing_costs)
        self.processing_costs[nas5g.SapRegistrationChallenge] = 0.0006
        self.on(nas5g.SapRegistrationChallenge, self._on_sap_challenge)

    def _grant_covers_target(self) -> bool:
        grant = self.mobility_grant
        return (grant is not None
                and grant.covers(self.target_id_t, self.sim.now))

    def craft_cost(self) -> float:
        if self._grant_covers_target():
            return 0.0003  # scoped re-registration: one MAC, no crypto
        return 0.0016  # authReqU crafting: hybrid encrypt + sign

    def register(self) -> None:
        # A fresh attempt must not inherit the previous session's id (the
        # security context is already cleared by the base class).
        self.session_id = None
        super().register()

    def initial_request(self):
        if self._grant_covers_target():
            grant = self.mobility_grant
            counter = grant.next_counter
            grant.next_counter += 1
            self._scoped_attempt = True
            self.scoped_attaches += 1
            # The grant restores what register() cleared: ss seeds the
            # security context the AMF's SMC will validate against, and
            # the session id keeps billing continuity across bTelcos.
            self.session_id = grant.session_id
            self.security = SecurityContext(kasme=grant.ss)
            mac = scope_attach_mac(grant.ss, grant.session_id, counter,
                                   self.target_id_t)
            return nas5g.SapScopedRegistrationRequest(
                token=grant.token, counter=counter, mac=mac)
        self._scoped_attempt = False
        auth_req_u = self.sap.craft_request(self.target_id_t,
                                            scope=self.scope_request)
        return nas5g.SapRegistrationRequest(auth_req_u=auth_req_u)

    def _on_reject(self, src_ip: str, reject) -> None:
        if (self.state == "REGISTERING" and self._scoped_attempt
                and not getattr(reject, "retryable", False)):
            # The scope-local fast path failed terminally: drop the grant
            # and fall back to a full SAP registration within the same
            # attempt (the latency clock keeps running).
            self.mobility_grant = None
            self._scoped_attempt = False
            self.scoped_fallbacks += 1
            self.session_id = None
            self.security = None
            self._stop_registration_supervision()
            self.sim.schedule(0.0, self._retry_after_reject)
            return
        super()._on_reject(src_ip, reject)

    def _on_registration_give_up(self) -> None:
        super()._on_registration_give_up()
        self.sap.abandon()
        self.session_id = None

    def retarget(self, gnb_ip: str, serving_network: str) -> None:
        super().retarget(gnb_ip, serving_network)
        self.target_id_t = serving_network

    def _on_sap_challenge(self, src_ip: str,
                          challenge: nas5g.SapRegistrationChallenge) -> None:
        if self.state != "REGISTERING":
            return  # late replay after success/failure: absorb, don't fail
        if self.security is not None:
            # Duplicate within the attempt (bTelco replayed the leg):
            # process_response already consumed the nonce — re-running it
            # would raise a spurious mismatch against a fresh nonce.
            return
        try:
            response = self.sap.process_response(challenge.auth_resp_u)
        except SapError as exc:
            self._fail(str(exc))
            return
        self.session_id = response.session_id
        if getattr(response, "scope", None) is not None:
            # Broker granted a mobility scope: keep it past deregistration
            # so the next in-scope registration needs no broker round-trip.
            self.mobility_grant = MobilityGrant(
                token=response.scope, session_id=response.session_id,
                ss=response.ss, next_counter=1)
        self.security = SecurityContext(kasme=response.ss)
