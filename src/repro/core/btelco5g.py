"""CellBricks over 5G: SAP replacing 5G-AKA in the AMF and UE.

The paper's architecture is generation-agnostic ("the cellular core —
called EPC in LTE, or 5GC in 5G"); this module applies the identical SAP
refactoring to the 5G control plane.  The baseline 5G registration pays
*two* visited↔home round trips (AUSF/UDM authenticate + the RES*
confirmation); SAP replaces both with one broker round trip, so the
Fig 7-style win grows under 5G — quantified in the XTRA-5G benchmark.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.crypto import Certificate, PrivateKey, PublicKey
from repro.fivegc import nas5g
from repro.fivegc.nf import AMF_COSTS, Amf, UeContext5G
from repro.fivegc.ue5g import Ue5G
from repro.lte.agw import smc_mac
from repro.lte.nas import NasMessage
from repro.lte.security import SecurityContext
from repro.net import Host

from .messages import BrokerAuthRequest, BrokerAuthResponse
from .qos import QosCapabilities
from .sap import BtelcoSap, BtelcoSapConfig, SapError, UeSap, UeSapCredentials

CB_AMF_COSTS = {
    "sap_registration": 0.0055,
    "broker_auth_response": 0.0057,
}


class CellBricksAmf(Amf):
    """A 5G bTelco site: AMF with SAP, no AUSF/UDM dependency."""

    def __init__(self, host: Host, broker_ip: str, smf_ip: str, id_t: str,
                 key: PrivateKey, certificate: Certificate,
                 ca_public_key: PublicKey,
                 qos_capabilities: Optional[QosCapabilities] = None,
                 name: str = "cb-amf"):
        super().__init__(host, ausf_ip="0.0.0.0", smf_ip=smf_ip, name=name)
        self.broker_ip = broker_ip
        self.id_t = id_t
        self.sap = BtelcoSap(BtelcoSapConfig(
            id_t=id_t, key=key, certificate=certificate,
            qos_capabilities=qos_capabilities or QosCapabilities(),
            ca_public_key=ca_public_key))
        self.broker_public_keys: dict[str, PublicKey] = {}
        self._pending_sap: dict[int, UeContext5G] = {}
        self._tokens = itertools.count(1)
        self.on(BrokerAuthResponse, self._handle_broker_response)

    def trust_broker(self, id_b: str, public_key: PublicKey) -> None:
        self.broker_public_keys[id_b] = public_key

    # -- cost model -------------------------------------------------------------
    def nas_processing_cost(self, nas: NasMessage) -> float:
        if isinstance(nas, nas5g.SapRegistrationRequest):
            return CB_AMF_COSTS["sap_registration"]
        return super().nas_processing_cost(nas)

    def processing_cost(self, message: object) -> float:
        if isinstance(message, BrokerAuthResponse):
            return CB_AMF_COSTS["broker_auth_response"]
        return super().processing_cost(message)

    # -- SAP flow ------------------------------------------------------------------
    def handle_extension_nas(self, context: UeContext5G,
                             nas: NasMessage) -> None:
        if isinstance(nas, nas5g.SapRegistrationRequest):
            self._on_sap_registration(context, nas)

    def _on_sap_registration(self, context: UeContext5G,
                             request: nas5g.SapRegistrationRequest) -> None:
        context.state = "WAIT_BROKER"
        context.registration_started_at = self.sim.now
        context.broker_id = request.auth_req_u.id_b
        # Allocate the correlation id the inherited SMF plumbing keys on.
        context.correlation = next(self._correlations)
        self._by_correlation[context.correlation] = context.ran_ue_id
        auth_req_t = self.sap.augment_request(request.auth_req_u)
        token = next(self._tokens)
        self._pending_sap[token] = context
        self.send(self.broker_ip, BrokerAuthRequest(
            auth_req_t=auth_req_t, reply_token=token),
            size=auth_req_t.wire_size + 32)

    def _handle_broker_response(self, src_ip: str,
                                response: BrokerAuthResponse) -> None:
        context = self._pending_sap.pop(response.reply_token, None)
        if context is None or context.state != "WAIT_BROKER":
            return
        if not response.approved:
            self.reject(context, response.cause)
            return
        broker_key = self.broker_public_keys.get(
            getattr(context, "broker_id", ""))
        if broker_key is None:
            self.reject(context, "unknown broker")
            return
        try:
            session = self.sap.process_authorization(
                response.auth_resp_t, broker_key, None, now=self.sim.now)
        except SapError as exc:
            self.reject(context, str(exc))
            return
        context.supi = session.id_u_opaque   # pseudonym, never the SUPI
        context.security = SecurityContext(kasme=session.ss)
        context.sap_session = session
        self.downlink(context, nas5g.SapRegistrationChallenge(
            auth_resp_u=response.auth_resp_u))
        context.state = "WAIT_SMC_COMPLETE"
        security = context.security
        self.downlink(context, nas5g.SecurityModeCommand5G(
            enc_alg=security.enc_alg, int_alg=security.int_alg,
            mac=smc_mac(security.k_nas_int, security.enc_alg,
                        security.int_alg)))


class CellBricksUe5G(Ue5G):
    """5G UE running SAP instead of 5G-AKA."""

    def __init__(self, host: Host, gnb_ip: str,
                 credentials: UeSapCredentials, target_id_t: str,
                 name: str = "cb-ue5g"):
        super().__init__(host, gnb_ip, supi=None, usim=None,
                         home_network_key=None,
                         serving_network=target_id_t, name=name)
        self.credentials = credentials
        self.sap = UeSap(credentials)
        self.target_id_t = target_id_t
        self.session_id: Optional[str] = None
        self.processing_costs = dict(Ue5G.processing_costs)
        self.processing_costs[nas5g.SapRegistrationChallenge] = 0.0006
        self.on(nas5g.SapRegistrationChallenge, self._on_sap_challenge)

    def register(self) -> None:
        if self.state not in ("DEREGISTERED", "REJECTED"):
            raise RuntimeError(f"register() in state {self.state}")
        self.state = "REGISTERING"
        self._registration_started = self.sim.now
        craft = 0.0016  # authReqU crafting: hybrid encrypt + sign
        self.charge(craft)
        self.sim.schedule(craft, self._send_registration)

    def initial_request(self):
        auth_req_u = self.sap.craft_request(self.target_id_t)
        return nas5g.SapRegistrationRequest(auth_req_u=auth_req_u)

    def _on_sap_challenge(self, src_ip: str,
                          challenge: nas5g.SapRegistrationChallenge) -> None:
        try:
            response = self.sap.process_response(challenge.auth_resp_u)
        except SapError as exc:
            self._fail(str(exc))
            return
        self.session_id = response.session_id
        self.security = SecurityContext(kasme=response.ss)
