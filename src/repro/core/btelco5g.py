"""CellBricks over 5G: SAP replacing 5G-AKA in the AMF and UE.

The paper's architecture is generation-agnostic ("the cellular core —
called EPC in LTE, or 5GC in 5G"); this module applies the identical SAP
refactoring to the 5G control plane.  The baseline 5G registration pays
*two* visited↔home round trips (AUSF/UDM authenticate + the RES*
confirmation); SAP replaces both with one broker round trip, so the
Fig 7-style win grows under 5G — quantified in the XTRA-5G benchmark.

Reliability/lifecycle parity with the LTE bTelco
(:class:`repro.core.btelco.CellBricksAgw`):

* the broker leg rides ``send_request`` — a lost ``BrokerAuthRequest``
  or ``BrokerAuthResponse`` retransmits with backoff instead of wedging
  the context in ``WAIT_BROKER``, and a broker that stays unreachable
  past the budget yields a clean reject (``_pending_sap`` never leaks);
* grants are enforced: expiry tears the session down with a
  network-initiated deregistration, and the broker's signed
  ``SessionRevocationBatch``/``RevocationAck`` cascade is honoured
  (idempotently), so a revoked 5G session converges to zero
  unauthorized-session-seconds even under loss;
* retransmitted SAP registrations are absorbed by replaying the cached
  challenge + SMC instead of consulting the broker again.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.crypto import Certificate, PrivateKey, PublicKey
from repro.fivegc import nas5g
from repro.fivegc.nf import Amf, UeContext5G
from repro.fivegc.ue5g import Ue5G
from repro.lte.nas import NasMessage
from repro.lte.security import SecurityContext
from repro.lte.signaling import CounterAttr
from repro.net import Host

from .messages import (
    BrokerAuthRequest,
    BrokerAuthResponse,
    RevocationAck,
    SessionRevocation,
    SessionRevocationBatch,
)
from .qos import QosCapabilities
from .sap import (
    AuthorizedSession,
    BtelcoSap,
    BtelcoSapConfig,
    SapError,
    UeSap,
    UeSapCredentials,
)

CB_AMF_COSTS = {
    "sap_registration": 0.0055,
    "broker_auth_response": 0.0057,
}


class CellBricksAmf(Amf):
    """A 5G bTelco site: AMF with SAP, no AUSF/UDM dependency."""

    # Same metric names as the LTE bTelco so fleet-wide registry merges
    # aggregate per-protocol counters across generations.
    expired_sessions = CounterAttr("btelco.expired_sessions")
    revoked_sessions = CounterAttr("btelco.revoked_sessions")
    revocation_dups = CounterAttr("btelco.revocation_dups")
    revocation_acks_sent = CounterAttr("btelco.revocation_acks_sent")
    dup_attach_requests = CounterAttr("btelco.dup_attach_requests")
    broker_timeouts = CounterAttr("btelco.broker_timeouts")

    def nas_span_name(self, nas: NasMessage) -> str:
        if isinstance(nas, nas5g.SapRegistrationRequest):
            return "sap.btelco_sign"
        return super().nas_span_name(nas)

    def span_name(self, message: object) -> str:
        if isinstance(message, BrokerAuthResponse):
            return "sap.btelco_verify"
        if isinstance(message, SessionRevocationBatch):
            return "revocation.btelco_batch"
        if isinstance(message, SessionRevocation):
            return "revocation.btelco_apply"
        return super().span_name(message)

    def __init__(self, host: Host, broker_ip: str, smf_ip: str, id_t: str,
                 key: PrivateKey, certificate: Certificate,
                 ca_public_key: PublicKey,
                 qos_capabilities: Optional[QosCapabilities] = None,
                 name: str = "cb-amf"):
        super().__init__(host, ausf_ip="0.0.0.0", smf_ip=smf_ip, name=name)
        self.broker_ip = broker_ip
        self.id_t = id_t
        self.key = key
        self.sap = BtelcoSap(BtelcoSapConfig(
            id_t=id_t, key=key, certificate=certificate,
            qos_capabilities=qos_capabilities or QosCapabilities(),
            ca_public_key=ca_public_key))
        self.broker_public_keys: dict[str, PublicKey] = {}
        self.sessions: dict[str, AuthorizedSession] = {}
        self.session_brokers: dict[str, str] = {}   # session -> id_b
        self._pending_sap: dict[int, UeContext5G] = {}
        self._tokens = itertools.count(1)
        self.expired_sessions = 0
        self.revoked_sessions = 0
        self.revocation_dups = 0
        self.revocation_acks_sent = 0
        self.dup_attach_requests = 0
        self.broker_timeouts = 0
        self.sap_costs = dict(CB_AMF_COSTS)
        self.on(BrokerAuthResponse, self._handle_broker_response)
        self.on(SessionRevocation, self._handle_session_revocation)
        self.on(SessionRevocationBatch, self._handle_revocation_batch)

    def trust_broker(self, id_b: str, public_key: PublicKey) -> None:
        self.broker_public_keys[id_b] = public_key

    # -- cost model -------------------------------------------------------------
    def nas_processing_cost(self, nas: NasMessage) -> float:
        if isinstance(nas, nas5g.SapRegistrationRequest):
            return self.sap_costs["sap_registration"]
        return super().nas_processing_cost(nas)

    def processing_cost(self, message: object) -> float:
        if isinstance(message, BrokerAuthResponse):
            return self.sap_costs["broker_auth_response"]
        return super().processing_cost(message)

    # -- SAP flow ------------------------------------------------------------------
    def nas_initiates(self, nas: NasMessage) -> bool:
        return super().nas_initiates(nas) \
            or isinstance(nas, nas5g.SapRegistrationRequest)

    def handle_extension_nas(self, context: UeContext5G,
                             nas: NasMessage) -> None:
        if isinstance(nas, nas5g.SapRegistrationRequest):
            self._on_sap_registration(context, nas)

    def _on_sap_registration(self, context: UeContext5G,
                             request: nas5g.SapRegistrationRequest) -> None:
        key = request.auth_req_u.auth_vec_encrypted
        if context.sap_request_key == key:
            # A retransmission of the attempt we are already serving: the
            # ran_ue_id is stable per UE, so the context tells us exactly
            # which leg to replay (idempotent — nothing re-executes).
            self.dup_attach_requests += 1
            if context.state == "WAIT_BROKER":
                return  # broker leg in flight and retransmitting itself
            if context.state == "WAIT_SMC_COMPLETE" \
                    and context.sap_challenge is not None:
                # The challenge and/or SMC downlink was lost: replay both.
                self.downlink(context, context.sap_challenge)
                self.send_smc5g(context)
            return
        # Fresh attempt (new nonce): drop any stale broker leg first.
        if context.broker_token is not None:
            self._pending_sap.pop(context.broker_token, None)
            self.cancel_request(context.broker_corr_id)
            context.broker_token = None
        context.sap_request_key = key
        context.sap_challenge = None
        context.sap_session = None
        context.state = "WAIT_BROKER"
        context.registration_started_at = self.sim.now
        context.broker_id = request.auth_req_u.id_b
        self._watch_registration(context)
        auth_req_t = self.sap.augment_request(request.auth_req_u)
        token = next(self._tokens)
        self._pending_sap[token] = context
        context.broker_token = token
        wire = BrokerAuthRequest(auth_req_t=auth_req_t, reply_token=token)
        # Reliable leg: the broker round-trip crosses the backhaul/cloud
        # path, so it is retransmitted with backoff; if the broker stays
        # unreachable past the budget the UE gets a clean reject and the
        # pending entry is reclaimed (no WAIT_BROKER wedge).
        context.broker_corr_id = self.send_request(
            self.broker_ip, wire, size=auth_req_t.wire_size + 32,
            on_give_up=lambda _msg, t=token: self._broker_gave_up(t))

    def _broker_gave_up(self, token: int) -> None:
        context = self._pending_sap.pop(token, None)
        if context is None or context.state != "WAIT_BROKER":
            return
        self.broker_timeouts += 1
        context.broker_token = None
        self.reject(context, "broker unreachable")

    def _handle_broker_response(self, src_ip: str,
                                response: BrokerAuthResponse) -> None:
        context = self._pending_sap.pop(response.reply_token, None)
        if context is None or context.state != "WAIT_BROKER":
            return
        context.broker_token = None
        if not response.approved:
            self.reject(context, response.cause,
                        retryable=getattr(response, "retryable", False))
            return
        broker_key = self.broker_public_keys.get(
            getattr(context, "broker_id", ""))
        if broker_key is None:
            self.reject(context, "unknown broker")
            return
        try:
            session = self.sap.process_authorization(
                response.auth_resp_t, broker_key, None, now=self.sim.now)
        except SapError as exc:
            self.reject(context, str(exc))
            return
        context.supi = session.id_u_opaque   # pseudonym, never the SUPI
        context.security = SecurityContext(kasme=session.ss)
        context.sap_session = session
        self.sessions[session.session_id] = session
        self.session_brokers[session.session_id] = \
            getattr(context, "broker_id", "")
        # Step 4: forward authRespU, then activate security.  The
        # challenge is cached on the context so a retransmitted SAP
        # registration can replay this leg without re-asking the broker.
        challenge = nas5g.SapRegistrationChallenge(
            auth_resp_u=response.auth_resp_u)
        context.sap_challenge = challenge
        self.downlink(context, challenge)
        context.state = "WAIT_SMC_COMPLETE"
        self.send_smc5g(context)

    # -- grant lifecycle ------------------------------------------------------------
    def after_security_established(self, context: UeContext5G) -> None:
        super().after_security_established(context)
        session = context.sap_session
        if session is not None:
            # The broker's authorization has a lifetime; serving past it
            # would be unauthorized service.  Schedule enforcement.
            delay = max(0.0, session.expires_at - self.sim.now)
            self.sim.schedule(delay, self._expire_session,
                              session.session_id, context.ran_ue_id)

    def _expire_session(self, session_id: str, ran_ue_id: int) -> None:
        """Authorization lifetime reached: network-initiated teardown."""
        context = self.contexts.get(ran_ue_id)
        session = self.sessions.get(session_id)
        if context is None or session is None:
            return
        if getattr(context.sap_session, "session_id", None) != session_id:
            return  # the UE re-registered under a newer authorization
        if context.state not in ("REGISTERED", "WAIT_SMF"):
            return
        self.expired_sessions += 1
        self._teardown_session(context, session_id)

    def _teardown_session(self, context: UeContext5G,
                          session_id: str) -> None:
        """Network-initiated deregistration: drop every resource the
        session holds (the downlink precedes the S1 release so it still
        routes through the gNB's ue-id mapping)."""
        self.sessions.pop(session_id, None)
        self.session_brokers.pop(session_id, None)
        context.sap_session = None
        self.downlink(context, nas5g.DeregistrationRequest5G())
        context.state = "DEREGISTERED"
        self._release_ue(context)

    # -- revocation cascade ----------------------------------------------------------
    def _handle_session_revocation(self, src_ip: str,
                                   notice: SessionRevocation) -> None:
        """Legacy single-notice revocation (kept for compatibility with
        brokers that do not batch)."""
        self._apply_revocation(notice)

    def _handle_revocation_batch(self, src_ip: str,
                                 batch: SessionRevocationBatch) -> None:
        """Apply every revocation in the batch and return a signed ack.

        Idempotent per notice: a batch retransmitted past the transport's
        dedup window re-acks without double-deregistering anything, so
        the broker's retry loop always converges.
        """
        session_ids = []
        for notice in batch.revocations:
            self._apply_revocation(notice)
            session_ids.append(notice.session_id)
        ack_ids = tuple(sorted(session_ids))
        unsigned = RevocationAck(batch_id=batch.batch_id, id_t=self.id_t,
                                 session_ids=ack_ids)
        ack = RevocationAck(batch_id=batch.batch_id, id_t=self.id_t,
                            session_ids=ack_ids,
                            signature=self.key.sign(unsigned.signed_bytes()))
        self.revocation_acks_sent += 1
        self.send(src_ip, ack, size=96 + 16 * len(ack_ids))

    def _apply_revocation(self, notice: SessionRevocation) -> None:
        """Broker withdrew an authorization we hold: serving this session
        any further would be unauthorized service, so deregister it now
        and refuse the grant if it is ever presented again."""
        if not self.sap.session_authorized(notice.session_id):
            # Already applied (duplicate notice): nothing to tear down.
            self.revocation_dups += 1
            return
        self.sap.revoke_session(notice.session_id)
        if notice.session_id not in self.sessions:
            return
        self.revoked_sessions += 1
        context = next(
            (c for c in self.contexts.values()
             if getattr(getattr(c, "sap_session", None), "session_id",
                        None) == notice.session_id),
            None)
        if context is not None \
                and context.state in ("REGISTERED", "WAIT_SMF"):
            self._teardown_session(context, notice.session_id)
        else:
            # Mid-registration or already torn down: just drop the
            # bookkeeping; _on_registration_complete refuses revoked
            # sessions.
            self.sessions.pop(notice.session_id, None)
            self.session_brokers.pop(notice.session_id, None)

    def _on_registration_complete(self, context: UeContext5G) -> None:
        super()._on_registration_complete(context)
        session = getattr(context, "sap_session", None)
        if session is not None and context.state == "REGISTERED" \
                and not self.sap.session_authorized(session.session_id):
            # The grant was revoked while the registration was in flight.
            self.revoked_sessions += 1
            self._teardown_session(context, session.session_id)

    # -- terminal cleanup --------------------------------------------------------------
    def context_released(self, context: UeContext5G) -> None:
        """Any terminal transition (reject, abandon, deregister, deadline
        GC) reclaims the broker leg and the session bookkeeping, so
        ``_pending_sap``/``sessions`` cannot leak."""
        if context.broker_token is not None:
            self._pending_sap.pop(context.broker_token, None)
            self.cancel_request(context.broker_corr_id)
            context.broker_token = None
        session = getattr(context, "sap_session", None)
        if session is not None:
            self.sessions.pop(session.session_id, None)
            self.session_brokers.pop(session.session_id, None)
            context.sap_session = None
        super().context_released(context)

    # -- introspection -----------------------------------------------------------------
    def stats(self) -> dict:
        stats = super().stats()
        stats.update({
            "sessions_active": len(self.sessions),
            "pending_sap": len(self._pending_sap),
            "expired_sessions": self.expired_sessions,
            "revoked_sessions": self.revoked_sessions,
            "revocation_dups": self.revocation_dups,
            "revocation_acks_sent": self.revocation_acks_sent,
            "dup_attach_requests": self.dup_attach_requests,
            "broker_timeouts": self.broker_timeouts,
        })
        stats.update(self.reliable_stats())
        return stats


class CellBricksUe5G(Ue5G):
    """5G UE running SAP instead of 5G-AKA."""

    craft_span_name = "sap.ue_craft"
    _SPAN_NAMES = dict(Ue5G._SPAN_NAMES)
    _SPAN_NAMES[nas5g.SapRegistrationChallenge] = "sap.ue_verify"

    def __init__(self, host: Host, gnb_ip: str,
                 credentials: UeSapCredentials, target_id_t: str,
                 name: str = "cb-ue5g"):
        super().__init__(host, gnb_ip, supi=None, usim=None,
                         home_network_key=None,
                         serving_network=target_id_t, name=name)
        self.credentials = credentials
        self.sap = UeSap(credentials)
        self.target_id_t = target_id_t
        self.session_id: Optional[str] = None
        self.processing_costs = dict(Ue5G.processing_costs)
        self.processing_costs[nas5g.SapRegistrationChallenge] = 0.0006
        self.on(nas5g.SapRegistrationChallenge, self._on_sap_challenge)

    def craft_cost(self) -> float:
        return 0.0016  # authReqU crafting: hybrid encrypt + sign

    def register(self) -> None:
        # A fresh attempt must not inherit the previous session's id (the
        # security context is already cleared by the base class).
        self.session_id = None
        super().register()

    def initial_request(self):
        auth_req_u = self.sap.craft_request(self.target_id_t)
        return nas5g.SapRegistrationRequest(auth_req_u=auth_req_u)

    def _on_registration_give_up(self) -> None:
        super()._on_registration_give_up()
        self.sap.abandon()
        self.session_id = None

    def retarget(self, gnb_ip: str, serving_network: str) -> None:
        super().retarget(gnb_ip, serving_network)
        self.target_id_t = serving_network

    def _on_sap_challenge(self, src_ip: str,
                          challenge: nas5g.SapRegistrationChallenge) -> None:
        if self.state != "REGISTERING":
            return  # late replay after success/failure: absorb, don't fail
        if self.security is not None:
            # Duplicate within the attempt (bTelco replayed the leg):
            # process_response already consumed the nonce — re-running it
            # would raise a spurious mismatch against a fresh nonce.
            return
        try:
            response = self.sap.process_response(challenge.auth_resp_u)
        except SapError as exc:
            self._fail(str(exc))
            return
        self.session_id = response.session_id
        self.security = SecurityContext(kasme=response.ss)
