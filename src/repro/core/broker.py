"""brokerd — the broker service (deployed in Orc8r on AWS in the paper).

A :class:`SignalingNode` wrapping :class:`~repro.core.sap.BrokerSap` with
its SubscriberDB, plus the billing-verification pipeline of §4.3 (traffic
report collection, cross-checking, reputation).
"""

from __future__ import annotations

from typing import Optional

from repro.crypto import PrivateKey, PublicKey, generate_keypair
from repro.lte.signaling import SignalingNode
from repro.net import Host

from .billing import BillingVerifier, TrafficReportUpload
from .messages import BrokerAuthRequest, BrokerAuthResponse, SessionRevocation
from .qos import QosInfo
from .reputation import ReputationSystem
from .sap import BrokerSap, BrokerSubscriber, SapError, SapGrant

# brokerd processing per authentication request (seconds): decrypt,
# two verifies, two seals, two signs — the "Brokerd" share of Fig 7.
AUTH_REQUEST_PROCESSING = 0.0046
REPORT_PROCESSING = 0.0003


class Brokerd(SignalingNode):
    """The broker's network-facing daemon."""

    processing_costs = {
        BrokerAuthRequest: AUTH_REQUEST_PROCESSING,
        TrafficReportUpload: REPORT_PROCESSING,
    }

    def __init__(self, host: Host, id_b: str, ca_public_key: PublicKey,
                 key: Optional[PrivateKey] = None,
                 name: str = "brokerd", session_ttl: float = 3600.0):
        super().__init__(host, name)
        self.id_b = id_b
        self.key = key or generate_keypair()
        self.sap = BrokerSap(id_b=id_b, key=self.key,
                             ca_public_key=ca_public_key,
                             session_ttl=session_ttl)
        self.reputation = ReputationSystem()
        self.billing = BillingVerifier(broker_key=self.key,
                                       reputation=self.reputation)
        self.sap.authorize_btelco = self._btelco_policy
        self.sap.on_grant_expired = self._on_grant_expired
        #: optional settlement engine to cascade revocations into.
        self.settlement = None
        #: session_id -> signaling address of the serving bTelco, so a
        #: revocation can be pushed to whoever holds the grant.
        self._session_btelco: dict[str, str] = {}
        self.requests_approved = 0
        self.requests_denied = 0
        self.revocations_sent = 0
        self.on(BrokerAuthRequest, self._handle_auth_request)
        self.on(TrafficReportUpload, self._handle_report)

    @property
    def public_key(self) -> PublicKey:
        return self.key.public_key

    # -- subscriber management ------------------------------------------------
    def enroll_subscriber(self, id_u: str, public_key: PublicKey,
                          qos_plan: Optional[QosInfo] = None) -> None:
        self.sap.enroll(BrokerSubscriber(
            id_u=id_u, public_key=public_key,
            qos_plan=qos_plan or QosInfo()))

    def revoke_subscriber(self, id_u: str) -> list[SapGrant]:
        """Invalidate a subscriber's key and cascade to live grants.

        Every outstanding authorization is withdrawn: the serving bTelco
        is notified (:class:`SessionRevocation`), further traffic reports
        are refused, and — when a settlement engine is attached — pending
        claims against the revoked sessions are voided.
        """
        revoked = self.sap.revoke(id_u)
        for grant in revoked:
            self.billing.close_session(grant.session_id)
            if self.settlement is not None:
                self.settlement.void_session(grant.session_id)
            destination = self._session_btelco.pop(grant.session_id, None)
            if destination is not None:
                self.revocations_sent += 1
                self.send(destination, SessionRevocation(
                    session_id=grant.session_id,
                    id_u_opaque=grant.id_u_opaque), size=96)
        return revoked

    # -- session lifecycle ----------------------------------------------------
    def expire_grants(self, now: Optional[float] = None) -> list[SapGrant]:
        """Explicit grant-GC sweep (also runs amortized per request)."""
        return self.sap.expire_grants(self.sim.now if now is None else now)

    def _on_grant_expired(self, grant: SapGrant) -> None:
        self._session_btelco.pop(grant.session_id, None)
        self.billing.close_session(grant.session_id)

    def stats(self) -> dict:
        """Lifecycle counters: SAP state sizes plus daemon-level tallies."""
        stats = self.sap.stats()
        stats.update(requests_approved=self.requests_approved,
                     requests_denied=self.requests_denied,
                     revocations_sent=self.revocations_sent,
                     sessions_tracked=len(self._session_btelco))
        return stats

    def mandate_intercept(self, id_u: str) -> None:
        """Place a subscriber under lawful intercept (legal process at
        the broker — the bTelco only ever sees the session pseudonym)."""
        self.sap.li_targets.add(id_u)

    def lift_intercept(self, id_u: str) -> None:
        self.sap.li_targets.discard(id_u)

    # -- policy -------------------------------------------------------------------
    def _btelco_policy(self, id_t: str) -> Optional[str]:
        """Deny bTelcos whose reputation fell below threshold (§4.3)."""
        if not self.reputation.btelco_acceptable(id_t):
            return "reputation below threshold"
        return None

    # -- handlers --------------------------------------------------------------------
    def _handle_auth_request(self, src_ip: str,
                             request: BrokerAuthRequest) -> None:
        try:
            sealed_t, sealed_u, grant = self.sap.process_request(
                request.auth_req_t, now=self.sim.now)
        except SapError as exc:
            self.requests_denied += 1
            self.send(src_ip, BrokerAuthResponse(
                approved=False, cause=str(exc),
                reply_token=request.reply_token), size=96)
            return
        self.requests_approved += 1
        self._session_btelco[grant.session_id] = src_ip
        self.billing.open_session(
            grant,
            ue_public_key=self.sap.subscribers[grant.id_u].public_key,
            btelco_public_key=request.auth_req_t.t_certificate.public_key)
        self.send(src_ip, BrokerAuthResponse(
            approved=True, auth_resp_t=sealed_t, auth_resp_u=sealed_u,
            reply_token=request.reply_token),
            size=sealed_t.wire_size + sealed_u.wire_size + 64)

    def _handle_report(self, src_ip: str,
                       upload: TrafficReportUpload) -> None:
        self.billing.ingest(upload, now=self.sim.now)
