"""brokerd — the broker service (deployed in Orc8r on AWS in the paper).

A :class:`SignalingNode` wrapping :class:`~repro.core.sap.BrokerSap` with
its SubscriberDB, plus the billing-verification pipeline of §4.3 (traffic
report collection, cross-checking, reputation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto import PrivateKey, PublicKey, generate_keypair
from repro.lte.signaling import CounterAttr, SignalingNode
from repro.net import Host

from .billing import BillingVerifier, TrafficReportUpload
from .messages import (
    BrokerAuthRequest,
    BrokerAuthResponse,
    ReportAck,
    RevocationAck,
    SessionRevocation,
    SessionRevocationBatch,
)
from .qos import QosInfo
from .reputation import ReputationSystem
from .sap import BrokerSap, BrokerSubscriber, SapError, SapGrant

# brokerd processing per authentication request (seconds): decrypt,
# two verifies, two seals, two signs — the "Brokerd" share of Fig 7.
AUTH_REQUEST_PROCESSING = 0.0046
REPORT_PROCESSING = 0.0003
ACK_PROCESSING = 0.0002


@dataclass
class _OutstandingBatch:
    """One revocation batch awaiting its signed ack."""

    batch: SessionRevocationBatch
    destination: str
    deadline: float              # latest grant expiry in the batch
    correlation_id: int = 0
    attempts: int = 0


class Brokerd(SignalingNode):
    """The broker's network-facing daemon."""

    processing_costs = {
        BrokerAuthRequest: AUTH_REQUEST_PROCESSING,
        TrafficReportUpload: REPORT_PROCESSING,
        RevocationAck: ACK_PROCESSING,
    }
    obs_category = "cloud"
    _SPAN_NAMES = {
        BrokerAuthRequest: "sap.broker_verify",
        TrafficReportUpload: "billing.report_verify",
        RevocationAck: "revocation.ack_verify",
    }
    requests_approved = CounterAttr("broker.requests_approved")
    requests_denied = CounterAttr("broker.requests_denied")
    revocations_sent = CounterAttr("broker.revocations_sent")
    revocation_batches_sent = CounterAttr("broker.revocation_batches_sent")
    revocation_batches_acked = CounterAttr("broker.revocation_batches_acked")
    revocation_batches_retried = \
        CounterAttr("broker.revocation_batches_retried")
    revocation_batches_failed = \
        CounterAttr("broker.revocation_batches_failed")
    revocation_acks_bad = CounterAttr("broker.revocation_acks_bad")
    reports_retried = CounterAttr("broker.reports_retried")

    def span_name(self, message: object) -> str:
        name = self._SPAN_NAMES.get(type(message))
        return name if name is not None else super().span_name(message)

    def __init__(self, host: Host, id_b: str, ca_public_key: PublicKey,
                 key: Optional[PrivateKey] = None,
                 name: str = "brokerd", session_ttl: float = 3600.0):
        super().__init__(host, name)
        self.id_b = id_b
        self.key = key or generate_keypair()
        # SAP counters land in this node's registry (one snapshot per
        # brokerd, fleet-mergeable).
        self.sap = BrokerSap(id_b=id_b, key=self.key,
                             ca_public_key=ca_public_key,
                             session_ttl=session_ttl,
                             metrics=self.metrics)
        self.reputation = ReputationSystem()
        self.billing = BillingVerifier(broker_key=self.key,
                                       reputation=self.reputation)
        self.sap.authorize_btelco = self._btelco_policy
        self.sap.on_grant_expired = self._on_grant_expired
        #: optional settlement engine to cascade revocations into.
        self.settlement = None
        #: session_id -> signaling address of the serving bTelco, so a
        #: revocation can be pushed to whoever holds the grant.
        self._session_btelco: dict[str, str] = {}
        #: signaling address -> the bTelco key that authenticated there
        #: (from the certificate in its last BrokerAuthRequest), used to
        #: verify RevocationAck signatures.
        self._btelco_keys: dict[str, PublicKey] = {}
        #: batch_id -> batch awaiting a signed RevocationAck; bounded by
        #: the number of revocations with unexpired grants.
        self._outstanding_batches: dict[int, _OutstandingBatch] = {}
        self._batch_counter = 0
        self.requests_approved = 0
        self.requests_denied = 0
        self.revocations_sent = 0
        self.revocation_batches_sent = 0
        self.revocation_batches_acked = 0
        self.revocation_batches_retried = 0
        self.revocation_batches_failed = 0
        self.revocation_acks_bad = 0
        self.reports_retried = 0
        self.on(BrokerAuthRequest, self._handle_auth_request)
        self.on(TrafficReportUpload, self._handle_report)
        self.on(RevocationAck, self._handle_revocation_ack)

    @property
    def public_key(self) -> PublicKey:
        return self.key.public_key

    # -- subscriber management ------------------------------------------------
    def enroll_subscriber(self, id_u: str, public_key: PublicKey,
                          qos_plan: Optional[QosInfo] = None) -> None:
        self.sap.enroll(BrokerSubscriber(
            id_u=id_u, public_key=public_key,
            qos_plan=qos_plan or QosInfo()))

    def revoke_subscriber(self, id_u: str) -> list[SapGrant]:
        """Invalidate a subscriber's key and cascade to live grants.

        Every outstanding authorization is withdrawn: the serving bTelco
        is notified (:class:`SessionRevocation`), further traffic reports
        are refused, and — when a settlement engine is attached — pending
        claims against the revoked sessions are voided.
        """
        revoked = self.sap.revoke(id_u)
        by_destination: dict[str, list[SapGrant]] = {}
        for grant in revoked:
            self.billing.close_session(grant.session_id)
            if self.settlement is not None:
                self.settlement.void_session(grant.session_id)
            destination = self._session_btelco.pop(grant.session_id, None)
            if destination is not None:
                by_destination.setdefault(destination, []).append(grant)
        for destination, grants in by_destination.items():
            self._push_revocation_batch(destination, grants)
        return revoked

    def _push_revocation_batch(self, destination: str,
                               grants: list[SapGrant]) -> None:
        """Send all of one bTelco's revocations as one reliable batch.

        Retransmitted with backoff until the signed :class:`RevocationAck`
        arrives or every grant in the batch has expired on its own (at
        which point the bTelco would reject the session as expired
        anyway, so nothing unauthorized can keep running).
        """
        self._batch_counter += 1
        batch = SessionRevocationBatch(
            batch_id=self._batch_counter, id_b=self.id_b,
            revocations=tuple(
                SessionRevocation(session_id=g.session_id,
                                  id_u_opaque=g.id_u_opaque)
                for g in grants))
        self.revocations_sent += len(grants)
        self.revocation_batches_sent += 1
        state = _OutstandingBatch(
            batch=batch, destination=destination,
            deadline=max(g.expires_at for g in grants))
        self._outstanding_batches[batch.batch_id] = state
        self._transmit_batch(state)

    def _transmit_batch(self, state: _OutstandingBatch) -> None:
        state.attempts += 1
        batch = state.batch
        state.correlation_id = self.send_request(
            state.destination, batch, size=batch.wire_size,
            max_attempts=1_000_000,          # deadline is the real bound
            deadline=state.deadline,
            on_give_up=lambda _msg, b=batch.batch_id: self._batch_gave_up(b),
            on_retransmit=lambda _msg, _n: self._note_batch_retry())

    def _note_batch_retry(self) -> None:
        self.revocation_batches_retried += 1

    def _batch_gave_up(self, batch_id: int) -> None:
        if self._outstanding_batches.pop(batch_id, None) is not None:
            self.revocation_batches_failed += 1

    # -- session lifecycle ----------------------------------------------------
    def expire_grants(self, now: Optional[float] = None) -> list[SapGrant]:
        """Explicit grant-GC sweep (also runs amortized per request)."""
        return self.sap.expire_grants(self.sim.now if now is None else now)

    def _on_grant_expired(self, grant: SapGrant) -> None:
        self._session_btelco.pop(grant.session_id, None)
        self.billing.close_session(grant.session_id)

    def stats(self) -> dict:
        """Lifecycle counters: SAP state sizes plus daemon-level tallies."""
        stats = self.sap.stats()
        stats.update(requests_approved=self.requests_approved,
                     requests_denied=self.requests_denied,
                     revocations_sent=self.revocations_sent,
                     revocation_batches_sent=self.revocation_batches_sent,
                     revocation_batches_acked=self.revocation_batches_acked,
                     revocation_batches_retried=self.revocation_batches_retried,
                     revocation_batches_failed=self.revocation_batches_failed,
                     revocation_batches_outstanding=len(
                         self._outstanding_batches),
                     revocation_acks_bad=self.revocation_acks_bad,
                     reports_retried=self.reports_retried,
                     reports_lost=self.billing.reports_unmatched,
                     sessions_tracked=len(self._session_btelco))
        stats.update(self.reliable_stats())
        return stats

    def mandate_intercept(self, id_u: str) -> None:
        """Place a subscriber under lawful intercept (legal process at
        the broker — the bTelco only ever sees the session pseudonym)."""
        self.sap.li_targets.add(id_u)

    def lift_intercept(self, id_u: str) -> None:
        self.sap.li_targets.discard(id_u)

    # -- policy -------------------------------------------------------------------
    def _btelco_policy(self, id_t: str) -> Optional[str]:
        """Deny bTelcos whose reputation fell below threshold (§4.3)."""
        if not self.reputation.btelco_acceptable(id_t):
            return "reputation below threshold"
        return None

    # -- handlers --------------------------------------------------------------------
    def _handle_auth_request(self, src_ip: str,
                             request: BrokerAuthRequest) -> None:
        try:
            sealed_t, sealed_u, grant = self.sap.process_request(
                request.auth_req_t, now=self.sim.now)
        except SapError as exc:
            self.requests_denied += 1
            self.send(src_ip, BrokerAuthResponse(
                approved=False, cause=str(exc),
                reply_token=request.reply_token), size=96)
            return
        self.requests_approved += 1
        self._session_btelco[grant.session_id] = src_ip
        self._btelco_keys[src_ip] = \
            request.auth_req_t.t_certificate.public_key
        if grant.session_id not in self.billing.sessions:
            # Guard against a duplicate request re-served from the SAP
            # idempotency cache wiping an already-populated ledger.
            self.billing.open_session(
                grant,
                ue_public_key=self.sap.subscribers[grant.id_u].public_key,
                btelco_public_key=request.auth_req_t.t_certificate.public_key)
        self.send(src_ip, BrokerAuthResponse(
            approved=True, auth_resp_t=sealed_t, auth_resp_u=sealed_u,
            reply_token=request.reply_token),
            size=sealed_t.wire_size + sealed_u.wire_size + 64)

    def _handle_report(self, src_ip: str,
                       upload: TrafficReportUpload) -> None:
        self.billing.ingest(upload, now=self.sim.now)
        self.send(src_ip, ReportAck(session_id=upload.session_id,
                                    seq=upload.seq,
                                    reporter=upload.reporter), size=48)

    def note_retransmitted_request(self, message: object) -> None:
        if isinstance(message, TrafficReportUpload):
            self.reports_retried += 1

    def _handle_revocation_ack(self, src_ip: str, ack: RevocationAck) -> None:
        """Close out a revocation batch once its *signed* ack arrives.

        Idempotent (a duplicate ack for an already-closed batch is
        ignored) and forgery-resistant: the signature must verify under
        the key the bTelco authenticated with at SAP time, else the batch
        keeps retrying — an on-path attacker cannot silence a revocation.
        """
        state = self._outstanding_batches.get(ack.batch_id)
        if state is None:
            return
        key = self._btelco_keys.get(src_ip)
        expected = tuple(sorted(
            r.session_id for r in state.batch.revocations))
        if (key is None or tuple(sorted(ack.session_ids)) != expected
                or not ack.verify(key)):
            self.revocation_acks_bad += 1
            # The transport matched the response and stopped
            # retransmitting; a forged/bad ack must not end the protocol,
            # so re-issue the batch as a fresh reliable request.
            self._transmit_batch(state)
            return
        del self._outstanding_batches[ack.batch_id]
        self.revocation_batches_acked += 1
