"""brokerd — the broker service (deployed in Orc8r on AWS in the paper).

A :class:`SignalingNode` wrapping :class:`~repro.core.sap.BrokerSap` with
its SubscriberDB, plus the billing-verification pipeline of §4.3 (traffic
report collection, cross-checking, reputation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto import PrivateKey, PublicKey, generate_keypair
from repro.lte.signaling import CounterAttr, SignalingNode
from repro.net import Host

from .billing import BillingVerifier, REPORTER_BTELCO, TrafficReportUpload
from .messages import (
    BrokerAuthRequest,
    BrokerAuthResponse,
    ReportAck,
    RevocationAck,
    ScopeAttachAck,
    ScopeAttachNotice,
    SessionRevocation,
    SessionRevocationBatch,
)
from .qos import QosInfo
from .reputation import ReputationSystem
from .sap import BrokerSap, BrokerSubscriber, SapError, SapGrant

# brokerd processing per authentication request (seconds): decrypt,
# two verifies, two seals, two signs — the "Brokerd" share of Fig 7.
AUTH_REQUEST_PROCESSING = 0.0046
REPORT_PROCESSING = 0.0003
ACK_PROCESSING = 0.0002
# Scope-attach notice: one cert check (memoized at the CA layer), one
# signature verify, a counter compare — far off the attach critical path.
SCOPE_NOTICE_PROCESSING = 0.0009

# Calibrated decomposition of AUTH_REQUEST_PROCESSING for the batching
# pipeline.  The serial handler charges the lump sum; the pipeline
# charges the same work split across its stages, so a single request
# through an idle pipeline costs exactly AUTH_REQUEST_PROCESSING:
#   INGRESS + CERT_VALIDATE + 2*SIG_VERIFY + AUTHVEC_DECRYPT
#     + 2*SEAL_SIGN  =  0.0046
INGRESS_PROCESSING = 0.0002      # envelope parse + batch enqueue
CERT_VALIDATE_COST = 0.0008      # CA chain check (memoized per cert)
SIG_VERIFY_COST = 0.0004         # one PSS verify (sig_t / sig_authvec)
AUTHVEC_DECRYPT_COST = 0.0010    # RSA decrypt of the authVec
SEAL_SIGN_COST = 0.0009          # one seal_and_sign (RSA private op)
CACHED_VERIFY_COST = 0.00002     # verify-cache hit instead of a full check
DENIAL_FINISH_COST = 0.0001      # replay/policy rejection (no minting)


@dataclass
class _OutstandingBatch:
    """One revocation batch awaiting its signed ack."""

    batch: SessionRevocationBatch
    destination: str
    deadline: float              # latest grant expiry in the batch
    correlation_id: int = 0
    attempts: int = 0


class AdaptiveBatchWindow:
    """Nagle-style batch window derived from the observed arrival rate.

    The pipeline's fixed 2 ms window is the wrong constant at both ends
    of the load curve: a lone request waits the full window for peers
    that never arrive, and a sustained storm flushes long before a batch
    is worth its amortization.  This tracker keeps an EWMA of the
    inter-arrival gap and sizes the window to the time a full batch
    needs to assemble — clamped to ``[min_window, max_window]`` — while
    the daemon flushes immediately once ``full_size`` requests are
    parked (the "flush when full" half of Nagle).  Sparse traffic
    (expected gap beyond ``max_window``) collapses to ``min_window``:
    nobody else is coming, don't hold the request hostage.

    Purely deterministic — it reads only the virtual clock, so
    identically-seeded runs replay identical batch boundaries.
    """

    __slots__ = ("min_window", "max_window", "full_size", "gap_alpha",
                 "_ewma_gap", "_last_arrival")

    def __init__(self, *, min_window: float = 0.0002,
                 max_window: float = 0.008, full_size: int = 32,
                 gap_alpha: float = 0.25):
        if not 0.0 <= min_window <= max_window:
            raise ValueError("need 0 <= min_window <= max_window")
        if full_size < 1:
            raise ValueError("full_size must be >= 1")
        self.min_window = min_window
        self.max_window = max_window
        self.full_size = full_size
        self.gap_alpha = gap_alpha
        self._ewma_gap: Optional[float] = None
        self._last_arrival: Optional[float] = None

    def observe(self, now: float) -> None:
        """Record one request arrival at virtual time ``now``."""
        if self._last_arrival is not None:
            gap = now - self._last_arrival
            if self._ewma_gap is None:
                self._ewma_gap = gap
            else:
                self._ewma_gap += self.gap_alpha * (gap - self._ewma_gap)
        self._last_arrival = now

    def window(self) -> float:
        """Seconds to hold the current batch open before flushing."""
        gap = self._ewma_gap
        if gap is None or gap >= self.max_window:
            return self.min_window
        return min(self.max_window,
                   max(self.min_window, self.full_size * gap))

    def full(self, batch_size: int) -> bool:
        return batch_size >= self.full_size


@dataclass
class _PipelineItem:
    """One auth request waiting in the current batch window."""

    src_ip: str
    request: BrokerAuthRequest
    deferred: object             # DeferredReply from the ingress handler
    arrived: float
    corr_id: int = 0


class Brokerd(SignalingNode):
    """The broker's network-facing daemon."""

    processing_costs = {
        BrokerAuthRequest: AUTH_REQUEST_PROCESSING,
        TrafficReportUpload: REPORT_PROCESSING,
        RevocationAck: ACK_PROCESSING,
        ScopeAttachNotice: SCOPE_NOTICE_PROCESSING,
    }
    obs_category = "cloud"
    _SPAN_NAMES = {
        BrokerAuthRequest: "sap.broker_verify",
        TrafficReportUpload: "billing.report_verify",
        RevocationAck: "revocation.ack_verify",
        ScopeAttachNotice: "sap.broker_scope_notice",
    }
    requests_approved = CounterAttr("broker.requests_approved")
    requests_denied = CounterAttr("broker.requests_denied")
    scope_notices_accepted = CounterAttr("broker.scope_notices_accepted")
    scope_notices_denied = CounterAttr("broker.scope_notices_denied")
    revocations_sent = CounterAttr("broker.revocations_sent")
    revocation_batches_sent = CounterAttr("broker.revocation_batches_sent")
    revocation_batches_acked = CounterAttr("broker.revocation_batches_acked")
    revocation_batches_retried = \
        CounterAttr("broker.revocation_batches_retried")
    revocation_batches_failed = \
        CounterAttr("broker.revocation_batches_failed")
    revocation_acks_bad = CounterAttr("broker.revocation_acks_bad")
    reports_retried = CounterAttr("broker.reports_retried")
    pipeline_batches = CounterAttr("broker.pipeline_batches")
    pipeline_requests = CounterAttr("broker.pipeline_requests")
    pipeline_full_flushes = CounterAttr("broker.pipeline_full_flushes")
    cert_cache_hits = CounterAttr("broker.cert_cache_hits")

    def span_name(self, message: object) -> str:
        if self.pipeline_enabled and type(message) is BrokerAuthRequest:
            # In pipeline mode the ingress handler only enqueues; the
            # verify/mint work gets its own spans at flush time.
            return "sap.broker_ingress"
        name = self._SPAN_NAMES.get(type(message))
        return name if name is not None else super().span_name(message)

    def __init__(self, host: Host, id_b: str, ca_public_key: PublicKey,
                 key: Optional[PrivateKey] = None,
                 name: str = "brokerd", session_ttl: float = 3600.0):
        super().__init__(host, name)
        self.id_b = id_b
        self.key = key or generate_keypair()
        # SAP counters land in this node's registry (one snapshot per
        # brokerd, fleet-mergeable).
        self.sap = BrokerSap(id_b=id_b, key=self.key,
                             ca_public_key=ca_public_key,
                             session_ttl=session_ttl,
                             metrics=self.metrics)
        self.reputation = ReputationSystem()
        self.billing = BillingVerifier(broker_key=self.key,
                                       reputation=self.reputation)
        self.sap.authorize_btelco = self._btelco_policy
        self.sap.on_grant_expired = self._on_grant_expired
        #: optional settlement engine to cascade revocations into.
        self.settlement = None
        #: session_id -> signaling address of the serving bTelco, so a
        #: revocation can be pushed to whoever holds the grant.
        self._session_btelco: dict[str, str] = {}
        #: signaling address -> the bTelco key that authenticated there
        #: (from the certificate in its last BrokerAuthRequest), used to
        #: verify RevocationAck signatures.
        self._btelco_keys: dict[str, PublicKey] = {}
        #: batch_id -> batch awaiting a signed RevocationAck; bounded by
        #: the number of revocations with unexpired grants.
        self._outstanding_batches: dict[int, _OutstandingBatch] = {}
        self._batch_counter = 0
        # -- batching pipeline (off by default: the serial handler is the
        # byte-compatible historical path) --------------------------------
        self.pipeline_enabled = False
        #: distributed mode: a ``repro.core.shardhost.ShardFrontend``
        #: that routes auths to network-attached shard hosts.  ``None``
        #: keeps the historical in-process SAP path.
        self.frontend = None
        self.batch_window = 0.002
        self.adaptive_window: Optional[AdaptiveBatchWindow] = None
        self._worker_free: list[float] = []
        self._shard_free: dict[int, float] = {}
        self._auth_batch: list[_PipelineItem] = []
        self._flush_event = None
        self._flushing_now = False
        self._verified_certs: set[str] = set()
        self.pipeline_batches = 0
        self.pipeline_requests = 0
        self.pipeline_full_flushes = 0
        self.cert_cache_hits = 0
        self.requests_approved = 0
        self.requests_denied = 0
        self.revocations_sent = 0
        self.revocation_batches_sent = 0
        self.revocation_batches_acked = 0
        self.revocation_batches_retried = 0
        self.revocation_batches_failed = 0
        self.revocation_acks_bad = 0
        self.reports_retried = 0
        self.scope_notices_accepted = 0
        self.scope_notices_denied = 0
        self.on(BrokerAuthRequest, self._handle_auth_request)
        self.on(TrafficReportUpload, self._handle_report)
        self.on(RevocationAck, self._handle_revocation_ack)
        self.on(ScopeAttachNotice, self._handle_scope_notice)

    @property
    def public_key(self) -> PublicKey:
        return self.key.public_key

    # -- batching pipeline ----------------------------------------------------
    def configure_pipeline(self, *, enabled: bool = True,
                           batch_window: float = 0.002,
                           verify_workers: int = 4,
                           shards: Optional[int] = None,
                           adaptive: bool = False,
                           min_window: float = 0.0002,
                           max_window: float = 0.008,
                           window_full_size: int = 32) -> None:
        """Switch the auth hot path to the sharded, batching pipeline.

        Requests arriving within ``batch_window`` of the first are
        flushed as one batch: signature/certificate checks run on
        ``verify_workers`` parallel workers (stage A), then each request
        joins its shard's serialized replay/mint lane (stage B).  With
        the pipeline off (the default) the historical one-at-a-time
        handler runs and behavior is byte-identical to earlier builds.

        ``adaptive=True`` replaces the fixed window with an
        :class:`AdaptiveBatchWindow` over ``[min_window, max_window]``:
        the window tracks the observed arrival rate and a batch of
        ``window_full_size`` flushes immediately instead of waiting out
        its timer (Nagle-style).  Only measurable at population scale —
        see ``repro.testbed.megaload``.
        """
        if verify_workers < 1:
            raise ValueError("verify_workers must be >= 1")
        if batch_window < 0.0:
            raise ValueError("batch_window must be >= 0")
        if shards is not None:
            self.sap.set_shard_count(shards)
        self.pipeline_enabled = enabled
        self.batch_window = batch_window
        self.adaptive_window = AdaptiveBatchWindow(
            min_window=min_window, max_window=max_window,
            full_size=window_full_size) if adaptive else None
        self._worker_free = [0.0] * verify_workers
        self._shard_free = {}

    # -- distributed shards ---------------------------------------------------
    def configure_distributed(self, frontend) -> None:
        """Hand the auth hot path to a :class:`ShardFrontend`.

        The daemon keeps its socket, certificates, billing, and the
        revocation protocol; session verification and minting move to
        network-attached shard hosts behind the frontend's hash ring.
        Called by ``repro.core.shardhost.deploy_shard_hosts``.
        """
        from .shardhost import (
            HandoffBeginAck,
            HandoffChunk,
            HandoffChunkAck,
            HandoffCommitAck,
            PromoteAck,
            ResyncAck,
            ShardAuthResponse,
            ShardHeartbeatAck,
            ShardScopeAck,
        )
        self.frontend = frontend
        self.processing_costs = dict(self.processing_costs)
        self.processing_costs.update(frontend.broker_processing_costs())
        self.on(ShardAuthResponse, frontend._on_shard_auth_response)
        self.on(ShardScopeAck, frontend._on_shard_scope_ack)
        self.on(ShardHeartbeatAck, frontend._on_heartbeat_ack)
        self.on(PromoteAck, frontend._on_promote_ack)
        self.on(ResyncAck, lambda src_ip, ack: None)
        self.on(HandoffBeginAck, lambda src_ip, ack: None)
        self.on(HandoffChunk, frontend._on_handoff_chunk)
        self.on(HandoffChunkAck, frontend._on_handoff_chunk_ack)
        self.on(HandoffCommitAck, lambda src_ip, ack: None)

    def _cost_scale(self) -> float:
        """Fault-injection compatibility: a brownout inflates the lump
        AUTH_REQUEST_PROCESSING cost; the pipeline scales its calibrated
        stage costs by the same factor."""
        return self.processing_costs.get(
            BrokerAuthRequest, AUTH_REQUEST_PROCESSING) \
            / AUTH_REQUEST_PROCESSING

    def processing_cost(self, message: object) -> float:
        if type(message) is BrokerAuthRequest \
                and (self.pipeline_enabled or self.frontend is not None):
            # Pipelined or distributed: ingress only enqueues/forwards;
            # the verify/mint cost is charged where that work runs.
            return INGRESS_PROCESSING * self._cost_scale()
        return super().processing_cost(message)

    # -- subscriber management ------------------------------------------------
    def enroll_subscriber(self, id_u: str, public_key: PublicKey,
                          qos_plan: Optional[QosInfo] = None) -> None:
        subscriber = BrokerSubscriber(
            id_u=id_u, public_key=public_key,
            qos_plan=qos_plan or QosInfo())
        self.sap.enroll(subscriber)
        if self.frontend is not None:
            # Strongly-consistent provisioning plane: every shard host
            # (and replica) shares the same subscriber object.
            self.frontend.enroll(subscriber)

    def revoke_subscriber(self, id_u: str) -> list[SapGrant]:
        """Invalidate a subscriber's key and cascade to live grants.

        Every outstanding authorization is withdrawn: the serving bTelco
        is notified (:class:`SessionRevocation`), further traffic reports
        are refused, and — when a settlement engine is attached — pending
        claims against the revoked sessions are voided.
        """
        revoked = self.frontend.revoke(id_u) if self.frontend is not None \
            else self.sap.revoke(id_u)
        by_destination: dict[str, list[SapGrant]] = {}
        for grant in revoked:
            self.billing.close_session(grant.session_id)
            if self.settlement is not None:
                self.settlement.void_session(grant.session_id)
            destination = self._session_btelco.pop(grant.session_id, None)
            if destination is not None:
                by_destination.setdefault(destination, []).append(grant)
        for destination, grants in by_destination.items():
            self._push_revocation_batch(destination, grants)
        return revoked

    def _push_revocation_batch(self, destination: str,
                               grants: list[SapGrant]) -> None:
        """Send all of one bTelco's revocations as one reliable batch.

        Retransmitted with backoff until the signed :class:`RevocationAck`
        arrives or every grant in the batch has expired on its own (at
        which point the bTelco would reject the session as expired
        anyway, so nothing unauthorized can keep running).
        """
        self._batch_counter += 1
        batch = SessionRevocationBatch(
            batch_id=self._batch_counter, id_b=self.id_b,
            revocations=tuple(
                SessionRevocation(session_id=g.session_id,
                                  id_u_opaque=g.id_u_opaque)
                for g in grants))
        self.revocations_sent += len(grants)
        self.revocation_batches_sent += 1
        state = _OutstandingBatch(
            batch=batch, destination=destination,
            deadline=max(g.expires_at for g in grants))
        self._outstanding_batches[batch.batch_id] = state
        self._transmit_batch(state)

    def _transmit_batch(self, state: _OutstandingBatch) -> None:
        state.attempts += 1
        batch = state.batch
        state.correlation_id = self.send_request(
            state.destination, batch, size=batch.wire_size,
            max_attempts=1_000_000,          # deadline is the real bound
            deadline=state.deadline,
            on_give_up=lambda _msg, b=batch.batch_id: self._batch_gave_up(b),
            on_retransmit=lambda _msg, _n: self._note_batch_retry())

    def _note_batch_retry(self) -> None:
        self.revocation_batches_retried += 1

    def _batch_gave_up(self, batch_id: int) -> None:
        if self._outstanding_batches.pop(batch_id, None) is not None:
            self.revocation_batches_failed += 1

    # -- session lifecycle ----------------------------------------------------
    def expire_grants(self, now: Optional[float] = None) -> list[SapGrant]:
        """Explicit grant-GC sweep (also runs amortized per request)."""
        return self.sap.expire_grants(self.sim.now if now is None else now)

    def _on_grant_expired(self, grant: SapGrant) -> None:
        self._session_btelco.pop(grant.session_id, None)
        self.billing.close_session(grant.session_id)

    def archive_settled(self) -> list:
        """End-of-cycle settlement sweep: every closed ledger is settled
        and retired to the billing archive (retrievable via
        ``billing.audit``).  Returns the invoices issued."""
        closed = sorted(session_id for session_id, ledger
                        in self.billing.sessions.items() if ledger.closed)
        return [self.billing.archive_session(session_id, now=self.sim.now)
                for session_id in closed]

    def stats(self) -> dict:
        """Lifecycle counters: SAP state sizes plus daemon-level tallies."""
        stats = self.sap.stats()
        stats.update(requests_approved=self.requests_approved,
                     requests_denied=self.requests_denied,
                     revocations_sent=self.revocations_sent,
                     revocation_batches_sent=self.revocation_batches_sent,
                     revocation_batches_acked=self.revocation_batches_acked,
                     revocation_batches_retried=self.revocation_batches_retried,
                     revocation_batches_failed=self.revocation_batches_failed,
                     revocation_batches_outstanding=len(
                         self._outstanding_batches),
                     revocation_acks_bad=self.revocation_acks_bad,
                     reports_retried=self.reports_retried,
                     scope_notices_accepted=self.scope_notices_accepted,
                     scope_notices_denied=self.scope_notices_denied,
                     reports_lost=self.billing.reports_unmatched,
                     ledgers_archived=self.billing.ledgers_archived,
                     sessions_tracked=len(self._session_btelco),
                     pipeline_enabled=self.pipeline_enabled,
                     pipeline_batches=self.pipeline_batches,
                     pipeline_requests=self.pipeline_requests,
                     pipeline_full_flushes=self.pipeline_full_flushes,
                     pipeline_adaptive=self.adaptive_window is not None,
                     pipeline_window_s=(
                         self.adaptive_window.window()
                         if self.adaptive_window is not None
                         else self.batch_window),
                     cert_cache_hits=self.cert_cache_hits)
        stats.update(self.reliable_stats())
        if self.frontend is not None:
            stats["distributed"] = self.frontend.stats()
        return stats

    def mandate_intercept(self, id_u: str) -> None:
        """Place a subscriber under lawful intercept (legal process at
        the broker — the bTelco only ever sees the session pseudonym)."""
        self.sap.li_targets.add(id_u)

    def lift_intercept(self, id_u: str) -> None:
        self.sap.li_targets.discard(id_u)

    # -- policy -------------------------------------------------------------------
    def _btelco_policy(self, id_t: str) -> Optional[str]:
        """Deny bTelcos whose reputation fell below threshold (§4.3)."""
        if not self.reputation.btelco_acceptable(id_t):
            return "reputation below threshold"
        return None

    # -- handlers --------------------------------------------------------------------
    def _handle_auth_request(self, src_ip: str,
                             request: BrokerAuthRequest) -> None:
        if self.frontend is not None:
            self.frontend.handle_auth(src_ip, request)
            return
        if self.pipeline_enabled:
            self._enqueue_auth_request(src_ip, request)
            return
        try:
            sealed_t, sealed_u, grant = self.sap.process_request(
                request.auth_req_t, now=self.sim.now)
        except SapError as exc:
            self.requests_denied += 1
            self.send(src_ip, BrokerAuthResponse(
                approved=False, cause=str(exc),
                reply_token=request.reply_token), size=96)
            return
        self._approve(src_ip, request, sealed_t, sealed_u, grant)

    def _approve(self, src_ip: str, request: BrokerAuthRequest,
                 sealed_t, sealed_u, grant: SapGrant,
                 deferred=None) -> None:
        """Bookkeeping + response for an approved attach (both paths)."""
        self.requests_approved += 1
        self._session_btelco[grant.session_id] = src_ip
        self._btelco_keys[src_ip] = \
            request.auth_req_t.t_certificate.public_key
        if grant.session_id not in self.billing.sessions:
            # Guard against a duplicate request re-served from the SAP
            # idempotency cache wiping an already-populated ledger.
            self.billing.open_session(
                grant,
                ue_public_key=self.sap.subscriber(grant.id_u).public_key,
                btelco_public_key=request.auth_req_t.t_certificate.public_key)
        response = BrokerAuthResponse(
            approved=True, auth_resp_t=sealed_t, auth_resp_u=sealed_u,
            reply_token=request.reply_token)
        size = sealed_t.wire_size + sealed_u.wire_size + 64
        if deferred is None:
            self.send(src_ip, response, size=size)
        else:
            deferred.send(src_ip, response, size=size)
            deferred.complete()

    # -- the batching pipeline ------------------------------------------------
    def _enqueue_auth_request(self, src_ip: str,
                              request: BrokerAuthRequest) -> None:
        """Pipeline ingress: park the request in the current batch
        window; the reply is completed asynchronously at flush time.

        With an adaptive window the open window is rate-derived, and a
        full batch flushes immediately: the pending flush timer is
        cancelled (lazily — the simulator compacts dead entries) and a
        zero-delay flush replaces it.
        """
        adaptive = self.adaptive_window
        if adaptive is not None:
            adaptive.observe(self.sim.now)
        deferred = self.defer_reply()
        corr_id = 0
        if deferred.reply_context is not None:
            corr_id = deferred.reply_context.correlation_id
        self._auth_batch.append(_PipelineItem(
            src_ip=src_ip, request=request, deferred=deferred,
            arrived=self.sim.now, corr_id=corr_id))
        if self._flush_event is None:
            window = self.batch_window if adaptive is None \
                else adaptive.window()
            self._flush_event = self.sim.schedule(
                window, self._flush_auth_batch)
        elif (adaptive is not None and not self._flushing_now
                and adaptive.full(len(self._auth_batch))):
            self._flush_event.cancel()
            self._flush_event = self.sim.schedule(
                0.0, self._flush_auth_batch)
            self._flushing_now = True
            self.pipeline_full_flushes += 1

    def _flush_auth_batch(self) -> None:
        """Drain the batch through the two-stage cost model.

        Stage A (parallel): certificate validation — charged once per
        certificate thanks to the verify-result cache — plus the two
        signature checks and the authVec decrypt, on the earliest-free
        verify worker.  Stage B (serialized per shard): the replay
        window, policy, and the two RSA seal+sign private ops on the
        owning shard's lane.  All real crypto executes here (its results
        are time-independent); replies are scheduled at each item's
        modeled completion time, so identically-seeded runs replay the
        exact same event sequence.
        """
        self._flush_event = None
        self._flushing_now = False
        batch, self._auth_batch = self._auth_batch, []
        if not batch:
            return
        now = self.sim.now
        scale = self._cost_scale()
        obs = self.obs()
        tracer = obs.tracer if obs is not None and obs.tracing else None
        self.pipeline_batches += 1
        self.pipeline_requests += len(batch)
        sap = self.sap
        sap.begin_window(now)
        for item in batch:
            request = item.request.auth_req_t
            cached = sap.lookup_cached(sap._request_digest(request))
            if cached is not None:
                # Idempotent re-serve of a duplicate (fresh correlation,
                # bit-identical request): no verify pass, reply now.
                sealed_t, sealed_u, grant = cached
                self._schedule_completion(item, now, approved=(
                    sealed_t, sealed_u, grant))
                continue
            # -- stage A: parallel verification ---------------------------
            fingerprint = item.request.auth_req_t.t_certificate \
                .public_key.fingerprint()
            cost_a = 2 * SIG_VERIFY_COST + AUTHVEC_DECRYPT_COST
            if fingerprint in self._verified_certs:
                self.cert_cache_hits += 1
                cost_a += CACHED_VERIFY_COST
            else:
                self._verified_certs.add(fingerprint)
                cost_a += CERT_VALIDATE_COST
            cost_a *= scale
            worker = min(range(len(self._worker_free)),
                         key=lambda i: self._worker_free[i])
            start_a = max(now, self._worker_free[worker])
            end_a = start_a + cost_a
            self._worker_free[worker] = end_a
            self.charge(cost_a)
            ctx = item.deferred.obs_ctx or (0, 0)
            try:
                prepared = sap.prevalidate(request, now)
            except SapError as exc:
                if tracer is not None:
                    tracer.begin("sap.broker_verify", self.name,
                                 self.obs_category, start=start_a,
                                 end=end_a, trace_id=ctx[0],
                                 parent_id=ctx[1], corr_id=item.corr_id)
                self._schedule_completion(item, end_a, cause=str(exc))
                continue
            if tracer is not None:
                tracer.begin("sap.broker_verify", self.name,
                             self.obs_category, start=start_a, end=end_a,
                             trace_id=ctx[0], parent_id=ctx[1],
                             corr_id=item.corr_id)
            # -- stage B: the shard's serialized replay/mint lane ---------
            start_b = max(end_a, self._shard_free.get(prepared.shard_id,
                                                      0.0))
            try:
                sealed_t, sealed_u, grant = sap.finish_request(
                    prepared, start_b)
            except SapError as exc:
                end_b = start_b + DENIAL_FINISH_COST * scale
                self._shard_free[prepared.shard_id] = end_b
                self.charge(DENIAL_FINISH_COST * scale)
                if tracer is not None:
                    tracer.begin("sap.broker_mint", self.name,
                                 self.obs_category, start=start_b,
                                 end=end_b, trace_id=ctx[0],
                                 parent_id=ctx[1], corr_id=item.corr_id)
                self._schedule_completion(item, end_b, cause=str(exc))
                continue
            end_b = start_b + 2 * SEAL_SIGN_COST * scale
            self._shard_free[prepared.shard_id] = end_b
            self.charge(2 * SEAL_SIGN_COST * scale)
            if tracer is not None:
                tracer.begin("sap.broker_mint", self.name,
                             self.obs_category, start=start_b, end=end_b,
                             trace_id=ctx[0], parent_id=ctx[1],
                             corr_id=item.corr_id)
            self._schedule_completion(item, end_b, approved=(
                sealed_t, sealed_u, grant))

    def _schedule_completion(self, item: _PipelineItem, at: float,
                             approved=None, cause: str = "") -> None:
        self.sim.schedule(max(0.0, at - self.sim.now),
                          self._complete_auth, item, approved, cause)

    def _complete_auth(self, item: _PipelineItem, approved,
                       cause: str) -> None:
        if approved is None:
            self.requests_denied += 1
            item.deferred.send(item.src_ip, BrokerAuthResponse(
                approved=False, cause=cause,
                reply_token=item.request.reply_token), size=96)
            item.deferred.complete()
            return
        sealed_t, sealed_u, grant = approved
        self._approve(item.src_ip, item.request, sealed_t, sealed_u,
                      grant, deferred=item.deferred)

    # -- mobility-scoped attach notices (§4.2) --------------------------------
    def register_btelco(self, certificate, now: Optional[float] = None) -> bool:
        """Admit a bTelco to the scope directory (CA-validated): its key
        becomes available for sealing per-site scope secrets, so the
        broker can include it in minted mobility scopes."""
        return self.sap.register_btelco(
            certificate, self.sim.now if now is None else now)

    def _handle_scope_notice(self, src_ip: str,
                             notice: ScopeAttachNotice) -> None:
        """A bTelco reports a scope-local attach it validated itself.

        Off the attach critical path, but load-bearing for everything
        else: the counter becomes the authoritative cross-site replay
        floor, revocation routing re-points at the new serving site, and
        the billing ledger learns the site's reporter key.  A terminal
        nack tells the bTelco to tear the session down.
        """
        certificate = notice.certificate
        if certificate is None \
                or not self.sap.register_btelco(certificate, self.sim.now) \
                or not certificate.public_key.verify(
                    notice.signed_bytes(), notice.signature) \
                or certificate.subject != notice.id_t:
            # Unverifiable notice: don't touch the counter floor, and
            # don't ack-tear-down a session on an attacker's say-so
            # either — deny terminally so a *legitimate* sender (which
            # would never produce one) is unaffected.
            self.scope_notices_denied += 1
            self.send(src_ip, ScopeAttachAck(
                session_id=notice.session_id, counter=notice.counter,
                accepted=False, cause="unverifiable notice"), size=64)
            return
        if self.frontend is not None:
            self.frontend.handle_scope_notice(src_ip, notice)
            return
        accepted, retryable, cause = self.sap.note_scope_attach(
            notice.session_id, notice.counter, self.sim.now)
        self._finish_scope_notice(src_ip, notice, accepted, retryable,
                                  cause)

    def _finish_scope_notice(self, src_ip: str, notice: ScopeAttachNotice,
                             accepted: bool, retryable: bool,
                             cause: str, deferred=None) -> None:
        """Shared tail of the local and distributed notice paths.

        The distributed path passes the ``deferred`` reply captured when
        the notice arrived, so the eventual ack still correlates with the
        bTelco's reliable request (stopping its retransmissions).
        """
        if accepted:
            self.scope_notices_accepted += 1
            # The session moved: revocations now go to the new site, and
            # its reports verify under the new site's key.
            self._session_btelco[notice.session_id] = src_ip
            self._btelco_keys[src_ip] = notice.certificate.public_key
            if notice.session_id in self.billing.sessions:
                self.billing.register_reporter_key(
                    notice.session_id, REPORTER_BTELCO,
                    notice.certificate.public_key)
        else:
            self.scope_notices_denied += 1
        ack = ScopeAttachAck(
            session_id=notice.session_id, counter=notice.counter,
            accepted=accepted, retryable=retryable, cause=cause)
        if deferred is not None:
            deferred.send(src_ip, ack, size=64)
            deferred.complete()
        else:
            self.send(src_ip, ack, size=64)

    def _handle_report(self, src_ip: str,
                       upload: TrafficReportUpload) -> None:
        self.billing.ingest(upload, now=self.sim.now)
        self.send(src_ip, ReportAck(session_id=upload.session_id,
                                    seq=upload.seq,
                                    reporter=upload.reporter), size=48)

    def note_retransmitted_request(self, message: object) -> None:
        if isinstance(message, TrafficReportUpload):
            self.reports_retried += 1
        if self.frontend is not None:
            self.frontend.note_retransmitted(message)

    def _handle_revocation_ack(self, src_ip: str, ack: RevocationAck) -> None:
        """Close out a revocation batch once its *signed* ack arrives.

        Idempotent (a duplicate ack for an already-closed batch is
        ignored) and forgery-resistant: the signature must verify under
        the key the bTelco authenticated with at SAP time, else the batch
        keeps retrying — an on-path attacker cannot silence a revocation.
        """
        state = self._outstanding_batches.get(ack.batch_id)
        if state is None:
            return
        key = self._btelco_keys.get(src_ip)
        expected = tuple(sorted(
            r.session_id for r in state.batch.revocations))
        if (key is None or tuple(sorted(ack.session_ids)) != expected
                or not ack.verify(key)):
            self.revocation_acks_bad += 1
            # The transport matched the response and stopped
            # retransmitting; a forged/bad ack must not end the protocol,
            # so re-issue the batch as a fresh reliable request.
            self._transmit_batch(state)
            return
        del self._outstanding_batches[ack.batch_id]
        self.revocation_batches_acked += 1
