"""Inter-party settlement: T-to-B claims and B-to-U billing (§3 step 2).

"At some later time, T1 bills B based on the usage reports.  Compensation
is realized in the same manner as other online financial transactions."
This module implements that back office:

* the bTelco periodically files a :class:`UsageClaim` per session, built
  from its own (signed) reports;
* the broker's :class:`SettlementEngine` validates each claim against its
  cross-checked ledger (:class:`~repro.core.billing.BillingVerifier`) and
  pays out the *verified* amount — an inflated claim yields only the
  verified payment plus a recorded dispute (more reputation evidence);
* subscriber statements aggregate each user's sessions at the broker's
  retail rate.

Pricing itself stays a parameter ("we do not dictate the actual pricing
scheme which is left open to innovation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.crypto import PrivateKey, PublicKey

from .billing import BillingVerifier

DEFAULT_WHOLESALE_PER_GB = 1.2   # what the broker pays bTelcos
DEFAULT_RETAIL_PER_GB = 2.0      # what subscribers pay the broker


class SettlementError(Exception):
    """Raised for malformed or unverifiable claims."""


@dataclass(frozen=True)
class UsageClaim:
    """A bTelco's signed demand for payment over one session."""

    session_id: str
    id_t: str
    dl_bytes: int
    ul_bytes: int
    amount: float
    signature: bytes = b""

    def signed_payload(self) -> bytes:
        return (f"{self.session_id}|{self.id_t}|{self.dl_bytes}|"
                f"{self.ul_bytes}|{self.amount:.6f}").encode()


def make_claim(session_id: str, id_t: str, dl_bytes: int, ul_bytes: int,
               key: PrivateKey,
               price_per_gb: float = DEFAULT_WHOLESALE_PER_GB) -> UsageClaim:
    """bTelco side: build and sign a claim from its own accounting."""
    amount = round((dl_bytes + ul_bytes) / 1e9 * price_per_gb, 6)
    claim = UsageClaim(session_id=session_id, id_t=id_t,
                       dl_bytes=dl_bytes, ul_bytes=ul_bytes, amount=amount)
    return UsageClaim(**{**claim.__dict__,
                         "signature": key.sign(claim.signed_payload())})


@dataclass(frozen=True)
class Payment:
    """The broker's response to a claim."""

    session_id: str
    id_t: str
    claimed: float
    paid: float
    disputed: bool


@dataclass
class Account:
    """A running balance for one counterparty (positive = owed money)."""

    owner: str
    balance: float = 0.0
    payments: list = field(default_factory=list)


class SettlementEngine:
    """The broker's pay-what-was-verified clearing house."""

    def __init__(self, billing: BillingVerifier,
                 wholesale_per_gb: float = DEFAULT_WHOLESALE_PER_GB,
                 retail_per_gb: float = DEFAULT_RETAIL_PER_GB):
        self.billing = billing
        self.wholesale_per_gb = wholesale_per_gb
        self.retail_per_gb = retail_per_gb
        self.btelco_accounts: dict[str, Account] = {}
        self.subscriber_accounts: dict[str, Account] = {}
        #: claim verification keys: id_t -> PublicKey
        self.btelco_keys: dict[str, PublicKey] = {}
        self.disputes = 0
        self._settled_sessions: set = set()
        #: sessions whose grant was revoked before settlement: claims
        #: against them are refused (the broker resolves any residual
        #: usage out-of-band, alongside the revocation itself).
        self.voided_sessions: set = set()

    def register_btelco(self, id_t: str, public_key: PublicKey) -> None:
        self.btelco_keys[id_t] = public_key

    def void_session(self, session_id: str) -> None:
        """Revocation cascade: refuse future claims for this session."""
        self.voided_sessions.add(session_id)

    def _account(self, store: dict, owner: str) -> Account:
        if owner not in store:
            store[owner] = Account(owner=owner)
        return store[owner]

    # -- T -> B ------------------------------------------------------------------
    def process_claim(self, claim: UsageClaim) -> Payment:
        """Validate a bTelco claim and credit the verified amount."""
        key = self.btelco_keys.get(claim.id_t)
        if key is None:
            raise SettlementError(f"unknown bTelco {claim.id_t!r}")
        if not key.verify(claim.signed_payload(), claim.signature):
            raise SettlementError("claim signature invalid")
        if claim.session_id in self.voided_sessions:
            raise SettlementError("session revoked")
        ledger = self.billing.sessions.get(claim.session_id)
        if ledger is None:
            raise SettlementError(f"unknown session {claim.session_id!r}")
        if ledger.grant.id_t != claim.id_t:
            raise SettlementError("claim from a bTelco that did not serve "
                                  "this session")
        if claim.session_id in self._settled_sessions:
            raise SettlementError("session already settled")
        self._settled_sessions.add(claim.session_id)

        verified_bytes = (ledger.billable_dl_bytes
                          + ledger.billable_ul_bytes)
        verified_amount = round(verified_bytes / 1e9
                                * self.wholesale_per_gb, 6)
        paid = min(claim.amount, verified_amount)
        disputed = claim.amount > verified_amount * 1.001 + 1e-9
        if disputed:
            self.disputes += 1
        account = self._account(self.btelco_accounts, claim.id_t)
        payment = Payment(session_id=claim.session_id, id_t=claim.id_t,
                          claimed=claim.amount, paid=paid,
                          disputed=disputed)
        account.balance += paid
        account.payments.append(payment)

        # The subscriber is billed at retail for the same verified usage.
        subscriber = self._account(self.subscriber_accounts,
                                   ledger.grant.id_u)
        subscriber.balance += round(verified_bytes / 1e9
                                    * self.retail_per_gb, 6)
        return payment

    # -- queries --------------------------------------------------------------------
    def btelco_balance(self, id_t: str) -> float:
        account = self.btelco_accounts.get(id_t)
        return account.balance if account else 0.0

    def subscriber_statement(self, id_u: str) -> float:
        account = self.subscriber_accounts.get(id_u)
        return account.balance if account else 0.0

    @property
    def broker_margin(self) -> float:
        """Retail collected minus wholesale paid out."""
        collected = sum(a.balance for a in self.subscriber_accounts.values())
        paid = sum(a.balance for a in self.btelco_accounts.values())
        return round(collected - paid, 6)
