"""QoS parameter negotiation (§4.1).

CellBricks decouples QoS *policy* from *mechanism*: the bTelco advertises
what it can enforce (:class:`QosCapabilities`, the ``qosCap`` field of
authReqT) and the broker responds with the parameter values to apply
(:class:`QosInfo`, carried in authRespT).  Parameters follow the 3GPP
definitions (QCI classes, AMBR, ARP) so both sides speak a standardized
vocabulary, as the paper proposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Standardized QCI characteristics (TS 23.203 Table 6.1.7): resource
#: type, priority, packet delay budget (ms), packet error loss rate.
QCI_TABLE = {
    1: ("GBR", 2, 100, 1e-2),      # conversational voice
    2: ("GBR", 4, 150, 1e-3),      # conversational video
    5: ("Non-GBR", 1, 100, 1e-6),  # IMS signalling
    6: ("Non-GBR", 6, 300, 1e-6),  # buffered video
    7: ("Non-GBR", 7, 100, 1e-3),  # voice/video/interactive gaming
    8: ("Non-GBR", 8, 300, 1e-6),  # TCP bulk (premium)
    9: ("Non-GBR", 9, 300, 1e-6),  # TCP bulk (default)
}


class QosError(Exception):
    """Raised when requested QoS cannot be satisfied by a capability set."""


@dataclass(frozen=True)
class QosCapabilities:
    """What a bTelco can enforce — the ``qosCap`` SAP field."""

    supported_qcis: tuple = (9,)
    max_ambr_dl_bps: float = 100e6
    max_ambr_ul_bps: float = 50e6
    supports_lawful_intercept: bool = False

    def can_satisfy(self, info: "QosInfo") -> bool:
        return (info.qci in self.supported_qcis
                and info.ambr_dl_bps <= self.max_ambr_dl_bps
                and info.ambr_ul_bps <= self.max_ambr_ul_bps)


@dataclass(frozen=True)
class QosInfo:
    """What the broker asks the bTelco to enforce — ``qosInfo``."""

    qci: int = 9
    ambr_dl_bps: float = 20e6
    ambr_ul_bps: float = 10e6
    arp_priority: int = 9

    def __post_init__(self):
        if self.qci not in QCI_TABLE:
            raise QosError(f"unknown QCI {self.qci}")
        if self.ambr_dl_bps <= 0 or self.ambr_ul_bps <= 0:
            raise QosError("AMBR must be positive")
        if not 1 <= self.arp_priority <= 15:
            raise QosError("ARP priority must be 1..15")


def select_qos(capabilities: QosCapabilities, desired: QosInfo) -> QosInfo:
    """Broker-side selection: fit the subscriber's plan into the bTelco's
    advertised capabilities (clamping AMBR, falling back to QCI 9)."""
    qci = desired.qci if desired.qci in capabilities.supported_qcis else 9
    if qci not in capabilities.supported_qcis:
        raise QosError("bTelco supports none of the acceptable QCIs")
    return QosInfo(
        qci=qci,
        ambr_dl_bps=min(desired.ambr_dl_bps, capabilities.max_ambr_dl_bps),
        ambr_ul_bps=min(desired.ambr_ul_bps, capabilities.max_ambr_ul_bps),
        arp_priority=desired.arp_priority)
