"""Lawful intercept (§3 step 1, §4.1): negotiated in SAP, enforced at the
bTelco.

CellBricks decouples LI *policy* (the broker, under legal process, flags
a subscriber) from *mechanism* (the serving bTelco mirrors session
records to the authority's collection function).  SAP carries the
negotiation: the bTelco advertises capability in ``qosCap``; the broker's
``authRespT`` mandates interception for the session; a capable bTelco
activates its :class:`LawfulInterceptFunction` — all without the bTelco
ever learning the subscriber's real identity (the warrant is against the
broker-side identity; the bTelco sees only the session pseudonym).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

EVENT_SESSION_START = "session-start"
EVENT_SESSION_END = "session-end"
EVENT_USAGE = "usage"


@dataclass(frozen=True)
class InterceptRecord:
    """One X2-style intercept-related record."""

    session_id: str
    at: float
    event: str
    detail: dict


@dataclass
class LawfulInterceptFunction:
    """The bTelco's LI delivery function.

    Records are buffered per session and handed over to the authority's
    collector via :meth:`deliver` (modeling the LEMF handover interface).
    """

    operator: str
    _active: dict = field(default_factory=dict)    # session_id -> True
    _buffers: dict = field(default_factory=dict)   # session_id -> [records]
    delivered: list = field(default_factory=list)

    def activate(self, session_id: str, at: float,
                 id_u_opaque: str) -> None:
        self._active[session_id] = True
        self._buffers.setdefault(session_id, []).append(InterceptRecord(
            session_id=session_id, at=at, event=EVENT_SESSION_START,
            detail={"pseudonym": id_u_opaque, "operator": self.operator}))

    def is_active(self, session_id: str) -> bool:
        return self._active.get(session_id, False)

    def record_usage(self, session_id: str, at: float,
                     dl_bytes: int, ul_bytes: int) -> None:
        if not self.is_active(session_id):
            return
        self._buffers[session_id].append(InterceptRecord(
            session_id=session_id, at=at, event=EVENT_USAGE,
            detail={"dl_bytes": dl_bytes, "ul_bytes": ul_bytes}))

    def deactivate(self, session_id: str, at: float) -> None:
        if not self.is_active(session_id):
            return
        self._buffers[session_id].append(InterceptRecord(
            session_id=session_id, at=at, event=EVENT_SESSION_END,
            detail={}))
        self._active[session_id] = False

    def deliver(self, session_id: Optional[str] = None) -> list:
        """Hand buffered records to the authority (and clear them)."""
        if session_id is not None:
            records = self._buffers.pop(session_id, [])
        else:
            records = [record for buffer in self._buffers.values()
                       for record in buffer]
            self._buffers.clear()
        self.delivered.extend(records)
        return records

    @property
    def active_count(self) -> int:
        return sum(1 for active in self._active.values() if active)
