"""The CellBricks UE: SAP instead of EPS-AKA (the srsUE extension).

:class:`CellBricksUe` subclasses the baseline NAS stack; its initial
message is a :class:`SapAttachRequest` carrying ``authReqU``, and the
broker's ``authRespU`` (relayed by the bTelco) yields the shared secret
that seeds the standard security context.  From the SMC onward the
inherited baseline code runs unchanged — exactly the reuse story of §4.1.
"""

from __future__ import annotations

from typing import Optional

from repro.lte.nas import (
    SapAttachChallenge,
    SapAttachReject,
    SapAttachRequest,
)
from repro.lte.security import SecurityContext
from repro.lte.ue import UeNas
from repro.net import Host

from .billing import Meter, REPORTER_UE
from .sap import SapError, UeSap, UeSapCredentials

# CellBricks UE processing costs (seconds): crafting authReqU costs more
# than a plain AttachRequest (hybrid encrypt + sign); the response check
# is a verify + decrypt.  Sum ≈ 3.5 ms (Fig 7 "UE Proc." CB bars).
CB_UE_COSTS = {
    "craft_sap_request": 0.0015,
    SapAttachChallenge: 0.0005,
}


class CellBricksUe(UeNas):
    """UE attaching on-demand to untrusted bTelcos via its broker."""

    craft_span_name = "sap.ue_craft"
    _SPAN_NAMES = dict(UeNas._SPAN_NAMES)
    _SPAN_NAMES[SapAttachChallenge] = "sap.ue_verify"

    def __init__(self, host: Host, enb_ip: str,
                 credentials: UeSapCredentials, target_id_t: str,
                 name: str = "cb-ue"):
        super().__init__(host, enb_ip, imsi=credentials.id_u,
                         usim=None, serving_network=target_id_t, name=name)
        self.credentials = credentials
        self.sap = UeSap(credentials)
        self.target_id_t = target_id_t
        self.session_id: Optional[str] = None
        self.meter: Optional[Meter] = None
        self.processing_costs = dict(UeNas.processing_costs)
        self.processing_costs[SapAttachChallenge] = \
            CB_UE_COSTS[SapAttachChallenge]
        self.on(SapAttachChallenge, self._on_sap_challenge)
        self.on(SapAttachReject, self._on_reject)

    # -- attach ------------------------------------------------------------------
    def attach(self) -> None:
        """SAP attach: the latency clock starts here, as in §6.1."""
        if self.state not in ("DEREGISTERED", "REJECTED"):
            raise RuntimeError(f"attach() in state {self.state}")
        self.state = "ATTACHING"
        self.attach_started_at = self.sim.now
        self.security = None  # fresh EMM state for the new attempt
        self.session_id = None
        self._reject_retries = 0
        craft = CB_UE_COSTS["craft_sap_request"]
        self.charge(craft)
        self._obs_begin_attach(craft)
        self.sim.schedule(craft, self._send_attach_request)

    def initial_request(self) -> SapAttachRequest:
        # Called once per attach attempt (the supervision layer resends
        # the cached request): a nonce is minted here and must stay
        # stable across retransmissions of the same attempt.
        auth_req_u = self.sap.craft_request(self.target_id_t)
        return SapAttachRequest(auth_req_u=auth_req_u)

    def _on_attach_give_up(self) -> None:
        super()._on_attach_give_up()
        # Abandon the outstanding SAP nonce: a late response must not
        # validate, and the next attach crafts a fresh request.
        self.sap.abandon()
        self.session_id = None

    def retarget(self, enb_ip: str, id_t: str) -> None:
        """Point the UE at a different bTelco (host-driven mobility)."""
        self.enb_ip = enb_ip
        self.target_id_t = id_t
        self.serving_network = id_t

    # -- SAP response -----------------------------------------------------------------
    def _on_sap_challenge(self, src_ip: str,
                          challenge: SapAttachChallenge) -> None:
        if self.state != "ATTACHING":
            return  # stale challenge from an abandoned attempt
        if self.security is not None:
            # Duplicate challenge (the bTelco replayed the leg because
            # our SMC complete was lost): the single-use nonce is already
            # consumed, so just ignore it — the SMC retransmission path
            # carries the attach forward.
            return
        try:
            response = self.sap.process_response(challenge.auth_resp_u)
        except SapError as exc:
            self._fail(str(exc))
            return
        self.session_id = response.session_id
        # ss becomes KASME (§4.1); the inherited SMC handler validates the
        # bTelco's Security Mode Command against it.
        self.security = SecurityContext(kasme=response.ss)

    def _on_attach_accept(self, src_ip: str, accept) -> None:
        was_attached = self.state == "ATTACHED"
        super()._on_attach_accept(src_ip, accept)
        if was_attached:
            return  # duplicate accept: keep the existing meter
        if self.state == "ATTACHED" and self.session_id is not None:
            # Baseband-embedded meter for verifiable billing (§4.3).
            self.meter = Meter(
                session_id=self.session_id, reporter=REPORTER_UE,
                key=self.credentials.ue_key,
                broker_public_key=self.credentials.broker_public_key,
                session_started_at=self.sim.now)
