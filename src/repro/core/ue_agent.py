"""The CellBricks UE: SAP instead of EPS-AKA (the srsUE extension).

:class:`CellBricksUe` subclasses the baseline NAS stack; its initial
message is a :class:`SapAttachRequest` carrying ``authReqU``, and the
broker's ``authRespU`` (relayed by the bTelco) yields the shared secret
that seeds the standard security context.  From the SMC onward the
inherited baseline code runs unchanged — exactly the reuse story of §4.1.
"""

from __future__ import annotations

from typing import Optional

from repro.lte.nas import (
    SapAttachChallenge,
    SapAttachReject,
    SapAttachRequest,
    SapScopedAttachRequest,
)
from repro.lte.security import SecurityContext
from repro.lte.ue import UeNas
from repro.net import Host

from .billing import Meter, REPORTER_UE
from .messages import scope_attach_mac
from .sap import MobilityGrant, SapError, UeSap, UeSapCredentials

# CellBricks UE processing costs (seconds): crafting authReqU costs more
# than a plain AttachRequest (hybrid encrypt + sign); the response check
# is a verify + decrypt.  Sum ≈ 3.5 ms (Fig 7 "UE Proc." CB bars).
# A scoped re-attach only computes one MAC — no hybrid encrypt, no sign.
CB_UE_COSTS = {
    "craft_sap_request": 0.0015,
    "craft_scoped_request": 0.0003,
    SapAttachChallenge: 0.0005,
}


class CellBricksUe(UeNas):
    """UE attaching on-demand to untrusted bTelcos via its broker."""

    craft_span_name = "sap.ue_craft"
    _SPAN_NAMES = dict(UeNas._SPAN_NAMES)
    _SPAN_NAMES[SapAttachChallenge] = "sap.ue_verify"

    def __init__(self, host: Host, enb_ip: str,
                 credentials: UeSapCredentials, target_id_t: str,
                 name: str = "cb-ue"):
        super().__init__(host, enb_ip, imsi=credentials.id_u,
                         usim=None, serving_network=target_id_t, name=name)
        self.credentials = credentials
        self.sap = UeSap(credentials)
        self.target_id_t = target_id_t
        self.session_id: Optional[str] = None
        self.meter: Optional[Meter] = None
        #: optional scope request dict ({"telcos": [...], "ttl": s}) sent
        #: inside the encrypted authVec on the next full attach.
        self.scope_request: Optional[dict] = None
        #: broker-issued mobility grant — survives detach_and_forget so
        #: the next attach to an in-scope bTelco skips the broker.
        self.mobility_grant: Optional[MobilityGrant] = None
        self._scoped_attempt = False
        self.scoped_attaches = 0
        self.scoped_fallbacks = 0
        self.processing_costs = dict(UeNas.processing_costs)
        self.processing_costs[SapAttachChallenge] = \
            CB_UE_COSTS[SapAttachChallenge]
        self.on(SapAttachChallenge, self._on_sap_challenge)
        self.on(SapAttachReject, self._on_reject)

    # -- attach ------------------------------------------------------------------
    def attach(self) -> None:
        """SAP attach: the latency clock starts here, as in §6.1."""
        if self.state not in ("DEREGISTERED", "REJECTED"):
            raise RuntimeError(f"attach() in state {self.state}")
        self.state = "ATTACHING"
        self.attach_started_at = self.sim.now
        self.security = None  # fresh EMM state for the new attempt
        self.session_id = None
        self._reject_retries = 0
        if self._grant_covers_target():
            craft = CB_UE_COSTS["craft_scoped_request"]
        else:
            craft = CB_UE_COSTS["craft_sap_request"]
        self.charge(craft)
        self._obs_begin_attach(craft)
        self.sim.schedule(craft, self._send_attach_request)

    def _grant_covers_target(self) -> bool:
        grant = self.mobility_grant
        return (grant is not None
                and grant.covers(self.target_id_t, self.sim.now))

    def initial_request(self):
        # Called once per attach attempt (the supervision layer resends
        # the cached request): a nonce / attach counter is minted here
        # and must stay stable across retransmissions of the attempt.
        if self._grant_covers_target():
            grant = self.mobility_grant
            counter = grant.next_counter
            grant.next_counter += 1
            self._scoped_attempt = True
            self.scoped_attaches += 1
            # The grant restores what attach() just cleared: ss is the
            # session key (KASME for the inherited SMC handler) and the
            # session id keeps billing continuity across bTelcos.
            self.session_id = grant.session_id
            self.security = SecurityContext(kasme=grant.ss)
            mac = scope_attach_mac(grant.ss, grant.session_id, counter,
                                   self.target_id_t)
            return SapScopedAttachRequest(token=grant.token,
                                          counter=counter, mac=mac)
        self._scoped_attempt = False
        auth_req_u = self.sap.craft_request(self.target_id_t,
                                            scope=self.scope_request)
        return SapAttachRequest(auth_req_u=auth_req_u)

    def _on_reject(self, src_ip: str, reject) -> None:
        if (self.state == "ATTACHING" and self._scoped_attempt
                and not getattr(reject, "retryable", False)):
            # The scope-local fast path failed terminally (expired,
            # revoked, counter burned...).  Drop the grant and fall back
            # to a full SAP attach within the same attempt — the latency
            # clock keeps running, so the fallback cost is visible.
            self.mobility_grant = None
            self._scoped_attempt = False
            self.scoped_fallbacks += 1
            self.session_id = None
            self.security = None
            self._stop_attach_supervision()
            self.sim.schedule(0.0, self._retry_after_reject)
            return
        super()._on_reject(src_ip, reject)

    def _on_attach_give_up(self) -> None:
        super()._on_attach_give_up()
        # Abandon the outstanding SAP nonce: a late response must not
        # validate, and the next attach crafts a fresh request.
        self.sap.abandon()
        self.session_id = None

    def retarget(self, enb_ip: str, id_t: str) -> None:
        """Point the UE at a different bTelco (host-driven mobility)."""
        self.enb_ip = enb_ip
        self.target_id_t = id_t
        self.serving_network = id_t

    # -- SAP response -----------------------------------------------------------------
    def _on_sap_challenge(self, src_ip: str,
                          challenge: SapAttachChallenge) -> None:
        if self.state != "ATTACHING":
            return  # stale challenge from an abandoned attempt
        if self.security is not None:
            # Duplicate challenge (the bTelco replayed the leg because
            # our SMC complete was lost): the single-use nonce is already
            # consumed, so just ignore it — the SMC retransmission path
            # carries the attach forward.
            return
        try:
            response = self.sap.process_response(challenge.auth_resp_u)
        except SapError as exc:
            self._fail(str(exc))
            return
        self.session_id = response.session_id
        if getattr(response, "scope", None) is not None:
            # Broker granted a mobility scope: keep it past detach so
            # the next in-scope attach needs no broker round-trip.
            self.mobility_grant = MobilityGrant(
                token=response.scope, session_id=response.session_id,
                ss=response.ss, next_counter=1)
        # ss becomes KASME (§4.1); the inherited SMC handler validates the
        # bTelco's Security Mode Command against it.
        self.security = SecurityContext(kasme=response.ss)

    def _on_attach_accept(self, src_ip: str, accept) -> None:
        was_attached = self.state == "ATTACHED"
        super()._on_attach_accept(src_ip, accept)
        if was_attached:
            return  # duplicate accept: keep the existing meter
        if self.state == "ATTACHED" and self.session_id is not None:
            # Baseband-embedded meter for verifiable billing (§4.3).
            self.meter = Meter(
                session_id=self.session_id, reporter=REPORTER_UE,
                key=self.credentials.ue_key,
                broker_public_key=self.credentials.broker_public_key,
                session_started_at=self.sim.now)
