"""Reputation system (§4.3, Fig 5).

The broker maintains (i) a per-bTelco aggregate reputation score derived
from report mismatches, weighted by degree, and (ii) a suspect list of
its own users whose devices appear tampered.  bTelcos symmetrically keep
a per-broker score.  The paper's prototype defers this component; we
implement the design it describes and evaluate it in the XTRA-BILL bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MismatchEvent:
    """One recorded accounting anomaly."""

    session_id: str
    seq: int
    degree: float    # how far past the threshold, ≥ 1.0
    at: float


@dataclass
class PartyHistory:
    """Rolling accounting history for one counterparty."""

    ok_count: int = 0
    mismatches: list = field(default_factory=list)

    @property
    def mismatch_count(self) -> int:
        return len(self.mismatches)

    def weighted_mismatch(self) -> float:
        """Mismatches weighted by their degree (Fig 5's 'weighted by the
        degree of mismatch')."""
        return sum(min(event.degree, 10.0) for event in self.mismatches)


class ReputationSystem:
    """Scores counterparties from accounting-report history.

    ``score = ok / (ok + weighted_mismatch)`` in [0, 1]; parties with no
    history score 1.0 (innocent until measured).  The acceptance threshold
    and the smoothing prior are policy knobs the paper leaves "open to
    innovation".
    """

    def __init__(self, acceptance_threshold: float = 0.8,
                 suspect_after: int = 3, prior_ok: int = 5):
        self.acceptance_threshold = acceptance_threshold
        self.suspect_after = suspect_after
        self.prior_ok = prior_ok
        self.btelcos: dict[str, PartyHistory] = {}
        self.ue_suspects: dict[str, int] = {}

    # -- recording -----------------------------------------------------------
    def _history(self, id_t: str) -> PartyHistory:
        return self.btelcos.setdefault(id_t, PartyHistory())

    def record_ok(self, id_t: str) -> None:
        self._history(id_t).ok_count += 1

    def record_mismatch(self, id_t: str, session_id: str, seq: int,
                        degree: float, at: float) -> None:
        self._history(id_t).mismatches.append(
            MismatchEvent(session_id=session_id, seq=seq,
                          degree=max(degree, 1.0), at=at))

    def flag_ue(self, id_u: str) -> None:
        """Count a tamper suspicion against one of our own subscribers."""
        self.ue_suspects[id_u] = self.ue_suspects.get(id_u, 0) + 1

    # -- queries --------------------------------------------------------------
    def btelco_score(self, id_t: str) -> float:
        history = self.btelcos.get(id_t)
        if history is None:
            return 1.0
        ok = history.ok_count + self.prior_ok
        return ok / (ok + history.weighted_mismatch())

    def btelco_acceptable(self, id_t: str) -> bool:
        """The admission decision used by the broker's SAP policy."""
        return self.btelco_score(id_t) >= self.acceptance_threshold

    def ue_suspected(self, id_u: str) -> bool:
        return self.ue_suspects.get(id_u, 0) >= self.suspect_after

    def mismatch_count(self, id_t: str) -> int:
        history = self.btelcos.get(id_t)
        return history.mismatch_count if history else 0
