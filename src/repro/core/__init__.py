"""CellBricks core: the paper's primary contribution.

* :mod:`repro.core.sap` / :mod:`repro.core.messages` — the Secure
  Attachment Protocol (Fig 2/3),
* :mod:`repro.core.broker` — brokerd (SubscriberDB + SAP + billing),
* :mod:`repro.core.btelco` — the CellBricks-enabled AGW,
* :mod:`repro.core.ue_agent` — the CellBricks UE,
* :mod:`repro.core.billing` / :mod:`repro.core.reputation` — verifiable
  billing and the Fig 5 reputation heuristics,
* :mod:`repro.core.qos` — qosCap/qosInfo negotiation,
* :mod:`repro.core.mobility` — host-driven mobility orchestration.
"""

from .billing import (
    BillingError,
    BillingVerifier,
    Invoice,
    Meter,
    REPORTER_BTELCO,
    REPORTER_UE,
    TrafficReport,
    TrafficReportUpload,
    make_upload,
)
from .broker import Brokerd
from .btelco import CellBricksAgw
from .btelco5g import CellBricksAmf, CellBricksUe5G
from .intercept import InterceptRecord, LawfulInterceptFunction
from .messages import (
    AuthReqT,
    AuthReqU,
    AuthRespT,
    AuthRespU,
    AuthVec,
    BrokerAuthRequest,
    BrokerAuthResponse,
    DenialCause,
    MessageError,
    SealedResponse,
    SessionRevocation,
    seal_and_sign,
)
from .mobility import MobilityManager
from .qos import QCI_TABLE, QosCapabilities, QosError, QosInfo, select_qos
from .reputation import MismatchEvent, PartyHistory, ReputationSystem
from .settlement import (
    Payment,
    SettlementEngine,
    SettlementError,
    UsageClaim,
    make_claim,
)
from .sap import (
    AuthorizedSession,
    BrokerSap,
    BrokerSubscriber,
    BtelcoSap,
    BtelcoSapConfig,
    SapError,
    SapGrant,
    UeSap,
    UeSapCredentials,
)
from .ue_agent import CellBricksUe

__all__ = [
    "AuthReqT",
    "AuthReqU",
    "AuthRespT",
    "AuthRespU",
    "AuthVec",
    "AuthorizedSession",
    "BillingError",
    "BillingVerifier",
    "BrokerAuthRequest",
    "BrokerAuthResponse",
    "BrokerSap",
    "BrokerSubscriber",
    "Brokerd",
    "BtelcoSap",
    "BtelcoSapConfig",
    "CellBricksAgw",
    "CellBricksAmf",
    "CellBricksUe",
    "CellBricksUe5G",
    "DenialCause",
    "InterceptRecord",
    "Invoice",
    "LawfulInterceptFunction",
    "MessageError",
    "Meter",
    "MismatchEvent",
    "MobilityManager",
    "PartyHistory",
    "QCI_TABLE",
    "QosCapabilities",
    "QosError",
    "Payment",
    "QosInfo",
    "REPORTER_BTELCO",
    "REPORTER_UE",
    "ReputationSystem",
    "SapError",
    "SapGrant",
    "SealedResponse",
    "SessionRevocation",
    "SettlementEngine",
    "SettlementError",
    "UsageClaim",
    "TrafficReport",
    "TrafficReportUpload",
    "UeSap",
    "UeSapCredentials",
    "make_claim",
    "make_upload",
    "seal_and_sign",
    "select_qos",
]
