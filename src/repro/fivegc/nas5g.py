"""5G NAS messages (TS 24.501 subset) and SBI service messages.

The 5G NAS types subclass the LTE :class:`~repro.lte.nas.NasMessage`
marker so the same RAN relay (gNB = the eNodeB relay, unmodified — the
CellBricks property) carries them.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.lte.nas import MESSAGE_SIZES, NasMessage

from .identifiers5g import Guti5G, Suci


# -- NAS: registration ---------------------------------------------------------

@dataclass(frozen=True)
class RegistrationRequest(NasMessage):
    suci: Suci
    requested_slice: str = "eMBB"


@dataclass(frozen=True)
class AuthenticationRequest5G(NasMessage):
    rand: bytes
    autn: bytes


@dataclass(frozen=True)
class AuthenticationResponse5G(NasMessage):
    res_star: bytes


@dataclass(frozen=True)
class SecurityModeCommand5G(NasMessage):
    enc_alg: int
    int_alg: int
    mac: bytes


@dataclass(frozen=True)
class SecurityModeComplete5G(NasMessage):
    mac: bytes


@dataclass(frozen=True)
class RegistrationAccept(NasMessage):
    guti: Guti5G


@dataclass(frozen=True)
class RegistrationComplete(NasMessage):
    pass


@dataclass(frozen=True)
class RegistrationReject(NasMessage):
    cause: str
    #: broker-side transient condition (degraded shard): the UE should
    #: back off and retry instead of treating this as a terminal reject.
    retryable: bool = False


# -- NAS: deregistration (TS 24.501 §5.5.2) --------------------------------------
#
# Needed for lifecycle parity with LTE: the UE's switch-off departure and
# the network-initiated teardown (grant expiry, revocation) both ride it.

@dataclass(frozen=True)
class DeregistrationRequest5G(NasMessage):
    """UE- or network-originated deregistration.  ``switch_off`` requests
    no acknowledgement (the UE is leaving immediately)."""

    switch_off: bool = False


@dataclass(frozen=True)
class DeregistrationAccept5G(NasMessage):
    pass


# -- NAS: PDU session -----------------------------------------------------------

@dataclass(frozen=True)
class PduSessionEstablishmentRequest(NasMessage):
    dnn: str = "internet"
    session_id: int = 1


@dataclass(frozen=True)
class PduSessionEstablishmentAccept(NasMessage):
    session_id: int
    ue_ip: str
    qfi: int                 # QoS flow identifier (5G's QCI analogue)
    ambr_dl_bps: float
    ambr_ul_bps: float


@dataclass(frozen=True)
class PduSessionEstablishmentReject(NasMessage):
    session_id: int
    cause: str


# -- CellBricks extension NAS (SAP over 5G) -----------------------------------------

@dataclass(frozen=True)
class SapRegistrationRequest(NasMessage):
    """SAP's authReqU carried in a 5G registration."""

    auth_req_u: object
    requested_slice: str = "eMBB"


@dataclass(frozen=True)
class SapRegistrationChallenge(NasMessage):
    auth_resp_u: object


@dataclass(frozen=True)
class SapScopedRegistrationRequest(NasMessage):
    """Mobility-scoped re-registration (§4.2): the broker-signed scope
    token + proof-of-possession MAC, validated locally by the AMF with
    no broker round-trip (the 5G twin of ``SapScopedAttachRequest``)."""

    token: object   # repro.core.messages.ScopeToken
    counter: int
    mac: bytes
    requested_slice: str = "eMBB"


# -- SBI (service-based interface) messages ------------------------------------------

@dataclass(frozen=True)
class SbiMessage:
    """Marker for NF-to-NF service invocations."""


@dataclass(frozen=True)
class AusfAuthenticateRequest(SbiMessage):
    """Namf -> Nausf: start UE authentication."""

    suci: Suci
    serving_network: str
    correlation: int


@dataclass(frozen=True)
class AusfAuthenticateResponse(SbiMessage):
    correlation: int
    success: bool
    rand: bytes = b""
    autn: bytes = b""
    hxres_star: bytes = b""
    cause: str = ""


@dataclass(frozen=True)
class AusfConfirmRequest(SbiMessage):
    """Namf -> Nausf: forward RES* for home-network confirmation."""

    correlation: int
    res_star: bytes


@dataclass(frozen=True)
class AusfConfirmResponse(SbiMessage):
    correlation: int
    success: bool
    supi: str = ""
    kseaf: bytes = b""
    cause: str = ""


@dataclass(frozen=True)
class UdmAuthDataRequest(SbiMessage):
    """Nausf -> Nudm: deconceal SUCI, produce a 5G vector."""

    suci: Suci
    serving_network: str
    correlation: int


@dataclass(frozen=True)
class UdmAuthDataResponse(SbiMessage):
    correlation: int
    success: bool
    supi: str = ""
    vector: object = None
    cause: str = ""


@dataclass(frozen=True)
class SmfCreateSessionRequest(SbiMessage):
    subscriber: str
    dnn: str
    session_id: int
    correlation: int


@dataclass(frozen=True)
class SmfCreateSessionResponse(SbiMessage):
    correlation: int
    success: bool
    session_id: int = 0
    ue_ip: str = ""
    qfi: int = 9
    ambr_dl_bps: float = 100e6
    ambr_ul_bps: float = 50e6
    cause: str = ""


@dataclass(frozen=True)
class SmfReleaseSessionRequest(SbiMessage):
    """Namf -> Nsmf: free the PDU session's UPF resources (bearer + IP).

    The AMF sends this on every terminal context release that holds a
    PDU session — UE deregistration, network-initiated teardown (grant
    expiry / revocation), and registration abandonment — so the SMF's
    address pool stays bounded under attach/deregister churn."""

    subscriber: str
    session_id: int
    correlation: int


@dataclass(frozen=True)
class SmfReleaseSessionResponse(SbiMessage):
    correlation: int
    released: bool


# Wire sizes for transport accounting.
MESSAGE_SIZES.update({
    RegistrationRequest: 420,          # SUCI ciphertext dominates
    AuthenticationRequest5G: 72,
    AuthenticationResponse5G: 36,
    SecurityModeCommand5G: 28,
    SecurityModeComplete5G: 20,
    RegistrationAccept: 96,
    RegistrationComplete: 16,
    RegistrationReject: 24,
    DeregistrationRequest5G: 20,
    DeregistrationAccept5G: 16,
    PduSessionEstablishmentRequest: 48,
    PduSessionEstablishmentAccept: 120,
    PduSessionEstablishmentReject: 32,
    SapRegistrationRequest: 700,
    SapRegistrationChallenge: 560,
    SapScopedRegistrationRequest: 860,  # signed scope token + ess + MAC
})
