"""The 5G UE: registration + PDU session, baseline (5G-AKA) flavor.

The CellBricks 5G UE subclasses this in :mod:`repro.core.btelco5g`,
replacing 5G-AKA with SAP exactly as the 4G UE does — the layering that
lets the same SIM-resident credentials serve both generations.

Registration legs are supervised the same way the LTE UE's attach legs
are (:class:`repro.lte.ue.UeNas`): the last uplink NAS message of an
in-progress registration is re-sent on timeout with capped exponential
backoff (seeded jitter), duplicate downlinks are absorbed instead of
re-running one-shot crypto, and the attempt is abandoned cleanly once
the per-leg budget is spent.  A loss-free registration completes well
inside the first timeout, so the supervision never fires on the clean
path and a fault-free run issues zero retransmissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.crypto import PublicKey
from repro.lte.agw import smc_mac
from repro.lte.aka import AkaError, UsimState
from repro.lte.nas import message_size
from repro.lte.security import SecurityContext
from repro.lte.signaling import CounterAttr, SignalingNode
from repro.net import Host

from . import nas5g
from .aka5g import derive_kamf, derive_kseaf, usim_authenticate_5g
from .identifiers5g import Supi, conceal

UE5G_COSTS = {
    "craft_registration": 0.0012,     # SUCI concealment (hybrid encrypt)
    nas5g.AuthenticationRequest5G: 0.0012,
    nas5g.SecurityModeCommand5G: 0.00075,
    nas5g.RegistrationAccept: 0.00075,
    nas5g.PduSessionEstablishmentAccept: 0.0006,
}


@dataclass
class RegistrationResult:
    success: bool
    latency: float
    cause: Optional[str] = None


@dataclass
class SessionResult:
    success: bool
    ue_ip: Optional[str]
    latency: float
    cause: Optional[str] = None


class Ue5G(SignalingNode):
    """Baseline 5G UE with supervised registration legs."""

    processing_costs = {
        nas5g.AuthenticationRequest5G:
            UE5G_COSTS[nas5g.AuthenticationRequest5G],
        nas5g.SecurityModeCommand5G:
            UE5G_COSTS[nas5g.SecurityModeCommand5G],
        nas5g.RegistrationAccept: UE5G_COSTS[nas5g.RegistrationAccept],
        nas5g.PduSessionEstablishmentAccept:
            UE5G_COSTS[nas5g.PduSessionEstablishmentAccept],
    }
    obs_category = "ue"
    #: span name for the initial-request crafting work ("sap.ue_craft"
    #: on the CellBricks UE).
    craft_span_name = "nas.ue_craft"
    _SPAN_NAMES = {
        nas5g.AuthenticationRequest5G: "nas.ue_auth",
        nas5g.SecurityModeCommand5G: "nas.ue_smc",
        nas5g.RegistrationAccept: "nas.ue_reg_accept",
        nas5g.PduSessionEstablishmentAccept: "nas.ue_pdu_accept",
    }
    # Same metric names as the LTE UE so fleet-wide registry merges
    # aggregate across generations.
    nas_retransmissions = CounterAttr("ue.nas_retransmissions")
    attach_timeouts = CounterAttr("ue.attach_timeouts")
    retryable_rejects = CounterAttr("ue.retryable_rejects")
    # -- registration retransmission knobs (match the LTE UE) --
    attach_retx_timeout = 0.4
    attach_retx_backoff = 2.0
    attach_retx_max_timeout = 3.0
    attach_retx_jitter = 0.1
    attach_max_attempts = 5
    # -- retryable-reject backoff knobs (degraded broker shard) --
    reject_backoff = 0.15
    reject_backoff_factor = 2.0
    reject_max_retries = 4

    def __init__(self, host: Host, gnb_ip: str, supi: Supi,
                 usim: Optional[UsimState],
                 home_network_key: Optional[PublicKey],
                 serving_network: str, name: str = "ue5g"):
        super().__init__(host, name)
        self.gnb_ip = gnb_ip
        self.supi = supi
        self.usim = usim
        self.home_network_key = home_network_key
        self.serving_network = serving_network
        self.state = "DEREGISTERED"
        self.security: Optional[SecurityContext] = None
        self.kausf: Optional[bytes] = None
        self.ue_ip: Optional[str] = None
        self._registration_started: Optional[float] = None
        self._session_started: Optional[float] = None
        self.on_registration_done: Optional[Callable] = None
        #: alias callback with the LTE UE's name, so RAT-generic harnesses
        #: (mobility, chaos churn) drive both generations identically.
        self.on_attach_done: Optional[Callable] = None
        self.on_session_done: Optional[Callable] = None
        self.on_deregistered: Optional[Callable] = None
        # -- registration supervision state --
        self._reg_resend: Optional[Callable[[], None]] = None
        self._reg_timer_event = None
        self._reg_attempts = 0
        self._reg_timeout_cur = 0.0
        self._initial_request_cache = None
        self._last_auth_rand: Optional[bytes] = None
        self._auth_response = None
        self._attach_span = None
        self._reject_retries = 0
        self.nas_retransmissions = 0
        self.attach_timeouts = 0
        self.retryable_rejects = 0

        self.on(nas5g.AuthenticationRequest5G, self._on_auth_request)
        self.on(nas5g.SecurityModeCommand5G, self._on_smc)
        self.on(nas5g.RegistrationAccept, self._on_accept)
        self.on(nas5g.RegistrationReject, self._on_reject)
        self.on(nas5g.DeregistrationRequest5G,
                self._on_network_deregistration)
        self.on(nas5g.PduSessionEstablishmentAccept, self._on_pdu_accept)
        self.on(nas5g.PduSessionEstablishmentReject, self._on_pdu_reject)

    # -- observability --------------------------------------------------------
    def span_name(self, message: object) -> str:
        name = self._SPAN_NAMES.get(type(message))
        return name if name is not None else super().span_name(message)

    def _obs_begin_attach(self, craft: float) -> None:
        """Open the root ``attach`` span plus its crafting child; every
        send in this procedure then carries the root trace context.  The
        root span is named ``attach`` in both generations so the Fig 7
        leg-breakdown exporter works on 5G traces unchanged."""
        obs = self.obs()
        if obs is None or not obs.tracing:
            return
        tracer = obs.tracer
        # Inside a mobility switch the manager sets ``_obs_parent_ctx``
        # so the re-auth nests under the migration root (parent_id != 0
        # keeps these out of the Fig 7 attach breakdowns).
        root = tracer.start_trace("attach", self.name, self.obs_category,
                                  start=self.sim.now,
                                  ctx=getattr(self, "_obs_parent_ctx", None))
        self._attach_span = root
        self._obs_ctx = root.context
        tracer.begin(self.craft_span_name, self.name, self.obs_category,
                     start=self.sim.now, end=self.sim.now + craft,
                     trace_id=root.trace_id, parent_id=root.span_id)

    def _obs_end_attach(self, status: str, latency: float) -> None:
        span = self._attach_span
        if span is not None:
            self._attach_span = None
            obs = self.obs()
            if obs is not None and obs.tracing:
                obs.tracer.finish(span, self.sim.now, status=status)
        if status == "ok":
            self.metrics.histogram("attach.latency_ms").observe(
                latency * 1000.0)
        else:
            self.metrics.counter("attach.failures").inc()

    def _obs_degraded_retry(self, reject, delay: float) -> None:
        """Annotate the open attach span when a retryable (degraded
        shard) denial forces a backoff — the trace then shows *why*
        this registration was slow, not just that it was."""
        span = self._attach_span
        if span is None:
            return
        obs = self.obs()
        if obs is not None and obs.tracing:
            obs.tracer.instant(
                "attach.degraded_retry", self.name, self.sim.now,
                trace_id=span.trace_id, parent_id=span.span_id,
                category=self.obs_category,
                data={"retry": self._reject_retries,
                      "backoff_ms": round(delay * 1000.0, 3),
                      "cause": getattr(reject, "cause", "") or "degraded"})

    # -- registration ------------------------------------------------------------
    def craft_cost(self) -> float:
        """Cost of crafting the initial request (SUCI concealment here;
        the CellBricks UE's authReqU crafting overrides it)."""
        return UE5G_COSTS["craft_registration"]

    def register(self) -> None:
        if self.state not in ("DEREGISTERED", "REJECTED"):
            raise RuntimeError(f"register() in state {self.state}")
        self.state = "REGISTERING"
        self._registration_started = self.sim.now
        # A fresh attempt starts from clean MM state: stale keys from an
        # earlier registration must never validate this one's SMC.
        self.security = None
        self.kausf = None
        self._last_auth_rand = None
        self._auth_response = None
        self._reject_retries = 0
        craft = self.craft_cost()
        self.charge(craft)
        self._obs_begin_attach(craft)
        self.sim.schedule(craft, self._send_registration)

    def attach(self) -> None:
        """LTE-named alias so RAT-generic harnesses drive both UEs."""
        self.register()

    def _send_registration(self) -> None:
        # Crafted ONCE per attempt and the same bytes retransmitted: for
        # the CellBricks UE this keeps the SAP nonce stable so the
        # broker's idempotency cache (not its replay window) catches the
        # duplicate.
        request = self.initial_request()
        self._initial_request_cache = request
        self.send(self.gnb_ip, request, size=message_size(request))
        self._supervise_registration(self._resend_initial_request)

    def _resend_initial_request(self) -> None:
        request = self._initial_request_cache
        if request is not None:
            self.send(self.gnb_ip, request, size=message_size(request))

    def initial_request(self):
        suci = conceal(self.supi, self.home_network_key)
        return nas5g.RegistrationRequest(suci=suci)

    # -- registration retransmission supervision --------------------------------
    def _supervise_registration(self, resend: Callable[[], None]) -> None:
        """(Re)arm the retransmission timer around the given leg.  Each
        leg (initial request, auth response, SMC complete) gets a fresh
        attempt budget: downlink progress proves the path was alive."""
        self._reg_resend = resend
        self._reg_attempts = 1
        self._reg_timeout_cur = self.attach_retx_timeout
        self._arm_reg_timer()

    def _arm_reg_timer(self) -> None:
        self._cancel_reg_timer()
        jitter = 1.0 + self.attach_retx_jitter \
            * (2.0 * self._retx_rng.random() - 1.0)
        self._reg_timer_event = self.sim.schedule(
            self._reg_timeout_cur * jitter, self._reg_timer_fired)

    def _cancel_reg_timer(self) -> None:
        if self._reg_timer_event is not None:
            self._reg_timer_event.cancel()
            self._reg_timer_event = None

    def _stop_registration_supervision(self) -> None:
        self._cancel_reg_timer()
        self._reg_resend = None

    def _reg_timer_fired(self) -> None:
        self._reg_timer_event = None
        if self.state != "REGISTERING" or self._reg_resend is None:
            return
        if self._reg_attempts >= self.attach_max_attempts:
            self.attach_timeouts += 1
            self._reg_resend = None
            self._on_registration_give_up()
            self._fail(f"registration timed out after "
                       f"{self.attach_max_attempts} attempts")
            return
        self._reg_attempts += 1
        self._reg_timeout_cur = min(
            self._reg_timeout_cur * self.attach_retx_backoff,
            self.attach_retx_max_timeout)
        self.nas_retransmissions += 1
        obs = self.obs()
        if obs is not None and obs.tracing and self._attach_span is not None:
            obs.tracer.instant(
                "nas.retransmit", self.name, self.sim.now,
                trace_id=self._attach_span.trace_id,
                parent_id=self._attach_span.span_id,
                category=self.obs_category,
                data={"attempt": self._reg_attempts})
        self._reg_resend()
        self._arm_reg_timer()

    def _on_registration_give_up(self) -> None:
        """Hook: reset MM state when a registration attempt is abandoned."""
        self.security = None
        self.kausf = None
        self.ue_ip = None

    # -- 5G-AKA ------------------------------------------------------------------
    def _on_auth_request(self, src_ip: str,
                         request: nas5g.AuthenticationRequest5G) -> None:
        if self.state != "REGISTERING":
            return  # stale challenge from an abandoned attempt
        if request.rand == self._last_auth_rand \
                and self._auth_response is not None:
            # Duplicate challenge (our response was lost): replay the
            # stored response instead of re-running 5G-AKA, whose SQN
            # check would reject the repeated vector.
            self._resend_auth_response()
            return
        try:
            res_star, kausf = usim_authenticate_5g(
                self.usim, request.rand, request.autn, self.serving_network)
        except AkaError as exc:
            self._fail(str(exc))
            return
        self.kausf = kausf
        kseaf = derive_kseaf(kausf, self.serving_network)
        kamf = derive_kamf(kseaf, str(self.supi))
        self.security = SecurityContext(kasme=kamf)
        self._last_auth_rand = request.rand
        self._auth_response = nas5g.AuthenticationResponse5G(
            res_star=res_star)
        self._resend_auth_response()
        self._supervise_registration(self._resend_auth_response)

    def _resend_auth_response(self) -> None:
        response = self._auth_response
        if response is not None:
            self.send(self.gnb_ip, response, size=message_size(response))

    # -- SMC (shared by baseline and CellBricks) ----------------------------------
    def _on_smc(self, src_ip: str,
                command: nas5g.SecurityModeCommand5G) -> None:
        if self.state != "REGISTERING":
            return  # stale command from an abandoned attempt
        if self.security is None:
            # The key-agreement downlink (AKA challenge / SAP response)
            # was lost and the SMC overtook its replay: drop it.  Our own
            # resend of the previous uplink makes the network replay both
            # legs, so the registration still converges.
            return
        expected = smc_mac(self.security.k_nas_int, command.enc_alg,
                           command.int_alg)
        if command.mac != expected:
            self._fail("SMC MAC verification failed")
            return
        self._send_smc_complete()
        self._supervise_registration(self._send_smc_complete)

    def _send_smc_complete(self) -> None:
        if self.security is None:
            return
        reply = nas5g.SecurityModeComplete5G(
            mac=smc_mac(self.security.k_nas_int, 0xFF, 0xFF))
        self.send(self.gnb_ip, reply, size=message_size(reply))

    # -- completion ---------------------------------------------------------------
    def _on_accept(self, src_ip: str,
                   accept: nas5g.RegistrationAccept) -> None:
        if self.state == "REGISTERED":
            # Duplicate accept: our RegistrationComplete was lost —
            # re-send it without re-firing the completion hook.
            self._send_registration_complete()
            return
        if self.state != "REGISTERING":
            return  # stale accept from an abandoned attempt
        self._stop_registration_supervision()
        self.state = "REGISTERED"
        self._send_registration_complete()
        latency = self.sim.now - self._registration_started
        self._obs_end_attach("ok", latency)
        self._finish_registration(RegistrationResult(
            success=True, latency=latency))

    def _send_registration_complete(self) -> None:
        complete = nas5g.RegistrationComplete()
        self.send(self.gnb_ip, complete, size=message_size(complete))

    def _finish_registration(self, result: RegistrationResult) -> None:
        if self.on_registration_done is not None:
            self.on_registration_done(result)
        if self.on_attach_done is not None:
            self.on_attach_done(result)

    def _on_reject(self, src_ip: str, reject) -> None:
        if self.state != "REGISTERING":
            return  # stale reject (e.g. we already timed out and moved on)
        if getattr(reject, "retryable", False) \
                and self._reject_retries < self.reject_max_retries:
            # Transient broker-side denial (degraded shard mid-failover):
            # back off and re-register with a fresh nonce instead of
            # treating it as a terminal reject.
            self._reject_retries += 1
            self.retryable_rejects += 1
            self._stop_registration_supervision()
            self._on_registration_give_up()
            delay = self.reject_backoff * (
                self.reject_backoff_factor ** (self._reject_retries - 1))
            delay *= 1.0 + self.attach_retx_jitter \
                * (2.0 * self._retx_rng.random() - 1.0)
            self._obs_degraded_retry(reject, delay)
            self.sim.schedule(delay, self._retry_after_reject)
            return
        self._fail(reject.cause)

    def _retry_after_reject(self) -> None:
        if self.state != "REGISTERING":
            return  # deregistered or abandoned while backing off
        self._send_registration()

    def _fail(self, cause: str) -> None:
        self._stop_registration_supervision()
        self.state = "REJECTED"
        latency = (self.sim.now - self._registration_started
                   if self._registration_started is not None else 0.0)
        self._obs_end_attach("error", latency)
        self._finish_registration(RegistrationResult(
            success=False, latency=latency, cause=cause))

    # -- deregistration -----------------------------------------------------------
    def deregister_and_forget(self) -> None:
        """Switch-off style deregistration (TS 24.501): tell the network
        we are leaving and drop local state without waiting for an accept
        — what a CellBricks UE does the instant it decides to move."""
        if self.state == "REGISTERED":
            request = nas5g.DeregistrationRequest5G(switch_off=True)
            self.send(self.gnb_ip, request, size=message_size(request))
        self.state = "DEREGISTERED"
        self.ue_ip = None
        self.security = None

    def detach_and_forget(self) -> None:
        """LTE-named alias so RAT-generic harnesses drive both UEs."""
        self.deregister_and_forget()

    def _on_network_deregistration(
            self, src_ip: str,
            request: nas5g.DeregistrationRequest5G) -> None:
        """Network-initiated deregistration (grant expiry / revocation)."""
        if self.state != "REGISTERED" or src_ip != self.gnb_ip:
            return  # not registered, or a stale network we already left
        reply = nas5g.DeregistrationAccept5G()
        self.send(self.gnb_ip, reply, size=message_size(reply))
        self.state = "DEREGISTERED"
        self.ue_ip = None
        self.security = None
        if self.on_deregistered is not None:
            self.on_deregistered()

    def retarget(self, gnb_ip: str, serving_network: str) -> None:
        """Point the UE at a different gNB (host-driven mobility)."""
        self.gnb_ip = gnb_ip
        self.serving_network = serving_network

    # -- PDU session --------------------------------------------------------------
    def establish_session(self, dnn: str = "internet") -> None:
        if self.state != "REGISTERED":
            raise RuntimeError("establish_session() before registration")
        self._session_started = self.sim.now
        request = nas5g.PduSessionEstablishmentRequest(dnn=dnn)
        self.send(self.gnb_ip, request, size=message_size(request))

    def _on_pdu_accept(self, src_ip: str,
                       accept: nas5g.PduSessionEstablishmentAccept) -> None:
        self.ue_ip = accept.ue_ip
        if self.on_session_done is not None:
            self.on_session_done(SessionResult(
                success=True, ue_ip=accept.ue_ip,
                latency=self.sim.now - self._session_started))

    def _on_pdu_reject(self, src_ip: str, reject) -> None:
        if self.on_session_done is not None:
            self.on_session_done(SessionResult(
                success=False, ue_ip=None,
                latency=self.sim.now - (self._session_started or self.sim.now),
                cause=reject.cause))
