"""The 5G UE: registration + PDU session, baseline (5G-AKA) flavor.

The CellBricks 5G UE subclasses this in :mod:`repro.core.btelco5g`,
replacing 5G-AKA with SAP exactly as the 4G UE does — the layering that
lets the same SIM-resident credentials serve both generations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.crypto import PublicKey
from repro.lte.agw import smc_mac
from repro.lte.aka import AkaError, UsimState
from repro.lte.nas import message_size
from repro.lte.security import SecurityContext
from repro.lte.signaling import SignalingNode
from repro.net import Host

from . import nas5g
from .aka5g import derive_kamf, derive_kseaf, usim_authenticate_5g
from .identifiers5g import Supi, conceal

UE5G_COSTS = {
    "craft_registration": 0.0012,     # SUCI concealment (hybrid encrypt)
    nas5g.AuthenticationRequest5G: 0.0012,
    nas5g.SecurityModeCommand5G: 0.00075,
    nas5g.RegistrationAccept: 0.00075,
    nas5g.PduSessionEstablishmentAccept: 0.0006,
}


@dataclass
class RegistrationResult:
    success: bool
    latency: float
    cause: Optional[str] = None


@dataclass
class SessionResult:
    success: bool
    ue_ip: Optional[str]
    latency: float
    cause: Optional[str] = None


class Ue5G(SignalingNode):
    """Baseline 5G UE."""

    processing_costs = {
        nas5g.AuthenticationRequest5G:
            UE5G_COSTS[nas5g.AuthenticationRequest5G],
        nas5g.SecurityModeCommand5G:
            UE5G_COSTS[nas5g.SecurityModeCommand5G],
        nas5g.RegistrationAccept: UE5G_COSTS[nas5g.RegistrationAccept],
        nas5g.PduSessionEstablishmentAccept:
            UE5G_COSTS[nas5g.PduSessionEstablishmentAccept],
    }

    def __init__(self, host: Host, gnb_ip: str, supi: Supi,
                 usim: Optional[UsimState],
                 home_network_key: Optional[PublicKey],
                 serving_network: str, name: str = "ue5g"):
        super().__init__(host, name)
        self.gnb_ip = gnb_ip
        self.supi = supi
        self.usim = usim
        self.home_network_key = home_network_key
        self.serving_network = serving_network
        self.state = "DEREGISTERED"
        self.security: Optional[SecurityContext] = None
        self.kausf: Optional[bytes] = None
        self.ue_ip: Optional[str] = None
        self._registration_started: Optional[float] = None
        self._session_started: Optional[float] = None
        self.on_registration_done: Optional[Callable] = None
        self.on_session_done: Optional[Callable] = None

        self.on(nas5g.AuthenticationRequest5G, self._on_auth_request)
        self.on(nas5g.SecurityModeCommand5G, self._on_smc)
        self.on(nas5g.RegistrationAccept, self._on_accept)
        self.on(nas5g.RegistrationReject, self._on_reject)
        self.on(nas5g.PduSessionEstablishmentAccept, self._on_pdu_accept)
        self.on(nas5g.PduSessionEstablishmentReject, self._on_pdu_reject)

    # -- registration ------------------------------------------------------------
    def register(self) -> None:
        if self.state not in ("DEREGISTERED", "REJECTED"):
            raise RuntimeError(f"register() in state {self.state}")
        self.state = "REGISTERING"
        self._registration_started = self.sim.now
        craft = UE5G_COSTS["craft_registration"]
        self.charge(craft)
        self.sim.schedule(craft, self._send_registration)

    def _send_registration(self) -> None:
        request = self.initial_request()
        self.send(self.gnb_ip, request, size=message_size(request))

    def initial_request(self):
        suci = conceal(self.supi, self.home_network_key)
        return nas5g.RegistrationRequest(suci=suci)

    def _on_auth_request(self, src_ip: str,
                         request: nas5g.AuthenticationRequest5G) -> None:
        try:
            res_star, kausf = usim_authenticate_5g(
                self.usim, request.rand, request.autn, self.serving_network)
        except AkaError as exc:
            self._fail(str(exc))
            return
        self.kausf = kausf
        kseaf = derive_kseaf(kausf, self.serving_network)
        kamf = derive_kamf(kseaf, str(self.supi))
        self.security = SecurityContext(kasme=kamf)
        reply = nas5g.AuthenticationResponse5G(res_star=res_star)
        self.send(self.gnb_ip, reply, size=message_size(reply))

    def _on_smc(self, src_ip: str,
                command: nas5g.SecurityModeCommand5G) -> None:
        if self.security is None:
            self._fail("SMC before key agreement")
            return
        expected = smc_mac(self.security.k_nas_int, command.enc_alg,
                           command.int_alg)
        if command.mac != expected:
            self._fail("SMC MAC verification failed")
            return
        reply = nas5g.SecurityModeComplete5G(
            mac=smc_mac(self.security.k_nas_int, 0xFF, 0xFF))
        self.send(self.gnb_ip, reply, size=message_size(reply))

    def _on_accept(self, src_ip: str,
                   accept: nas5g.RegistrationAccept) -> None:
        self.state = "REGISTERED"
        complete = nas5g.RegistrationComplete()
        self.send(self.gnb_ip, complete, size=message_size(complete))
        if self.on_registration_done is not None:
            self.on_registration_done(RegistrationResult(
                success=True,
                latency=self.sim.now - self._registration_started))

    def _on_reject(self, src_ip: str, reject) -> None:
        self._fail(reject.cause)

    def _fail(self, cause: str) -> None:
        self.state = "REJECTED"
        latency = (self.sim.now - self._registration_started
                   if self._registration_started else 0.0)
        if self.on_registration_done is not None:
            self.on_registration_done(RegistrationResult(
                success=False, latency=latency, cause=cause))

    # -- PDU session --------------------------------------------------------------
    def establish_session(self, dnn: str = "internet") -> None:
        if self.state != "REGISTERED":
            raise RuntimeError("establish_session() before registration")
        self._session_started = self.sim.now
        request = nas5g.PduSessionEstablishmentRequest(dnn=dnn)
        self.send(self.gnb_ip, request, size=message_size(request))

    def _on_pdu_accept(self, src_ip: str,
                       accept: nas5g.PduSessionEstablishmentAccept) -> None:
        self.ue_ip = accept.ue_ip
        if self.on_session_done is not None:
            self.on_session_done(SessionResult(
                success=True, ue_ip=accept.ue_ip,
                latency=self.sim.now - self._session_started))

    def _on_pdu_reject(self, src_ip: str, reject) -> None:
        if self.on_session_done is not None:
            self.on_session_done(SessionResult(
                success=False, ue_ip=None,
                latency=self.sim.now - (self._session_started or self.sim.now),
                cause=reject.cause))
