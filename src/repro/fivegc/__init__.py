"""5G standalone core substrate: SUCI, 5G-AKA, AMF/SMF/AUSF/UDM, gNB, UE.

The same paper architecture over the 5G control plane: the baseline uses
5G-AKA with home-network control (two visited-home round trips); the
CellBricks variant (:mod:`repro.core.btelco5g`) swaps in SAP.  The gNB is
the unmodified RAN relay (:class:`repro.lte.ENodeB`) — CellBricks touches
no RAN in either generation.
"""

from . import nas5g
from .aka5g import (
    AuthVector5G,
    derive_kamf,
    derive_kausf,
    derive_kseaf,
    derive_res_star,
    generate_5g_vector,
    hres_star,
    usim_authenticate_5g,
)
from .identifiers5g import (
    Guti5G,
    Suci,
    SuciError,
    Supi,
    conceal,
    deconceal,
    make_supi,
)
from .nf import Amf, Ausf, Smf, Subscriber5G, Udm, UeContext5G
from .ue5g import RegistrationResult, SessionResult, Ue5G

#: the gNB is literally the same relay component — re-exported under its
#: 5G name to make call sites read naturally.
from repro.lte.enodeb import ENodeB as Gnb

__all__ = [
    "Amf",
    "Ausf",
    "AuthVector5G",
    "Gnb",
    "Guti5G",
    "RegistrationResult",
    "SessionResult",
    "Smf",
    "Subscriber5G",
    "Suci",
    "SuciError",
    "Supi",
    "Udm",
    "Ue5G",
    "UeContext5G",
    "conceal",
    "deconceal",
    "derive_kamf",
    "derive_kausf",
    "derive_kseaf",
    "derive_res_star",
    "generate_5g_vector",
    "hres_star",
    "make_supi",
    "nas5g",
    "usim_authenticate_5g",
]
