"""Multi-site CellBricks 5G network assembly.

The 5G twin of :func:`repro.core.mobility.build_cellbricks_network`: a
CA, one broker, N bTelco sites (gNB + CellBricks AMF + local SMF), and
one enrolled UE host in radio range of every site.  Every signaling link
is published by name (``<site>-sig-radio``, ``<site>-backhaul``,
``<site>-smf``, ``<site>-broker``) so the chaos harness can drive the
same loss/outage/brownout fault surface it drives for LTE — the
``*-broker`` glob hits the 5G broker legs unchanged.

Site objects expose ``agw``/``enb`` aliases for their AMF/gNB so
RAT-generic harnesses (attach churn, revocation accounting) traverse
LTE and 5G topologies with the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.broker import Brokerd
from repro.core.btelco5g import CellBricksAmf
from repro.core.qos import QosCapabilities
from repro.core.sap import UeSapCredentials
from repro.crypto import CertificateAuthority
from repro.crypto.keypool import pooled_keypair
from repro.lte.enodeb import ENodeB as Gnb
from repro.net import Host, Link, Simulator

from .nf import Smf

SIGNALING_BANDWIDTH = 1e9


@dataclass
class Btelco5GSite:
    """One 5G bTelco deployment: gNB + AMF + local SMF."""

    name: str
    gnb_host: Host
    amf_host: Host
    smf_host: Host
    gnb: Gnb
    amf: CellBricksAmf
    smf: Smf
    pool_prefix: str

    @property
    def enb_address(self) -> str:
        return self.gnb_host.address

    # RAT-generic aliases: harnesses written against the LTE site shape
    # (site.enb / site.agw) work on 5G sites unchanged.
    @property
    def enb(self) -> Gnb:
        return self.gnb

    @property
    def agw(self) -> CellBricksAmf:
        return self.amf


@dataclass
class CellBricks5GNetwork:
    """Everything :func:`build_cellbricks_network_5g` wires together."""

    sim: Simulator
    ca: CertificateAuthority
    broker_host: Host
    brokerd: Brokerd
    sites: dict[str, Btelco5GSite]
    ue_host: Host
    credentials: UeSapCredentials
    links: dict[str, Link] = field(default_factory=dict)


def build_cellbricks_network_5g(
        sim: Simulator, site_names: tuple = ("btelco-a", "btelco-b"),
        subscriber_id: str = "alice",
        broker_id: str = "brokerd.example",
        broker_link_delay: float = 0.0025,
        seed: int = 7) -> CellBricks5GNetwork:
    """Assemble a CA, a broker, N 5G bTelco sites, and one enrolled UE.

    The same brokerd serves 4G and 5G bTelcos — SAP is RAT-agnostic, so
    nothing broker-side knows these sites speak NAS-5G behind the AMF.
    """
    ca = CertificateAuthority(key=pooled_keypair(seed * 100))

    broker_host = Host(sim, "broker-host", address="52.20.0.1")
    brokerd = Brokerd(broker_host, id_b=broker_id,
                      ca_public_key=ca.public_key,
                      key=pooled_keypair(seed * 100 + 1))

    ue_key = pooled_keypair(seed * 100 + 2)
    credentials = UeSapCredentials(
        id_u=subscriber_id, id_b=broker_id, ue_key=ue_key,
        broker_public_key=brokerd.public_key)
    brokerd.enroll_subscriber(subscriber_id, ue_key.public_key)

    ue_host = Host(sim, "ue-host", address="10.250.0.2")

    sites: dict[str, Btelco5GSite] = {}
    links: dict[str, Link] = {}
    for index, name in enumerate(site_names):
        gnb_host = Host(sim, f"{name}-gnb", address=f"10.25{index}.0.1")
        amf_host = Host(sim, f"{name}-amf", address=f"10.24{index}.0.1")
        smf_host = Host(sim, f"{name}-smf", address=f"10.23{index}.0.1")
        key = pooled_keypair(seed * 100 + 3 + index)
        certificate = ca.issue(name, "btelco", key.public_key)
        smf = Smf(smf_host, name=f"{name}-smf",
                  ue_pool_prefix=f"10.{128 + index}.0")
        amf = CellBricksAmf(
            amf_host, broker_ip=broker_host.address,
            smf_ip=smf_host.address, id_t=name, key=key,
            certificate=certificate, ca_public_key=ca.public_key,
            qos_capabilities=QosCapabilities(supported_qcis=(1, 8, 9)),
            name=f"{name}-amf")
        amf.trust_broker(broker_id, brokerd.public_key)
        # Directory entry for mobility-scope minting (§4.2): scopes may
        # cover this site before the UE ever attaches to it.
        brokerd.register_btelco(certificate, 0.0)
        gnb = Gnb(gnb_host, agw_ip=amf_host.address, name=f"{name}-gnb")

        # Signaling links: UE <-> gNB, gNB <-> AMF, AMF <-> SMF/broker.
        radio = Link(sim, f"{name}-sig-radio", ue_host, gnb_host,
                     bandwidth_bps=SIGNALING_BANDWIDTH, delay_s=0.0001)
        backhaul = Link(sim, f"{name}-backhaul", gnb_host, amf_host,
                        bandwidth_bps=SIGNALING_BANDWIDTH, delay_s=0.00015)
        smf_link = Link(sim, f"{name}-smf", amf_host, smf_host,
                        bandwidth_bps=SIGNALING_BANDWIDTH, delay_s=0.0002)
        broker_link = Link(sim, f"{name}-broker", amf_host, broker_host,
                           bandwidth_bps=SIGNALING_BANDWIDTH,
                           delay_s=broker_link_delay)
        ue_host.add_route(gnb_host.address.rsplit(".", 1)[0], radio)
        gnb_host.add_route(ue_host.address.rsplit(".", 1)[0], radio)
        gnb_host.add_route(amf_host.address.rsplit(".", 1)[0], backhaul)
        amf_host.add_route(gnb_host.address.rsplit(".", 1)[0], backhaul)
        amf_host.add_route(smf_host.address.rsplit(".", 1)[0], smf_link)
        smf_host.add_route(amf_host.address.rsplit(".", 1)[0], smf_link)
        amf_host.add_route(broker_host.address.rsplit(".", 1)[0],
                           broker_link)
        broker_host.add_route(amf_host.address.rsplit(".", 1)[0],
                              broker_link)

        links[radio.name] = radio
        links[backhaul.name] = backhaul
        links[smf_link.name] = smf_link
        links[broker_link.name] = broker_link

        sites[name] = Btelco5GSite(
            name=name, gnb_host=gnb_host, amf_host=amf_host,
            smf_host=smf_host, gnb=gnb, amf=amf, smf=smf,
            pool_prefix=f"10.{128 + index}.0")

    return CellBricks5GNetwork(sim=sim, ca=ca, broker_host=broker_host,
                               brokerd=brokerd, sites=sites,
                               ue_host=ue_host, credentials=credentials,
                               links=links)
