"""5G identifiers: SUPI, SUCI concealment, 5G-GUTI.

5G already conceals the permanent subscriber identifier from the *radio
path* (SUCI: the SUPI encrypted to the home network's public key) — the
same defense SAP's encrypted authVec provides against IMSI catching, with
the same asymmetric-crypto mechanism.  CellBricks extends the idea one
step: the *serving network operator* never learns the identity either.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import CryptoError, PrivateKey, PublicKey

from repro.lte.identifiers import Plmn, TEST_PLMN


@dataclass(frozen=True)
class Supi:
    """Subscription Permanent Identifier (IMSI-based form)."""

    plmn: Plmn
    msin: str

    def __post_init__(self):
        if not (self.msin.isdigit() and 9 <= len(self.msin) <= 10):
            raise ValueError(f"MSIN must be 9-10 digits, got {self.msin!r}")

    def __str__(self) -> str:
        return f"imsi-{self.plmn}{self.msin}"


@dataclass(frozen=True)
class Suci:
    """Subscription Concealed Identifier.

    The MSIN is encrypted to the home network's public key (the standard
    uses ECIES; we use the crypto substrate's hybrid RSA with identical
    semantics).  The routing prefix (PLMN) stays cleartext so the serving
    network can reach the right home network.
    """

    plmn: Plmn
    concealed_msin: bytes
    scheme_id: int = 1

    def __str__(self) -> str:
        return (f"suci-{self.plmn}-{self.scheme_id}-"
                f"{self.concealed_msin[:8].hex()}...")


class SuciError(Exception):
    """Raised when deconcealment fails."""


def conceal(supi: Supi, home_network_key: PublicKey) -> Suci:
    """UE side: build the SUCI for a registration request."""
    concealed = home_network_key.encrypt(supi.msin.encode(),
                                         associated_data=str(supi.plmn).encode())
    return Suci(plmn=supi.plmn, concealed_msin=concealed)


def deconceal(suci: Suci, home_network_key: PrivateKey) -> Supi:
    """UDM side: recover the SUPI."""
    try:
        msin = home_network_key.decrypt(
            suci.concealed_msin,
            associated_data=str(suci.plmn).encode()).decode()
    except (CryptoError, UnicodeDecodeError) as exc:
        raise SuciError(f"SUCI deconcealment failed: {exc}") from exc
    return Supi(plmn=suci.plmn, msin=msin)


@dataclass(frozen=True)
class Guti5G:
    """5G-GUTI assigned after registration."""

    plmn: Plmn
    amf_region: int
    amf_set: int
    tmsi: int

    def __str__(self) -> str:
        return (f"5g-guti-{self.plmn}-{self.amf_region:02x}"
                f"{self.amf_set:03x}-{self.tmsi:08x}")


def make_supi(msin_index: int, plmn: Plmn = TEST_PLMN) -> Supi:
    """A test SUPI from a small integer index."""
    return Supi(plmn, f"{msin_index:09d}")
