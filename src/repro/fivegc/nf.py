"""5G core network functions: UDM, AUSF, SMF/UPF, AMF.

The baseline 5G registration costs the visited network **two** round
trips to the home side (authenticate via AUSF→UDM, then the RES*
confirmation at the AUSF) before the local SMC and PDU-session steps —
one more than 4G's AIR leg plus home-control semantics.  The CellBricks
variant (:mod:`repro.core.btelco5g`) replaces all of it with one SAP
round trip to the broker, so its relative win *grows* under 5G.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.crypto import PrivateKey
from repro.lte.agw import smc_mac
from repro.lte.bearer import SgwPgw
from repro.lte.enodeb import S1DownlinkNas, S1UplinkNas
from repro.lte.identifiers import Plmn, TEST_PLMN
from repro.lte.nas import NasMessage, message_size
from repro.lte.security import SecurityContext
from repro.lte.signaling import SignalingNode
from repro.net import Host

from . import nas5g
from .aka5g import derive_kamf, derive_kseaf, generate_5g_vector, hres_star
from .identifiers5g import Guti5G, Suci, SuciError, Supi, deconceal

# Processing-cost calibration (seconds).  The 5G control plane does more
# per message than the 4G one (SBI serialization, token checks); totals
# are chosen so the local registration latency lands in the mid-30s ms,
# consistent with published open-source 5GC measurements.
UDM_AUTH_PROCESSING = 0.0022
AUSF_PROCESSING = 0.0016
AUSF_CONFIRM_PROCESSING = 0.0012
SMF_PROCESSING = 0.0028
AMF_COSTS = {
    "registration_request": 0.0036,
    "auth_response": 0.0034,
    "ausf_response": 0.0026,
    "ausf_confirm": 0.0024,
    "smc_complete": 0.0024,
    "smf_response": 0.0020,
    "pdu_request": 0.0022,
    "registration_complete": 0.0015,
}


@dataclass
class Subscriber5G:
    supi: str
    k: bytes
    sqn: int = 0
    barred: bool = False


class Udm(SignalingNode):
    """Unified Data Management (+ARPF): subscriber store, SUCI
    deconcealment, 5G vector generation."""

    processing_costs = {nas5g.UdmAuthDataRequest: UDM_AUTH_PROCESSING}

    def __init__(self, host: Host, home_network_key: PrivateKey,
                 name: str = "udm"):
        super().__init__(host, name)
        self.home_network_key = home_network_key
        self.subscribers: dict[str, Subscriber5G] = {}
        self.on(nas5g.UdmAuthDataRequest, self._handle_auth_data)

    def provision(self, supi: Supi, k: bytes) -> Subscriber5G:
        record = Subscriber5G(supi=str(supi), k=k)
        self.subscribers[str(supi)] = record
        return record

    def _handle_auth_data(self, src_ip: str,
                          request: nas5g.UdmAuthDataRequest) -> None:
        try:
            supi = deconceal(request.suci, self.home_network_key)
        except SuciError as exc:
            self.send(src_ip, nas5g.UdmAuthDataResponse(
                correlation=request.correlation, success=False,
                cause=str(exc)), size=96)
            return
        record = self.subscribers.get(str(supi))
        if record is None or record.barred:
            self.send(src_ip, nas5g.UdmAuthDataResponse(
                correlation=request.correlation, success=False,
                cause="unknown or barred SUPI"), size=96)
            return
        record.sqn += 1
        vector = generate_5g_vector(record.k, record.sqn,
                                    request.serving_network)
        self.send(src_ip, nas5g.UdmAuthDataResponse(
            correlation=request.correlation, success=True,
            supi=str(supi), vector=vector), size=360)


class Ausf(SignalingNode):
    """Authentication Server Function: the home network's gatekeeper."""

    processing_costs = {
        nas5g.AusfAuthenticateRequest: AUSF_PROCESSING,
        nas5g.UdmAuthDataResponse: AUSF_PROCESSING,
        nas5g.AusfConfirmRequest: AUSF_CONFIRM_PROCESSING,
    }

    def __init__(self, host: Host, udm_ip: str, name: str = "ausf"):
        super().__init__(host, name)
        self.udm_ip = udm_ip
        self._pending: dict[int, dict] = {}
        self.on(nas5g.AusfAuthenticateRequest, self._handle_authenticate)
        self.on(nas5g.UdmAuthDataResponse, self._handle_udm_response)
        self.on(nas5g.AusfConfirmRequest, self._handle_confirm)

    def _handle_authenticate(self, src_ip: str,
                             request: nas5g.AusfAuthenticateRequest) -> None:
        self._pending[request.correlation] = {
            "amf_ip": src_ip,
            "serving_network": request.serving_network,
        }
        self.send(self.udm_ip, nas5g.UdmAuthDataRequest(
            suci=request.suci, serving_network=request.serving_network,
            correlation=request.correlation), size=460)

    def _handle_udm_response(self, src_ip: str,
                             response: nas5g.UdmAuthDataResponse) -> None:
        state = self._pending.get(response.correlation)
        if state is None:
            return
        if not response.success:
            self.send(state["amf_ip"], nas5g.AusfAuthenticateResponse(
                correlation=response.correlation, success=False,
                cause=response.cause), size=96)
            del self._pending[response.correlation]
            return
        vector = response.vector
        state["vector"] = vector
        state["supi"] = response.supi
        self.send(state["amf_ip"], nas5g.AusfAuthenticateResponse(
            correlation=response.correlation, success=True,
            rand=vector.rand, autn=vector.autn,
            hxres_star=hres_star(vector.xres_star, vector.rand)), size=200)

    def _handle_confirm(self, src_ip: str,
                        request: nas5g.AusfConfirmRequest) -> None:
        state = self._pending.pop(request.correlation, None)
        if state is None or "vector" not in state:
            self.send(src_ip, nas5g.AusfConfirmResponse(
                correlation=request.correlation, success=False,
                cause="unknown authentication context"), size=96)
            return
        vector = state["vector"]
        if request.res_star != vector.xres_star:
            self.send(src_ip, nas5g.AusfConfirmResponse(
                correlation=request.correlation, success=False,
                cause="RES* mismatch"), size=96)
            return
        kseaf = derive_kseaf(vector.kausf, state["serving_network"])
        self.send(src_ip, nas5g.AusfConfirmResponse(
            correlation=request.correlation, success=True,
            supi=state["supi"], kseaf=kseaf), size=160)


class Smf(SignalingNode):
    """Session Management Function with an integrated UPF address pool."""

    processing_costs = {nas5g.SmfCreateSessionRequest: SMF_PROCESSING}

    def __init__(self, host: Host, name: str = "smf",
                 ue_pool_prefix: str = "10.128.0"):
        super().__init__(host, name)
        self.upf = SgwPgw(pool_prefix=ue_pool_prefix)
        self.on(nas5g.SmfCreateSessionRequest, self._handle_create)

    def _handle_create(self, src_ip: str,
                       request: nas5g.SmfCreateSessionRequest) -> None:
        bearer = self.upf.create_default_bearer(
            subscriber_id=request.subscriber, qci=9,
            ambr_dl_bps=100e6, ambr_ul_bps=50e6, apn=request.dnn)
        self.send(src_ip, nas5g.SmfCreateSessionResponse(
            correlation=request.correlation, success=True,
            session_id=request.session_id, ue_ip=bearer.ue_ip,
            qfi=bearer.qci, ambr_dl_bps=bearer.ambr_dl_bps,
            ambr_ul_bps=bearer.ambr_ul_bps), size=220)


@dataclass
class UeContext5G:
    """Per-UE AMF registration state."""

    ran_ue_id: int
    ran_ip: str
    state: str = "INITIAL"
    suci: object = None
    supi: Optional[str] = None
    correlation: int = 0
    rand: bytes = b""
    hxres_star: bytes = b""
    kseaf: bytes = b""
    res_star: bytes = b""
    pdu_session_id: int = 0
    security: Optional[SecurityContext] = None
    guti: Optional[Guti5G] = None
    ue_ip: Optional[str] = None
    registration_started_at: float = 0.0
    broker_id: str = ""         # CellBricks: which broker authorized us
    sap_session: object = None  # CellBricks: the authorized session


class Amf(SignalingNode):
    """Access and Mobility Function (+SEAF): the visited-network anchor.

    Registration: SUCI in, AUSF/UDM round trip, challenge, HRES* local
    check, AUSF confirmation round trip, SMC, accept.  Then PDU session
    establishment against the (local) SMF.
    """

    def __init__(self, host: Host, ausf_ip: str, smf_ip: str,
                 name: str = "amf", plmn: Plmn = TEST_PLMN):
        super().__init__(host, name)
        self.ausf_ip = ausf_ip
        self.smf_ip = smf_ip
        self.plmn = plmn
        self.serving_network = f"5G:{plmn}"
        self.contexts: dict[int, UeContext5G] = {}
        self._by_correlation: dict[int, int] = {}
        self._correlations = itertools.count(1)
        self._tmsi = itertools.count(0x5000)
        self.registrations_completed = 0
        self.registrations_rejected = 0
        self.costs = dict(AMF_COSTS)
        self.on_registered: Optional[Callable[[UeContext5G], None]] = None
        self.on_session: Optional[Callable[[UeContext5G], None]] = None

        self.on(S1UplinkNas, self._handle_uplink)
        self.on(nas5g.AusfAuthenticateResponse, self._handle_ausf_response)
        self.on(nas5g.AusfConfirmResponse, self._handle_ausf_confirm)
        self.on(nas5g.SmfCreateSessionResponse, self._handle_smf_response)

    # -- cost model -----------------------------------------------------------
    def processing_cost(self, message: object) -> float:
        if isinstance(message, S1UplinkNas):
            nas = message.nas
            if isinstance(nas, nas5g.RegistrationRequest):
                return self.costs["registration_request"]
            if isinstance(nas, nas5g.AuthenticationResponse5G):
                return self.costs["auth_response"]
            if isinstance(nas, nas5g.SecurityModeComplete5G):
                return self.costs["smc_complete"]
            if isinstance(nas, nas5g.PduSessionEstablishmentRequest):
                return self.costs["pdu_request"]
            if isinstance(nas, nas5g.RegistrationComplete):
                return self.costs["registration_complete"]
            return self.nas_processing_cost(nas)
        if isinstance(message, nas5g.AusfAuthenticateResponse):
            return self.costs["ausf_response"]
        if isinstance(message, nas5g.AusfConfirmResponse):
            return self.costs["ausf_confirm"]
        if isinstance(message, nas5g.SmfCreateSessionResponse):
            return self.costs["smf_response"]
        return self.default_processing_cost

    def nas_processing_cost(self, nas: NasMessage) -> float:
        return self.default_processing_cost

    # -- RAN plumbing ------------------------------------------------------------
    def downlink(self, context: UeContext5G, nas: NasMessage) -> None:
        self.send(context.ran_ip,
                  S1DownlinkNas(enb_ue_id=context.ran_ue_id, nas=nas),
                  size=message_size(nas) + 24)

    def reject(self, context: UeContext5G, cause: str) -> None:
        self.registrations_rejected += 1
        context.state = "REJECTED"
        self.downlink(context, nas5g.RegistrationReject(cause=cause))

    def _handle_uplink(self, ran_ip: str, wrapped: S1UplinkNas) -> None:
        context = self.contexts.get(wrapped.enb_ue_id)
        if context is None:
            context = UeContext5G(ran_ue_id=wrapped.enb_ue_id,
                                  ran_ip=ran_ip,
                                  registration_started_at=self.sim.now)
            self.contexts[wrapped.enb_ue_id] = context
        nas = wrapped.nas
        if isinstance(nas, nas5g.RegistrationRequest):
            self._on_registration_request(context, nas)
        elif isinstance(nas, nas5g.AuthenticationResponse5G):
            self._on_auth_response(context, nas)
        elif isinstance(nas, nas5g.SecurityModeComplete5G):
            self._on_smc_complete(context, nas)
        elif isinstance(nas, nas5g.RegistrationComplete):
            self._on_registration_complete(context)
        elif isinstance(nas, nas5g.PduSessionEstablishmentRequest):
            self._on_pdu_request(context, nas)
        else:
            self.handle_extension_nas(context, nas)

    def handle_extension_nas(self, context: UeContext5G,
                             nas: NasMessage) -> None:
        """Hook for SAP-over-5G (see repro.core.btelco5g)."""

    # -- registration state machine --------------------------------------------------
    def _on_registration_request(self, context: UeContext5G,
                                 request: nas5g.RegistrationRequest) -> None:
        context.suci = request.suci
        context.state = "WAIT_AUSF"
        context.correlation = next(self._correlations)
        context.registration_started_at = self.sim.now
        self._by_correlation[context.correlation] = context.ran_ue_id
        self.send(self.ausf_ip, nas5g.AusfAuthenticateRequest(
            suci=request.suci, serving_network=self.serving_network,
            correlation=context.correlation), size=500)

    def _context_for(self, correlation: int) -> Optional[UeContext5G]:
        ue_id = self._by_correlation.get(correlation)
        return self.contexts.get(ue_id) if ue_id is not None else None

    def _handle_ausf_response(self, src_ip: str,
                              response: nas5g.AusfAuthenticateResponse
                              ) -> None:
        context = self._context_for(response.correlation)
        if context is None or context.state != "WAIT_AUSF":
            return
        if not response.success:
            self.reject(context, f"authentication failed: {response.cause}")
            return
        context.hxres_star = response.hxres_star
        context.state = "WAIT_AUTH_RESPONSE"
        self.downlink(context, nas5g.AuthenticationRequest5G(
            rand=response.rand, autn=response.autn))
        context.rand = response.rand

    def _on_auth_response(self, context: UeContext5G,
                          response: nas5g.AuthenticationResponse5G) -> None:
        if context.state != "WAIT_AUTH_RESPONSE":
            return
        # SEAF-local check: HRES* must match before bothering the home NW.
        if hres_star(response.res_star, context.rand) != context.hxres_star:
            self.reject(context, "HRES* mismatch")
            return
        context.res_star = response.res_star
        context.state = "WAIT_AUSF_CONFIRM"
        self.send(self.ausf_ip, nas5g.AusfConfirmRequest(
            correlation=context.correlation,
            res_star=response.res_star), size=120)

    def _handle_ausf_confirm(self, src_ip: str,
                             response: nas5g.AusfConfirmResponse) -> None:
        context = self._context_for(response.correlation)
        if context is None or context.state != "WAIT_AUSF_CONFIRM":
            return
        if not response.success:
            self.reject(context, f"home network refused: {response.cause}")
            return
        context.supi = response.supi
        kamf = derive_kamf(response.kseaf, response.supi)
        context.security = SecurityContext(kasme=kamf)
        context.state = "WAIT_SMC_COMPLETE"
        security = context.security
        self.downlink(context, nas5g.SecurityModeCommand5G(
            enc_alg=security.enc_alg, int_alg=security.int_alg,
            mac=smc_mac(security.k_nas_int, security.enc_alg,
                        security.int_alg)))

    def _on_smc_complete(self, context: UeContext5G,
                         complete: nas5g.SecurityModeComplete5G) -> None:
        if context.state != "WAIT_SMC_COMPLETE":
            return
        if complete.mac != smc_mac(context.security.k_nas_int, 0xFF, 0xFF):
            self.reject(context, "SMC integrity failure")
            return
        context.guti = Guti5G(self.plmn, amf_region=1, amf_set=1,
                              tmsi=next(self._tmsi))
        context.state = "WAIT_REGISTRATION_COMPLETE"
        self.downlink(context, nas5g.RegistrationAccept(guti=context.guti))

    def _on_registration_complete(self, context: UeContext5G) -> None:
        if context.state != "WAIT_REGISTRATION_COMPLETE":
            return
        context.state = "REGISTERED"
        self.registrations_completed += 1
        if self.on_registered is not None:
            self.on_registered(context)

    # -- PDU session -------------------------------------------------------------------
    def _on_pdu_request(self, context: UeContext5G,
                        request: nas5g.PduSessionEstablishmentRequest
                        ) -> None:
        if context.state != "REGISTERED":
            self.downlink(context, nas5g.PduSessionEstablishmentReject(
                session_id=request.session_id, cause="not registered"))
            return
        context.state = "WAIT_SMF"
        context.pdu_session_id = request.session_id
        self.send(self.smf_ip, nas5g.SmfCreateSessionRequest(
            subscriber=context.supi or "anonymous", dnn=request.dnn,
            session_id=request.session_id,
            correlation=context.correlation), size=260)

    def _handle_smf_response(self, src_ip: str,
                             response: nas5g.SmfCreateSessionResponse
                             ) -> None:
        context = self._context_for(response.correlation)
        if context is None or context.state != "WAIT_SMF":
            return
        context.state = "REGISTERED"
        context.ue_ip = response.ue_ip
        self.downlink(context, nas5g.PduSessionEstablishmentAccept(
            session_id=response.session_id, ue_ip=response.ue_ip,
            qfi=response.qfi, ambr_dl_bps=response.ambr_dl_bps,
            ambr_ul_bps=response.ambr_ul_bps))
        if self.on_session is not None:
            self.on_session(context)
