"""5G core network functions: UDM, AUSF, SMF/UPF, AMF.

The baseline 5G registration costs the visited network **two** round
trips to the home side (authenticate via AUSF→UDM, then the RES*
confirmation at the AUSF) before the local SMC and PDU-session steps —
one more than 4G's AIR leg plus home-control semantics.  The CellBricks
variant (:mod:`repro.core.btelco5g`) replaces all of it with one SAP
round trip to the broker, so its relative win *grows* under 5G.

Reliability follows the LTE split: SBI legs whose server answers inside
its handler (AUSF→UDM, AMF→AUSF confirmation, AMF→SMF) ride
:meth:`~repro.lte.signaling.SignalingNode.send_request` and self-heal
under loss, while the AMF→AUSF *authenticate* leg — whose answer waits
on the UDM round trip and so cannot be reply-captured — stays a plain
datagram re-driven by the UE's NAS retransmission of the initial
request.  The AMF also supervises its RegistrationAccept (the one
downlink whose loss the UE cannot detect mid-registration) and holds a
registration deadline so stragglers never pin contexts forever.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.crypto import PrivateKey
from repro.lte.agw import smc_mac
from repro.lte.bearer import SgwPgw
from repro.lte.enodeb import S1DownlinkNas, S1UeContextRelease, S1UplinkNas
from repro.lte.identifiers import Plmn, TEST_PLMN
from repro.lte.nas import NasMessage, message_size
from repro.lte.security import SecurityContext
from repro.lte.signaling import CounterAttr, SignalingNode
from repro.net import Host

from . import nas5g
from .aka5g import derive_kamf, derive_kseaf, generate_5g_vector, hres_star
from .identifiers5g import Guti5G, Suci, SuciError, Supi, deconceal

# Processing-cost calibration (seconds).  The 5G control plane does more
# per message than the 4G one (SBI serialization, token checks); totals
# are chosen so the local registration latency lands in the mid-30s ms,
# consistent with published open-source 5GC measurements.
UDM_AUTH_PROCESSING = 0.0022
AUSF_PROCESSING = 0.0016
AUSF_CONFIRM_PROCESSING = 0.0012
SMF_PROCESSING = 0.0028
SMF_RELEASE_PROCESSING = 0.0009
AMF_COSTS = {
    "registration_request": 0.0036,
    "auth_response": 0.0034,
    "ausf_response": 0.0026,
    "ausf_confirm": 0.0024,
    "smc_complete": 0.0024,
    "smf_response": 0.0020,
    "pdu_request": 0.0022,
    "registration_complete": 0.0015,
    "deregistration": 0.0012,
}


@dataclass
class Subscriber5G:
    supi: str
    k: bytes
    sqn: int = 0
    barred: bool = False


class Udm(SignalingNode):
    """Unified Data Management (+ARPF): subscriber store, SUCI
    deconcealment, 5G vector generation."""

    processing_costs = {nas5g.UdmAuthDataRequest: UDM_AUTH_PROCESSING}
    obs_category = "cloud"

    def span_name(self, message: object) -> str:
        if isinstance(message, nas5g.UdmAuthDataRequest):
            return "sbi.udm_auth_data"
        return super().span_name(message)

    def __init__(self, host: Host, home_network_key: PrivateKey,
                 name: str = "udm"):
        super().__init__(host, name)
        self.home_network_key = home_network_key
        self.subscribers: dict[str, Subscriber5G] = {}
        self.on(nas5g.UdmAuthDataRequest, self._handle_auth_data)

    def provision(self, supi: Supi, k: bytes) -> Subscriber5G:
        record = Subscriber5G(supi=str(supi), k=k)
        self.subscribers[str(supi)] = record
        return record

    def _handle_auth_data(self, src_ip: str,
                          request: nas5g.UdmAuthDataRequest) -> None:
        try:
            supi = deconceal(request.suci, self.home_network_key)
        except SuciError as exc:
            self.send(src_ip, nas5g.UdmAuthDataResponse(
                correlation=request.correlation, success=False,
                cause=str(exc)), size=96)
            return
        record = self.subscribers.get(str(supi))
        if record is None or record.barred:
            self.send(src_ip, nas5g.UdmAuthDataResponse(
                correlation=request.correlation, success=False,
                cause="unknown or barred SUPI"), size=96)
            return
        record.sqn += 1
        vector = generate_5g_vector(record.k, record.sqn,
                                    request.serving_network)
        self.send(src_ip, nas5g.UdmAuthDataResponse(
            correlation=request.correlation, success=True,
            supi=str(supi), vector=vector), size=360)


class Ausf(SignalingNode):
    """Authentication Server Function: the home network's gatekeeper.

    The UDM leg rides ``send_request`` (the UDM answers in-handler, so
    its dedup cache both retransmits and absorbs duplicates — the SQN
    never double-increments for one authentication).  Pending entries
    carry a deadline so an abandoned registration cannot pin its vector
    here forever.
    """

    processing_costs = {
        nas5g.AusfAuthenticateRequest: AUSF_PROCESSING,
        nas5g.UdmAuthDataResponse: AUSF_PROCESSING,
        nas5g.AusfConfirmRequest: AUSF_CONFIRM_PROCESSING,
    }
    obs_category = "cloud"
    #: how long a pending authentication may sit without its RES*
    #: confirmation before it is garbage-collected.
    pending_ttl = 30.0
    _SPAN_NAMES = {
        nas5g.AusfAuthenticateRequest: "sbi.ausf_authenticate",
        nas5g.UdmAuthDataResponse: "sbi.ausf_udm_resp",
        nas5g.AusfConfirmRequest: "sbi.ausf_confirm",
    }
    pending_expired = CounterAttr("ausf.pending_expired")

    def span_name(self, message: object) -> str:
        name = self._SPAN_NAMES.get(type(message))
        return name if name is not None else super().span_name(message)

    def __init__(self, host: Host, udm_ip: str, name: str = "ausf"):
        super().__init__(host, name)
        self.udm_ip = udm_ip
        self._pending: dict[int, dict] = {}
        self.pending_expired = 0
        self.on(nas5g.AusfAuthenticateRequest, self._handle_authenticate)
        self.on(nas5g.UdmAuthDataResponse, self._handle_udm_response)
        self.on(nas5g.AusfConfirmRequest, self._handle_confirm)

    def _handle_authenticate(self, src_ip: str,
                             request: nas5g.AusfAuthenticateRequest) -> None:
        self._pending[request.correlation] = {
            "amf_ip": src_ip,
            "serving_network": request.serving_network,
            "deadline": self.sim.now + self.pending_ttl,
        }
        self.sim.schedule(self.pending_ttl, self._expire_pending,
                          request.correlation)
        self.send_request(
            self.udm_ip, nas5g.UdmAuthDataRequest(
                suci=request.suci, serving_network=request.serving_network,
                correlation=request.correlation), size=460,
            on_give_up=lambda _m, c=request.correlation:
                self._udm_gave_up(c))

    def _udm_gave_up(self, correlation: int) -> None:
        state = self._pending.pop(correlation, None)
        if state is None or "vector" in state:
            return
        self.send(state["amf_ip"], nas5g.AusfAuthenticateResponse(
            correlation=correlation, success=False,
            cause="UDM unreachable"), size=96)

    def _expire_pending(self, correlation: int) -> None:
        state = self._pending.get(correlation)
        if state is None:
            return
        if self.sim.now >= state["deadline"]:
            del self._pending[correlation]
            self.pending_expired += 1
        else:
            # The entry was refreshed by a re-driven authentication;
            # re-check at its new deadline.
            self.sim.schedule(state["deadline"] - self.sim.now,
                              self._expire_pending, correlation)

    def _handle_udm_response(self, src_ip: str,
                             response: nas5g.UdmAuthDataResponse) -> None:
        state = self._pending.get(response.correlation)
        if state is None:
            return
        if not response.success:
            self.send(state["amf_ip"], nas5g.AusfAuthenticateResponse(
                correlation=response.correlation, success=False,
                cause=response.cause), size=96)
            del self._pending[response.correlation]
            return
        vector = response.vector
        state["vector"] = vector
        state["supi"] = response.supi
        self.send(state["amf_ip"], nas5g.AusfAuthenticateResponse(
            correlation=response.correlation, success=True,
            rand=vector.rand, autn=vector.autn,
            hxres_star=hres_star(vector.xres_star, vector.rand)), size=200)

    def _handle_confirm(self, src_ip: str,
                        request: nas5g.AusfConfirmRequest) -> None:
        state = self._pending.pop(request.correlation, None)
        if state is None or "vector" not in state:
            self.send(src_ip, nas5g.AusfConfirmResponse(
                correlation=request.correlation, success=False,
                cause="unknown authentication context"), size=96)
            return
        vector = state["vector"]
        if request.res_star != vector.xres_star:
            self.send(src_ip, nas5g.AusfConfirmResponse(
                correlation=request.correlation, success=False,
                cause="RES* mismatch"), size=96)
            return
        kseaf = derive_kseaf(vector.kausf, state["serving_network"])
        self.send(src_ip, nas5g.AusfConfirmResponse(
            correlation=request.correlation, success=True,
            supi=state["supi"], kseaf=kseaf), size=160)


class Smf(SignalingNode):
    """Session Management Function with an integrated UPF address pool."""

    processing_costs = {
        nas5g.SmfCreateSessionRequest: SMF_PROCESSING,
        nas5g.SmfReleaseSessionRequest: SMF_RELEASE_PROCESSING,
    }
    sessions_created = CounterAttr("smf.sessions_created")
    sessions_released = CounterAttr("smf.sessions_released")
    release_misses = CounterAttr("smf.release_misses")

    def span_name(self, message: object) -> str:
        if isinstance(message, nas5g.SmfCreateSessionRequest):
            return "sbi.smf_create"
        if isinstance(message, nas5g.SmfReleaseSessionRequest):
            return "sbi.smf_release"
        return super().span_name(message)

    def __init__(self, host: Host, name: str = "smf",
                 ue_pool_prefix: str = "10.128.0"):
        super().__init__(host, name)
        self.upf = SgwPgw(pool_prefix=ue_pool_prefix)
        self.sessions_created = 0
        self.sessions_released = 0
        self.release_misses = 0
        self.on(nas5g.SmfCreateSessionRequest, self._handle_create)
        self.on(nas5g.SmfReleaseSessionRequest, self._handle_release)

    def _handle_create(self, src_ip: str,
                       request: nas5g.SmfCreateSessionRequest) -> None:
        bearer = self.upf.create_default_bearer(
            subscriber_id=request.subscriber, qci=9,
            ambr_dl_bps=100e6, ambr_ul_bps=50e6, apn=request.dnn)
        self.sessions_created += 1
        self.send(src_ip, nas5g.SmfCreateSessionResponse(
            correlation=request.correlation, success=True,
            session_id=request.session_id, ue_ip=bearer.ue_ip,
            qfi=bearer.qci, ambr_dl_bps=bearer.ambr_dl_bps,
            ambr_ul_bps=bearer.ambr_ul_bps), size=220)

    def _handle_release(self, src_ip: str,
                        request: nas5g.SmfReleaseSessionRequest) -> None:
        """Free a subscriber's bearer + pooled IP.  Idempotent: a
        retransmitted (or already-superseded) release is a counted miss,
        not an error, so the AMF's reliable retry loop always
        converges."""
        ebi = self.upf.by_subscriber.get(request.subscriber)
        if ebi is None:
            self.release_misses += 1
            released = False
        else:
            self.upf.delete_bearer(ebi)
            self.sessions_released += 1
            released = True
        self.send(src_ip, nas5g.SmfReleaseSessionResponse(
            correlation=request.correlation, released=released), size=48)

    def stats(self) -> dict:
        return {
            "sessions_created": self.sessions_created,
            "sessions_released": self.sessions_released,
            "release_misses": self.release_misses,
            "bearers_active": len(self.upf.bearers),
        }


@dataclass
class UeContext5G:
    """Per-UE AMF registration state."""

    ran_ue_id: int
    ran_ip: str
    state: str = "INITIAL"
    suci: object = None
    supi: Optional[str] = None
    correlation: int = 0
    rand: bytes = b""
    autn: bytes = b""
    hxres_star: bytes = b""
    kseaf: bytes = b""
    res_star: bytes = b""
    pdu_session_id: int = 0
    security: Optional[SecurityContext] = None
    guti: Optional[Guti5G] = None
    ue_ip: Optional[str] = None
    registration_started_at: float = 0.0
    broker_id: str = ""         # CellBricks: which broker authorized us
    sap_session: object = None  # CellBricks: the authorized session
    # -- retransmission / reliability bookkeeping --
    sap_request_key: Optional[bytes] = None  # dedup key for SAP attaches
    sap_challenge: object = None      # cached challenge for leg replay
    broker_token: Optional[int] = None     # outstanding broker reply token
    broker_corr_id: int = 0                # reliable broker correlation id
    sbi_corr_id: int = 0              # outstanding AUSF-confirm/SMF corr id
    accept_retx: int = 0              # RegistrationAccept retransmissions


class Amf(SignalingNode):
    """Access and Mobility Function (+SEAF): the visited-network anchor.

    Registration: SUCI in, AUSF/UDM round trip, challenge, HRES* local
    check, AUSF confirmation round trip, SMC, accept.  Then PDU session
    establishment against the (local) SMF.

    Both correlation maps are cleaned on *every* terminal transition
    (complete, reject, abandon, deregister), so churny or lossy loads
    cannot grow ``contexts``/``_by_correlation`` without bound.
    """

    # RegistrationAccept retransmission supervision: the accept is the
    # one downlink whose loss the UE cannot detect by itself (it stops
    # resending SMC complete the moment the accept leaves our queue).
    accept_retx_timeout = 0.4
    accept_retx_backoff = 2.0
    accept_max_retx = 3
    #: hard ceiling on how long a context may sit mid-registration; a
    #: straggler uplink that recreates state after the UE gave up is
    #: garbage-collected once this deadline passes.
    registration_ttl = 30.0
    obs_category = "agw"
    _NAS_SPAN_NAMES = {
        nas5g.RegistrationRequest: "nas.amf_reg_req",
        nas5g.AuthenticationResponse5G: "nas.amf_auth_resp",
        nas5g.SecurityModeComplete5G: "nas.amf_smc_complete",
        nas5g.RegistrationComplete: "nas.amf_reg_complete",
        nas5g.DeregistrationRequest5G: "nas.amf_dereg",
        nas5g.PduSessionEstablishmentRequest: "nas.amf_pdu_req",
    }
    registrations_completed = CounterAttr("amf.registrations_completed")
    registrations_rejected = CounterAttr("amf.registrations_rejected")
    accept_retransmissions = CounterAttr("amf.accept_retransmissions")
    accept_give_ups = CounterAttr("amf.accept_give_ups")
    registrations_expired = CounterAttr("amf.registrations_expired")
    orphan_uplinks = CounterAttr("amf.orphan_uplinks")
    deregistrations = CounterAttr("amf.deregistrations")
    smf_releases_sent = CounterAttr("amf.smf_releases_sent")
    smf_release_give_ups = CounterAttr("amf.smf_release_give_ups")

    def span_name(self, message: object) -> str:
        if isinstance(message, S1UplinkNas):
            name = self._NAS_SPAN_NAMES.get(type(message.nas))
            return name if name is not None else \
                self.nas_span_name(message.nas)
        if isinstance(message, nas5g.AusfAuthenticateResponse):
            return "sbi.amf_ausf_auth"
        if isinstance(message, nas5g.AusfConfirmResponse):
            return "sbi.amf_ausf_confirm"
        if isinstance(message, nas5g.SmfCreateSessionResponse):
            return "sbi.amf_smf"
        return super().span_name(message)

    def nas_span_name(self, nas: NasMessage) -> str:
        """Span-name hook for NAS types added by subclasses."""
        return f"nas.amf_{type(nas).__name__}"

    def __init__(self, host: Host, ausf_ip: str, smf_ip: str,
                 name: str = "amf", plmn: Plmn = TEST_PLMN):
        super().__init__(host, name)
        self.ausf_ip = ausf_ip
        self.smf_ip = smf_ip
        self.plmn = plmn
        self.serving_network = f"5G:{plmn}"
        self.contexts: dict[int, UeContext5G] = {}
        self._by_correlation: dict[int, int] = {}
        self._correlations = itertools.count(1)
        self._tmsi = itertools.count(0x5000)
        self.registrations_completed = 0
        self.registrations_rejected = 0
        self.accept_retransmissions = 0
        self.accept_give_ups = 0
        self.registrations_expired = 0
        self.orphan_uplinks = 0
        self.deregistrations = 0
        self.smf_releases_sent = 0
        self.smf_release_give_ups = 0
        #: DenialCause-style breakdown of terminal rejections/abandons.
        self.rejection_causes = self.metrics.counter_vec(
            "amf.rejections", "cause")
        self.costs = dict(AMF_COSTS)
        self.on_registered: Optional[Callable[[UeContext5G], None]] = None
        self.on_session: Optional[Callable[[UeContext5G], None]] = None

        self.on(S1UplinkNas, self._handle_uplink)
        self.on(nas5g.AusfAuthenticateResponse, self._handle_ausf_response)
        self.on(nas5g.AusfConfirmResponse, self._handle_ausf_confirm)
        self.on(nas5g.SmfCreateSessionResponse, self._handle_smf_response)
        self.on(nas5g.SmfReleaseSessionResponse,
                self._handle_smf_release_response)

    # -- cost model -----------------------------------------------------------
    def processing_cost(self, message: object) -> float:
        if isinstance(message, S1UplinkNas):
            nas = message.nas
            if isinstance(nas, nas5g.RegistrationRequest):
                return self.costs["registration_request"]
            if isinstance(nas, nas5g.AuthenticationResponse5G):
                return self.costs["auth_response"]
            if isinstance(nas, nas5g.SecurityModeComplete5G):
                return self.costs["smc_complete"]
            if isinstance(nas, nas5g.PduSessionEstablishmentRequest):
                return self.costs["pdu_request"]
            if isinstance(nas, nas5g.RegistrationComplete):
                return self.costs["registration_complete"]
            if isinstance(nas, nas5g.DeregistrationRequest5G):
                return self.costs["deregistration"]
            return self.nas_processing_cost(nas)
        if isinstance(message, nas5g.AusfAuthenticateResponse):
            return self.costs["ausf_response"]
        if isinstance(message, nas5g.AusfConfirmResponse):
            return self.costs["ausf_confirm"]
        if isinstance(message, nas5g.SmfCreateSessionResponse):
            return self.costs["smf_response"]
        return self.default_processing_cost

    def nas_processing_cost(self, nas: NasMessage) -> float:
        return self.default_processing_cost

    # -- correlation-map hygiene ----------------------------------------------
    def _assign_correlation(self, context: UeContext5G) -> int:
        """Mint a fresh correlation for the context's next SBI exchange,
        retiring any previous mapping so ``_by_correlation`` holds at
        most one entry per context."""
        if context.correlation:
            self._by_correlation.pop(context.correlation, None)
        context.correlation = next(self._correlations)
        self._by_correlation[context.correlation] = context.ran_ue_id
        return context.correlation

    def _release_correlation(self, context: UeContext5G) -> None:
        if context.correlation:
            self._by_correlation.pop(context.correlation, None)
            context.correlation = 0

    def _release_ue(self, context: UeContext5G) -> None:
        """Terminal cleanup shared by reject/abandon/deregister: both
        AMF maps, any outstanding reliable request, the SMF-held PDU
        session, and the RAN association all go."""
        if context.sbi_corr_id:
            self.cancel_request(context.sbi_corr_id)
            context.sbi_corr_id = 0
        self._release_correlation(context)
        if context.ue_ip is not None:
            self._release_pdu_session(context)
        self.contexts.pop(context.ran_ue_id, None)
        self.send(context.ran_ip,
                  S1UeContextRelease(enb_ue_id=context.ran_ue_id), size=32)
        self.context_released(context)

    def context_released(self, context: UeContext5G) -> None:
        """Hook: a context left ``self.contexts`` (subclasses drop their
        per-session state here)."""

    def _release_pdu_session(self, context: UeContext5G) -> None:
        """Tell the SMF to free the context's bearer + pooled IP.

        Rides ``send_request`` so a lost release retransmits instead of
        leaking the address until pool exhaustion; the context is
        already gone by then, so the closure carries everything the
        retry needs."""
        self.smf_releases_sent += 1
        context.ue_ip = None
        self.send_request(
            self.smf_ip, nas5g.SmfReleaseSessionRequest(
                subscriber=context.supi or "anonymous",
                session_id=context.pdu_session_id,
                correlation=next(self._correlations)), size=96,
            on_give_up=lambda _m: self._smf_release_gave_up())

    def _smf_release_gave_up(self) -> None:
        self.smf_release_give_ups += 1

    def _handle_smf_release_response(
            self, src_ip: str,
            response: nas5g.SmfReleaseSessionResponse) -> None:
        """The reliable layer already matched the reply; nothing else to
        clean up (the AMF dropped the context when it sent the release)."""

    # -- RAN plumbing ------------------------------------------------------------
    def downlink(self, context: UeContext5G, nas: NasMessage) -> None:
        self.send(context.ran_ip,
                  S1DownlinkNas(enb_ue_id=context.ran_ue_id, nas=nas),
                  size=message_size(nas) + 24)

    def reject(self, context: UeContext5G, cause: str,
               retryable: bool = False) -> None:
        self.registrations_rejected += 1
        self.rejection_causes[cause.split(":")[0]] += 1
        context.state = "REJECTED"
        self.downlink(context, nas5g.RegistrationReject(
            cause=cause, retryable=retryable))
        self._release_ue(context)

    def nas_initiates(self, nas: NasMessage) -> bool:
        """Whether this uplink NAS may create a fresh UE context.  Only
        registration-initiating messages qualify; stragglers from torn
        down UEs are dropped instead of resurrecting half-open state."""
        return isinstance(nas, nas5g.RegistrationRequest)

    def _handle_uplink(self, ran_ip: str, wrapped: S1UplinkNas) -> None:
        context = self.contexts.get(wrapped.enb_ue_id)
        nas = wrapped.nas
        if context is None:
            if not self.nas_initiates(nas):
                # The ack of a network-initiated deregistration lands
                # after we released the context — expected, not orphaned.
                if not isinstance(nas, nas5g.DeregistrationAccept5G):
                    self.orphan_uplinks += 1
                return
            context = UeContext5G(ran_ue_id=wrapped.enb_ue_id,
                                  ran_ip=ran_ip,
                                  registration_started_at=self.sim.now)
            self.contexts[wrapped.enb_ue_id] = context
        if isinstance(nas, nas5g.RegistrationRequest):
            self._on_registration_request(context, nas)
        elif isinstance(nas, nas5g.AuthenticationResponse5G):
            self._on_auth_response(context, nas)
        elif isinstance(nas, nas5g.SecurityModeComplete5G):
            self._on_smc_complete(context, nas)
        elif isinstance(nas, nas5g.RegistrationComplete):
            self._on_registration_complete(context)
        elif isinstance(nas, nas5g.DeregistrationRequest5G):
            self._on_deregistration(context, nas)
        elif isinstance(nas, nas5g.PduSessionEstablishmentRequest):
            self._on_pdu_request(context, nas)
        else:
            self.handle_extension_nas(context, nas)

    def handle_extension_nas(self, context: UeContext5G,
                             nas: NasMessage) -> None:
        """Hook for SAP-over-5G (see repro.core.btelco5g)."""

    # -- registration state machine --------------------------------------------------
    def _on_registration_request(self, context: UeContext5G,
                                 request: nas5g.RegistrationRequest) -> None:
        if context.suci == request.suci and context.state != "INITIAL":
            # NAS-level retransmission of the initial request (the SUCI
            # ciphertext is crafted once per attempt, so byte-equality
            # identifies the attempt).  Re-drive whichever leg stalled;
            # later states mean a straggler — absorb it.
            if context.state == "WAIT_AUSF":
                self._send_authenticate(context)
            elif context.state == "WAIT_AUTH_RESPONSE":
                self.downlink(context, nas5g.AuthenticationRequest5G(
                    rand=context.rand, autn=context.autn))
            return
        # Fresh attempt (first request on this context, or a new SUCI
        # after a prior attempt was abandoned): restart from scratch.
        if context.sbi_corr_id:
            self.cancel_request(context.sbi_corr_id)
            context.sbi_corr_id = 0
        context.suci = request.suci
        context.supi = None
        context.security = None
        context.rand = b""
        context.autn = b""
        context.res_star = b""
        context.state = "WAIT_AUSF"
        context.registration_started_at = self.sim.now
        self._watch_registration(context)
        self._send_authenticate(context)

    def _send_authenticate(self, context: UeContext5G) -> None:
        """(Re)issue the AUSF authenticate under a *fresh* correlation:
        the AUSF keys its pending vector by correlation, so retiring the
        old id on every re-drive guarantees challenge, RES* and
        confirmation all refer to one vector even when an earlier
        request's response is still in flight."""
        correlation = self._assign_correlation(context)
        self.send(self.ausf_ip, nas5g.AusfAuthenticateRequest(
            suci=context.suci, serving_network=self.serving_network,
            correlation=correlation), size=500)

    def _watch_registration(self, context: UeContext5G) -> None:
        self.sim.schedule(self.registration_ttl, self._registration_deadline,
                          context, context.registration_started_at)

    def _registration_deadline(self, context: UeContext5G,
                               started_at: float) -> None:
        if self.contexts.get(context.ran_ue_id) is not context \
                or context.registration_started_at != started_at:
            return  # superseded by a newer attempt or already released
        if context.state in ("REGISTERED", "WAIT_SMF"):
            return
        self.registrations_expired += 1
        self.rejection_causes["registration deadline"] += 1
        context.state = "ABANDONED"
        self._release_ue(context)

    def _context_for(self, correlation: int) -> Optional[UeContext5G]:
        ue_id = self._by_correlation.get(correlation)
        return self.contexts.get(ue_id) if ue_id is not None else None

    def _handle_ausf_response(self, src_ip: str,
                              response: nas5g.AusfAuthenticateResponse
                              ) -> None:
        context = self._context_for(response.correlation)
        if context is None or context.state != "WAIT_AUSF" \
                or context.correlation != response.correlation:
            return  # stale response from a retired correlation
        if not response.success:
            self.reject(context, f"authentication failed: {response.cause}")
            return
        context.hxres_star = response.hxres_star
        context.rand = response.rand
        context.autn = response.autn
        context.state = "WAIT_AUTH_RESPONSE"
        self.downlink(context, nas5g.AuthenticationRequest5G(
            rand=response.rand, autn=response.autn))

    def _on_auth_response(self, context: UeContext5G,
                          response: nas5g.AuthenticationResponse5G) -> None:
        if context.state == "WAIT_AUSF_CONFIRM" \
                and response.res_star == context.res_star:
            # Duplicate RES*: the reliable confirm exchange is already
            # re-driving the home network — nothing to do here.
            return
        if context.state == "WAIT_SMC_COMPLETE" \
                and response.res_star == context.res_star:
            # Duplicate RES*: our SMC was likely lost — replay it.
            self.send_smc5g(context)
            return
        if context.state != "WAIT_AUTH_RESPONSE":
            return
        # SEAF-local check: HRES* must match before bothering the home NW.
        if hres_star(response.res_star, context.rand) != context.hxres_star:
            self.reject(context, "HRES* mismatch")
            return
        context.res_star = response.res_star
        context.state = "WAIT_AUSF_CONFIRM"
        context.sbi_corr_id = self.send_request(
            self.ausf_ip, nas5g.AusfConfirmRequest(
                correlation=context.correlation,
                res_star=response.res_star), size=120,
            on_give_up=lambda _m, c=context: self._confirm_gave_up(c))

    def _confirm_gave_up(self, context: UeContext5G) -> None:
        context.sbi_corr_id = 0
        if self.contexts.get(context.ran_ue_id) is not context \
                or context.state != "WAIT_AUSF_CONFIRM":
            return
        self.reject(context, "home network unreachable: "
                             "RES* confirmation timed out")

    def _handle_ausf_confirm(self, src_ip: str,
                             response: nas5g.AusfConfirmResponse) -> None:
        context = self._context_for(response.correlation)
        if context is None or context.state != "WAIT_AUSF_CONFIRM":
            return
        context.sbi_corr_id = 0
        if not response.success:
            self.reject(context, f"home network refused: {response.cause}")
            return
        context.supi = response.supi
        kamf = derive_kamf(response.kseaf, response.supi)
        context.security = SecurityContext(kasme=kamf)
        context.state = "WAIT_SMC_COMPLETE"
        self.send_smc5g(context)

    def send_smc5g(self, context: UeContext5G) -> None:
        security = context.security
        self.downlink(context, nas5g.SecurityModeCommand5G(
            enc_alg=security.enc_alg, int_alg=security.int_alg,
            mac=smc_mac(security.k_nas_int, security.enc_alg,
                        security.int_alg)))

    def _on_smc_complete(self, context: UeContext5G,
                         complete: nas5g.SecurityModeComplete5G) -> None:
        if context.state == "WAIT_REGISTRATION_COMPLETE" \
                and context.security is not None:
            # Duplicate SMC complete: the UE never saw our accept —
            # re-send it after re-verifying the MAC.
            if complete.mac == smc_mac(context.security.k_nas_int,
                                       0xFF, 0xFF):
                self._send_registration_accept(context)
            return
        if context.state != "WAIT_SMC_COMPLETE":
            return
        if complete.mac != smc_mac(context.security.k_nas_int, 0xFF, 0xFF):
            self.reject(context, "SMC integrity failure")
            return
        self.after_security_established(context)

    def after_security_established(self, context: UeContext5G) -> None:
        """Mint the GUTI and send the supervised RegistrationAccept
        (subclasses hook here for lifecycle scheduling)."""
        context.guti = Guti5G(self.plmn, amf_region=1, amf_set=1,
                              tmsi=next(self._tmsi))
        context.state = "WAIT_REGISTRATION_COMPLETE"
        context.accept_retx = 0
        self._send_registration_accept(context)
        self.sim.schedule(self.accept_retx_timeout,
                          self._check_registration_accept, context,
                          self.accept_retx_timeout)

    def _send_registration_accept(self, context: UeContext5G) -> None:
        self.downlink(context, nas5g.RegistrationAccept(guti=context.guti))

    def _check_registration_accept(self, context: UeContext5G,
                                   timeout: float) -> None:
        """RegistrationAccept supervision: resend until the complete
        arrives, then give up and release everything the half-open
        registration holds."""
        if self.contexts.get(context.ran_ue_id) is not context \
                or context.state != "WAIT_REGISTRATION_COMPLETE":
            return  # completed, torn down, or superseded — nothing to do
        if context.accept_retx >= self.accept_max_retx:
            self.accept_give_ups += 1
            self.rejection_causes["accept unacknowledged"] += 1
            context.state = "ABANDONED"
            self._release_ue(context)
            return
        context.accept_retx += 1
        self.accept_retransmissions += 1
        self._send_registration_accept(context)
        next_timeout = timeout * self.accept_retx_backoff
        self.sim.schedule(next_timeout, self._check_registration_accept,
                          context, next_timeout)

    def _on_registration_complete(self, context: UeContext5G) -> None:
        if context.state != "WAIT_REGISTRATION_COMPLETE":
            return
        # Terminal transition: the SBI conversation is over, so the
        # correlation mapping goes (a fresh one is minted per PDU leg).
        self._release_correlation(context)
        context.state = "REGISTERED"
        self.registrations_completed += 1
        if self.on_registered is not None:
            self.on_registered(context)

    # -- deregistration ----------------------------------------------------------------
    def _on_deregistration(self, context: UeContext5G,
                           request: nas5g.DeregistrationRequest5G) -> None:
        self.deregistrations += 1
        context.state = "DEREGISTERED"
        if not request.switch_off:
            # Switch-off deregistrations expect no ack (TS 24.501).
            self.downlink(context, nas5g.DeregistrationAccept5G())
        self._release_ue(context)

    # -- PDU session -------------------------------------------------------------------
    def _on_pdu_request(self, context: UeContext5G,
                        request: nas5g.PduSessionEstablishmentRequest
                        ) -> None:
        if context.state == "WAIT_SMF":
            return  # duplicate: the reliable SMF exchange is in flight
        if context.state != "REGISTERED":
            self.downlink(context, nas5g.PduSessionEstablishmentReject(
                session_id=request.session_id, cause="not registered"))
            return
        context.state = "WAIT_SMF"
        context.pdu_session_id = request.session_id
        correlation = self._assign_correlation(context)
        context.sbi_corr_id = self.send_request(
            self.smf_ip, nas5g.SmfCreateSessionRequest(
                subscriber=context.supi or "anonymous", dnn=request.dnn,
                session_id=request.session_id,
                correlation=correlation), size=260,
            on_give_up=lambda _m, c=context: self._smf_gave_up(c))

    def _smf_gave_up(self, context: UeContext5G) -> None:
        context.sbi_corr_id = 0
        if self.contexts.get(context.ran_ue_id) is not context \
                or context.state != "WAIT_SMF":
            return
        self._release_correlation(context)
        context.state = "REGISTERED"
        self.downlink(context, nas5g.PduSessionEstablishmentReject(
            session_id=context.pdu_session_id, cause="SMF unreachable"))

    def _handle_smf_response(self, src_ip: str,
                             response: nas5g.SmfCreateSessionResponse
                             ) -> None:
        context = self._context_for(response.correlation)
        if context is None or context.state != "WAIT_SMF":
            return
        context.sbi_corr_id = 0
        self._release_correlation(context)
        context.state = "REGISTERED"
        context.ue_ip = response.ue_ip
        self.downlink(context, nas5g.PduSessionEstablishmentAccept(
            session_id=response.session_id, ue_ip=response.ue_ip,
            qfi=response.qfi, ambr_dl_bps=response.ambr_dl_bps,
            ambr_ul_bps=response.ambr_ul_bps))
        if self.on_session is not None:
            self.on_session(context)

    # -- introspection -----------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "registrations_completed": self.registrations_completed,
            "registrations_rejected": self.registrations_rejected,
            "accept_retransmissions": self.accept_retransmissions,
            "accept_give_ups": self.accept_give_ups,
            "registrations_expired": self.registrations_expired,
            "orphan_uplinks": self.orphan_uplinks,
            "deregistrations": self.deregistrations,
            "smf_releases_sent": self.smf_releases_sent,
            "smf_release_give_ups": self.smf_release_give_ups,
            "contexts": len(self.contexts),
            "by_correlation": len(self._by_correlation),
        }
