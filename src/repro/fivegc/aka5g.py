"""5G-AKA (TS 33.501): the key chain from K to KAMF.

Differences from EPS-AKA that matter here:

* the UDM/ARPF derives **KAUSF** and ``XRES*`` (RES is bound to the
  serving-network name), the AUSF verifies ``RES*`` and derives
  **KSEAF**, the AMF/SEAF derives **KAMF** — one more network hop and key
  level than 4G, which is visible in the registration-latency benchmark;
* home-network control: the AUSF (home side) confirms authentication,
  not the visited AMF.

The MILENAGE-style functions are shared with :mod:`repro.lte.aka`.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto import hmac_sha256, kdf_3gpp
from repro.lte.aka import AMF as AMF_FIELD
from repro.lte.aka import (
    AK_SIZE,
    KEY_SIZE,
    MAC_SIZE,
    RAND_SIZE,
    SQN_SIZE,
    AkaError,
    UsimState,
    f1,
    f2,
    f3,
    f4,
    f5,
    _xor,
)

FC_KAUSF = 0x6A
FC_KSEAF = 0x6C
FC_KAMF = 0x6D
FC_RES_STAR = 0x6B

RES_STAR_SIZE = 16


def derive_res_star(ck: bytes, ik: bytes, serving_network: str,
                    rand: bytes, res: bytes) -> bytes:
    """RES* / XRES*: the SN-name-bound response (TS 33.501 A.4)."""
    return kdf_3gpp(ck + ik, FC_RES_STAR, serving_network.encode(),
                    rand, res)[:RES_STAR_SIZE]


def derive_kausf(ck: bytes, ik: bytes, serving_network: str,
                 sqn_xor_ak: bytes) -> bytes:
    """KAUSF from CK||IK (TS 33.501 A.2)."""
    return kdf_3gpp(ck + ik, FC_KAUSF, serving_network.encode(), sqn_xor_ak)


def derive_kseaf(kausf: bytes, serving_network: str) -> bytes:
    """KSEAF from KAUSF (TS 33.501 A.6)."""
    return kdf_3gpp(kausf, FC_KSEAF, serving_network.encode())


def derive_kamf(kseaf: bytes, supi: str) -> bytes:
    """KAMF from KSEAF, bound to the SUPI (TS 33.501 A.7)."""
    return kdf_3gpp(kseaf, FC_KAMF, supi.encode())


@dataclass(frozen=True)
class AuthVector5G:
    """The home-network vector (UDM -> AUSF): RAND, AUTN, XRES*, KAUSF."""

    rand: bytes
    autn: bytes
    xres_star: bytes
    kausf: bytes


def generate_5g_vector(k: bytes, sqn: int, serving_network: str,
                       rand: bytes = None) -> AuthVector5G:
    """UDM/ARPF side."""
    if len(k) != KEY_SIZE:
        raise ValueError(f"K must be {KEY_SIZE} bytes")
    if rand is None:
        rand = secrets.token_bytes(RAND_SIZE)
    sqn_bytes = sqn.to_bytes(SQN_SIZE, "big")
    mac_a = f1(k, rand, sqn_bytes, AMF_FIELD)
    res = f2(k, rand)
    ck, ik = f3(k, rand), f4(k, rand)
    ak = f5(k, rand)
    sqn_xor_ak = _xor(sqn_bytes, ak)
    autn = sqn_xor_ak + AMF_FIELD + mac_a
    xres_star = derive_res_star(ck, ik, serving_network, rand, res)
    kausf = derive_kausf(ck, ik, serving_network, sqn_xor_ak)
    return AuthVector5G(rand=rand, autn=autn, xres_star=xres_star,
                        kausf=kausf)


def usim_authenticate_5g(usim: UsimState, rand: bytes, autn: bytes,
                         serving_network: str) -> tuple:
    """UE side: verify AUTN, return (RES*, KAUSF).

    Raises :class:`AkaError` on MAC/SQN failure, as in 4G.
    """
    if len(autn) != SQN_SIZE + len(AMF_FIELD) + MAC_SIZE:
        raise AkaError("malformed AUTN")
    sqn_xor_ak = autn[:SQN_SIZE]
    amf = autn[SQN_SIZE:SQN_SIZE + len(AMF_FIELD)]
    mac_a = autn[SQN_SIZE + len(AMF_FIELD):]
    ak = f5(usim.k, rand)
    sqn_bytes = _xor(sqn_xor_ak, ak)
    if f1(usim.k, rand, sqn_bytes, amf) != mac_a:
        raise AkaError("AUTN MAC check failed: network not authentic")
    sqn = int.from_bytes(sqn_bytes, "big")
    if not usim.highest_sqn < sqn <= usim.highest_sqn + usim.sqn_window:
        raise AkaError(f"SQN {sqn} outside acceptance window")
    usim.highest_sqn = sqn
    res = f2(usim.k, rand)
    ck, ik = f3(usim.k, rand), f4(usim.k, rand)
    res_star = derive_res_star(ck, ik, serving_network, rand, res)
    kausf = derive_kausf(ck, ik, serving_network, sqn_xor_ak)
    return res_star, kausf


def hres_star(res_star: bytes, rand: bytes) -> bytes:
    """HRES*: what the SEAF compares locally (TS 33.501 A.5)."""
    return hmac_sha256(b"hres*", rand + res_star)[:16]
