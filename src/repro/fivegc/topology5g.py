"""Testbed topology for the 5G benchmarks.

Visited network: UE — gNB — AMF — SMF (all local).  Home side: AUSF and
UDM on a cloud LAN behind the placement link (or brokerd there instead,
for the CellBricks variant).  Same placement latencies as the 4G testbed
so the generations are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net import Host, Link, Simulator
from repro.testbed.placement import PLACEMENTS, SIGNALING_BANDWIDTH

UE_ADDRESS = "10.200.0.2"
GNB_ADDRESS = "10.200.0.1"
AMF_ADDRESS = "10.201.0.1"
SMF_ADDRESS = "10.202.0.1"
AUSF_ADDRESS = "52.10.0.1"
UDM_ADDRESS = "52.11.0.1"
BROKER_ADDRESS = "52.12.0.1"

RADIO_DELAY = 0.0001
BACKHAUL_DELAY = 0.00015
SMF_DELAY = 0.0002
DC_LAN_DELAY = 0.0002        # AUSF <-> UDM inside the home DC


@dataclass
class Topology5G:
    sim: Simulator
    ue_host: Host
    gnb_host: Host
    amf_host: Host
    smf_host: Host
    ausf_host: Host
    udm_host: Host
    broker_host: Host
    placement: str

    @classmethod
    def build(cls, sim: Simulator, placement: str = "local",
              name: str = "5g") -> "Topology5G":
        if placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r}")
        delay = PLACEMENTS[placement]

        ue = Host(sim, f"{name}-ue", address=UE_ADDRESS)
        gnb = Host(sim, f"{name}-gnb", address=GNB_ADDRESS)
        amf = Host(sim, f"{name}-amf", address=AMF_ADDRESS)
        smf = Host(sim, f"{name}-smf", address=SMF_ADDRESS)
        ausf = Host(sim, f"{name}-ausf", address=AUSF_ADDRESS)
        udm = Host(sim, f"{name}-udm", address=UDM_ADDRESS)
        broker = Host(sim, f"{name}-broker", address=BROKER_ADDRESS)

        def wire(a, b, delay_s, prefix_a, prefix_b):
            link = Link(sim, f"{name}-{a.name}-{b.name}", a, b,
                        bandwidth_bps=SIGNALING_BANDWIDTH, delay_s=delay_s)
            a.add_route(prefix_b, link)
            b.add_route(prefix_a, link)
            return link

        wire(ue, gnb, RADIO_DELAY, "10.200.0", "10.200.0")
        wire(gnb, amf, BACKHAUL_DELAY, "10.200.0", "10.201.0")
        wire(amf, smf, SMF_DELAY, "10.201.0", "10.202.0")
        amf_ausf = wire(amf, ausf, delay, "10.201.0", "52.10.0")
        wire(ausf, udm, DC_LAN_DELAY, "52.10.0", "52.11.0")
        amf_broker = wire(amf, broker, delay, "10.201.0", "52.12.0")

        # The gNB must reach the UE's /24 and the AMF's.
        gnb.add_route("10.200.0", gnb.links[0])
        return cls(sim=sim, ue_host=ue, gnb_host=gnb, amf_host=amf,
                   smf_host=smf, ausf_host=ausf, udm_host=udm,
                   broker_host=broker, placement=placement)
