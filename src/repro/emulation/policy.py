"""Time-of-day rate-limit policy (Appendix A's midnight switch).

"We found that the throughput enters the high-mode consistently at
around 12:30am.  We conjecture this is due to the different rate
limiting policies the MNO enforces during these two time windows."

:class:`TimeOfDayPolicy` drives that behaviour inside a single run: it
maps simulation time to wall-clock hours and switches the carrier's
policer between the day and night regimes at the configured boundaries,
letting experiments that *span* the switch (the bimodal trace of Fig 10)
run as one drive instead of two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net import Simulator

SECONDS_PER_HOUR = 3600.0
DEFAULT_NIGHT_STARTS = 0.5      # 00:30 - "consistently at around 12:30am"
DEFAULT_NIGHT_ENDS = 6.0        # aggressive policing resumes at 06:00


@dataclass
class TimeOfDayPolicy:
    """The carrier's policing schedule."""

    day_rate_bps: float = 1.2e6
    night_rate_bps: Optional[float] = None   # None = policing off
    night_starts_hour: float = DEFAULT_NIGHT_STARTS
    night_ends_hour: float = DEFAULT_NIGHT_ENDS

    def is_night(self, hour_of_day: float) -> bool:
        hour = hour_of_day % 24.0
        if self.night_starts_hour <= self.night_ends_hour:
            return self.night_starts_hour <= hour < self.night_ends_hour
        return hour >= self.night_starts_hour or hour < self.night_ends_hour

    def rate_at(self, hour_of_day: float) -> Optional[float]:
        return self.night_rate_bps if self.is_night(hour_of_day) \
            else self.day_rate_bps

    def next_switch_hour(self, hour_of_day: float) -> float:
        """Hours until the policy next changes."""
        hour = hour_of_day % 24.0
        boundaries = sorted({self.night_starts_hour % 24.0,
                             self.night_ends_hour % 24.0})
        for boundary in boundaries:
            if boundary > hour + 1e-9:
                return boundary - hour
        return 24.0 - hour + boundaries[0]


class PolicyScheduler:
    """Applies a :class:`TimeOfDayPolicy` to cellular paths over time.

    ``clock_offset_hours`` sets what wall-clock time ``sim.now == 0``
    corresponds to; a drive started at 23:50 will cross the midnight
    switch ten simulated minutes in.
    """

    def __init__(self, sim: Simulator, policy: TimeOfDayPolicy,
                 paths: list, clock_offset_hours: float = 0.0,
                 time_scale: float = 1.0):
        self.sim = sim
        self.policy = policy
        self.paths = list(paths)
        self.clock_offset_hours = clock_offset_hours
        #: simulated seconds per wall-clock second (>1 compresses the day
        #: so experiments can cross boundaries quickly).
        self.time_scale = time_scale
        self.switches: list = []    # (sim_time, rate)
        self._started = False

    def hour_now(self) -> float:
        return (self.clock_offset_hours
                + self.sim.now * self.time_scale / SECONDS_PER_HOUR) % 24.0

    def start(self, duration: float) -> None:
        self._started = True
        self._apply()
        self._schedule_next(duration)

    def _apply(self) -> None:
        rate = self.policy.rate_at(self.hour_now())
        self.switches.append((self.sim.now, rate))
        for path in self.paths:
            path.set_shaper_rate(rate)

    def _schedule_next(self, duration: float) -> None:
        hours = self.policy.next_switch_hour(self.hour_now())
        delay = hours * SECONDS_PER_HOUR / self.time_scale
        if self.sim.now + delay >= duration:
            return
        self.sim.schedule(delay, self._fire, duration)

    def _fire(self, duration: float) -> None:
        self._apply()
        self._schedule_next(duration)
