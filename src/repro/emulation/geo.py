"""Geometry-driven emulation: feed a RAN drive into the paired harness.

Instead of the calibrated stochastic processes of
:mod:`repro.emulation.radio`, handover times and the capacity trace come
from an actual simulated drive through a cell deployment
(:func:`repro.ran.simulate_drive`) — MTTHO and radio quality *emerge*
from inter-site distance, speed, shadowing, and the UE's A3 selection.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net import Simulator
from repro.ran.selection import DriveLog

from .radio import HANDOVER_GAP_RANGE, HandoverEvent
from .scenario import EmulationConfig, PairedEmulation


class GeoPairedEmulation(PairedEmulation):
    """A paired MNO/CellBricks run whose radio follows a DriveLog."""

    def __init__(self, sim: Simulator, drive: DriveLog,
                 config: Optional[EmulationConfig] = None,
                 capacity_scale: float = 1.0, seed: int = 1):
        config = config or EmulationConfig(
            route="downtown", time_of_day="night",
            duration=drive.duration, seed=seed, handovers=False)
        config.handovers = False
        config.duration = min(config.duration, drive.duration)
        super().__init__(sim, config)
        self.drive = drive
        self.capacity_scale = capacity_scale
        rng = random.Random(seed)
        self.handover_events = [
            HandoverEvent(at=record.at, gap_s=rng.uniform(*HANDOVER_GAP_RANGE))
            for record in drive.handovers
            if record.at < config.duration]
        self._trace = drive.capacity_trace(interval=1.0)

    def start(self) -> None:
        # Drive capacity from the geometric trace instead of the AR(1)
        # process; handovers were installed from the drive log.
        for second, capacity in enumerate(self._trace):
            if second >= self.config.duration:
                break
            scaled = max(capacity * self.capacity_scale, 1.5e6)
            self.sim.schedule_at(float(second) + 1e-9,
                                 self._set_capacity, scaled)
        for event in self.handover_events:
            self.sim.schedule_at(event.at, self._apply_handover, event.gap_s)

    def _set_capacity(self, capacity: float) -> None:
        self.mno.set_radio_bandwidth(capacity)
        self.cb.set_radio_bandwidth(capacity)
