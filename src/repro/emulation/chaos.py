"""Fault injection for the CellBricks control plane.

The reliability claims of the control plane (retransmission with
backoff, idempotent SAP, ack'd revocation fan-out) are only worth
anything under faults, so this module provides a declarative way to
script them against a :func:`repro.core.mobility.build_cellbricks_network`
network:

* :class:`ChaosEvent` / :class:`ChaosSchedule` — "at t=2.0, 5% loss on
  every ``*-broker`` link for 3 s", written as data.
* :class:`ChaosMonkey` — arms a schedule on the simulator and drives
  the existing :class:`~repro.net.link.Link` knobs (``loss_rate``,
  ``interrupt``, per-half ``set_up``) plus broker brown-outs (inflated
  ``processing_costs``).
* :func:`run_chaos` — an attach/revoke churn under a schedule,
  reporting attach success rate, p50/p99 attach latency,
  retransmission counts, and **unauthorized-session-seconds** (time a
  revoked session kept being served; the invariant is that this is
  exactly zero).

Faults are all finite: every event restores the state it perturbed, so
the event queue drains and ``sim.run()`` terminates.  Loss draws come
from each link's own seeded RNG and the schedule itself is data, so a
fixed seed reproduces a run bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Callable, Optional

from repro.analysis import percentile
from repro.net import Link, Simulator
from repro.obs import CounterAttr, MetricsRegistry, Obs
from repro.obs import install as install_obs

from .scenario import ARCH_CELLBRICKS

# Fault kinds understood by the monkey.
KIND_LOSS = "loss"            # set loss_rate on both halves for a while
KIND_OUTAGE = "outage"        # link fully down for a while
KIND_BROWNOUT = "brownout"    # brokerd processing costs inflated
KIND_PARTITION = "partition"  # one simplex half down (asymmetric fault)
KIND_NODE_CRASH = "node_crash"      # a registered node loses all state
KIND_NODE_RESTART = "node_restart"  # a crashed node rejoins empty

# Partition directions: which simplex half goes dark.  ``a_to_b`` is the
# first-constructor-argument side's transmit direction (UE→eNB on radio
# links, AGW→broker on broker links — see build_cellbricks_network).
DIR_A_TO_B = "a_to_b"
DIR_B_TO_A = "b_to_a"
DIR_BOTH = "both"


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted fault.

    ``target`` is an ``fnmatch`` glob over link names (``*-broker``,
    ``btelco-a-sig-radio``, ``*``); it is ignored for brown-outs, which
    always hit the broker daemon.  ``value`` is the loss rate for
    ``loss`` events and the cost multiplier for ``brownout`` events.
    """

    at: float
    kind: str
    target: str = "*"
    duration: float = 1.0
    value: float = 0.0
    direction: str = DIR_BOTH


def loss_burst(at: float, duration: float, rate: float,
               target: str = "*") -> ChaosEvent:
    """``rate`` loss on every link matching ``target`` for ``duration``."""
    return ChaosEvent(at=at, kind=KIND_LOSS, target=target,
                      duration=duration, value=rate)


def outage(at: float, duration: float, target: str = "*") -> ChaosEvent:
    """Links matching ``target`` go fully dark for ``duration``."""
    return ChaosEvent(at=at, kind=KIND_OUTAGE, target=target,
                      duration=duration)


def brownout(at: float, duration: float,
             factor: float = 10.0) -> ChaosEvent:
    """Broker processing costs inflated by ``factor`` for ``duration``."""
    return ChaosEvent(at=at, kind=KIND_BROWNOUT, duration=duration,
                      value=factor)


def partition(at: float, duration: float, target: str,
              direction: str = DIR_A_TO_B) -> ChaosEvent:
    """One-way fault: only the ``direction`` half of matched links drops."""
    return ChaosEvent(at=at, kind=KIND_PARTITION, target=target,
                      duration=duration, direction=direction)


def node_crash(at: float, target: str,
               duration: float = 0.0) -> ChaosEvent:
    """Crash every registered node matching ``target`` (fail-stop: state
    lost, no more replies).  ``duration > 0`` schedules an automatic
    ``node_restart`` after that long; ``0`` leaves it down for good."""
    return ChaosEvent(at=at, kind=KIND_NODE_CRASH, target=target,
                      duration=duration)


def node_restart(at: float, target: str) -> ChaosEvent:
    """Restart crashed nodes matching ``target`` — they rejoin empty and
    must resynchronize state over the network."""
    return ChaosEvent(at=at, kind=KIND_NODE_RESTART, target=target,
                      duration=0.0)


@dataclass
class ChaosSchedule:
    """An ordered fault script (order only matters for readability —
    every event carries its own absolute start time)."""

    events: list = field(default_factory=list)

    def add(self, event: ChaosEvent) -> "ChaosSchedule":
        self.events.append(event)
        return self

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class ChaosMonkey:
    """Arms a :class:`ChaosSchedule` against a set of links + a broker.

    Steady-state loss (a permanently lossy radio) is modelled by simply
    constructing the links with a nonzero ``loss_rate`` — the monkey is
    for *transient* faults layered on top.
    """

    faults_injected = CounterAttr("chaos.faults_injected")

    def __init__(self, sim: Simulator, links: dict,
                 brokerd=None, nodes: Optional[dict] = None):
        self.sim = sim
        self.links = links
        self.brokerd = brokerd
        #: name -> object exposing ``crash()``/``restart()`` (shard
        #: hosts register here via ``network.chaos_nodes``)
        self.nodes = nodes or {}
        self.metrics = MetricsRegistry(node="chaos")
        self.faults_injected = 0
        #: per-kind fault tally (registry-backed; ``dict(...)`` works)
        self.faults_by_kind = self.metrics.counter_vec(
            "chaos.faults", "kind")
        #: (time, kind, target) log of every fault begun
        self.log: list = []
        # Active-fault bookkeeping so overlapping events restore
        # correctly: each entry tracks the pre-fault baseline plus the
        # multiset of currently-applied fault values.  Restoring one
        # event recomputes the surviving maximum instead of blindly
        # writing back a snapshot that may itself be mid-fault state.
        self._loss_active: dict[int, list] = {}      # id(half) -> [half, base, [rates]]
        self._brownout_active: Optional[list] = None  # [daemon, prev, base, [factors]]

    # -- wiring ---------------------------------------------------------
    def arm(self, schedule: ChaosSchedule) -> None:
        for event in schedule:
            self.sim.schedule_at(event.at, self._begin, event)

    def _matched(self, pattern: str) -> list:
        return [link for name, link in sorted(self.links.items())
                if fnmatchcase(name, pattern)]

    def _begin(self, event: ChaosEvent) -> None:
        begin = {KIND_LOSS: self._begin_loss,
                 KIND_OUTAGE: self._begin_outage,
                 KIND_BROWNOUT: self._begin_brownout,
                 KIND_PARTITION: self._begin_partition,
                 KIND_NODE_CRASH: self._begin_node_crash,
                 KIND_NODE_RESTART: self._begin_node_restart}.get(event.kind)
        if begin is None:
            raise ValueError(f"unknown chaos kind {event.kind!r}")
        begin(event)
        self.faults_injected += 1
        self.faults_by_kind[event.kind] += 1
        self.log.append((self.sim.now, event.kind, event.target))
        obs = getattr(self.sim, "obs", None)
        if obs is not None and obs.tracing:
            obs.tracer.instant(
                f"chaos.{event.kind}", "chaos-monkey", self.sim.now,
                category="chaos",
                data={"target": event.target,
                      "duration": round(event.duration, 9),
                      "value": round(event.value, 9)})

    # -- fault kinds ----------------------------------------------------
    def _begin_loss(self, event: ChaosEvent) -> None:
        for link in self._matched(event.target):
            for half in (link.a_to_b, link.b_to_a):
                entry = self._loss_active.get(id(half))
                if entry is None:
                    entry = [half, half.loss_rate, []]
                    self._loss_active[id(half)] = entry
                entry[2].append(event.value)
                half.loss_rate = max([entry[1]] + entry[2])
                self.sim.schedule(event.duration, self._restore_loss,
                                  half, event.value)

    def _restore_loss(self, half, rate: float) -> None:
        entry = self._loss_active.get(id(half))
        if entry is None:
            return
        entry[2].remove(rate)
        if entry[2]:
            half.loss_rate = max([entry[1]] + entry[2])
        else:
            half.loss_rate = entry[1]
            del self._loss_active[id(half)]

    def _begin_outage(self, event: ChaosEvent) -> None:
        for link in self._matched(event.target):
            link.interrupt(event.duration)

    def _begin_partition(self, event: ChaosEvent) -> None:
        for link in self._matched(event.target):
            halves = {DIR_A_TO_B: (link.a_to_b,),
                      DIR_B_TO_A: (link.b_to_a,),
                      DIR_BOTH: (link.a_to_b, link.b_to_a)}[event.direction]
            for half in halves:
                half.interrupt(event.duration)

    def _matched_nodes(self, pattern: str) -> list:
        return [node for name, node in sorted(self.nodes.items())
                if fnmatchcase(name, pattern)]

    def _begin_node_crash(self, event: ChaosEvent) -> None:
        matched = self._matched_nodes(event.target)
        if not matched:
            raise ValueError(
                f"node_crash target {event.target!r} matched no "
                f"registered nodes (have: {sorted(self.nodes)})")
        for node in matched:
            node.crash()
            if event.duration > 0:
                self.sim.schedule(event.duration, node.restart)

    def _begin_node_restart(self, event: ChaosEvent) -> None:
        for node in self._matched_nodes(event.target):
            node.restart()

    def _begin_brownout(self, event: ChaosEvent) -> None:
        if self.brokerd is None:
            raise ValueError("brownout event but no brokerd attached")
        daemon = self.brokerd
        # processing_costs is a class attribute; shadow it with an
        # inflated instance copy and restore whatever the instance had
        # before (never mutate the class dict — other brokers share it).
        # Overlapping brownouts compose as max(active factors) over the
        # pre-fault baseline, not as a stack of stale snapshots.
        if self._brownout_active is None:
            self._brownout_active = [
                daemon, daemon.__dict__.get("processing_costs"),
                dict(daemon.processing_costs), []]
        entry = self._brownout_active
        entry[3].append(event.value)
        factor = max(entry[3])
        daemon.processing_costs = {
            message: cost * factor for message, cost in entry[2].items()}
        self.sim.schedule(event.duration, self._restore_brownout,
                          event.value)

    def _restore_brownout(self, factor: float) -> None:
        entry = self._brownout_active
        if entry is None:
            return
        daemon, previous, base, factors = entry
        factors.remove(factor)
        if factors:
            live = max(factors)
            daemon.processing_costs = {
                message: cost * live for message, cost in base.items()}
            return
        if previous is None:
            daemon.__dict__.pop("processing_costs", None)
        else:
            daemon.processing_costs = previous
        self._brownout_active = None


@dataclass
class ChaosReport:
    """What :func:`run_chaos` measured."""

    arch: str
    rat: str
    attaches_requested: int
    attempts: int
    successes: int
    failures: int
    success_rate: float
    attach_p50_ms: float
    attach_p99_ms: float
    #: UE NAS-layer resends + AGW AttachAccept resends + every
    #: reliable-request retransmission at the AGWs and the broker
    retransmissions: int
    nas_retransmissions: int
    accept_retransmissions: int
    signaling_retransmissions: int
    revocations: int
    #: Σ over revoked sessions still served at end of run of
    #: (end − revoked_at); the safety invariant is that this is 0.0
    unauthorized_session_seconds: float
    faults_injected: int
    duration_s: float
    failure_causes: dict
    broker_stats: dict
    site_stats: dict
    #: bucketed attach-latency summary straight from the UE's
    #: MetricsRegistry (count/sum/min/max/mean/p50/p99, milliseconds).
    latency_histogram: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "arch": self.arch,
            "rat": self.rat,
            "attaches_requested": self.attaches_requested,
            "attempts": self.attempts,
            "successes": self.successes,
            "failures": self.failures,
            "success_rate": self.success_rate,
            "attach_p50_ms": self.attach_p50_ms,
            "attach_p99_ms": self.attach_p99_ms,
            "retransmissions": self.retransmissions,
            "nas_retransmissions": self.nas_retransmissions,
            "accept_retransmissions": self.accept_retransmissions,
            "signaling_retransmissions": self.signaling_retransmissions,
            "revocations": self.revocations,
            "unauthorized_session_seconds":
                self.unauthorized_session_seconds,
            "faults_injected": self.faults_injected,
            "duration_s": self.duration_s,
            "failure_causes": self.failure_causes,
            "broker_stats": self.broker_stats,
            "site_stats": self.site_stats,
            "latency_histogram": self.latency_histogram,
        }


class _AttachChurn:
    """Drives one UE through repeated attach/detach cycles, optionally
    revoking the subscriber mid-run so the ack'd fan-out is exercised
    while faults are live."""

    def __init__(self, network, ue, think_time: float,
                 attaches: int, revoke_every: int, revoke_hold: float,
                 rotate_sites: bool):
        self.network = network
        self.sim = network.sim
        self.ue = ue
        self.think_time = think_time
        self.attaches = attaches
        self.revoke_every = revoke_every
        self.revoke_hold = revoke_hold
        self.site_names = list(network.sites)
        self.rotate_sites = rotate_sites
        self.attempts = 0
        self.successes = 0
        self.failures = 0
        self.latencies: list = []
        self.failure_causes: dict = {}
        #: (session_id, revoked_at) for every grant the broker withdrew
        self.revoked: list = []
        ue.on_attach_done = self._attach_done

    def start(self) -> None:
        self._start_next()

    def _start_next(self) -> None:
        if self.attempts >= self.attaches:
            return
        self.attempts += 1
        if self.rotate_sites:
            site = self.network.sites[
                self.site_names[self.attempts % len(self.site_names)]]
            self.ue.retarget(site.enb_address, site.name)
        self.ue.attach()

    def _attach_done(self, result) -> None:
        if result.success:
            self.successes += 1
            self.latencies.append(result.latency)
            if self.revoke_every \
                    and self.successes % self.revoke_every == 0:
                self._revoke_current()
                return
            self.sim.schedule(self.think_time, self._detach_and_continue)
        else:
            self.failures += 1
            cause = result.cause or "unknown"
            self.failure_causes[cause] = \
                self.failure_causes.get(cause, 0) + 1
            self.sim.schedule(self.think_time, self._start_next)

    def _revoke_current(self) -> None:
        """Withdraw the subscriber while the session is live, re-enroll
        (a real broker would rotate to a fresh identity), and give the
        revocation ``revoke_hold`` seconds to fan out before churning
        on.  The UE does NOT courtesy-detach first: tearing the session
        down is the revocation's job."""
        brokerd = self.network.brokerd
        credentials = self.network.credentials
        now = self.sim.now
        for grant in brokerd.revoke_subscriber(credentials.id_u):
            self.revoked.append((grant.session_id, now))
        brokerd.enroll_subscriber(credentials.id_u,
                                  credentials.ue_key.public_key)
        self.sim.schedule(self.revoke_hold, self._detach_and_continue)

    def _detach_and_continue(self) -> None:
        # After a revocation the bTelco normally network-detaches the UE
        # (state already DEREGISTERED); if that signal was lost, the UE
        # side still has to move on.  "ATTACHED" is the LTE UE's serving
        # state, "REGISTERED" the 5G one — the churn drives both RATs.
        if self.ue.state in ("ATTACHED", "REGISTERED"):
            self.ue.detach_and_forget()
        self._start_next()

    def unauthorized_session_seconds(self) -> float:
        """Revoked sessions still being served at end of run."""
        now = self.sim.now
        total = 0.0
        for session_id, revoked_at in self.revoked:
            for site in self.network.sites.values():
                if session_id in site.agw.sessions:
                    total += now - revoked_at
        return total


def run_chaos(attaches: int = 200,
              schedule: Optional[ChaosSchedule] = None,
              revoke_every: int = 0,
              seed: int = 7,
              site_names: tuple = ("btelco-a", "btelco-b"),
              base_loss: float = 0.0,
              think_time: float = 0.05,
              revoke_hold: float = 1.0,
              rotate_sites: bool = True,
              on_network_built: Optional[Callable] = None,
              obs: Optional[Obs] = None,
              rat: str = "lte") -> ChaosReport:
    """Attach/revoke churn under a fault script; returns the metrics the
    reliability acceptance criteria are written against.

    ``base_loss`` applies a steady loss rate to every signaling link
    before the run starts (the "lossy radio" baseline); ``schedule``
    layers transient faults on top.  ``on_network_built`` (network →
    None) lets tests tweak the world before the churn starts.  Passing
    ``obs`` installs sim-clock tracing for the whole run (spans for
    every control-plane leg, instants for faults/retransmissions) —
    tracing records into virtual time only, so a traced seeded run stays
    bit-identical to an untraced one.

    ``rat`` selects the control plane under test: ``"lte"`` builds the
    eNodeB/AGW network, ``"5g"`` the gNB/AMF one.  Everything else —
    schedule, fault surface (link names match), churn driver, report —
    is RAT-agnostic.
    """
    sim = Simulator()
    if obs is not None:
        install_obs(sim, obs)
    if rat == "5g":
        from repro.core.btelco5g import CellBricksUe5G as UeClass
        from repro.fivegc.network5g import \
            build_cellbricks_network_5g as build
    elif rat == "lte":
        from repro.core.mobility import build_cellbricks_network as build
        from repro.core.ue_agent import CellBricksUe as UeClass
    else:
        raise ValueError(f"unknown rat {rat!r} (expected 'lte' or '5g')")
    network = build(sim, site_names=site_names, seed=seed)
    if base_loss:
        for link in network.links.values():
            link.a_to_b.loss_rate = base_loss
            link.b_to_a.loss_rate = base_loss
    if on_network_built is not None:
        on_network_built(network)

    first = network.sites[site_names[0]]
    ue = UeClass(network.ue_host, first.enb_address,
                 network.credentials, target_id_t=first.name)
    churn = _AttachChurn(network, ue, think_time=think_time,
                         attaches=attaches, revoke_every=revoke_every,
                         revoke_hold=revoke_hold,
                         rotate_sites=rotate_sites)

    monkey = ChaosMonkey(sim, network.links, brokerd=network.brokerd,
                         nodes=getattr(network, "chaos_nodes", None))
    if schedule is not None:
        monkey.arm(schedule)

    churn.start()
    sim.run()

    latencies_ms = sorted(latency * 1000.0 for latency in churn.latencies)
    nas_retx = ue.nas_retransmissions
    accept_retx = 0
    signaling_retx = network.brokerd.reliable_stats()["retransmissions"]
    site_stats = {}
    for name, site in network.sites.items():
        accept_retx += site.agw.accept_retransmissions
        signaling_retx += site.agw.reliable_stats()["retransmissions"]
        site_stats[name] = site.agw.stats()
    latency_hist = ue.metrics.find_histogram("attach.latency_ms")
    if obs is not None:
        # Fold every node's registry into the run's fleet-wide snapshot.
        obs.metrics.merge_from(ue.metrics)
        obs.metrics.merge_from(network.brokerd.metrics)
        obs.metrics.merge_from(monkey.metrics)
        for site in network.sites.values():
            obs.metrics.merge_from(site.agw.metrics)
            obs.metrics.merge_from(site.enb.metrics)

    return ChaosReport(
        arch=ARCH_CELLBRICKS,
        rat=rat,
        attaches_requested=attaches,
        attempts=churn.attempts,
        successes=churn.successes,
        failures=churn.failures,
        success_rate=(churn.successes / churn.attempts
                      if churn.attempts else 0.0),
        attach_p50_ms=(percentile(latencies_ms, 50.0)
                       if latencies_ms else 0.0),
        attach_p99_ms=(percentile(latencies_ms, 99.0)
                       if latencies_ms else 0.0),
        retransmissions=nas_retx + accept_retx + signaling_retx,
        nas_retransmissions=nas_retx,
        accept_retransmissions=accept_retx,
        signaling_retransmissions=signaling_retx,
        revocations=len(churn.revoked),
        unauthorized_session_seconds=churn.unauthorized_session_seconds(),
        faults_injected=monkey.faults_injected,
        duration_s=sim.now,
        failure_causes=dict(churn.failure_causes),
        broker_stats=network.brokerd.stats(),
        site_stats=site_stats,
        latency_histogram=(latency_hist.snapshot()
                           if latency_hist is not None else {}),
    )
