"""Drive-test routes and time-of-day conditions (§6.2(v), Appendix A).

Each route is calibrated to the paper's measured statistics: the
mean-time-to-handover (MTTHO) per route and time of day from Table 1, and
the T-Mobile rate-limiting regimes of Appendix A (an aggressive ~1 Mbps
policy during the day, relaxed after ~12:30 am, with high night-time
variance that grows with speed).
"""

from __future__ import annotations

from dataclasses import dataclass

DAY = "day"
NIGHT = "night"


@dataclass(frozen=True)
class RouteConditions:
    """Conditions for one (route, time-of-day) cell of Table 1."""

    mttho_s: float            # mean time between handovers (Table 1)
    policed_rate_bps: float   # carrier policy (None -> no policing)
    capacity_mean_bps: float  # radio capacity process (lognormal mean)
    capacity_sigma: float     # lognormal shape (night variance is high)
    capacity_max_bps: float
    radio_loss_rate: float = 2e-4


@dataclass(frozen=True)
class Route:
    """A drive route with day and night conditions."""

    name: str
    day: RouteConditions
    night: RouteConditions

    def conditions(self, time_of_day: str) -> RouteConditions:
        if time_of_day == DAY:
            return self.day
        if time_of_day == NIGHT:
            return self.night
        raise ValueError(f"time_of_day must be 'day' or 'night', "
                         f"got {time_of_day!r}")


def _day(mttho: float) -> RouteConditions:
    # Day: the policer (~1.2 Mbps) dominates; radio capacity is ample.
    return RouteConditions(mttho_s=mttho, policed_rate_bps=1.2e6,
                           capacity_mean_bps=30e6, capacity_sigma=0.3,
                           capacity_max_bps=75e6, radio_loss_rate=4e-4)


def _night(mttho: float, capacity_mean: float) -> RouteConditions:
    # Night: no policing; throughput follows the (highly variable) radio.
    return RouteConditions(mttho_s=mttho, policed_rate_bps=None,
                           capacity_mean_bps=capacity_mean,
                           capacity_sigma=0.75, capacity_max_bps=75e6,
                           radio_loss_rate=1.2e-4)


#: Table 1 MTTHO calibration: (suburb 73.50/65.60, downtown 68.16/50.60,
#: highway 44.72/25.50 seconds, day/night).  Night throughput is lower on
#: the highway (higher speed, weaker cells) — Table 1 shows 12.42 vs
#: 15.41-16.85 Mbps.
ROUTES = {
    "suburb": Route("suburb", day=_day(73.50),
                    night=_night(65.60, capacity_mean=27e6)),
    "downtown": Route("downtown", day=_day(68.16),
                      night=_night(50.60, capacity_mean=24e6)),
    "highway": Route("highway", day=_day(44.72),
                     night=_night(25.50, capacity_mean=18e6)),
}

ROUTE_ORDER = ("suburb", "downtown", "highway")
