"""Radio condition processes: capacity variation and handover schedules.

The paper's emulation rides on a real T-Mobile network, so "real-world
conditions such as the density of tower deployment, devices on the move,
real-time background traffic, handover patterns" come for free.  Here they
are generated: a lognormal per-second capacity process (giving the
night-time variance of Fig 10) and a renewal process of handover events
calibrated to the measured per-route MTTHO.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

from repro.net import Simulator

from .routes import RouteConditions

CAPACITY_SAMPLE_INTERVAL = 1.0
MIN_CAPACITY_BPS = 1.5e6
#: the radio gap of a (hard) handover, both architectures alike.
HANDOVER_GAP_RANGE = (0.04, 0.12)
MIN_HANDOVER_SPACING = 8.0


class CapacityProcess:
    """Radio capacity as an AR(1) process in log space, sampled per second
    and pushed to listener callbacks.

    Real drive capacity is *correlated* — a vehicle stays in a strong or
    weak cell for many seconds — so the process mixes a persistent
    component (rho) with fresh lognormal noise.  Correlation is what lets
    TCP actually ride the swells, producing the high night-time variance
    and the 3-4x peak-to-mean ratio of Fig 10.

    Both UEs in a paired run (the TCP baseline and the MPTCP/CellBricks
    device) ride in the same vehicle, so they share one realization.
    """

    def __init__(self, sim: Simulator, conditions: RouteConditions,
                 seed: int = 0, rho: float = 0.88):
        self.sim = sim
        self.conditions = conditions
        self.rng = random.Random(seed)
        self.rho = rho
        self.listeners: list[Callable[[float], None]] = []
        self.samples: list[float] = []
        self._running = False
        # Stationary distribution: lognormal(mu, sigma) with the requested
        # mean; the AR(1) innovation variance preserves that stationary law.
        sigma = conditions.capacity_sigma
        self._mu = math.log(conditions.capacity_mean_bps) - sigma ** 2 / 2
        self._sigma = sigma
        self._innovation_sigma = sigma * math.sqrt(1 - rho ** 2)
        self._log_state = self._mu + self.rng.gauss(0, sigma)

    def sample(self) -> float:
        self._log_state = (self.rho * self._log_state
                           + (1 - self.rho) * self._mu
                           + self.rng.gauss(0, self._innovation_sigma))
        value = math.exp(self._log_state)
        return max(MIN_CAPACITY_BPS,
                   min(self.conditions.capacity_max_bps, value))

    def start(self, duration: float) -> None:
        self._running = True
        self._stop_at = self.sim.now + duration
        self._tick()

    def _tick(self) -> None:
        if not self._running or self.sim.now >= self._stop_at:
            self._running = False
            return
        capacity = self.sample()
        self.samples.append(capacity)
        for listener in self.listeners:
            listener(capacity)
        self.sim.schedule(CAPACITY_SAMPLE_INTERVAL, self._tick)


@dataclass(frozen=True)
class HandoverEvent:
    """One handover: when it starts and how long the radio blanks."""

    at: float
    gap_s: float


def generate_handover_schedule(duration: float, mttho_s: float,
                               seed: int = 0,
                               min_spacing: float = MIN_HANDOVER_SPACING,
                               warmup: float = 10.0) -> list:
    """A renewal process of handovers with the requested mean spacing.

    Inter-arrival times are exponential (memoryless tower crossings) with
    a floor, shifted so their mean stays ``mttho_s``; no event lands in
    the first ``warmup`` seconds (the paper's runs also begin attached).
    """
    if mttho_s <= min_spacing:
        raise ValueError("MTTHO must exceed the minimum spacing")
    rng = random.Random(seed)
    events = []
    t = warmup
    while True:
        t += min_spacing + rng.expovariate(1.0 / (mttho_s - min_spacing))
        if t >= duration:
            break
        gap = rng.uniform(*HANDOVER_GAP_RANGE)
        events.append(HandoverEvent(at=t, gap_s=gap))
    return events
