"""§6.2 emulation harness: drive routes, handovers, paired MNO/CellBricks
runs, and the Table 1 / Fig 8-10 drivers."""

from .chaos import (
    ChaosEvent,
    ChaosMonkey,
    ChaosReport,
    ChaosSchedule,
    brownout,
    loss_burst,
    outage,
    partition,
    run_chaos,
)
from .driver import (
    CellResult,
    Table1Result,
    render_table1,
    run_cell_result,
    run_table1,
)
from .figures import (
    Figure8Result,
    Figure9Result,
    Figure10Result,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure10_single_drive,
)
from .geo import GeoPairedEmulation
from .policy import PolicyScheduler, TimeOfDayPolicy
from .radio import CapacityProcess, HandoverEvent, generate_handover_schedule
from .routes import DAY, NIGHT, ROUTE_ORDER, ROUTES, Route, RouteConditions
from .scenario import (
    ARCH_CELLBRICKS,
    ARCH_MNO,
    DEFAULT_ATTACH_LATENCY,
    EmulationConfig,
    PairedEmulation,
    run_cell,
)

__all__ = [
    "ARCH_CELLBRICKS",
    "ARCH_MNO",
    "CapacityProcess",
    "CellResult",
    "ChaosEvent",
    "ChaosMonkey",
    "ChaosReport",
    "ChaosSchedule",
    "brownout",
    "loss_burst",
    "outage",
    "partition",
    "run_chaos",
    "DAY",
    "DEFAULT_ATTACH_LATENCY",
    "EmulationConfig",
    "Figure8Result",
    "Figure9Result",
    "Figure10Result",
    "GeoPairedEmulation",
    "PolicyScheduler",
    "TimeOfDayPolicy",
    "HandoverEvent",
    "NIGHT",
    "PairedEmulation",
    "ROUTES",
    "ROUTE_ORDER",
    "Route",
    "RouteConditions",
    "Table1Result",
    "generate_handover_schedule",
    "render_table1",
    "run_cell",
    "run_cell_result",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure10_single_drive",
    "run_table1",
]
