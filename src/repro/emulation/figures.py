"""Fig 8, Fig 9, and Fig 10 harnesses.

* :func:`run_figure8` — iperf throughput over time around one handover,
  1-second bins, MNO (TCP) vs CellBricks (MPTCP with the default 500 ms
  wait), day-time policing: the dip-then-overshoot timeline.
* :func:`run_figure9` — the attachment-latency factor analysis: modified
  MPTCP (no wait) at d = 32/64/128 ms plus unmodified MPTCP, night-time
  conditions, reported as throughput relative to the paired TCP baseline
  over windows of 1..9 s after each handover.
* :func:`run_figure10` — day vs night 500 s downtown drives: the bimodal
  rate-limiting pattern of Appendix A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import mean, stddev
from repro.net import Simulator

from .scenario import (
    ARCH_CELLBRICKS,
    ARCH_MNO,
    EmulationConfig,
    PairedEmulation,
)


@dataclass
class Figure8Result:
    """Per-second throughput series around a single handover."""

    timestamps: list = field(default_factory=list)
    mno_mbps: list = field(default_factory=list)
    cb_mbps: list = field(default_factory=list)
    handover_at: float = 0.0


def run_figure8(duration: float = 50.0, handover_at: float = 23.4,
                seed: int = 8) -> Figure8Result:
    """One controlled handover mid-run, day-time conditions (as in the
    paper's Fig 8 trace)."""
    sim = Simulator()
    config = EmulationConfig(route="downtown", time_of_day="day",
                             duration=duration, seed=seed, handovers=False)
    emulation = PairedEmulation(sim, config)
    emulation.handover_events = []  # we schedule our own
    sim.schedule_at(handover_at, emulation._apply_handover, 0.08)

    stats = emulation.run_iperf()
    result = Figure8Result(handover_at=handover_at)
    bins = int(duration)
    mno = stats[ARCH_MNO].rates_mbps(1.0, duration)
    cb = stats[ARCH_CELLBRICKS].rates_mbps(1.0, duration)
    result.timestamps = [float(i + 1) for i in range(bins)]
    result.mno_mbps = mno[:bins]
    result.cb_mbps = cb[:bins]
    return result


@dataclass
class Figure9Result:
    """Relative performance vs elapsed time since handover."""

    windows: list = field(default_factory=list)      # 1..9 s
    #: variant name -> [relative perf % per window]
    series: dict = field(default_factory=dict)


FIG9_VARIANTS = (
    ("mod. 32ms", 0.032, 0.0),
    ("mod. 64ms", 0.064, 0.0),
    ("mod. 128ms", 0.128, 0.0),
    ("unmod.", 0.032, 0.5),
    # Beyond the paper: make-before-break — the UE pre-authorizes with
    # the target bTelco *before* leaving (the paper defers soft handovers
    # to future work), so the attachment latency vanishes at switch time.
    ("mbb (pre-auth)", 0.0005, 0.0),
)


HANDOVER_PERIOD = 20.0  # controlled schedule: a handover every 20 s


def run_figure9(duration: float = 240.0, seed: int = 9,
                windows: tuple = tuple(range(1, 10))) -> Figure9Result:
    """Night-time factor analysis of the attachment latency d.

    The handover schedule here is *controlled* (one every 20 s) rather
    than stochastic: this is the paper's factor analysis, isolating d and
    the wait period from handover-timing noise.  For each variant we
    average MPTCP's throughput over the n-second window after every
    handover, normalized by the paired TCP baseline over the same windows
    ("relative perf").
    """
    result = Figure9Result(windows=list(windows))
    handover_times = [t for t in _frange(15.0, duration - max(windows) - 1,
                                         HANDOVER_PERIOD)]
    for name, attach_latency, wait in FIG9_VARIANTS:
        sim = Simulator()
        config = EmulationConfig(route="downtown", time_of_day="night",
                                 duration=duration, seed=seed,
                                 attach_latency_s=attach_latency,
                                 address_wait_s=wait, handovers=False)
        emulation = PairedEmulation(sim, config)
        for at in handover_times:
            sim.schedule_at(at, emulation._apply_handover, 0.08)
        stats = emulation.run_iperf()
        series = []
        for window in windows:
            ratios = []
            for at in handover_times:
                mno = stats[ARCH_MNO].window_mbps(at, at + window)
                cb = stats[ARCH_CELLBRICKS].window_mbps(at, at + window)
                if mno > 0:
                    ratios.append(cb / mno * 100.0)
            series.append(mean(ratios) if ratios else float("nan"))
        result.series[name] = series
    return result


def _frange(start: float, stop: float, step: float):
    value = start
    while value <= stop:
        yield value
        value += step


@dataclass
class Figure10Result:
    """Day vs night 500 s downtown throughput traces."""

    day_mbps: list = field(default_factory=list)
    night_mbps: list = field(default_factory=list)

    @property
    def day_avg(self) -> float:
        return mean(self.day_mbps)

    @property
    def night_avg(self) -> float:
        return mean(self.night_mbps)

    @property
    def day_std(self) -> float:
        return stddev(self.day_mbps)

    @property
    def night_std(self) -> float:
        return stddev(self.night_mbps)

    @property
    def day_peak(self) -> float:
        return max(self.day_mbps) if self.day_mbps else 0.0

    @property
    def night_peak(self) -> float:
        return max(self.night_mbps) if self.night_mbps else 0.0


def run_figure10(duration: float = 500.0, seed: int = 10) -> Figure10Result:
    """Two downtown drives, day and night, MNO baseline (as Appendix A
    measures today's network)."""
    result = Figure10Result()
    for time_of_day, target in (("day", "day_mbps"), ("night", "night_mbps")):
        sim = Simulator()
        config = EmulationConfig(route="downtown", time_of_day=time_of_day,
                                 duration=duration, seed=seed)
        emulation = PairedEmulation(sim, config)
        stats = emulation.run_iperf()
        series = stats[ARCH_MNO].rates_mbps(1.0, duration)
        setattr(result, target, series)
    return result


def run_figure10_single_drive(duration: float = 400.0, seed: int = 10,
                              switch_at: float = 200.0) -> Figure10Result:
    """Appendix A's observation, live: one drive that *crosses* the
    carrier's midnight policy switch ("the throughput enters the
    high-mode consistently at around 12:30am").

    The run starts shortly before the switch; the policy scheduler flips
    the policer mid-drive, so one trace shows both modes.  Returned with
    the pre-switch seconds in ``day_mbps`` and post-switch in
    ``night_mbps`` so the summary statistics stay comparable.
    """
    from .policy import PolicyScheduler, TimeOfDayPolicy

    sim = Simulator()
    config = EmulationConfig(route="downtown", time_of_day="night",
                             duration=duration, seed=seed)
    emulation = PairedEmulation(sim, config)
    policy = TimeOfDayPolicy(day_rate_bps=1.2e6, night_rate_bps=None)
    # Start the clock so 00:30 lands exactly ``switch_at`` seconds in.
    offset_hours = (0.5 - switch_at / 3600.0) % 24.0
    scheduler = PolicyScheduler(sim, policy,
                                [emulation.mno, emulation.cb],
                                clock_offset_hours=offset_hours)
    scheduler.start(duration)
    stats = emulation.run_iperf()
    series = stats[ARCH_MNO].rates_mbps(1.0, duration)
    result = Figure10Result()
    result.day_mbps = series[:int(switch_at)]
    result.night_mbps = series[int(switch_at):]
    return result
