"""Table 1 driver: the full application-performance comparison.

Runs every (route x time-of-day) cell with all four applications plus the
calibration columns (MTTHO, ping p50) for both architectures, and renders
the table in the paper's layout, including the final
"Overall Perf. Slowdown" row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.analysis.stats import mean, slowdown_percent
from repro.net import Simulator

from .routes import DAY, NIGHT, ROUTE_ORDER
from .scenario import ARCH_CELLBRICKS, ARCH_MNO, EmulationConfig, PairedEmulation

APP_DURATIONS = {
    "ping": 120.0,
    "iperf": 120.0,
    "voip": 120.0,
    "video": 150.0,
    "web": 120.0,
}


@dataclass
class CellResult:
    """One (route, time-of-day) cell of Table 1, both architectures."""

    route: str
    time_of_day: str
    mttho_s: float = 0.0
    ping_p50_ms: dict = field(default_factory=dict)
    iperf_mbps: dict = field(default_factory=dict)
    voip_mos: dict = field(default_factory=dict)
    video_level: dict = field(default_factory=dict)
    web_load_s: dict = field(default_factory=dict)


@dataclass
class Table1Result:
    """All cells plus the aggregate slowdown row."""

    cells: list = field(default_factory=list)

    def _pairs(self, metric: str) -> list:
        return [(getattr(cell, metric)[ARCH_MNO],
                 getattr(cell, metric)[ARCH_CELLBRICKS])
                for cell in self.cells
                if getattr(cell, metric)]

    def overall_slowdown(self, metric: str, time_of_day: str,
                         lower_is_better: bool = False) -> float:
        """Mean per-cell slowdown (%) across routes for one time of day."""
        values = []
        for cell in self.cells:
            if cell.time_of_day != time_of_day:
                continue
            data = getattr(cell, metric)
            if not data:
                continue
            mno, cb = data[ARCH_MNO], data[ARCH_CELLBRICKS]
            if lower_is_better:
                # e.g. load time: CB being slower means a positive
                # slowdown of (cb - mno) / mno.
                values.append(-slowdown_percent(mno, cb))
            else:
                values.append(slowdown_percent(mno, cb))
        return mean(values)


def run_cell_result(route: str, time_of_day: str, seed: int = 1,
                    duration_scale: float = 1.0,
                    apps: tuple = ("ping", "iperf", "voip", "video", "web")
                    ) -> CellResult:
    """Run all applications for one Table 1 cell.

    Each application gets a fresh paired emulation with the same seed, so
    both architectures and all apps see identical radio and handover
    realizations — mirroring how the paper drives both UEs together.
    """
    cell = CellResult(route=route, time_of_day=time_of_day)

    def fresh(app: str) -> PairedEmulation:
        sim = Simulator()
        config = EmulationConfig(
            route=route, time_of_day=time_of_day,
            duration=APP_DURATIONS[app] * duration_scale, seed=seed)
        return PairedEmulation(sim, config)

    if "ping" in apps:
        emulation = fresh("ping")
        stats = emulation.run_ping()
        cell.ping_p50_ms = {arch: s.p50_ms for arch, s in stats.items()}
        cell.mttho_s = _measured_mttho(emulation)
    if "iperf" in apps:
        emulation = fresh("iperf")
        duration = emulation.config.duration
        stats = emulation.run_iperf()
        cell.iperf_mbps = {arch: s.average_mbps(duration)
                           for arch, s in stats.items()}
        if not cell.mttho_s:
            cell.mttho_s = _measured_mttho(emulation)
    if "voip" in apps:
        stats = fresh("voip").run_voip()
        cell.voip_mos = {arch: s.mos for arch, s in stats.items()}
    if "video" in apps:
        stats = fresh("video").run_video()
        cell.video_level = {arch: s.average_level
                            for arch, s in stats.items()}
    if "web" in apps:
        times = fresh("web").run_web()
        cell.web_load_s = {arch: mean(values)
                           for arch, values in times.items()}
    return cell


def _measured_mttho(emulation: PairedEmulation) -> float:
    events = emulation.handover_events
    if len(events) < 2:
        return emulation.config.conditions().mttho_s
    gaps = [events[i].at - events[i - 1].at for i in range(1, len(events))]
    return mean(gaps)


def run_table1(seed: int = 1, duration_scale: float = 1.0,
               routes: tuple = ROUTE_ORDER,
               times: tuple = (DAY, NIGHT)) -> Table1Result:
    """The full Table 1 sweep."""
    result = Table1Result()
    for route in routes:
        for time_of_day in times:
            result.cells.append(run_cell_result(
                route, time_of_day, seed=seed,
                duration_scale=duration_scale))
    return result


def render_table1(result: Table1Result) -> str:
    """Text rendering in the paper's layout (D and N columns per metric)."""
    by_key = {(c.route, c.time_of_day): c for c in result.cells}
    routes = [r for r in ROUTE_ORDER
              if any(c.route == r for c in result.cells)]

    header = (f"{'Route':9s} {'Arch':10s} {'MTTHO':>12s} {'Ping p50':>16s} "
              f"{'iPerf Mbps':>16s} {'VoIP MOS':>14s} {'Video lvl':>14s} "
              f"{'Web s':>14s}")
    lines = [header, "-" * len(header)]

    def pair(cell_d, cell_n, metric, arch, fmt="{:.2f}"):
        def one(cell):
            data = getattr(cell, metric) if cell else None
            if not data or arch not in data:
                return "-"
            return fmt.format(data[arch])
        return f"{one(cell_d):>7s}/{one(cell_n):<7s}"

    for route in routes:
        cell_d = by_key.get((route, DAY))
        cell_n = by_key.get((route, NIGHT))
        mttho = (f"{cell_d.mttho_s if cell_d else 0:6.2f}/"
                 f"{cell_n.mttho_s if cell_n else 0:<6.2f}")
        for arch, label in ((ARCH_MNO, "MNO"), (ARCH_CELLBRICKS, "CellBricks")):
            mttho_cell = mttho if arch == ARCH_CELLBRICKS else f"{'-':>6s}/{'-':<6s}"
            lines.append(
                f"{route:9s} {label:10s} {mttho_cell:>12s} "
                f"{pair(cell_d, cell_n, 'ping_p50_ms', arch):>16s} "
                f"{pair(cell_d, cell_n, 'iperf_mbps', arch):>16s} "
                f"{pair(cell_d, cell_n, 'voip_mos', arch):>14s} "
                f"{pair(cell_d, cell_n, 'video_level', arch):>14s} "
                f"{pair(cell_d, cell_n, 'web_load_s', arch):>14s}")
    slow = result.overall_slowdown
    lines.append("-" * len(header))
    lines.append(
        f"{'Overall Perf. Slowdown (D/N %)':32s} "
        f"iperf {slow('iperf_mbps', DAY):5.2f}/{slow('iperf_mbps', NIGHT):<5.2f}  "
        f"voip {slow('voip_mos', DAY):5.2f}/{slow('voip_mos', NIGHT):<5.2f}  "
        f"video {slow('video_level', DAY):5.2f}/{slow('video_level', NIGHT):<5.2f}  "
        f"web {slow('web_load_s', DAY, lower_is_better=True):5.2f}/"
        f"{slow('web_load_s', NIGHT, lower_is_better=True):<5.2f}")
    return "\n".join(lines)
