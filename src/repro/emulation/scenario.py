"""Paired MNO-vs-CellBricks emulation runs (§6.2's methodology).

The paper drives two UE+server pairs simultaneously: one running plain
TCP against today's infrastructure (the baseline — its IP never changes),
one running MPTCP with emulated IP changes at every detected handover
(CellBricks).  :class:`PairedEmulation` reproduces that: two parallel
cellular paths share one radio-capacity realization and one handover
schedule; the baseline path sees only the radio gap, while the CellBricks
path additionally detaches, waits the attachment latency *d*, and
re-attaches under a new prefix — triggering the host's MPTCP/SIP
machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.apps import (
    HlsPlayer,
    HlsServer,
    IperfClient,
    IperfServer,
    KIND_MPTCP,
    KIND_TCP,
    PingClient,
    PingServer,
    WebClient,
    WebServer,
    make_call,
)
from repro.net import CellularPath, Simulator

from .radio import CapacityProcess, generate_handover_schedule
from repro.apps.web import DEFAULT_OBJECT_BYTES as WEB_PAGE_OBJECTS

from .routes import ROUTES, RouteConditions

#: default CellBricks attachment latency: the us-west-1 prototype
#: measurement of §6.1 (the paper's default for d).
DEFAULT_ATTACH_LATENCY = 0.03168
DEFAULT_ADDRESS_WAIT = 0.5  # mainline MPTCP's address_worker period

ARCH_MNO = "mno"
ARCH_CELLBRICKS = "cellbricks"


@dataclass
class EmulationConfig:
    """One emulation cell: route x time-of-day (+ knobs for Fig 9)."""

    route: str = "downtown"
    time_of_day: str = "day"
    duration: float = 120.0
    seed: int = 1
    attach_latency_s: float = DEFAULT_ATTACH_LATENCY
    address_wait_s: float = DEFAULT_ADDRESS_WAIT
    handovers: bool = True

    def conditions(self) -> RouteConditions:
        return ROUTES[self.route].conditions(self.time_of_day)


class PairedEmulation:
    """Two synchronized paths: `mno` (TCP) and `cb` (MPTCP + IP changes)."""

    def __init__(self, sim: Simulator, config: EmulationConfig):
        self.sim = sim
        self.config = config
        conditions = config.conditions()
        rng = random.Random(config.seed)

        def make_path(name: str, server_ip: str) -> CellularPath:
            return CellularPath(
                sim, name=name,
                shaper_rate=conditions.policed_rate_bps,
                radio_bandwidth=conditions.capacity_mean_bps,
                radio_loss=conditions.radio_loss_rate,
                server_address=server_ip,
                seed=rng.getrandbits(32))

        self.mno = make_path("mno", "52.9.1.10")
        self.cb = make_path("cb", "52.9.2.10")
        self.mno.assign_ue_address()
        self.cb.assign_ue_address()

        # One shared radio realization: both devices ride together.
        self.capacity = CapacityProcess(sim, conditions,
                                        seed=rng.getrandbits(32))
        self.capacity.listeners.append(self.mno.set_radio_bandwidth)
        self.capacity.listeners.append(self.cb.set_radio_bandwidth)

        self.handover_events = []
        if config.handovers:
            self.handover_events = generate_handover_schedule(
                config.duration, conditions.mttho_s,
                seed=rng.getrandbits(32))
        self._next_prefix = 129
        self.handovers_applied = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Arm the capacity process and the handover schedule."""
        self.capacity.start(self.config.duration)
        for event in self.handover_events:
            self.sim.schedule_at(event.at, self._apply_handover, event.gap_s)

    def _apply_handover(self, gap_s: float) -> None:
        """One tower crossing, seen by both devices."""
        self.handovers_applied += 1
        # Baseline: the network-managed handover hides the gap — the
        # source eNodeB forwards in-flight data to the target (X2
        # forwarding), so the UE sees a short delay bubble, not a loss
        # burst, and its address never changes.
        self.mno.radio_pause(gap_s)
        # CellBricks: detach (bearer gone, IP invalidated), re-attach to
        # the next bTelco after the gap + attachment latency d.
        self.cb.detach(interruption_s=gap_s)
        prefix = f"10.{self._next_prefix}.0"
        self._next_prefix += 1
        if self._next_prefix > 250:
            self._next_prefix = 129
        # reset_shaper=False: as in the paper's emulation, the underlying
        # carrier (and hence its policer state) is the same across the
        # emulated IP change; only the address changes.
        self.sim.schedule(gap_s + self.config.attach_latency_s,
                          self.cb.attach, prefix, False)

    # -- application runners -------------------------------------------------
    # Each returns {"mno": metrics, "cellbricks": metrics}.

    def run_ping(self) -> dict:
        servers = {ARCH_MNO: PingServer(self.mno.server),
                   ARCH_CELLBRICKS: PingServer(self.cb.server)}
        clients = {
            ARCH_MNO: PingClient(self.mno.ue, self.mno.server.address),
            ARCH_CELLBRICKS: PingClient(self.cb.ue, self.cb.server.address),
        }
        self.start()
        for client in clients.values():
            client.start(self.config.duration)
        self.sim.run(until=self.sim.now + self.config.duration + 2.0)
        return {arch: client.stats for arch, client in clients.items()}

    def run_iperf(self) -> dict:
        IperfServer(KIND_TCP, self.mno.server)
        IperfServer(KIND_MPTCP, self.cb.server)
        clients = {
            ARCH_MNO: IperfClient(KIND_TCP, self.mno.ue,
                                  self.mno.server.address),
            ARCH_CELLBRICKS: IperfClient(
                KIND_MPTCP, self.cb.ue, self.cb.server.address,
                address_wait=self.config.address_wait_s),
        }
        self.start()
        for client in clients.values():
            client.start()
        self.sim.run(until=self.sim.now + self.config.duration)
        return {arch: client.stats for arch, client in clients.items()}

    def run_voip(self) -> dict:
        caller_mno, callee_mno = make_call(self.mno.ue, self.mno.server,
                                           self.config.duration)
        caller_cb, callee_cb = make_call(self.cb.ue, self.cb.server,
                                         self.config.duration)
        self.start()
        self.sim.run(until=self.sim.now + self.config.duration + 2.0)
        # Downlink (what the mobile user hears) is the caller-side stats.
        return {ARCH_MNO: caller_mno.stats, ARCH_CELLBRICKS: caller_cb.stats}

    def run_video(self) -> dict:
        HlsServer(KIND_TCP, self.mno.server)
        HlsServer(KIND_MPTCP, self.cb.server)
        players = {
            ARCH_MNO: HlsPlayer(KIND_TCP, self.mno.ue,
                                self.mno.server.address),
            ARCH_CELLBRICKS: HlsPlayer(
                KIND_MPTCP, self.cb.ue, self.cb.server.address,
                address_wait=self.config.address_wait_s),
        }
        self.start()
        for player in players.values():
            player.start(self.config.duration)
        self.sim.run(until=self.sim.now + self.config.duration + 2.0)
        return {arch: player.stats for arch, player in players.items()}

    def run_web(self, loads: Optional[int] = None) -> dict:
        """Repeated page loads for the whole duration; returns lists of
        load times per architecture."""
        WebServer(KIND_TCP, self.mno.server, object_bytes=WEB_PAGE_OBJECTS)
        WebServer(KIND_MPTCP, self.cb.server, object_bytes=WEB_PAGE_OBJECTS)
        times = {ARCH_MNO: [], ARCH_CELLBRICKS: []}
        self.start()
        self._web_loop(ARCH_MNO, KIND_TCP, self.mno, times, loads)
        self._web_loop(ARCH_CELLBRICKS, KIND_MPTCP, self.cb, times, loads)
        self.sim.run(until=self.sim.now + self.config.duration + 5.0)
        return times

    def _web_loop(self, arch: str, kind: str, path: CellularPath,
                  times: dict, loads: Optional[int],
                  think_time: float = 2.0) -> None:
        deadline = self.sim.now + self.config.duration

        def load_once():
            if self.sim.now >= deadline:
                return
            if loads is not None and len(times[arch]) >= loads:
                return
            client = WebClient(kind, path.ue, path.server.address,
                               object_bytes=WEB_PAGE_OBJECTS,
                               address_wait=self.config.address_wait_s)

            def done(result):
                times[arch].append(result.load_time)
                self.sim.schedule(think_time, load_once)

            client.on_loaded = done
            client.load()

        load_once()


def run_cell(route: str, time_of_day: str, app: str, duration: float,
             seed: int = 1, **kwargs) -> dict:
    """Convenience: one (route, time, app) emulation from scratch."""
    sim = Simulator()
    config = EmulationConfig(route=route, time_of_day=time_of_day,
                             duration=duration, seed=seed, **kwargs)
    emulation = PairedEmulation(sim, config)
    runner = getattr(emulation, f"run_{app}")
    return runner()
