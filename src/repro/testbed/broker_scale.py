"""BROKER-SCALE — the broker auth hot path under concurrent attach load.

The paper argues the broker "resembles existing internet services" and
scales out (§5); this bench reproduces the claim end to end.  N UEs
spread across multiple bTelco sites attach within a short arrival
window, all served by one brokerd, and we sweep concurrency × shard
count for the serial historical path vs the sharded, batching pipeline
(:meth:`repro.core.broker.Brokerd.configure_pipeline`).  Reported per
cell: p50/p99 attach latency and attaches/sec.

Works for both RATs — ``rat="lte"`` drives CellBricksAgw sites over NAS,
``rat="5g"`` drives CellBricksAmf/SMF sites over NAS-5G — against the
very same brokerd code, since SAP is RAT-agnostic.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.analysis.stats import mean, percentile
from repro.core import (
    Brokerd,
    CellBricksAgw,
    CellBricksAmf,
    CellBricksUe,
    CellBricksUe5G,
    UeSapCredentials,
)
from repro.core.qos import QosCapabilities
from repro.crypto import CertificateAuthority
from repro.crypto import keypool
from repro.fivegc import Smf
from repro.lte import ENodeB
from repro.net import Host, Link, Simulator

BROKER_ADDRESS = "52.20.0.1"
SIGNALING_BANDWIDTH = 1e9
#: pool slots reserved for this bench (clear of scenario builders').
_SLOT_BASE = 9300


@dataclass
class CellResult:
    """One (rat, concurrency, shards, pipeline) cell of the sweep."""

    rat: str
    concurrency: int
    shards: int
    pipeline: bool
    sites: int
    attached: int
    failed: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    duration_s: float
    attaches_per_sec: float
    broker: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)


def _link(sim, name, a, b, delay_s):
    link = Link(sim, name, a, b, bandwidth_bps=SIGNALING_BANDWIDTH,
                delay_s=delay_s)
    a.add_route(b.address.rsplit(".", 1)[0], link)
    b.add_route(a.address.rsplit(".", 1)[0], link)
    return link


def run_cell(concurrency: int, shards: int, *, rat: str = "lte",
             pipeline: bool = True, sites: int = 16,
             arrival_window: float = 0.0, batch_window: float = 0.002,
             verify_workers: int = 4, adaptive_window: bool = False,
             obs=None, run_until: float = 120.0) -> CellResult:
    """Attach ``concurrency`` UEs across ``sites`` bTelcos via one broker.

    ``pipeline=False`` with ``shards=1`` is the historical serial path
    (the pre-sharding baseline); ``pipeline=True`` enables the batching
    pipeline over ``shards`` consistent-hash shards.  ``obs`` (an
    :class:`repro.obs.Obs`) installs tracing for determinism checks.
    Throughput counts successful attaches over the span from the first
    attach start (t=0) to the last completion.
    """
    if rat not in ("lte", "5g"):
        raise ValueError(f"unknown rat {rat!r}")
    # Key generation happens before the timed region; the CRT contexts
    # are precomputed so wall-clock cost lands in the bench loop only.
    keypool.warm(range(_SLOT_BASE, _SLOT_BASE + 3 + sites))
    sim = Simulator()
    if obs is not None:
        sim.obs = obs

    ca = CertificateAuthority(key=keypool.pooled_keypair(_SLOT_BASE))
    broker_host = Host(sim, "broker-host", address=BROKER_ADDRESS)
    brokerd = Brokerd(broker_host, id_b="b.scale",
                      ca_public_key=ca.public_key,
                      key=keypool.pooled_keypair(_SLOT_BASE + 1))
    if pipeline:
        brokerd.configure_pipeline(
            enabled=True, batch_window=batch_window,
            verify_workers=verify_workers, shards=shards,
            adaptive=adaptive_window)
    elif shards != 1:
        brokerd.sap.set_shard_count(shards)

    ue_key = keypool.pooled_keypair(_SLOT_BASE + 2)  # shared (sim-only)

    ran_hosts: list[Host] = []   # the node a UE attaches through
    for index in range(sites):
        ran_host = Host(sim, f"site{index}-ran",
                        address=f"10.{30 + index}.0.1")
        core_host = Host(sim, f"site{index}-core",
                         address=f"10.{60 + index}.0.1")
        key = keypool.pooled_keypair(_SLOT_BASE + 3 + index)
        certificate = ca.issue(f"t.scale-{index}", "btelco", key.public_key)
        qos = QosCapabilities(supported_qcis=(1, 8, 9))
        if rat == "lte":
            agw = CellBricksAgw(
                core_host, broker_ip=BROKER_ADDRESS,
                id_t=f"t.scale-{index}", key=key, certificate=certificate,
                ca_public_key=ca.public_key, qos_capabilities=qos,
                name=f"site{index}-agw",
                ue_pool_prefix=f"10.{128 + index}.0")
            agw.trust_broker("b.scale", brokerd.public_key)
            ENodeB(ran_host, agw_ip=core_host.address,
                   name=f"site{index}-enb")
        else:
            smf_host = Host(sim, f"site{index}-smf",
                            address=f"10.{90 + index}.0.1")
            smf = Smf(smf_host, name=f"site{index}-smf",
                      ue_pool_prefix=f"10.{128 + index}.0")
            amf = CellBricksAmf(
                core_host, broker_ip=BROKER_ADDRESS,
                smf_ip=smf_host.address, id_t=f"t.scale-{index}", key=key,
                certificate=certificate, ca_public_key=ca.public_key,
                qos_capabilities=qos, name=f"site{index}-amf")
            amf.trust_broker("b.scale", brokerd.public_key)
            ENodeB(ran_host, agw_ip=core_host.address,
                   name=f"site{index}-gnb")
            _link(sim, f"site{index}-smf-link", core_host, smf_host,
                  delay_s=0.0002)
        _link(sim, f"site{index}-backhaul", ran_host, core_host,
              delay_s=0.00015)
        _link(sim, f"site{index}-broker", core_host, broker_host,
              delay_s=0.0025)
        ran_hosts.append(ran_host)

    latencies: list[float] = []
    completions: list[float] = []
    failures = [0]

    def _done(result, *, _sim=sim) -> None:
        if result.success:
            latencies.append(result.latency * 1000.0)
            completions.append(_sim.now)
        else:
            failures[0] += 1

    # One host per UE, attached to its site's RAN node round-robin.
    for index in range(concurrency):
        site = index % sites
        ue_host = Host(sim, f"ue{index}",
                       address=f"10.{140 + index // 200}.{index % 200}.2")
        ran_host = ran_hosts[site]
        ran_address = ran_host.address
        _link(sim, f"radio{index}", ue_host, ran_host, delay_s=0.0001)
        subscriber = f"sub-{index:05d}"
        brokerd.enroll_subscriber(subscriber, ue_key.public_key)
        creds = UeSapCredentials(id_u=subscriber, id_b="b.scale",
                                 ue_key=ue_key,
                                 broker_public_key=brokerd.public_key)
        if rat == "lte":
            ue = CellBricksUe(ue_host, ran_address, creds,
                              target_id_t=f"t.scale-{site}",
                              name=f"cb-ue{index}")
            ue.on_attach_done = _done
            sim.schedule(arrival_window * index / max(concurrency, 1),
                         ue.attach)
        else:
            ue = CellBricksUe5G(ue_host, ran_address, creds,
                                target_id_t=f"t.scale-{site}",
                                name=f"cb-ue5g{index}")
            ue.on_registration_done = _done
            sim.schedule(arrival_window * index / max(concurrency, 1),
                         ue.register)

    sim.run(until=run_until)

    duration = max(completions) if completions else 0.0
    stats = brokerd.stats()
    return CellResult(
        rat=rat, concurrency=concurrency, shards=shards, pipeline=pipeline,
        sites=sites, attached=len(latencies), failed=failures[0],
        mean_ms=round(mean(latencies), 4) if latencies else 0.0,
        p50_ms=round(percentile(latencies, 50), 4) if latencies else 0.0,
        p99_ms=round(percentile(latencies, 99), 4) if latencies else 0.0,
        duration_s=round(duration, 6),
        attaches_per_sec=round(len(latencies) / duration, 2)
        if duration > 0 else 0.0,
        broker={
            "attach_ok": stats["attach_ok"],
            "replay_hits": stats["replay_hits"],
            "dup_requests_served": stats["dup_requests_served"],
            "num_shards": stats["num_shards"],
            "pipeline_batches": stats["pipeline_batches"],
            "pipeline_requests": stats["pipeline_requests"],
            "cert_cache_hits": stats["cert_cache_hits"],
            "shards": stats["shards"],
        })


def run_sweep(*, rats=("lte", "5g"), concurrencies=(16, 64),
              shard_counts=(1, 2, 4, 8), sites: int = 16,
              arrival_window: float = 0.0,
              adaptive_window: bool = False) -> dict:
    """The full grid: for each rat and concurrency, a serial single-shard
    baseline plus the pipeline at each shard count.  Returns the report
    dict written to ``BENCH_broker_scale.json``.  ``adaptive_window``
    swaps the pipeline cells' fixed 2 ms batch window for the
    arrival-rate-derived :class:`~repro.core.broker.AdaptiveBatchWindow`."""
    cells = []
    for rat in rats:
        for concurrency in concurrencies:
            cells.append(run_cell(concurrency, 1, rat=rat, pipeline=False,
                                  sites=sites,
                                  arrival_window=arrival_window))
            for shards in shard_counts:
                cells.append(run_cell(concurrency, shards, rat=rat,
                                      pipeline=True, sites=sites,
                                      arrival_window=arrival_window,
                                      adaptive_window=adaptive_window))
    report = {
        "bench": "broker_scale",
        "sites": sites,
        "arrival_window_s": arrival_window,
        "adaptive_window": adaptive_window,
        "cells": [cell.to_dict() for cell in cells],
        "speedups": speedups(cells),
    }
    return report


def speedups(cells) -> list[dict]:
    """Pipeline throughput vs the serial baseline at equal (rat, N)."""
    baselines = {(c.rat, c.concurrency): c for c in cells if not c.pipeline}
    out = []
    for cell in cells:
        if not cell.pipeline:
            continue
        base = baselines.get((cell.rat, cell.concurrency))
        if base is None or base.attaches_per_sec <= 0:
            continue
        out.append({
            "rat": cell.rat, "concurrency": cell.concurrency,
            "shards": cell.shards,
            "baseline_attaches_per_sec": base.attaches_per_sec,
            "pipeline_attaches_per_sec": cell.attaches_per_sec,
            "speedup": round(
                cell.attaches_per_sec / base.attaches_per_sec, 2),
        })
    return out
