"""Traced mobility drive: one bTelco switch, fully decomposed.

The Fig 7 invariant — per-leg span sums equal the end-to-end total
exactly — extended to the data path.  A UE runs a bulk download (iperf)
over the emulated cellular path, switches bTelcos mid-stream via
:class:`~repro.core.mobility.MobilityManager`, and the recorded span
tree decomposes the resulting throughput stall into sequential legs:

* ``reauth_ms`` — detach until the SAP re-attach granted a bearer (the
  broker round-trip, nested ``attach`` tree included);
* ``transport_ms`` — until the transport re-established (MPTCP MP_JOIN
  subflow on LTE, QUIC PATH_CHALLENGE validation on 5G);
* ``drain_ms`` — until the first payload byte is delivered again.

The three legs sum exactly to the migration root's duration, and that
duration equals the app-measured delivery gap — both checked in the
returned report (``pass``).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.iperf import IperfClient, IperfServer
from repro.apps.transport import KIND_MPTCP, KIND_QUIC
from repro.core.mobility import MobilityManager, build_cellbricks_network
from repro.net import CellularPath, Simulator
from repro.obs import Obs, install, migration_leg_breakdown

IPERF_RATE = 20e6  # emulated radio bottleneck (bps)


def run_traced_drive(rat: str = "lte", *, switch_at: float = 2.0,
                     duration: float = 6.0, seed: int = 7,
                     address_wait: float = 0.5,
                     obs: Optional[Obs] = None) -> dict:
    """One switch under trace: LTE rides MPTCP, 5G rides QUIC.

    Returns a report whose ``legs`` entry is the migration breakdown and
    whose ``pass`` asserts the two exactness gates (legs sum to the root
    span, root span equals the app-measured stall).
    """
    sim = Simulator()
    obs = install(sim, obs)

    if rat == "5g":
        from repro.core.btelco5g import CellBricksUe5G
        from repro.fivegc.network5g import build_cellbricks_network_5g
        network = build_cellbricks_network_5g(sim, seed=seed)
        data_path = CellularPath(sim, name="data", seed=seed)
        manager = MobilityManager(network, data_path=data_path,
                                  ue_class=CellBricksUe5G)
        kind = KIND_QUIC
    elif rat == "lte":
        network = build_cellbricks_network(sim, with_data_path=True,
                                           seed=seed)
        data_path = network.data_path
        manager = MobilityManager(network)
        kind = KIND_MPTCP
    else:
        raise ValueError(f"unknown rat {rat!r}")

    data_path.set_radio_bandwidth(IPERF_RATE)
    server = IperfServer(kind, data_path.server)
    client_box: list = []

    def on_attached(site, result) -> None:
        if not client_box:
            client = IperfClient(kind, data_path.ue,
                                 data_path.server.address,
                                 address_wait=address_wait)
            client_box.append(client)
            client.start()

    manager.on_attached = on_attached
    manager.start(next(iter(network.sites)))
    site_names = list(network.sites)
    sim.schedule(switch_at, manager.switch_to, site_names[1])
    sim.run(until=duration)

    client = client_box[0] if client_box else None
    deliveries = client.stats.deliveries if client is not None else []
    before = [t for t, _ in deliveries if t <= switch_at]
    after = [t for t, _ in deliveries if t > switch_at]
    stall_ms = (after[0] - switch_at) * 1000.0 if after else None

    spans = obs.tracer.spans()
    legs = migration_leg_breakdown(spans)
    breakdown = legs[0] if legs else None

    leg_sum_exact = bool(breakdown) and abs(
        breakdown["reauth_ms"] + breakdown["transport_ms"]
        + breakdown["drain_ms"] - breakdown["total_ms"]) < 1e-9
    stall_matches = bool(breakdown) and stall_ms is not None \
        and abs(breakdown["total_ms"] - stall_ms) < 1e-6

    inner = client.client.inner if client is not None else None
    report = {
        "rat": rat,
        "transport": kind,
        "seed": seed,
        "switch_at_s": switch_at,
        "duration_s": duration,
        "switches": manager.switches,
        "attach_latencies_ms": [round(l * 1000.0, 6)
                                for l in manager.attach_latencies],
        "deliveries_before_switch": len(before),
        "deliveries_after_switch": len(after),
        "bytes_delivered": client.stats.total_bytes if client else 0,
        "stall_ms": round(stall_ms, 6) if stall_ms is not None else None,
        "legs": breakdown,
        "spans_recorded": obs.tracer.spans_recorded,
        "handovers": getattr(inner, "handover_count",
                             getattr(inner, "migrations", 0)),
        "gates": {
            "attached_after_switch": bool(after),
            "leg_sum_exact": leg_sum_exact,
            "stall_matches_total": stall_matches,
        },
    }
    report["pass"] = all(report["gates"].values())
    return report
