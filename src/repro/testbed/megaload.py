"""MEGALOAD — a population-scale workload over the discrete-event core.

The broker-scale bench tops out at tens of concurrent attaches from 16
sites; the paper's pitch is *millions* of users federated across many
small bTelcos.  This harness drives the gap: hundreds of sites and
10^5-10^6 lightweight UEs with

* an **arrival model** thinned by the day/night policy of Appendix A
  (reusing :class:`repro.emulation.policy.TimeOfDayPolicy`, the same
  schedule that drives the Fig 10 token-bucket policer) — the simulated
  window is mapped onto one compressed 24 h day,
* a **mobility model** — each UE's lifecycle script is a sequence of
  (site, dwell) segments; every segment boundary is a detach +
  re-attach through the broker, exactly the host-driven loop of §4.2,
* a **diurnal activity model** — attached UEs emit keep-alive pokes
  that re-arm an idle timer; sparse pokers idle out and release their
  session.

The population lives in a **struct-of-arrays** layout: no per-UE Python
object exists.  Mutable state is parallel :mod:`array` columns indexed
by uid (segment cursor, site, epoch, idle token, retry flag, attach
start time) and each UE's script is a run of packed 64-bit segment
codes (``site``/``dwell_ticks``/``poke_gap_ticks`` in 21-bit fields)
inside one shared ``array('q')``, addressed through a per-uid offset
column.  A pending wakeup is likewise a pair of packed 31-bit words
(``uid`` and ``action``/``token``/``arg``) — kept separate so each
stays a single-digit CPython int — so the resident cost per UE is
a few dozen bytes of flat array — the ``rss_per_ue_bytes`` profile in
``BENCH_megaload.json`` tracks it, and the ``--smoke`` gate holds the
ceiling.

Each attach rides a modeled broker whose batching uses the
:class:`~repro.core.broker.AdaptiveBatchWindow` (Nagle-style: flush
when full, stretch under sustained load).  Scripted UEs are
deliberately *not* full crypto stacks: the point of this bench is to
stress the event engine itself.  Two bridges keep the model honest:

* **crypto sim-cost charging** — with ``charge_crypto`` (implied by a
  real cohort) the modeled broker's per-attach service time is the RSA
  sign/verify cost actually measured on this machine at startup
  (:func:`repro.crypto.simcost.measure_crypto_costs`), so scripted
  broker busy time tracks what real crypto would cost;
* a **mixed-fidelity cohort** — ``real_fraction`` samples an
  evenly-spaced slice of uids whose lifecycle runs the full
  :class:`~repro.core.ue_agent.CellBricksUe` (or 5G) SAP attach against
  a real pipelined :class:`~repro.core.broker.Brokerd` inside the same
  simulator, following the same script (sites folded onto a small real
  RAN).  Population pressure and protocol truth share one clock; the
  cohort's attach latency percentiles are reported alongside scripted
  throughput, and seeded runs stay digest-deterministic (within a
  process — the charged cost is machine-measured).

Two interchangeable engines execute the very same workload script:

* ``legacy`` — the pre-optimization event core: one simulator event per
  UE action, idle timers cancelled the ``Timer.start`` way (dead heap
  entries accumulate; compaction is disabled to match the historical
  simulator), fixed 2 ms broker window.
* ``optimized`` — batched UE stepping on the shared
  :class:`~repro.net.TickCalendar`: a tick's worth of UE actions costs
  *one* heap event, wake pairs land in recycled ``array('i')`` columns,
  superseded wakeups are invalidated by token instead of heap
  cancellation, the broker window adapts to the arrival rate, and heap
  compaction stays on.

Both engines quantize action times to the same tick grid, so with the
same broker window policy they replay byte-identical workload outcomes
— ``tests/test_megaload.py`` pins that equivalence.  The report
(``BENCH_megaload.json``) carries, per engine cell, the deterministic
workload digest plus wall-clock figures (UEs/sec simulated, wall-clock
per sim-second, peak RSS, RSS per UE) and the optimized-vs-legacy
speedup that the ``--smoke`` CI gate enforces.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import sys
import time
from array import array
from typing import Optional

from repro.analysis.stats import mean, percentile
from repro.core.broker import AdaptiveBatchWindow
from repro.emulation.policy import SECONDS_PER_HOUR, TimeOfDayPolicy
from repro.net import Simulator, TickCalendar

try:  # pragma: no cover - platform-dependent
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None

# UE lifecycle actions (3-bit codes packed into wake words).
A_ARRIVE = 0
A_ATTACH_DONE = 1
A_POKE = 2
A_IDLE = 3
A_SEG_END = 4
A_REAL_ARRIVE = 5    # mixed-fidelity cohort: start the real SAP attach
A_REAL_SEG = 6       # mixed-fidelity cohort: segment end (move/depart)

# Wake pair layout: the calendar key is the uid, the code word is
# (action << 20) | (token << 10) | arg — token carries the UE epoch
# (bounded by the script length, <= 4 detach cycles) and arg the idle
# token / remaining pokes (<= ~24), so 10-bit fields have an order of
# magnitude of headroom and both words stay single-digit CPython ints.
_ARG_BITS = 10
_TOKEN_BITS = 10
_ARG_MASK = (1 << _ARG_BITS) - 1
_TOKEN_MASK = (1 << _TOKEN_BITS) - 1
_ACTION_SHIFT = _ARG_BITS + _TOKEN_BITS
_M_ARRIVE = A_ARRIVE << _ACTION_SHIFT
_M_ATTACH_DONE = A_ATTACH_DONE << _ACTION_SHIFT
_M_POKE = A_POKE << _ACTION_SHIFT
_M_IDLE = A_IDLE << _ACTION_SHIFT
_M_SEG_END = A_SEG_END << _ACTION_SHIFT
_M_REAL_ARRIVE = A_REAL_ARRIVE << _ACTION_SHIFT
_M_REAL_SEG = A_REAL_SEG << _ACTION_SHIFT

# Script-segment layout: (site << 42) | (dwell_ticks << 21) | poke_gap.
_SEG_BITS = 21
_SEG_MASK = (1 << _SEG_BITS) - 1

# Model constants (seconds unless noted).
IDLE_TIMEOUT = 6.0          # idle release after this long without a poke
DWELL_MIN, DWELL_MAX = 5.0, 12.0
POKE_GAP_MIN, POKE_GAP_MAX = 2.5, 10.0
MAX_POKES_PER_SEGMENT = 5
ARRIVAL_SPAN = 0.8          # arrivals land in the first 80% of `duration`
NIGHT_INTENSITY = 0.25      # arrival thinning factor during the night window
CAPACITY_HEADROOM = 1.6     # site capacity vs the uniform-spread mean
DRAIN_GRACE = 60.0          # extra sim-seconds to let late arrivals finish
BROKER_ATTACH_COST = 0.0002  # modeled broker service per attach (s)
BROKER_WORKERS = 8
FIXED_WINDOW = 0.002        # the pre-adaptive pipeline constant

# Mixed-fidelity cohort topology constants.
REAL_BROKER_ADDRESS = "52.30.0.1"
REAL_SIGNALING_BANDWIDTH = 1e9
#: keypool slots reserved for the cohort (clear of other harnesses').
_REAL_SLOT_BASE = 9650


def _rss_bytes(raw: float, platform: Optional[str] = None) -> float:
    """``ru_maxrss`` to bytes: KiB everywhere except macOS (bytes)."""
    if platform is None:
        platform = sys.platform
    return float(raw) if platform == "darwin" else raw * 1024.0


def _peak_rss_bytes() -> float:
    """Process peak RSS in bytes (0.0 where ``resource`` is missing)."""
    if resource is None:  # pragma: no cover - non-POSIX fallback
        return 0.0
    return _rss_bytes(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


#: the optimized engine IS the shared tick calendar — wake codes are the
#: packed words above, dispatch decodes them with shifts and masks.
_BatchedEngine = TickCalendar


class _LegacyEngine:
    """Pre-optimization stepping: one simulator event per UE action."""

    cancellable = True

    def __init__(self, sim: Simulator, tick: float, dispatch):
        self.sim = sim
        self.tick = tick
        self.dispatch = dispatch

    def wake(self, idx: int, key: int, code: int = 0):
        return self.sim.schedule_at(idx * self.tick, self.dispatch,
                                    key, code)


class _MegaBroker:
    """The broker's auth pipeline, reduced to its batching timeline.

    Requests park in a window (fixed 2 ms, or adaptive via
    :class:`AdaptiveBatchWindow`); a flush serves the batch on
    ``BROKER_WORKERS`` earliest-free lanes and posts each completion
    back through the engine at its modeled finish tick.  The batch is a
    plain list of uids; ``service_cost`` is the modeled per-attach
    service time (the calibrated constant, or the measured crypto cost
    when charging is on) and ``busy_s`` accumulates total modeled
    service so the smoke gate can check charged-vs-scripted agreement.
    """

    __slots__ = ("sim", "engine", "tick", "adaptive", "epoch",
                 "service_cost", "busy_s", "batch", "flush_event",
                 "flushing_now", "lanes", "batches", "requests",
                 "full_flushes")

    def __init__(self, sim: Simulator, engine, tick: float,
                 adaptive: Optional[AdaptiveBatchWindow], epoch: array,
                 service_cost: float = BROKER_ATTACH_COST):
        self.sim = sim
        self.engine = engine
        self.tick = tick
        self.adaptive = adaptive
        self.epoch = epoch
        self.service_cost = service_cost
        self.busy_s = 0.0
        self.batch: list[int] = []
        self.flush_event = None
        self.flushing_now = False
        self.lanes = [0.0] * BROKER_WORKERS
        self.batches = 0
        self.requests = 0
        self.full_flushes = 0

    def submit(self, uid: int) -> None:
        now = self.sim._now
        adaptive = self.adaptive
        if adaptive is not None:
            adaptive.observe(now)
        self.batch.append(uid)
        if self.flush_event is None:
            window = FIXED_WINDOW if adaptive is None else adaptive.window()
            self.flush_event = self.sim.schedule(window, self._flush)
        elif (adaptive is not None and not self.flushing_now
                and adaptive.full(len(self.batch))):
            self.flush_event.cancel()
            self.flush_event = self.sim.schedule(0.0, self._flush)
            self.flushing_now = True
            self.full_flushes += 1

    def _flush(self) -> None:
        self.flush_event = None
        self.flushing_now = False
        batch, self.batch = self.batch, []
        if not batch:
            return
        now = self.sim._now
        tick = self.tick
        cost = self.service_cost
        lanes = self.lanes
        epoch = self.epoch
        wake = self.engine.wake
        self.batches += 1
        self.requests += len(batch)
        self.busy_s += cost * len(batch)
        for uid in batch:
            lane = min(range(len(lanes)), key=lanes.__getitem__)
            end = max(now, lanes[lane]) + cost
            lanes[lane] = end
            # Completion on the next tick boundary at/after the modeled
            # service end (strictly in the future: end > now).
            idx = int(end / tick - 1e-9) + 1
            wake(idx, uid, _M_ATTACH_DONE | (epoch[uid] << _ARG_BITS))


class _RealCohort:
    """The full-fidelity slice of a megaload population.

    Builds a small real RAN — ``sites`` bTelcos (AGW or AMF+SMF), one
    pipelined sharded :class:`~repro.core.broker.Brokerd` — inside the
    workload's simulator, plus one :class:`CellBricksUe` (or 5G) per
    sampled uid.  Each cohort UE follows its *scripted* lifecycle
    (arrival tick, segment dwells, site sequence folded onto the real
    sites modulo ``sites``) but every attach is the genuine SAP
    exchange: authReqU crafting, broker batch pipeline, challenge
    verification, SMC — so population pressure and protocol truth share
    one clock.  Keep-alive pokes and idle timers stay scripted-only;
    the cohort measures the attach path.

    Everything here is deterministic under a fixed seed: topology and
    uid selection derive from the workload config, retransmission
    jitter RNGs are name-seeded, and modeled processing costs are
    constants (or the per-process cached measured crypto cost).
    """

    def __init__(self, workload: "MegaloadWorkload", uids, *,
                 rat: str = "lte", sites: int = 4):
        from repro.core import (
            Brokerd,
            CellBricksAgw,
            CellBricksAmf,
            CellBricksUe,
            CellBricksUe5G,
            UeSapCredentials,
        )
        from repro.core.broker import BrokerAuthRequest
        from repro.core.qos import QosCapabilities
        from repro.crypto import CertificateAuthority, keypool
        from repro.fivegc import Smf
        from repro.lte import ENodeB
        from repro.net import Host, Link

        from .netaddr import HostPrefixAllocator

        if rat not in ("lte", "5g"):
            raise ValueError(f"unknown rat {rat!r}")
        self.workload = workload
        self.rat = rat
        self.uids = list(uids)
        self.n_sites = max(1, min(sites, 256))
        sim = workload.sim

        allocator = HostPrefixAllocator(base_octet=96)
        if len(self.uids) > allocator.capacity:
            raise ValueError(
                f"real cohort of {len(self.uids)} exceeds the "
                f"{allocator.capacity} host prefixes available")

        keypool.warm(range(_REAL_SLOT_BASE,
                           _REAL_SLOT_BASE + 3 + self.n_sites))
        ca = CertificateAuthority(
            key=keypool.pooled_keypair(_REAL_SLOT_BASE))
        broker_host = Host(sim, "mega-broker",
                           address=REAL_BROKER_ADDRESS)
        self.brokerd = Brokerd(
            broker_host, id_b="b.mega", ca_public_key=ca.public_key,
            key=keypool.pooled_keypair(_REAL_SLOT_BASE + 1))
        self.brokerd.configure_pipeline(
            enabled=True, batch_window=FIXED_WINDOW, verify_workers=4,
            shards=min(4, max(1, self.n_sites)), adaptive=True)
        if workload.charge_crypto:
            # Charge the real pipeline the same measured per-attach cost
            # the scripted broker model charges: `_cost_scale` stretches
            # every calibrated stage proportionally, so modeled and
            # scripted service times agree by construction.
            costs = dict(self.brokerd.processing_costs)
            costs[BrokerAuthRequest] = workload.broker.service_cost
            self.brokerd.processing_costs = costs

        def _link(name, a, b, delay_s):
            link = Link(sim, name, a, b,
                        bandwidth_bps=REAL_SIGNALING_BANDWIDTH,
                        delay_s=delay_s)
            a.add_route(b.address.rsplit(".", 1)[0], link)
            b.add_route(a.address.rsplit(".", 1)[0], link)
            return link

        self.ran_hosts: list = []
        qos = QosCapabilities(supported_qcis=(1, 8, 9))
        for index in range(self.n_sites):
            ran_host = Host(sim, f"mega-site{index}-ran",
                            address=f"10.40.{index}.1")
            core_host = Host(sim, f"mega-site{index}-core",
                             address=f"10.41.{index}.1")
            key = keypool.pooled_keypair(_REAL_SLOT_BASE + 3 + index)
            certificate = ca.issue(f"t.mega-{index}", "btelco",
                                   key.public_key)
            if rat == "lte":
                agw = CellBricksAgw(
                    core_host, broker_ip=REAL_BROKER_ADDRESS,
                    id_t=f"t.mega-{index}", key=key,
                    certificate=certificate,
                    ca_public_key=ca.public_key, qos_capabilities=qos,
                    name=f"mega-site{index}-agw",
                    ue_pool_prefix=f"10.44.{index}")
                agw.trust_broker("b.mega", self.brokerd.public_key)
                ENodeB(ran_host, agw_ip=core_host.address,
                       name=f"mega-site{index}-enb")
            else:
                smf_host = Host(sim, f"mega-site{index}-smf",
                                address=f"10.42.{index}.1")
                smf = Smf(smf_host, name=f"mega-site{index}-smf",
                          ue_pool_prefix=f"10.44.{index}")
                amf = CellBricksAmf(
                    core_host, broker_ip=REAL_BROKER_ADDRESS,
                    smf_ip=smf_host.address, id_t=f"t.mega-{index}",
                    key=key, certificate=certificate,
                    ca_public_key=ca.public_key, qos_capabilities=qos,
                    name=f"mega-site{index}-amf")
                amf.trust_broker("b.mega", self.brokerd.public_key)
                ENodeB(ran_host, agw_ip=core_host.address,
                       name=f"mega-site{index}-gnb")
                _link(f"mega-site{index}-smf-link", core_host, smf_host,
                      0.0002)
            _link(f"mega-site{index}-backhaul", ran_host, core_host,
                  0.00015)
            _link(f"mega-site{index}-broker", core_host, broker_host,
                  0.0025)
            self.ran_hosts.append(ran_host)

        ue_key = keypool.pooled_keypair(_REAL_SLOT_BASE + 2)  # sim-only
        ue_class = CellBricksUe if rat == "lte" else CellBricksUe5G
        self.ues: dict = {}
        for slot, uid in enumerate(self.uids):
            ue_host = Host(sim, f"mega-ue{uid}",
                           address=allocator.address(slot))
            # Radio links to every *distinct* real site the script
            # visits (the host-driven retarget keeps the same host).
            for site in sorted(self._visited_sites(uid)):
                _link(f"mega-radio{uid}-{site}", ue_host,
                      self.ran_hosts[site], 0.0001)
            subscriber = f"mega-{uid:07d}"
            self.brokerd.enroll_subscriber(subscriber, ue_key.public_key)
            creds = UeSapCredentials(
                id_u=subscriber, id_b="b.mega", ue_key=ue_key,
                broker_public_key=self.brokerd.public_key)
            first = self._real_site(uid, 0)
            ue = ue_class(ue_host, self.ran_hosts[first].address, creds,
                          target_id_t=f"t.mega-{first}",
                          name=f"mega-cb-ue{uid}")
            ue.on_attach_done = \
                lambda result, _uid=uid: self._attach_done(_uid, result)
            self.ues[uid] = ue

        # -- cohort outcome counters (separate from the scripted ones) --
        self.arrived = 0
        self.attach_ok = 0
        self.attach_failures = 0
        self.moves = 0
        self.departed = 0
        self.latencies_ms: list[float] = []

    # -- script mapping ---------------------------------------------------
    def _real_site(self, uid: int, seg: int) -> int:
        w = self.workload
        code = w.script_codes[w.script_off[uid] + seg]
        return (code >> (2 * _SEG_BITS)) % self.n_sites

    def _visited_sites(self, uid: int) -> set:
        w = self.workload
        return {self._real_site(uid, seg) for seg in
                range(w.script_off[uid + 1] - w.script_off[uid])}

    # -- lifecycle (driven through the workload's engine) -----------------
    def on_wake(self, uid: int, action: int, token: int) -> None:
        if action == A_REAL_ARRIVE:
            self.arrived += 1
            self.ues[uid].attach()
            return
        # A_REAL_SEG
        if token != self.workload.ue_epoch[uid]:
            return
        self._segment_end(uid)

    def _attach_done(self, uid: int, result) -> None:
        w = self.workload
        if not result.success:
            # Terminal SAP failure: the cohort UE's lifecycle ends here
            # (the real stack already burned its retry budget).
            self.attach_failures += 1
            return
        self.attach_ok += 1
        # For 5G this is the registration leg (session setup follows
        # asynchronously), matching Fig 7's attach clock on both RATs.
        self.latencies_ms.append(round(result.latency * 1000.0, 4))
        code = w.script_codes[w.script_off[uid] + w.ue_seg[uid]]
        dwell_ticks = (code >> _SEG_BITS) & _SEG_MASK
        # Attach completions are not tick-aligned: round up so the
        # segment-end wake is strictly in the future.
        idx = int(w.sim.now / w.tick) + 1 + dwell_ticks
        w.engine.wake(idx, uid,
                      _M_REAL_SEG | (w.ue_epoch[uid] << _ARG_BITS))

    def _segment_end(self, uid: int) -> None:
        w = self.workload
        ue = self.ues[uid]
        ue.detach_and_forget()
        w.ue_epoch[uid] += 1
        nxt = w.ue_seg[uid] + 1
        if w.script_off[uid] + nxt >= w.script_off[uid + 1]:
            self.departed += 1
            return
        w.ue_seg[uid] = nxt
        self.moves += 1
        site = self._real_site(uid, nxt)
        ue.retarget(self.ran_hosts[site].address, f"t.mega-{site}")
        ue.attach()

    # -- reporting --------------------------------------------------------
    def summary(self) -> dict:
        lat = self.latencies_ms
        stats = self.brokerd.stats()
        return {
            "count": len(self.uids),
            "rat": self.rat,
            "sites": self.n_sites,
            "arrived": self.arrived,
            "attach_ok": self.attach_ok,
            "attach_failures": self.attach_failures,
            "moves": self.moves,
            "departed": self.departed,
            "attach_ms_mean": round(mean(lat), 4) if lat else 0.0,
            "attach_ms_p50": round(percentile(lat, 50), 4) if lat
            else 0.0,
            "attach_ms_p99": round(percentile(lat, 99), 4) if lat
            else 0.0,
            "broker_attach_ok": stats["attach_ok"],
            "broker_pipeline_batches": stats["pipeline_batches"],
            "broker_pipeline_requests": stats["pipeline_requests"],
        }


class MegaloadWorkload:
    """Builds the scripted population and executes it on one engine."""

    def __init__(self, *, ues: int, sites: int, duration: float,
                 tick: float, seed: int, engine: str,
                 adaptive: bool, compaction: bool,
                 real_fraction: float = 0.0, real_rat: str = "lte",
                 real_sites: int = 4,
                 charge_crypto: Optional[bool] = None):
        if engine not in ("legacy", "optimized"):
            raise ValueError(f"unknown engine {engine!r}")
        if not 0.0 <= real_fraction <= 1.0:
            raise ValueError(f"real_fraction {real_fraction} not in [0,1]")
        if sites >= 1 << _SEG_BITS \
                or round(DWELL_MAX / tick) >= 1 << _SEG_BITS \
                or round(POKE_GAP_MAX / tick) >= 1 << _SEG_BITS:
            raise ValueError(
                "site index or tick counts overflow the 21-bit script "
                "segment fields (tick too fine or too many sites)")
        # Population delta baseline: everything the workload allocates
        # from here on (columns, scripts, buckets, latencies) shows up
        # in rss_per_ue_bytes.
        self._rss_before = _peak_rss_bytes()
        self.ues = ues
        self.n_sites = sites
        self.duration = duration
        self.tick = tick
        self.seed = seed
        self.engine_name = engine
        self.adaptive = adaptive
        self.real_fraction = real_fraction
        self.real_rat = real_rat
        if charge_crypto is None:
            charge_crypto = real_fraction > 0
        self.charge_crypto = charge_crypto
        self.crypto_costs: Optional[dict] = None
        service_cost = BROKER_ATTACH_COST
        if charge_crypto:
            from repro.crypto.simcost import measure_crypto_costs

            self.crypto_costs = measure_crypto_costs()
            service_cost = self.crypto_costs["attach_cost_s"]
        self.sim = Simulator(compaction=compaction)
        dispatch = self._dispatch
        self.engine = (_BatchedEngine if engine == "optimized"
                       else _LegacyEngine)(self.sim, tick, dispatch)
        #: bound once — `engine.wake` runs several times per action.
        self._wake = self.engine.wake
        window = AdaptiveBatchWindow() if adaptive else None
        # -- struct-of-arrays population state ----------------------------
        n = ues
        self.ue_seg = array("b", bytes(n))            # segment cursor
        self.ue_site = array("i", [-1]) * n           # attached site
        self.ue_epoch = array("h", bytes(2 * n))      # detach generation
        self.ue_idle_token = array("h", bytes(2 * n))  # idle re-arm token
        self.ue_retried = array("b", bytes(n))        # retry flag
        self.ue_attach_started = array("d", bytes(8 * n))
        #: packed (site, dwell_ticks, poke_gap_ticks) segment codes for
        #: the whole population; uid's script is the slice
        #: ``script_codes[script_off[uid]:script_off[uid+1]]``.
        self.script_codes = array("q")
        self.script_off = array("i", bytes(4 * (n + 1)))
        #: legacy engine only: the cancellable idle event per uid (the
        #: batched engine invalidates by token instead).
        self._idle_events = [None] * n if self.engine.cancellable \
            else None
        self.broker = _MegaBroker(self.sim, self.engine, tick, window,
                                  self.ue_epoch,
                                  service_cost=service_cost)
        # -- site admission state -----------------------------------------
        self.site_attached = [0] * sites
        self.site_capacity = max(8, int(math.ceil(
            ues / sites * CAPACITY_HEADROOM * DWELL_MAX / duration)))
        # -- deterministic outcome counters -------------------------------
        self.arrived = 0
        self.attach_ok = 0
        self.attach_failures = 0
        self.retries = 0
        self.gave_up = 0
        self.moves = 0
        self.idle_detaches = 0
        self.departed = 0
        self.actions = 0
        self.attach_latencies_ms = array("d")
        self._idle_ticks = max(1, round(IDLE_TIMEOUT / tick))
        self.kpi_collector = None
        # -- mixed-fidelity cohort ----------------------------------------
        self._real_uids = frozenset()
        if real_fraction > 0:
            count = max(1, round(ues * real_fraction))
            stride = max(1, ues // count)
            self._real_uids = frozenset(range(0, stride * count,
                                              stride)[:count])
        self.real_cohort: Optional[_RealCohort] = None
        self._build_population()
        if self._real_uids:
            self.real_cohort = _RealCohort(
                self, sorted(self._real_uids), rat=real_rat,
                sites=real_sites)

    # -- fleet KPIs --------------------------------------------------------
    def attach_kpi_collector(self, store, interval: float = 1.0):
        """Sample this workload's counters into ``store`` every
        ``interval`` sim-seconds.  The probes only *read* state the
        workload already maintains, so the workload digest is unchanged
        and the overhead is one event per window."""
        from repro.obs.fleet import KpiCollector

        collector = KpiCollector(self.sim, store, interval=interval)
        collector.add_counter_probe("workload", lambda: {
            "arrived": self.arrived,
            "attach_ok": self.attach_ok,
            "attach_failures": self.attach_failures,
            "retries": self.retries,
            "gave_up": self.gave_up,
            "moves": self.moves,
            "idle_detaches": self.idle_detaches,
            "departed": self.departed,
            "actions": self.actions,
        })
        collector.add_counter_probe("broker", lambda: {
            "batches": self.broker.batches,
            "requests": self.broker.requests,
            "full_flushes": self.broker.full_flushes,
        })
        collector.add_gauge_probe("sites", lambda: {
            "attached_total": sum(self.site_attached),
            "max_load": max(self.site_attached),
            "loaded_sites": sum(1 for n in self.site_attached if n > 0),
        })
        cohort = self.real_cohort
        if cohort is not None:
            collector.add_counter_probe("real_cohort", lambda: {
                "arrived": cohort.arrived,
                "attach_ok": cohort.attach_ok,
                "attach_failures": cohort.attach_failures,
                "moves": cohort.moves,
                "departed": cohort.departed,
            })
            collector.add_latency_gauge(
                "real_cohort_latency", lambda: cohort.latencies_ms)
        self.kpi_collector = collector
        return collector

    # -- population script ------------------------------------------------
    def _build_population(self) -> None:
        """Precompute every UE's lifecycle from one seeded RNG.

        All randomness is consumed here, in uid order, before the clock
        starts: execution itself is purely deterministic state stepping,
        which is what lets the two engines replay identical outcomes.
        The script lands directly in the packed SoA columns — no per-UE
        object or tuple survives this loop.
        """
        rng = random.Random(self.seed)
        policy = TimeOfDayPolicy()
        # Map the simulated window onto one full day so the arrival
        # process crosses the 00:30/06:00 policy boundaries.
        time_scale = 24.0 * SECONDS_PER_HOUR / self.duration
        span = self.duration * ARRIVAL_SPAN
        tick = self.tick
        n_sites = self.n_sites
        codes = self.script_codes
        append = codes.append
        off = self.script_off
        wake = self.engine.wake
        real_uids = self._real_uids
        for uid in range(self.ues):
            # Diurnal thinning: candidates during the night window are
            # accepted at NIGHT_INTENSITY (fewer users awake).
            while True:
                t = rng.random() * span
                hour = (t * time_scale / SECONDS_PER_HOUR) % 24.0
                keep = NIGHT_INTENSITY if policy.is_night(hour) else 1.0
                if rng.random() < keep:
                    break
            arrival_idx = int(t / tick) + 1
            r = rng.random()
            moves = 0 if r < 0.30 else 1 if r < 0.65 else 2 if r < 0.90 \
                else 3
            for _ in range(moves + 1):
                site = rng.randrange(n_sites)
                dwell_ticks = max(1, round(
                    rng.uniform(DWELL_MIN, DWELL_MAX) / tick))
                poke_gap_ticks = max(1, round(
                    rng.uniform(POKE_GAP_MIN, POKE_GAP_MAX) / tick))
                append((site << (2 * _SEG_BITS))
                       | (dwell_ticks << _SEG_BITS) | poke_gap_ticks)
            off[uid + 1] = len(codes)
            meta = _M_REAL_ARRIVE if uid in real_uids else _M_ARRIVE
            wake(arrival_idx, uid, meta)

    # -- execution ---------------------------------------------------------
    def _now_idx(self) -> int:
        # Reads the simulator's private clock field: the `now` property
        # is a function call, and this runs once per effective action.
        return int(self.sim._now / self.tick + 0.5)

    def _dispatch(self, uid: int, meta: int) -> None:
        # `actions` counts *effective* lifecycle steps only — stale
        # wakeups (token mismatch) are bookkeeping noise whose volume
        # differs between engines (legacy cancels them out of the heap,
        # batched lets them fall through), so counting them would break
        # the cross-engine parity the digests pin.  Field decodes are
        # deferred into the branches that need them.
        action = meta >> _ACTION_SHIFT
        epoch = self.ue_epoch
        if action == A_POKE:
            # Keep-alive: re-arm the idle timer (the timer-churn pattern
            # that litters the legacy heap with cancelled entries).
            if (meta >> _ARG_BITS) & _TOKEN_MASK != epoch[uid]:
                return
            self.actions += 1
            self._arm_idle(uid)
            arg = meta & _ARG_MASK
            if arg > 0:
                seg = self.script_codes[self.script_off[uid]
                                        + self.ue_seg[uid]]
                self._wake(
                    self._now_idx() + (seg & _SEG_MASK), uid,
                    _M_POKE | (epoch[uid] << _ARG_BITS) | (arg - 1))
            return
        if action == A_ARRIVE:
            self.actions += 1
            self.arrived += 1
            self.ue_attach_started[uid] = self.sim._now
            self.broker.submit(uid)
            return
        if action == A_ATTACH_DONE:
            if (meta >> _ARG_BITS) & _TOKEN_MASK != epoch[uid]:
                return
            self.actions += 1
            self._attach_done(uid)
            return
        if action == A_IDLE:
            if (meta >> _ARG_BITS) & _TOKEN_MASK != epoch[uid] \
                    or meta & _ARG_MASK != self.ue_idle_token[uid]:
                return
            self.actions += 1
            self._detach(uid)
            self.idle_detaches += 1
            return
        if action == A_SEG_END:
            if (meta >> _ARG_BITS) & _TOKEN_MASK != epoch[uid]:
                return
            self.actions += 1
            self._detach(uid)
            nxt = self.ue_seg[uid] + 1
            if self.script_off[uid] + nxt < self.script_off[uid + 1]:
                self.ue_seg[uid] = nxt
                self.moves += 1
                self._start_attach(uid)
            else:
                self.departed += 1
            return
        # A_REAL_* — the mixed-fidelity cohort runs the real SAP stack.
        self.real_cohort.on_wake(uid, action,
                                 (meta >> _ARG_BITS) & _TOKEN_MASK)

    def _start_attach(self, uid: int) -> None:
        self.ue_attach_started[uid] = self.sim._now
        self.ue_retried[uid] = 0
        self.broker.submit(uid)

    def _attach_done(self, uid: int) -> None:
        site_attached = self.site_attached
        if self.ue_retried[uid]:
            site = self.ue_site[uid]
        else:
            site = self.script_codes[self.script_off[uid]
                                     + self.ue_seg[uid]] >> (2 * _SEG_BITS)
        if site_attached[site] >= self.site_capacity:
            self.attach_failures += 1
            if self.ue_retried[uid]:
                self.gave_up += 1
                return
            # One deterministic retry against the neighbouring site.
            self.ue_retried[uid] = 1
            self.retries += 1
            self.ue_site[uid] = (site + 1) % self.n_sites
            self.broker.submit(uid)
            return
        self.ue_site[uid] = site
        site_attached[site] += 1
        self.attach_ok += 1
        latency_ms = (self.sim._now
                      - self.ue_attach_started[uid]) * 1000.0
        self.attach_latencies_ms.append(round(latency_ms, 4))
        now_idx = self._now_idx()
        seg = self.script_codes[self.script_off[uid] + self.ue_seg[uid]]
        dwell_ticks = (seg >> _SEG_BITS) & _SEG_MASK
        poke_gap_ticks = seg & _SEG_MASK
        token_field = self.ue_epoch[uid] << _ARG_BITS
        wake = self._wake
        wake(now_idx + dwell_ticks, uid, _M_SEG_END | token_field)
        pokes = min(MAX_POKES_PER_SEGMENT, dwell_ticks // poke_gap_ticks)
        if pokes > 0:
            wake(now_idx + poke_gap_ticks, uid,
                 _M_POKE | token_field | (pokes - 1))
        self._arm_idle(uid)

    def _arm_idle(self, uid: int) -> None:
        idle_tokens = self.ue_idle_token
        token = idle_tokens[uid] + 1
        idle_tokens[uid] = token
        meta = _M_IDLE | (self.ue_epoch[uid] << _ARG_BITS) | token
        idx = self._now_idx() + self._idle_ticks
        events = self._idle_events
        if events is None:
            self._wake(idx, uid, meta)
            return
        # The Timer.start idiom: cancel the previous deadline, push a
        # fresh one — the dead entry stays in the legacy heap.
        prev = events[uid]
        if prev is not None:
            prev.cancel()
        events[uid] = self._wake(idx, uid, meta)

    def _detach(self, uid: int) -> None:
        site = self.ue_site[uid]
        if site >= 0:
            self.site_attached[site] -= 1
            self.ue_site[uid] = -1
        self.ue_epoch[uid] += 1
        events = self._idle_events
        if events is not None and events[uid] is not None:
            events[uid].cancel()
            events[uid] = None

    def run(self) -> dict:
        """Execute to completion; returns the cell dict for the report."""
        if self.kpi_collector is not None:
            self.kpi_collector.start()
        wall_start = time.perf_counter()
        processed = self.sim.run(until=self.duration + DRAIN_GRACE)
        wall = max(time.perf_counter() - wall_start, 1e-9)
        if self.kpi_collector is not None:
            self.kpi_collector.stop()
        sim_seconds = self.sim.now
        latencies = self.attach_latencies_ms
        workload = {
            "ues": self.ues,
            "sites": self.n_sites,
            "duration_s": self.duration,
            "tick_s": self.tick,
            "seed": self.seed,
            "adaptive_window": self.adaptive,
            "site_capacity": self.site_capacity,
            "arrived": self.arrived,
            "attach_ok": self.attach_ok,
            "attach_failures": self.attach_failures,
            "retries": self.retries,
            "gave_up": self.gave_up,
            "moves": self.moves,
            "idle_detaches": self.idle_detaches,
            "departed": self.departed,
            "actions": self.actions,
            "broker_batches": self.broker.batches,
            "broker_requests": self.broker.requests,
            "broker_full_flushes": self.broker.full_flushes,
            "attach_ms_mean": round(mean(latencies), 4) if latencies
            else 0.0,
            "attach_ms_p50": round(percentile(latencies, 50), 4)
            if latencies else 0.0,
            "attach_ms_p99": round(percentile(latencies, 99), 4)
            if latencies else 0.0,
        }
        # Mixed-fidelity keys appear ONLY when the feature is on, so a
        # --real-fraction 0 run keeps the byte-identical baseline digest.
        if self.real_cohort is not None:
            workload["real_fraction"] = self.real_fraction
            workload["real_cohort"] = self.real_cohort.summary()
        if self.charge_crypto:
            workload["crypto_charging"] = {
                "attach_cost_s": self.broker.service_cost,
                "sign_ms": self.crypto_costs["sign_ms"],
                "verify_ms": self.crypto_costs["verify_ms"],
            }
        digest = hashlib.sha256(json.dumps(
            workload, sort_keys=True).encode()).hexdigest()
        peak_rss = _peak_rss_bytes()
        perf = {
            "wall_s": round(wall, 4),
            "ues_per_sec": round(self.ues / wall, 1),
            "actions_per_sec": round(self.actions / wall, 1),
            "wall_per_sim_second": round(wall / max(sim_seconds, 1e-9), 6),
            "events_processed": processed,
            "events_scheduled": self.sim.events_scheduled,
            "peak_event_queue": self.sim.peak_queue,
            "heap_compactions": self.sim.compactions,
            "peak_rss_mb": round(peak_rss / (1024.0 * 1024.0), 2),
            # Peak-RSS growth across this workload's lifetime, per UE —
            # the SoA memory gate.  Only meaningful for the first cell
            # of a process (peak RSS never shrinks), which is why
            # run_megaload leads with the optimized engine.
            "rss_per_ue_bytes": round(
                max(0.0, peak_rss - self._rss_before) / self.ues, 1),
            "broker_service_cost_s": self.broker.service_cost,
            "broker_busy_s": round(self.broker.busy_s, 6),
        }
        return {
            "engine": self.engine_name,
            "compaction": self.sim.compaction,
            "workload": workload,
            "digest": digest,
            "perf": perf,
        }


def run_cell(*, ues: int = 100_000, sites: int = 256,
             duration: float = 60.0, tick: float = 0.05, seed: int = 7,
             engine: str = "optimized",
             adaptive: Optional[bool] = None,
             compaction: Optional[bool] = None,
             real_fraction: float = 0.0, real_rat: str = "lte",
             real_sites: int = 4, charge_crypto: Optional[bool] = None,
             kpi_store=None, kpi_interval: float = 1.0) -> dict:
    """Run one megaload cell.  ``adaptive``/``compaction`` default to the
    engine's natural configuration (legacy = fixed window, no
    compaction; optimized = adaptive window, compaction on) but can be
    pinned for apples-to-apples engine-equivalence checks.
    ``real_fraction`` samples that slice of the population into the
    full-fidelity SAP cohort (``real_rat`` selects the stack,
    ``real_sites`` sizes its RAN); any real cohort implies
    ``charge_crypto`` — measured RSA service times replace the
    calibrated constant in the scripted broker model.  With
    ``kpi_store`` (a :class:`~repro.obs.fleet.FleetKpiStore`), a
    read-only collector samples workload/broker/site KPIs every
    ``kpi_interval`` sim-seconds — the workload digest is unaffected."""
    if adaptive is None:
        adaptive = engine == "optimized"
    if compaction is None:
        compaction = engine == "optimized"
    workload = MegaloadWorkload(
        ues=ues, sites=sites, duration=duration, tick=tick, seed=seed,
        engine=engine, adaptive=adaptive, compaction=compaction,
        real_fraction=real_fraction, real_rat=real_rat,
        real_sites=real_sites, charge_crypto=charge_crypto)
    if kpi_store is not None:
        workload.attach_kpi_collector(kpi_store, interval=kpi_interval)
    return workload.run()


def run_megaload(*, ues: int = 100_000, sites: int = 256,
                 duration: float = 60.0, tick: float = 0.05,
                 seed: int = 7,
                 engines: tuple = ("optimized", "legacy"),
                 real_fraction: float = 0.0, real_rat: str = "lte",
                 real_sites: int = 4, kpi_store=None,
                 kpi_interval: float = 1.0) -> dict:
    """The full report: one cell per engine plus the speedup row that the
    CI smoke gate enforces (optimized vs the pre-optimization core).
    The optimized engine runs first so its ``rss_per_ue_bytes`` profile
    measures a cold process (peak RSS is monotonic per process).  The
    mixed-fidelity knobs pass straight to :func:`run_cell`; with
    ``kpi_store`` the *first* cell is sampled (one store holds one
    cell's windows)."""
    cells = [run_cell(ues=ues, sites=sites, duration=duration, tick=tick,
                      seed=seed, engine=engine,
                      real_fraction=real_fraction, real_rat=real_rat,
                      real_sites=real_sites,
                      kpi_store=kpi_store if index == 0 else None,
                      kpi_interval=kpi_interval)
             for index, engine in enumerate(engines)]
    report = {
        "bench": "megaload",
        "config": {"ues": ues, "sites": sites, "duration_s": duration,
                   "tick_s": tick, "seed": seed},
        "cells": cells,
    }
    if real_fraction > 0:
        report["config"]["real_fraction"] = real_fraction
        report["config"]["real_rat"] = real_rat
        report["config"]["real_sites"] = real_sites
    by_engine = {cell["engine"]: cell for cell in cells}
    if "legacy" in by_engine and "optimized" in by_engine:
        legacy = by_engine["legacy"]["perf"]
        optimized = by_engine["optimized"]["perf"]
        report["speedup"] = {
            "legacy_ues_per_sec": legacy["ues_per_sec"],
            "optimized_ues_per_sec": optimized["ues_per_sec"],
            "speedup": round(optimized["ues_per_sec"]
                             / max(legacy["ues_per_sec"], 1e-9), 2),
        }
    return report
