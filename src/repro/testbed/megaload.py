"""MEGALOAD — a population-scale workload over the discrete-event core.

The broker-scale bench tops out at tens of concurrent attaches from 16
sites; the paper's pitch is *millions* of users federated across many
small bTelcos.  This harness drives the gap: hundreds of sites and
10^5-10^6 lightweight UEs with

* an **arrival model** thinned by the day/night policy of Appendix A
  (reusing :class:`repro.emulation.policy.TimeOfDayPolicy`, the same
  schedule that drives the Fig 10 token-bucket policer) — the simulated
  window is mapped onto one compressed 24 h day,
* a **mobility model** — each UE's lifecycle script is a sequence of
  (site, dwell) segments; every segment boundary is a detach +
  re-attach through the broker, exactly the host-driven loop of §4.2,
* a **diurnal activity model** — attached UEs emit keep-alive pokes
  that re-arm an idle timer; sparse pokers idle out and release their
  session.

Each attach rides a modeled broker whose batching uses the
:class:`~repro.core.broker.AdaptiveBatchWindow` (Nagle-style: flush
when full, stretch under sustained load).  UEs are deliberately *not*
full crypto stacks: the point of this bench is to stress the event
engine itself, so per-UE work is a handful of state transitions and the
interesting costs are heap pushes, event allocations, and timer churn.

Two interchangeable engines execute the very same workload script:

* ``legacy`` — the pre-optimization event core: one simulator event per
  UE action, idle timers cancelled the ``Timer.start`` way (dead heap
  entries accumulate; compaction is disabled to match the historical
  simulator), fixed 2 ms broker window.
* ``optimized`` — batched UE stepping: wakeups are quantized onto a
  tick calendar (the ai-ran-sim "step the whole RAN per cell" idiom),
  so a tick's worth of UE actions costs *one* heap event; bucket lists
  are recycled through a freelist; superseded wakeups are invalidated
  by token instead of heap cancellation; the broker window adapts to
  the arrival rate; heap compaction stays on.

Both engines quantize action times to the same tick grid, so with the
same broker window policy they replay byte-identical workload outcomes
— ``tests/test_megaload.py`` pins that equivalence.  The report
(``BENCH_megaload.json``) carries, per engine cell, the deterministic
workload digest plus wall-clock figures (UEs/sec simulated, wall-clock
per sim-second, peak RSS) and the optimized-vs-legacy speedup that the
``--smoke`` CI gate enforces.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import time
from typing import Optional

from repro.analysis.stats import mean, percentile
from repro.core.broker import AdaptiveBatchWindow
from repro.emulation.policy import SECONDS_PER_HOUR, TimeOfDayPolicy
from repro.net import Simulator

try:  # pragma: no cover - platform-dependent
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None

# UE lifecycle actions (dispatch codes).
A_ARRIVE = 0
A_ATTACH_DONE = 1
A_POKE = 2
A_IDLE = 3
A_SEG_END = 4

# Model constants (seconds unless noted).
IDLE_TIMEOUT = 6.0          # idle release after this long without a poke
DWELL_MIN, DWELL_MAX = 5.0, 12.0
POKE_GAP_MIN, POKE_GAP_MAX = 2.5, 10.0
MAX_POKES_PER_SEGMENT = 5
ARRIVAL_SPAN = 0.8          # arrivals land in the first 80% of `duration`
NIGHT_INTENSITY = 0.25      # arrival thinning factor during the night window
CAPACITY_HEADROOM = 1.6     # site capacity vs the uniform-spread mean
DRAIN_GRACE = 60.0          # extra sim-seconds to let late arrivals finish
BROKER_ATTACH_COST = 0.0002  # modeled broker service per attach (s)
BROKER_WORKERS = 8
FIXED_WINDOW = 0.002        # the pre-adaptive pipeline constant


class _Ue:
    """One lightweight UE: a scripted lifecycle, no crypto, no NAS."""

    __slots__ = ("uid", "script", "seg", "site", "epoch", "idle_token",
                 "attach_started", "retried", "idle_event")

    def __init__(self, uid: int, script: tuple):
        self.uid = uid
        #: tuple of (site, dwell_ticks, poke_gap_ticks) segments
        self.script = script
        self.seg = 0
        self.site = -1              # site currently attached to (-1 = none)
        #: bumped on every detach; stale wakeups carry an older epoch
        self.epoch = 0
        #: bumped on every idle-timer re-arm; the lazy-cancellation token
        self.idle_token = 0
        self.attach_started = 0.0
        self.retried = False
        self.idle_event = None      # legacy engine: the cancellable event


class _BatchedEngine:
    """Tick-calendar stepping: one simulator event per occupied tick.

    Wakeups land in per-tick buckets processed by a single callback —
    the per-action heap push/pop of the legacy path disappears, and
    bucket lists are recycled through a freelist so steady-state
    stepping allocates no fresh containers.
    """

    cancellable = False

    def __init__(self, sim: Simulator, tick: float, dispatch):
        self.sim = sim
        self.tick = tick
        self.dispatch = dispatch
        self._buckets: dict[int, list] = {}
        self._freelist: list[list] = []

    def wake(self, idx: int, ue: _Ue, action: int, token: int,
             arg: int = 0):
        bucket = self._buckets.get(idx)
        if bucket is None:
            bucket = self._freelist.pop() if self._freelist else []
            self._buckets[idx] = bucket
            self.sim.schedule_at(idx * self.tick, self._fire, idx)
        bucket.append((ue, action, token, arg))
        return None

    def _fire(self, idx: int) -> None:
        bucket = self._buckets.pop(idx)
        dispatch = self.dispatch
        for ue, action, token, arg in bucket:
            dispatch(ue, action, token, arg)
        bucket.clear()
        if len(self._freelist) < 64:
            self._freelist.append(bucket)


class _LegacyEngine:
    """Pre-optimization stepping: one simulator event per UE action."""

    cancellable = True

    def __init__(self, sim: Simulator, tick: float, dispatch):
        self.sim = sim
        self.tick = tick
        self.dispatch = dispatch

    def wake(self, idx: int, ue: _Ue, action: int, token: int,
             arg: int = 0):
        return self.sim.schedule_at(idx * self.tick, self.dispatch,
                                    ue, action, token, arg)


class _MegaBroker:
    """The broker's auth pipeline, reduced to its batching timeline.

    Requests park in a window (fixed 2 ms, or adaptive via
    :class:`AdaptiveBatchWindow`); a flush serves the batch on
    ``BROKER_WORKERS`` earliest-free lanes and posts each completion
    back through the engine at its modeled finish tick.
    """

    __slots__ = ("sim", "engine", "tick", "adaptive", "batch",
                 "flush_event", "flushing_now", "lanes", "batches",
                 "requests", "full_flushes")

    def __init__(self, sim: Simulator, engine, tick: float,
                 adaptive: Optional[AdaptiveBatchWindow]):
        self.sim = sim
        self.engine = engine
        self.tick = tick
        self.adaptive = adaptive
        self.batch: list[_Ue] = []
        self.flush_event = None
        self.flushing_now = False
        self.lanes = [0.0] * BROKER_WORKERS
        self.batches = 0
        self.requests = 0
        self.full_flushes = 0

    def submit(self, ue: _Ue) -> None:
        now = self.sim.now
        adaptive = self.adaptive
        if adaptive is not None:
            adaptive.observe(now)
        self.batch.append(ue)
        if self.flush_event is None:
            window = FIXED_WINDOW if adaptive is None else adaptive.window()
            self.flush_event = self.sim.schedule(window, self._flush)
        elif (adaptive is not None and not self.flushing_now
                and adaptive.full(len(self.batch))):
            self.flush_event.cancel()
            self.flush_event = self.sim.schedule(0.0, self._flush)
            self.flushing_now = True
            self.full_flushes += 1

    def _flush(self) -> None:
        self.flush_event = None
        self.flushing_now = False
        batch, self.batch = self.batch, []
        if not batch:
            return
        now = self.sim.now
        tick = self.tick
        lanes = self.lanes
        wake = self.engine.wake
        self.batches += 1
        self.requests += len(batch)
        for ue in batch:
            lane = min(range(len(lanes)), key=lanes.__getitem__)
            end = max(now, lanes[lane]) + BROKER_ATTACH_COST
            lanes[lane] = end
            # Completion on the next tick boundary at/after the modeled
            # service end (strictly in the future: end > now).
            idx = int(end / tick - 1e-9) + 1
            wake(idx, ue, A_ATTACH_DONE, ue.epoch)


class MegaloadWorkload:
    """Builds the scripted population and executes it on one engine."""

    def __init__(self, *, ues: int, sites: int, duration: float,
                 tick: float, seed: int, engine: str,
                 adaptive: bool, compaction: bool):
        if engine not in ("legacy", "optimized"):
            raise ValueError(f"unknown engine {engine!r}")
        self.ues = ues
        self.n_sites = sites
        self.duration = duration
        self.tick = tick
        self.seed = seed
        self.engine_name = engine
        self.adaptive = adaptive
        self.sim = Simulator(compaction=compaction)
        dispatch = self._dispatch
        self.engine = (_BatchedEngine if engine == "optimized"
                       else _LegacyEngine)(self.sim, tick, dispatch)
        window = AdaptiveBatchWindow() if adaptive else None
        self.broker = _MegaBroker(self.sim, self.engine, tick, window)
        # -- site admission state -----------------------------------------
        self.site_attached = [0] * sites
        self.site_capacity = max(8, int(math.ceil(
            ues / sites * CAPACITY_HEADROOM * DWELL_MAX / duration)))
        # -- deterministic outcome counters -------------------------------
        self.arrived = 0
        self.attach_ok = 0
        self.attach_failures = 0
        self.retries = 0
        self.gave_up = 0
        self.moves = 0
        self.idle_detaches = 0
        self.departed = 0
        self.actions = 0
        self.attach_latencies_ms: list[float] = []
        self._idle_ticks = max(1, round(IDLE_TIMEOUT / tick))
        self.kpi_collector = None
        self._population = self._build_population()

    # -- fleet KPIs --------------------------------------------------------
    def attach_kpi_collector(self, store, interval: float = 1.0):
        """Sample this workload's counters into ``store`` every
        ``interval`` sim-seconds.  The probes only *read* state the
        workload already maintains, so the workload digest is unchanged
        and the overhead is one event per window."""
        from repro.obs.fleet import KpiCollector

        collector = KpiCollector(self.sim, store, interval=interval)
        collector.add_counter_probe("workload", lambda: {
            "arrived": self.arrived,
            "attach_ok": self.attach_ok,
            "attach_failures": self.attach_failures,
            "retries": self.retries,
            "gave_up": self.gave_up,
            "moves": self.moves,
            "idle_detaches": self.idle_detaches,
            "departed": self.departed,
            "actions": self.actions,
        })
        collector.add_counter_probe("broker", lambda: {
            "batches": self.broker.batches,
            "requests": self.broker.requests,
            "full_flushes": self.broker.full_flushes,
        })
        collector.add_gauge_probe("sites", lambda: {
            "attached_total": sum(self.site_attached),
            "max_load": max(self.site_attached),
            "loaded_sites": sum(1 for n in self.site_attached if n > 0),
        })
        self.kpi_collector = collector
        return collector

    # -- population script ------------------------------------------------
    def _build_population(self) -> list[_Ue]:
        """Precompute every UE's lifecycle from one seeded RNG.

        All randomness is consumed here, in uid order, before the clock
        starts: execution itself is purely deterministic state stepping,
        which is what lets the two engines replay identical outcomes.
        """
        rng = random.Random(self.seed)
        policy = TimeOfDayPolicy()
        # Map the simulated window onto one full day so the arrival
        # process crosses the 00:30/06:00 policy boundaries.
        time_scale = 24.0 * SECONDS_PER_HOUR / self.duration
        span = self.duration * ARRIVAL_SPAN
        tick = self.tick
        population = []
        for uid in range(self.ues):
            # Diurnal thinning: candidates during the night window are
            # accepted at NIGHT_INTENSITY (fewer users awake).
            while True:
                t = rng.random() * span
                hour = (t * time_scale / SECONDS_PER_HOUR) % 24.0
                keep = NIGHT_INTENSITY if policy.is_night(hour) else 1.0
                if rng.random() < keep:
                    break
            arrival_idx = int(t / tick) + 1
            r = rng.random()
            moves = 0 if r < 0.30 else 1 if r < 0.65 else 2 if r < 0.90 \
                else 3
            script = []
            for _ in range(moves + 1):
                site = rng.randrange(self.n_sites)
                dwell_ticks = max(1, round(
                    rng.uniform(DWELL_MIN, DWELL_MAX) / tick))
                poke_gap_ticks = max(1, round(
                    rng.uniform(POKE_GAP_MIN, POKE_GAP_MAX) / tick))
                script.append((site, dwell_ticks, poke_gap_ticks))
            ue = _Ue(uid, tuple(script))
            self.engine.wake(arrival_idx, ue, A_ARRIVE, 0)
            population.append(ue)
        return population

    # -- execution ---------------------------------------------------------
    def _now_idx(self) -> int:
        return int(self.sim.now / self.tick + 0.5)

    def _dispatch(self, ue: _Ue, action: int, token: int,
                  arg: int) -> None:
        # `actions` counts *effective* lifecycle steps only — stale
        # wakeups (token mismatch) are bookkeeping noise whose volume
        # differs between engines (legacy cancels them out of the heap,
        # batched lets them fall through), so counting them would break
        # the cross-engine parity the digests pin.
        if action == A_POKE:
            # Keep-alive: re-arm the idle timer (the timer-churn pattern
            # that litters the legacy heap with cancelled entries).
            if token != ue.epoch:
                return
            self.actions += 1
            self._arm_idle(ue)
            if arg > 0:
                seg = ue.script[ue.seg]
                self.engine.wake(self._now_idx() + seg[2], ue, A_POKE,
                                 ue.epoch, arg - 1)
            return
        if action == A_ARRIVE:
            self.actions += 1
            self.arrived += 1
            self._start_attach(ue)
            return
        if action == A_ATTACH_DONE:
            if token != ue.epoch:
                return
            self.actions += 1
            self._attach_done(ue)
            return
        if action == A_IDLE:
            if token != ue.epoch or arg != ue.idle_token:
                return
            self.actions += 1
            self._detach(ue)
            self.idle_detaches += 1
            return
        # A_SEG_END
        if token != ue.epoch:
            return
        self.actions += 1
        self._detach(ue)
        if ue.seg + 1 < len(ue.script):
            ue.seg += 1
            self.moves += 1
            self._start_attach(ue)
        else:
            self.departed += 1

    def _start_attach(self, ue: _Ue) -> None:
        ue.attach_started = self.sim.now
        ue.retried = False
        self.broker.submit(ue)

    def _attach_done(self, ue: _Ue) -> None:
        site = ue.script[ue.seg][0] if not ue.retried else ue.site
        if self.site_attached[site] >= self.site_capacity:
            self.attach_failures += 1
            if ue.retried:
                self.gave_up += 1
                return
            # One deterministic retry against the neighbouring site.
            ue.retried = True
            self.retries += 1
            ue.site = (site + 1) % self.n_sites
            self.broker.submit(ue)
            return
        ue.site = site
        self.site_attached[site] += 1
        self.attach_ok += 1
        latency_ms = (self.sim.now - ue.attach_started) * 1000.0
        self.attach_latencies_ms.append(round(latency_ms, 4))
        now_idx = self._now_idx()
        _, dwell_ticks, poke_gap_ticks = ue.script[ue.seg]
        self.engine.wake(now_idx + dwell_ticks, ue, A_SEG_END, ue.epoch)
        pokes = min(MAX_POKES_PER_SEGMENT, dwell_ticks // poke_gap_ticks)
        if pokes > 0:
            self.engine.wake(now_idx + poke_gap_ticks, ue, A_POKE,
                             ue.epoch, pokes - 1)
        self._arm_idle(ue)

    def _arm_idle(self, ue: _Ue) -> None:
        ue.idle_token += 1
        if self.engine.cancellable and ue.idle_event is not None:
            # The Timer.start idiom: cancel the previous deadline, push
            # a fresh one — the dead entry stays in the heap.
            ue.idle_event.cancel()
        ue.idle_event = self.engine.wake(
            self._now_idx() + self._idle_ticks, ue, A_IDLE, ue.epoch,
            ue.idle_token)

    def _detach(self, ue: _Ue) -> None:
        if ue.site >= 0:
            self.site_attached[ue.site] -= 1
            ue.site = -1
        ue.epoch += 1
        if self.engine.cancellable and ue.idle_event is not None:
            ue.idle_event.cancel()
            ue.idle_event = None

    def run(self) -> dict:
        """Execute to completion; returns the cell dict for the report."""
        if self.kpi_collector is not None:
            self.kpi_collector.start()
        wall_start = time.perf_counter()
        processed = self.sim.run(until=self.duration + DRAIN_GRACE)
        wall = max(time.perf_counter() - wall_start, 1e-9)
        if self.kpi_collector is not None:
            self.kpi_collector.stop()
        sim_seconds = self.sim.now
        latencies = self.attach_latencies_ms
        workload = {
            "ues": self.ues,
            "sites": self.n_sites,
            "duration_s": self.duration,
            "tick_s": self.tick,
            "seed": self.seed,
            "adaptive_window": self.adaptive,
            "site_capacity": self.site_capacity,
            "arrived": self.arrived,
            "attach_ok": self.attach_ok,
            "attach_failures": self.attach_failures,
            "retries": self.retries,
            "gave_up": self.gave_up,
            "moves": self.moves,
            "idle_detaches": self.idle_detaches,
            "departed": self.departed,
            "actions": self.actions,
            "broker_batches": self.broker.batches,
            "broker_requests": self.broker.requests,
            "broker_full_flushes": self.broker.full_flushes,
            "attach_ms_mean": round(mean(latencies), 4) if latencies
            else 0.0,
            "attach_ms_p50": round(percentile(latencies, 50), 4)
            if latencies else 0.0,
            "attach_ms_p99": round(percentile(latencies, 99), 4)
            if latencies else 0.0,
        }
        digest = hashlib.sha256(json.dumps(
            workload, sort_keys=True).encode()).hexdigest()
        peak_rss_mb = 0.0
        if resource is not None:
            usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            # Linux reports KiB, macOS bytes.
            peak_rss_mb = round(usage / 1024.0 if usage < 1 << 34
                                else usage / (1024.0 * 1024.0), 2)
        perf = {
            "wall_s": round(wall, 4),
            "ues_per_sec": round(self.ues / wall, 1),
            "actions_per_sec": round(self.actions / wall, 1),
            "wall_per_sim_second": round(wall / max(sim_seconds, 1e-9), 6),
            "events_processed": processed,
            "events_scheduled": self.sim.events_scheduled,
            "peak_event_queue": self.sim.peak_queue,
            "heap_compactions": self.sim.compactions,
            "peak_rss_mb": peak_rss_mb,
        }
        return {
            "engine": self.engine_name,
            "compaction": self.sim.compaction,
            "workload": workload,
            "digest": digest,
            "perf": perf,
        }


def run_cell(*, ues: int = 100_000, sites: int = 256,
             duration: float = 60.0, tick: float = 0.05, seed: int = 7,
             engine: str = "optimized",
             adaptive: Optional[bool] = None,
             compaction: Optional[bool] = None,
             kpi_store=None, kpi_interval: float = 1.0) -> dict:
    """Run one megaload cell.  ``adaptive``/``compaction`` default to the
    engine's natural configuration (legacy = fixed window, no
    compaction; optimized = adaptive window, compaction on) but can be
    pinned for apples-to-apples engine-equivalence checks.  With
    ``kpi_store`` (a :class:`~repro.obs.fleet.FleetKpiStore`), a
    read-only collector samples workload/broker/site KPIs every
    ``kpi_interval`` sim-seconds — the workload digest is unaffected."""
    if adaptive is None:
        adaptive = engine == "optimized"
    if compaction is None:
        compaction = engine == "optimized"
    workload = MegaloadWorkload(
        ues=ues, sites=sites, duration=duration, tick=tick, seed=seed,
        engine=engine, adaptive=adaptive, compaction=compaction)
    if kpi_store is not None:
        workload.attach_kpi_collector(kpi_store, interval=kpi_interval)
    return workload.run()


def run_megaload(*, ues: int = 100_000, sites: int = 256,
                 duration: float = 60.0, tick: float = 0.05,
                 seed: int = 7,
                 engines: tuple = ("legacy", "optimized")) -> dict:
    """The full report: one cell per engine plus the speedup row that the
    CI smoke gate enforces (optimized vs the pre-optimization core)."""
    cells = [run_cell(ues=ues, sites=sites, duration=duration, tick=tick,
                      seed=seed, engine=engine) for engine in engines]
    report = {
        "bench": "megaload",
        "config": {"ues": ues, "sites": sites, "duration_s": duration,
                   "tick_s": tick, "seed": seed},
        "cells": cells,
    }
    by_engine = {cell["engine"]: cell for cell in cells}
    if "legacy" in by_engine and "optimized" in by_engine:
        legacy = by_engine["legacy"]["perf"]
        optimized = by_engine["optimized"]["perf"]
        report["speedup"] = {
            "legacy_ues_per_sec": legacy["ues_per_sec"],
            "optimized_ues_per_sec": optimized["ues_per_sec"],
            "speedup": round(optimized["ues_per_sec"]
                             / max(legacy["ues_per_sec"], 1e-9), 2),
        }
    return report
