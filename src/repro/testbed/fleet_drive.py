"""Fleet drives over the geometric RAN with mobility-scoped grants.

The §4.2 measurement for scoped authorization: a fleet of UEs drives a
road corridor whose cells are randomly assigned to N bTelco operators.
Each UE runs the A3 cell-selection state machine
(:class:`repro.ran.selection.CellSelector`); every *emergent*
cross-operator handover feeds :meth:`MobilityManager.switch_to`, so the
re-attach load on the broker is produced by radio geometry, not by a
scripted schedule.

Two cells per RAT, same seed:

* **scoped** — each UE requests a mobility scope covering every site at
  initial attach; every subsequent cross-operator handover re-attaches
  with the broker-signed grant (zero broker auth round-trips; the
  async scope notice is off the critical path and is not an auth RPC).
* **scopes disabled** — every handover is a full ``authReqU`` broker
  round-trip: the baseline the grant is supposed to beat.

Mid-drive one operator's towers lose 60 dB of TX power (site outage):
every UE camped there reselects away within a TTT, producing the
attach-storm-after-outage scenario.  With scopes the storm never
touches the broker.

Reported per cell: MTTHO (per-UE and fleet), broker auth-RPCs per
operator handover, the handover stall distribution, storm metrics,
denial probes (replay / bad MAC / out-of-scope / expired), and
unauthorized-session-seconds.  Everything is deterministic for a given
seed; the report carries a digest the CI gate compares across runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.core.mobility import MobilityManager, build_cellbricks_network
from repro.core.sap import UeSapCredentials
from repro.core.messages import DenialCause, scope_attach_mac
from repro.crypto.keypool import pooled_keypair
from repro.net import Host, Link, Simulator
from repro.ran.cells import corridor_deployment
from repro.ran.geometry import Point, Trajectory, Waypoint
from repro.ran.propagation import capacity_bps
from repro.ran.selection import (DEFAULT_SAMPLE_INTERVAL_S, CellSelector,
                                 DriveLog, HandoverRecord)

from .netaddr import HostPrefixAllocator

SIGNALING_BANDWIDTH = 1e9
#: stationary warm-up before the drive starts: initial attaches (full
#: authReqU for everyone, scoped or not) complete here, then the broker
#: RPC baseline is snapshotted so the drive only counts *handover* load.
SETTLE_S = 1.5
#: post-drive grace for in-flight attaches and async scope notices.
DRAIN_S = 3.0


# ---------------------------------------------------------------------------
# Fleet construction
# ---------------------------------------------------------------------------

@dataclass
class FleetUe:
    """One drive participant: RAN state machine + SAP mobility manager."""

    index: int
    mm: MobilityManager
    selector: CellSelector
    trajectory: object
    log: DriveLog
    #: operator the UE most recently asked to be attached to.
    want_operator: Optional[str] = None
    #: an attach (initial / switch / recovery) is in flight.
    inflight: bool = False
    #: cross-operator target that arrived while ``inflight``.
    pending_target: Optional[str] = None
    recoveries: int = 0


def _fleet_ue_host(sim: Simulator, net, slot: int, seed: int):
    """A dedicated UE host + radio links to every site + credentials.

    Addresses come from the fleet's :class:`HostPrefixAllocator` block
    (``10.64.0`` – ``10.71.255``) — disjoint from the site prefixes
    (``10.23x``/``10.24x``/``10.25x``), the UE pools (``10.12{8+i}``)
    and the default UE host (``10.250``), so per-UE routes never shadow
    infrastructure routes.  The historical single-octet concatenation
    (``10.22{slot}``) capped the fleet at 10 hosts; the allocator
    spreads slots across a /16-style block instead.
    """
    allocator = HostPrefixAllocator(base_octet=64)
    host = Host(sim, f"fleet-ue{slot}", address=allocator.address(slot))
    ue_prefix = host.address.rsplit(".", 1)[0]
    for name, site in net.sites.items():
        enb_host = getattr(site, "enb_host", None) or site.gnb_host
        radio = Link(sim, f"fleet-ue{slot}-{name}-radio", host, enb_host,
                     bandwidth_bps=SIGNALING_BANDWIDTH, delay_s=0.0001)
        host.add_route(enb_host.address.rsplit(".", 1)[0], radio)
        enb_host.add_route(ue_prefix, radio)
    id_u = f"fleet-ue{slot}"
    key = pooled_keypair(seed * 100 + 20 + slot)
    creds = UeSapCredentials(id_u=id_u, id_b=net.brokerd.id_b, ue_key=key,
                             broker_public_key=net.brokerd.public_key)
    net.brokerd.enroll_subscriber(id_u, key.public_key)
    return dataclasses.replace(net, ue_host=host, credentials=creds)


def _build_network(sim: Simulator, rat: str, site_names: tuple, seed: int):
    if rat == "5g":
        from repro.fivegc.network5g import build_cellbricks_network_5g
        return build_cellbricks_network_5g(sim, site_names=site_names,
                                           seed=seed)
    return build_cellbricks_network(sim, site_names=site_names, seed=seed)


def _ue_class(rat: str):
    if rat == "5g":
        from repro.core.btelco5g import CellBricksUe5G
        return CellBricksUe5G
    return None


# ---------------------------------------------------------------------------
# The drive
# ---------------------------------------------------------------------------

class _FleetDriver:
    """Ticks every UE's selector and routes emergent handovers into
    SAP attaches, queueing targets while an attach is in flight."""

    def __init__(self, sim: Simulator, net, fleet: list, deployment,
                 site_names: tuple, scoped: bool, scope_ttl: float):
        self.sim = sim
        self.net = net
        self.fleet = fleet
        self.deployment = deployment
        self.site_names = site_names
        self.scoped = scoped
        self.scope_ttl = scope_ttl
        self.tick = DEFAULT_SAMPLE_INTERVAL_S
        self.end_at = 0.0

    # -- RAN tick ---------------------------------------------------------
    def run_ticks(self, end_at: float) -> None:
        self.end_at = end_at
        self._tick()

    def _tick(self) -> None:
        now = self.sim.now
        t_rel = max(0.0, now - SETTLE_S)
        for ue in self.fleet:
            pos = ue.trajectory.position_at(t_rel)
            prev = ue.selector.serving
            rsrp, switched = ue.selector.step(now, pos)
            ue.log.samples.append((now, ue.selector.serving.pci, rsrp,
                                   capacity_bps(rsrp)))
            if switched is None:
                continue
            if prev is None:
                self._initial_attach(ue, switched)
                continue
            ue.log.handovers.append(HandoverRecord(
                at=now, from_pci=prev.pci, to_pci=switched.pci,
                from_operator=prev.operator,
                to_operator=switched.operator))
            if switched.operator != ue.want_operator:
                self._request_switch(ue, switched.operator)
        if now + self.tick <= self.end_at:
            self.sim.schedule(self.tick, self._tick)

    # -- SAP glue ---------------------------------------------------------
    def _initial_attach(self, ue: FleetUe, cell) -> None:
        ue.want_operator = cell.operator
        ue.inflight = True
        mm = ue.mm
        mm.on_attached = lambda site, result, u=ue: \
            self._attach_done(u, site, True)
        mm.on_failed = lambda site, result, u=ue: \
            self._attach_done(u, site, False)
        mm.start(cell.operator)
        if self.scoped:
            mm.ue.scope_request = {"telcos": list(self.site_names),
                                   "ttl": self.scope_ttl}

    def _request_switch(self, ue: FleetUe, operator: str) -> None:
        ue.want_operator = operator
        if ue.inflight:
            ue.pending_target = operator
            return
        ue.inflight = True
        ue.mm.switch_to(operator)

    def _attach_done(self, ue: FleetUe, site, ok: bool) -> None:
        ue.inflight = False
        if not ok:
            ue.recoveries += 1
            if ue.pending_target is not None:
                target, ue.pending_target = ue.pending_target, None
                ue.inflight = True
                ue.mm.switch_to(target)
            else:
                # Re-attach where the UE last held a bearer (satellite
                # fix: current_site still names it after a failed
                # switch).
                ue.inflight = True
                ue.mm.reattach()
            return
        if ue.pending_target is not None and ue.pending_target != site.name:
            target, ue.pending_target = ue.pending_target, None
            ue.inflight = True
            ue.mm.switch_to(target)
        else:
            ue.pending_target = None


# ---------------------------------------------------------------------------
# Denial probes
# ---------------------------------------------------------------------------

def _run_denial_probes(sim: Simulator, net, rat: str, site_names: tuple,
                       seed: int, fleet: list) -> dict:
    """Attach two stationary probe UEs and dry-run each denial class
    against live bTelco state via ``validate_scope_probe`` — read-only,
    so no counters burn and the drive's accounting is untouched."""
    probes: dict = {}
    home, away = site_names[0], site_names[1]
    ue_cls = _ue_class(rat)

    # Probe hosts take the two slots right after the fleet's, so they
    # never collide with a drive UE at any fleet size.
    probe_slot = len(fleet)
    # probe A: scope restricted to its serving site (out-of-scope case).
    view_a = _fleet_ue_host(sim, net, probe_slot, seed)
    mm_a = MobilityManager(view_a, ue_class=ue_cls)
    mm_a.start(home)
    mm_a.ue.scope_request = {"telcos": [home], "ttl": 300.0}
    # probe B: a tiny TTL so the grant expires before we probe it.
    view_b = _fleet_ue_host(sim, net, probe_slot + 1, seed)
    mm_b = MobilityManager(view_b, ue_class=ue_cls)
    mm_b.start(home)
    mm_b.ue.scope_request = {"telcos": list(site_names), "ttl": 0.5}
    sim.run(until=sim.now + 1.0)

    def record(name: str, cause, expected: DenialCause) -> None:
        probes[name] = {"cause": cause, "denied": cause is not None,
                        "expected": expected.value,
                        "ok": cause == expected.value}

    agw_home = net.sites[home].agw
    agw_away = net.sites[away].agw

    grant_a = mm_a.ue.mobility_grant
    if grant_a is not None:
        tok = grant_a.token
        # Out of scope: the token only covers ``home``.
        mac = scope_attach_mac(grant_a.ss, grant_a.session_id,
                               grant_a.next_counter, away)
        record("out_of_scope",
               agw_away.validate_scope_probe(tok, grant_a.next_counter, mac),
               DenialCause.POLICY)
        # Bad MAC: right counter, garbage proof-of-possession.
        record("bad_mac",
               agw_home.validate_scope_probe(tok, grant_a.next_counter,
                                             b"\x00" * 32),
               DenialCause.BAD_SIGNATURE)
    # Replay: a counter at (or below) the committed floor.  Prefer a
    # grant a fleet UE actually re-attached with; fall back to probe A's
    # floor-0 grant (counter 0 ≤ floor 0 is still a replay).
    replayed = False
    for ue in fleet:
        grant = getattr(ue.mm.ue, "mobility_grant", None)
        site = ue.mm.current_site
        if grant is None or site is None:
            continue
        floor = site.agw._scope_counters.get(grant.session_id, 0)
        if floor <= 0:
            continue
        mac = scope_attach_mac(grant.ss, grant.session_id, floor, site.name)
        record("replay",
               site.agw.validate_scope_probe(grant.token, floor, mac),
               DenialCause.REPLAY)
        replayed = True
        break
    if not replayed and grant_a is not None:
        mac = scope_attach_mac(grant_a.ss, grant_a.session_id, 0, home)
        record("replay", agw_home.validate_scope_probe(grant_a.token, 0, mac),
               DenialCause.REPLAY)

    grant_b = mm_b.ue.mobility_grant
    if grant_b is not None:
        # Expired: 0.5 s TTL minted > 1 s ago.
        mac = scope_attach_mac(grant_b.ss, grant_b.session_id,
                               grant_b.next_counter, home)
        record("expired",
               agw_home.validate_scope_probe(grant_b.token,
                                             grant_b.next_counter, mac),
               DenialCause.EXPIRED)
    probes["all_denied"] = bool(probes) and all(
        p["ok"] for k, p in probes.items() if k != "all_denied")
    return probes


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def _percentile(values: list, q: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    pos = (len(ordered) - 1) * q
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return ordered[lo]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


def _finite_or_none(value: float) -> Optional[float]:
    return None if math.isinf(value) else round(value, 6)


def _digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# One cell
# ---------------------------------------------------------------------------

def run_fleet_drive(rat: str = "lte", ues: int = 6, duration: float = 30.0,
                    seed: int = 11, sites: int = 3,
                    scoped: bool = True, speed_mps: float = 14.0,
                    inter_site_distance_m: float = 120.0,
                    scope_ttl: float = 300.0,
                    outage_frac: Optional[float] = 0.6,
                    probes: bool = True) -> dict:
    """Run one fleet-drive cell and return its report dict.

    ``sites`` ≤ 16 (site keypool slots sit directly below the fleet
    UEs' slot range) and ``ues`` ≤ 64 (well inside the host-prefix
    allocator's 2048-slot block; two slots past the fleet are reserved
    for the denial probes).
    """
    if not 2 <= sites <= 16:
        raise ValueError("sites must be between 2 and 16")
    if not 1 <= ues <= 64:
        raise ValueError("ues must be between 1 and 64")
    site_names = tuple(f"site{i}" for i in range(sites))
    sim = Simulator()
    net = _build_network(sim, rat, site_names, seed)

    length_m = duration * speed_mps + 2 * inter_site_distance_m
    rng = random.Random(seed)
    deployment = corridor_deployment(
        length_m, inter_site_distance_m, operators=site_names,
        offset_m=30.0, rng=rng)

    ue_cls = _ue_class(rat)
    fleet: list = []
    for u in range(ues):
        view = _fleet_ue_host(sim, net, u, seed)
        mm = MobilityManager(view, ue_class=ue_cls)
        # Stagger starting positions and speeds so the fleet spreads
        # over the corridor instead of handing over in lockstep.
        drive_span = duration * speed_mps
        start_x = (u / max(1, ues)) * max(0.0, length_m - drive_span)
        speed = speed_mps * (0.9 + 0.03 * u)
        traj = Trajectory(Point(start_x, 0.0),
                          [Waypoint(Point(length_m, 0.0), speed)])
        fleet.append(FleetUe(
            index=u, mm=mm,
            selector=CellSelector(deployment, ue_id=u, seed=seed),
            trajectory=traj, log=DriveLog(duration=duration)))

    driver = _FleetDriver(sim, net, fleet, deployment, site_names,
                          scoped, scope_ttl)
    driver.run_ticks(end_at=SETTLE_S + duration)

    # Warm-up: initial attaches complete while the fleet sits still.
    sim.run(until=SETTLE_S)
    broker = net.brokerd
    rpc_baseline = broker.requests_approved + broker.requests_denied
    switch_baseline = sum(u.mm.switches for u in fleet)

    # Mid-drive tower outage: one operator's cells drop 60 dB.
    storm: dict = {}
    outage_operator = site_names[-1]
    if outage_frac is not None:
        outage_at = SETTLE_S + duration * outage_frac

        def _trigger_outage() -> None:
            for cell in deployment.cells:
                if cell.operator == outage_operator:
                    cell.tx_power_dbm -= 60.0
            storm["at_s"] = round(sim.now - SETTLE_S, 3)
            storm["rpc_before"] = (broker.requests_approved
                                   + broker.requests_denied)
            storm["switches_before"] = sum(u.mm.switches for u in fleet)
            storm["camped_on_outage"] = sum(
                1 for u in fleet if u.want_operator == outage_operator)

        sim.schedule_at(outage_at, _trigger_outage)

    sim.run(until=SETTLE_S + duration + DRAIN_S)

    if storm:
        storm["operator"] = outage_operator
        storm["handovers"] = (sum(u.mm.switches for u in fleet)
                              - storm.pop("switches_before"))
        storm["broker_auth_rpcs"] = (broker.requests_approved
                                     + broker.requests_denied
                                     - storm.pop("rpc_before"))

    # Snapshot drive-phase auth RPCs *before* the probes attach their
    # own UEs (each probe's initial attach is a legitimate full auth).
    auth_rpcs = (broker.requests_approved + broker.requests_denied
                 - rpc_baseline)

    probe_report: dict = {}
    if scoped and probes:
        probe_report = _run_denial_probes(sim, net, rat, site_names, seed,
                                          fleet)

    # -- aggregate --------------------------------------------------------
    op_handovers = sum(u.mm.switches for u in fleet) - switch_baseline
    ran_handovers = sum(u.log.handover_count for u in fleet)
    stalls_ms = sorted(
        round(lat * 1000.0, 6)
        for u in fleet for lat in u.mm.attach_latencies[1:])
    mtthos = [u.log.mttho for u in fleet]
    finite = [m for m in mtthos if not math.isinf(m)]
    scoped_attaches = sum(
        getattr(site.agw, "scoped_attaches", 0)
        for site in net.sites.values())
    unauthorized_s = sum(
        getattr(site.agw, "scope_unauthorized_session_s", 0.0)
        for site in net.sites.values())
    failures = sum(u.mm.attach_failures for u in fleet)
    causes: dict = {}
    for u in fleet:
        for cause, count in u.mm.failure_causes.items():
            causes[cause] = causes.get(cause, 0) + count

    digest_payload = {
        "handover_times": [[round(h.at, 6) for h in u.log.handovers]
                           for u in fleet],
        "switches": [u.mm.switches for u in fleet],
        "mttho": [_finite_or_none(m) for m in mtthos],
        "auth_rpcs": auth_rpcs,
        "scoped_attaches": scoped_attaches,
        "stalls_ms": [round(s, 3) for s in stalls_ms],
    }

    return {
        "rat": rat, "scoped": scoped, "ues": ues, "sites": sites,
        "seed": seed, "duration_s": duration,
        "ran_handovers": ran_handovers,
        "operator_handovers": op_handovers,
        "broker_auth_rpcs": auth_rpcs,
        "rpcs_per_handover": (round(auth_rpcs / op_handovers, 6)
                              if op_handovers else None),
        "scoped_attaches": scoped_attaches,
        "scope_notices": {"accepted": broker.scope_notices_accepted,
                          "denied": broker.scope_notices_denied},
        "attach_failures": failures,
        "failure_causes": causes,
        "recoveries": sum(u.recoveries for u in fleet),
        "mttho_s": {
            "per_ue": [_finite_or_none(m) for m in mtthos],
            "fleet_mean_s": (round(sum(finite) / len(finite), 6)
                             if finite else None),
            "finite_ues": len(finite),
        },
        "stall_ms": {
            "count": len(stalls_ms),
            "p50": _percentile(stalls_ms, 0.50),
            "p95": _percentile(stalls_ms, 0.95),
            "max": stalls_ms[-1] if stalls_ms else None,
        },
        "storm": storm,
        "probes": probe_report,
        "unauthorized_session_s": round(unauthorized_s, 9),
        "digest": _digest(digest_payload),
    }


# ---------------------------------------------------------------------------
# The suite (scoped vs disabled, per RAT) and its gates
# ---------------------------------------------------------------------------

def run_fleet_suite(rats: tuple = ("lte", "5g"), ues: int = 6,
                    duration: float = 30.0, seed: int = 11,
                    sites: int = 3,
                    determinism_check: bool = True) -> dict:
    """Scoped + scopes-disabled cells per RAT, plus the CI gates."""
    cells = []
    for rat in rats:
        cells.append(run_fleet_drive(rat=rat, ues=ues, duration=duration,
                                     seed=seed, sites=sites, scoped=True))
        cells.append(run_fleet_drive(rat=rat, ues=ues, duration=duration,
                                     seed=seed, sites=sites, scoped=False,
                                     probes=False))

    deterministic = True
    if determinism_check:
        rerun = run_fleet_drive(rat=rats[0], ues=ues, duration=duration,
                                seed=seed, sites=sites, scoped=True)
        first = next(c for c in cells
                     if c["rat"] == rats[0] and c["scoped"])
        deterministic = rerun["digest"] == first["digest"]

    gates: dict = {"deterministic_digest": deterministic}
    for rat in rats:
        scoped = next(c for c in cells if c["rat"] == rat and c["scoped"])
        plain = next(c for c in cells
                     if c["rat"] == rat and not c["scoped"])
        gates[f"{rat}_handovers_happened"] = \
            scoped["operator_handovers"] > 0
        gates[f"{rat}_scoped_zero_auth_rpcs"] = \
            scoped["broker_auth_rpcs"] == 0
        gates[f"{rat}_scoped_beats_baseline"] = (
            plain["broker_auth_rpcs"] > scoped["broker_auth_rpcs"])
        gates[f"{rat}_probes_denied"] = bool(
            scoped["probes"].get("all_denied"))
        gates[f"{rat}_zero_unauthorized_seconds"] = (
            scoped["unauthorized_session_s"] == 0.0
            and plain["unauthorized_session_s"] == 0.0)
        gates[f"{rat}_scope_notices_flow"] = (
            scoped["scope_notices"]["accepted"]
            >= scoped["scoped_attaches"] > 0)

    return {"bench": "fleet_drive", "seed": seed, "ues": ues,
            "duration_s": duration, "sites": sites,
            "cells": cells, "gates": gates,
            "pass": all(gates.values())}
