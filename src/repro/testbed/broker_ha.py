"""BROKER-HA — shard-host failures under attach churn, on both RATs.

The distributed broker (``repro.core.shardhost``) claims that losing a
shard host mid-storm costs bounded time and no correctness: attaches
keep succeeding (the UE retries retryable degraded denials), replayed
nonces stay denied *across* the failover (the replica carried the replay
window), and a revoked subscriber never accrues unauthorized session
seconds.  This drill kills shard hosts mid-attach-storm and
mid-rebalance and gates on exactly those properties; CI runs it with
``repro.cli broker-ha --smoke``.

Timeline per cell (times scale with the churn length):

1. attach/revoke churn starts across two bTelco sites;
2. the primary host of the shard owning the churned subscriber is
   crashed (fail-stop) and restarted a little later — failover promotes
   the replica, the restarted host rejoins empty and is resynced;
3. a spare shard is activated (``add_shard``) so a live rebalance runs,
   and a second crash lands right after it begins;
4. after the churn drains, a probe replays an ``authReqU`` that was
   served by the crashed shard *before* the first crash — the promoted
   replica must still deny it.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.stats import percentile
from repro.core.messages import BrokerAuthRequest, BrokerAuthResponse
from repro.core.shardhost import deploy_shard_hosts
from repro.emulation.chaos import ChaosSchedule, node_crash, run_chaos
from repro.lte.signaling import SignalingNode
from repro.net import Host, Link

#: failure-detector knobs the recovery-time gate is written against.
HEARTBEAT_INTERVAL = 0.2
DETECTION_TIMEOUT = 0.65
#: promoted-and-serving deadline after a crash: one missed-heartbeat
#: window, one extra probe period, plus promotion round trips.
RECOVERY_BOUND_S = DETECTION_TIMEOUT + 2 * HEARTBEAT_INTERVAL + 0.5

GATE_SUCCESS_RATE = 0.99


def run_cell(rat: str = "lte", *, attaches: int = 150, shards: int = 2,
             spares: int = 1, seed: int = 11, revoke_every: int = 25,
             think_time: float = 0.02, obs=None, kpi_store=None,
             kpi_interval: float = 0.5) -> dict:
    """One RAT's drill: churn + two crashes + rebalance + replay probe.

    With ``kpi_store`` a read-only collector samples the frontend's
    routing counters plus every shard host's replication backlog/lag
    into windowed KPI rows on the sim clock."""
    schedule = ChaosSchedule()
    captured: dict = {}
    replay: dict = {"denied": False, "cause": "probe never fired"}
    crash_1 = 0.8
    restart_after = 1.5
    rebalance_at = 3.0
    crash_2 = 3.1
    # Probe after both failovers settled but well inside the replay
    # window (the chaos sim drains session-TTL cleanup events, so a
    # post-run probe would arrive after the window legitimately closed).
    probe_at = 5.5

    def on_network_built(network):
        frontend = deploy_shard_hosts(
            network, num_shards=shards, spares=spares,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            detection_timeout=DETECTION_TIMEOUT)
        victim = frontend.ring.shard_for(network.credentials.id_u)
        captured.update(network=network, frontend=frontend,
                        victim=victim)
        # Background subscribers (never attached) so the scale-out
        # rebalance has a population to re-shard: roughly a third of
        # them move, exercising begin/chunk/commit over real links.
        for index in range(12):
            network.brokerd.enroll_subscriber(
                f"ha-filler-{index:02d}",
                network.credentials.ue_key.public_key)
        # Crash the victim's primary mid-storm; it restarts empty and
        # must be re-provisioned + resynced.  The second crash takes out
        # the promoted replica right after the rebalance starts, so the
        # resynced original must carry the shard through the handoff.
        schedule.add(node_crash(crash_1, f"shard{victim}",
                                duration=restart_after))
        schedule.add(node_crash(crash_2, f"shard{victim}r"))
        network.sim.schedule(rebalance_at, frontend.add_shard)
        network.sim.schedule(
            probe_at, _replay_probe, network, frontend, victim,
            crash_1, replay)
        if kpi_store is not None:
            captured["collector"] = _attach_kpi_collector(
                network, frontend, kpi_store, kpi_interval,
                horizon=probe_at + 2.0)

    report = run_chaos(
        attaches=attaches, schedule=schedule, revoke_every=revoke_every,
        seed=seed, think_time=think_time,
        on_network_built=on_network_built, obs=obs, rat=rat)
    collector = captured.get("collector")
    if collector is not None:
        collector.stop()

    frontend = captured["frontend"]
    victim = captured["victim"]
    distributed = report.broker_stats["distributed"]
    recoveries = _recovery_times(distributed["failover_log"],
                                 crashes=(crash_1, crash_2))
    return {
        "rat": rat,
        "attaches": attaches,
        "attempts": report.attempts,
        "successes": report.successes,
        "failures": report.failures,
        "success_rate": round(report.success_rate, 4),
        "failure_causes": report.failure_causes,
        "attach_p50_ms": round(report.attach_p50_ms, 3),
        "attach_p99_ms": round(report.attach_p99_ms, 3),
        "revocations": report.revocations,
        "unauthorized_session_seconds":
            report.unauthorized_session_seconds,
        "victim_shard": victim,
        "failovers_total": distributed["failovers_total"],
        "failover_log": distributed["failover_log"],
        "recovery_s": recoveries,
        "recovery_bound_s": RECOVERY_BOUND_S,
        "resyncs_total": distributed["resyncs_total"],
        "rebalances_total": distributed["rebalances_total"],
        "rebalance_log": distributed["rebalance_log"],
        "degraded_denials": distributed["degraded_denials"],
        "parked_attaches": distributed["parked_attaches"],
        "forward_giveups": distributed["forward_giveups"],
        "handoff_chunks_retried": distributed["handoff_chunks_retried"],
        "replay_denied_across_failover": replay["denied"],
        "replay_cause": replay["cause"],
        "active_shards": distributed["active_shards"],
        "shard_status": distributed["shard_status"],
    }


def _attach_kpi_collector(network, frontend, store, interval: float,
                          horizon: Optional[float] = None):
    """Probe the distributed broker: frontend routing counters, attach
    outcomes, per-shard replication backlog/lag and degraded denials."""
    from repro.obs.fleet import KpiCollector

    collector = KpiCollector(network.sim, store, interval=interval,
                             horizon=horizon)
    collector.add_counter_probe("frontend", lambda: {
        "failovers": frontend.failovers_total.value,
        "resyncs": frontend.resyncs_total.value,
        "rebalances": frontend.rebalances_total.value,
        "degraded_denials": frontend.degraded_denials.value,
        "parked_attaches": frontend.parked_attaches.value,
        "forward_giveups": frontend.forward_giveups.value,
        "handoff_chunks_retried": frontend.handoff_chunks_retried.value,
    })
    collector.add_counter_probe("brokerd", lambda: {
        "approved": network.brokerd.requests_approved,
        "denied": network.brokerd.requests_denied,
    })

    def shard_gauges() -> dict:
        out = {"pending_forwards": len(frontend._pending)}
        for sid, st in sorted(frontend.states.items()):
            out[f"s{sid}.health"] = \
                1 if st.status == "healthy" else 0
            for addr in (st.primary_addr, st.standby_addr):
                host = st.hosts[addr]
                role = "primary" if addr == st.primary_addr \
                    else "standby"
                out[f"s{sid}.{role}.repl_backlog_ops"] = \
                    host.repl_backlog_ops
                out[f"s{sid}.{role}.repl_lag_s"] = \
                    round(host.repl_lag_s, 9)
        return out

    def shard_counters() -> dict:
        out: dict = {}
        for sid, st in sorted(frontend.states.items()):
            served = denied = degraded = 0
            for host in st.hosts.values():
                served += host.auths_served
                denied += host.auths_denied
                degraded += host.degraded_denials
            out[f"s{sid}.auths_served"] = served
            out[f"s{sid}.auths_denied"] = denied
            out[f"s{sid}.degraded_denials"] = degraded
        return out

    collector.add_gauge_probe("shards", shard_gauges)
    collector.add_counter_probe("shards", shard_counters)
    collector.start()
    return collector


def _recovery_times(failover_log: list, crashes: tuple) -> list:
    """Crash-to-promoted seconds, pairing each failover with the most
    recent crash before its detection."""
    out = []
    for entry in failover_log:
        prior = [at for at in crashes if at <= entry["detected_at"]]
        if prior:
            out.append(round(entry["promoted_at"] - max(prior), 6))
    return out


def _replay_probe(network, frontend, victim: int, crash_at: float,
                  outcome: dict) -> None:
    """Re-submit an ``authReqU`` the victim shard approved before it
    crashed (re-signed by the same bTelco, as a stolen-request attacker
    would) and record whether the promoted replica denies it.  Fires as
    a scheduled event mid-run; writes into ``outcome``."""
    # Only auths old enough to have been replicated before the crash
    # prove anything about the replica's replay window.
    replicated_by = crash_at - 0.15
    candidates = [entry for entry in frontend.recent_auths
                  if entry["at"] < replicated_by
                  and entry["shard_id"] == victim]
    if not candidates:
        outcome["cause"] = "no pre-crash auth captured"
        return
    entry = candidates[-1]
    site = network.sites[entry["id_t"]]
    # Re-sign with a flipped LI flag: a *different* request envelope
    # (so the idempotency cache cannot legitimately re-serve the cached
    # response) carrying the *same* single-use nonce — exactly what a
    # stolen authReqU replayed through a colluding bTelco looks like.
    auth_req_t = site.agw.sap.augment_request(entry["auth_req_u"],
                                              lawful_intercept=True)

    sim = network.sim
    probe_host = Host(sim, "replay-probe", address="52.23.0.2")
    probe = SignalingNode(probe_host, name="replay-probe")
    link = Link(sim, "probe-broker", probe_host, network.broker_host,
                bandwidth_bps=1e9, delay_s=0.001)
    probe_host.add_route(
        network.broker_host.address.rsplit(".", 1)[0], link)
    network.broker_host.add_route(
        probe_host.address.rsplit(".", 1)[0], link)
    outcome["cause"] = "no response"

    def _on_response(src_ip, response):
        outcome["denied"] = not response.approved
        outcome["cause"] = response.cause or "approved"

    probe.on(BrokerAuthResponse, _on_response)
    probe.send_request(
        network.broker_host.address,
        BrokerAuthRequest(auth_req_t=auth_req_t, reply_token=0),
        size=auth_req_t.wire_size, timeout=0.5, max_attempts=5)


def run_suite(*, rats=("lte", "5g"), attaches: int = 150,
              shards: int = 2, spares: int = 1, seed: int = 11,
              revoke_every: int = 25, obs=None) -> dict:
    """Both RATs' cells plus the pass/fail gates CI enforces."""
    cells = [run_cell(rat, attaches=attaches, shards=shards,
                      spares=spares, seed=seed,
                      revoke_every=revoke_every, obs=obs)
             for rat in rats]
    gates = []
    for cell in cells:
        rat = cell["rat"]
        gates.extend([
            {"gate": f"{rat}:attach_success_rate",
             "value": cell["success_rate"],
             "threshold": GATE_SUCCESS_RATE,
             "pass": cell["success_rate"] >= GATE_SUCCESS_RATE},
            {"gate": f"{rat}:unauthorized_session_seconds",
             "value": cell["unauthorized_session_seconds"],
             "threshold": 0.0,
             "pass": cell["unauthorized_session_seconds"] == 0.0},
            {"gate": f"{rat}:replay_denied_across_failover",
             "value": cell["replay_denied_across_failover"],
             "threshold": True,
             "pass": cell["replay_denied_across_failover"]},
            {"gate": f"{rat}:failovers_exercised",
             "value": cell["failovers_total"], "threshold": 2,
             "pass": cell["failovers_total"] >= 2},
            {"gate": f"{rat}:recovery_time",
             "value": max(cell["recovery_s"], default=0.0),
             "threshold": RECOVERY_BOUND_S,
             "pass": bool(cell["recovery_s"]) and
             max(cell["recovery_s"]) <= RECOVERY_BOUND_S},
        ])
    return {
        "bench": "broker_ha",
        "shards": shards,
        "spares": spares,
        "attaches": attaches,
        "seed": seed,
        "heartbeat_interval_s": HEARTBEAT_INTERVAL,
        "detection_timeout_s": DETECTION_TIMEOUT,
        "cells": cells,
        "gates": gates,
        "pass": all(gate["pass"] for gate in gates),
    }
