"""Host-prefix allocation for testbed fleets.

Several harnesses give every simulated UE its own host with a unique
/24 prefix (routing in :mod:`repro.net` is an exact string match on the
first three octets).  Historical schemes concatenated the slot into a
single octet position (``f"10.22{slot}.0.2"``), which silently caps a
fleet at 10 slots and produces pseudo-octets like ``10.2210.0.2`` past
it.  :class:`HostPrefixAllocator` spreads slots across a /16-style
block instead: slot ``s`` maps to ``10.<base+s//256>.<s%256>``, giving
``span * 256`` distinct /24 prefixes per allocator.

Allocator blocks in use (keep new ones disjoint):

======================  ==========  ==============================
harness                 base_octet  second-octet range
======================  ==========  ==============================
fleet_drive UEs/probes  64          10.64 – 10.71 (span 8)
megaload real cohort    96          10.96 – 10.103 (span 8)
======================  ==========  ==============================
"""

from __future__ import annotations


class HostPrefixAllocator:
    """Maps integer slots to unique ``10.x.y`` /24 prefixes.

    ``base_octet`` picks the block (second octet of the first /24);
    ``span`` is how many second-octet values the block may consume, so
    capacity is ``span * 256`` slots.  ``address(slot)`` appends the
    fixed ``host_octet`` to the slot's prefix.
    """

    def __init__(self, base_octet: int, *, span: int = 8,
                 host_octet: int = 2):
        if not 1 <= base_octet <= 255:
            raise ValueError(f"base_octet {base_octet} out of range")
        if span < 1 or base_octet + span - 1 > 255:
            raise ValueError(
                f"span {span} overflows the second octet from "
                f"{base_octet}")
        if not 1 <= host_octet <= 254:
            raise ValueError(f"host_octet {host_octet} out of range")
        self.base_octet = base_octet
        self.span = span
        self.host_octet = host_octet

    @property
    def capacity(self) -> int:
        """Distinct /24 prefixes this allocator can hand out."""
        return self.span * 256

    def prefix(self, slot: int) -> str:
        """The /24 prefix for ``slot`` (three octets, no trailing dot)."""
        if not 0 <= slot < self.capacity:
            raise ValueError(
                f"slot {slot} out of range (capacity {self.capacity})")
        return f"10.{self.base_octet + slot // 256}.{slot % 256}"

    def address(self, slot: int) -> str:
        """The host address for ``slot``: ``<prefix>.<host_octet>``."""
        return f"{self.prefix(slot)}.{self.host_octet}"
