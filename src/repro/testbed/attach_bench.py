"""§6.1 attachment-latency benchmark (reproduces Fig 7).

Runs repeated attach requests through the full signaling stack — baseline
(unmodified-Magma-style EPS-AKA + S6a) vs CellBricks (SAP) — with the
SubscriberDB / brokerd placed locally or in an emulated EC2 region, and
reports the per-module latency breakdown exactly as the figure plots it:
"AGW + Brokerd Proc." / "eNB Proc." / "UE Proc." / "Other" (network).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from statistics import mean
from typing import Optional
from repro.core import Brokerd, CellBricksAgw, CellBricksUe, UeSapCredentials
from repro.core.qos import QosCapabilities
from repro.crypto import CertificateAuthority
from repro.crypto.keypool import pooled_keypair
from repro.lte import (
    Agw,
    ENodeB,
    ImsiGenerator,
    SubscriberDb,
    TEST_PLMN,
    UeNas,
    UsimState,
)
from repro.net import Simulator
from repro.obs import Obs, install as install_obs

from .placement import (
    AGW_ADDRESS,
    CLOUD_DB_ADDRESS,
    ENB_ADDRESS,
    PLACEMENTS,
    TestbedTopology,
)

ARCH_BASELINE = "BL"
ARCH_CELLBRICKS = "CB"

@dataclass
class AttachSample:
    """One attach trial's measurements (milliseconds)."""

    total_ms: float
    agw_brokerd_ms: float
    enb_ms: float
    ue_ms: float

    @property
    def other_ms(self) -> float:
        return max(0.0,
                   self.total_ms - self.agw_brokerd_ms - self.enb_ms
                   - self.ue_ms)


@dataclass
class AttachBenchmarkResult:
    """Aggregated Fig 7 cell: one (architecture, placement) pair."""

    arch: str
    placement: str
    samples: list = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return mean(s.total_ms for s in self.samples)

    @property
    def agw_brokerd_ms(self) -> float:
        return mean(s.agw_brokerd_ms for s in self.samples)

    @property
    def enb_ms(self) -> float:
        return mean(s.enb_ms for s in self.samples)

    @property
    def ue_ms(self) -> float:
        return mean(s.ue_ms for s in self.samples)

    @property
    def other_ms(self) -> float:
        return mean(s.other_ms for s in self.samples)


class _BenchHarness:
    """One simulator instance running repeated attach/detach cycles."""

    def __init__(self, arch: str, placement: str, seed: int = 0,
                 obs: Optional[Obs] = None):
        self.arch = arch
        self.placement = placement
        self.sim = Simulator()
        if obs is not None:
            install_obs(self.sim, obs)
        self.topology = TestbedTopology.build(self.sim, placement)
        rng = random.Random(seed)

        if arch == ARCH_BASELINE:
            self.db = SubscriberDb(self.topology.db_host, rng=rng)
            self.agw = Agw(self.topology.agw_host,
                           subscriber_db_ip=CLOUD_DB_ADDRESS)
            self.enb = ENodeB(self.topology.enb_host, agw_ip=AGW_ADDRESS)
            imsi = ImsiGenerator().next()
            record = self.db.provision(imsi)
            self.ue = UeNas(self.topology.ue_host, ENB_ADDRESS, imsi,
                            UsimState(k=record.k), str(TEST_PLMN))
            self.cloud_node = self.db
        elif arch == ARCH_CELLBRICKS:
            ca = CertificateAuthority(key=pooled_keypair(0))
            broker_key = pooled_keypair(1)
            brokerd = Brokerd(self.topology.db_host, id_b="brokerd.bench",
                              ca_public_key=ca.public_key, key=broker_key)
            telco_key = pooled_keypair(2)
            certificate = ca.issue("bench-telco", "btelco",
                                   telco_key.public_key)
            self.agw = CellBricksAgw(
                self.topology.agw_host, broker_ip=CLOUD_DB_ADDRESS,
                id_t="bench-telco", key=telco_key, certificate=certificate,
                ca_public_key=ca.public_key,
                qos_capabilities=QosCapabilities(supported_qcis=(8, 9)))
            self.agw.trust_broker("brokerd.bench", brokerd.public_key)
            self.enb = ENodeB(self.topology.enb_host, agw_ip=AGW_ADDRESS)
            ue_key = pooled_keypair(3)
            credentials = UeSapCredentials(
                id_u="bench-ue", id_b="brokerd.bench", ue_key=ue_key,
                broker_public_key=brokerd.public_key)
            brokerd.enroll_subscriber("bench-ue", ue_key.public_key)
            self.ue = CellBricksUe(self.topology.ue_host, ENB_ADDRESS,
                                   credentials, target_id_t="bench-telco")
            self.cloud_node = brokerd
        else:
            raise ValueError(f"unknown architecture {arch!r}")

        self._results: list = []
        self.ue.on_attach_done = self._record_result

    def _record_result(self, result) -> None:
        # Snapshot module times at the instant the attach completes, so
        # post-accept processing (AttachComplete, detach) stays out.
        self._results.append((result, self._module_snapshot()))

    def _module_snapshot(self) -> tuple[float, float, float]:
        agw_brokerd = self.agw.module_time + self.cloud_node.module_time
        return agw_brokerd, self.enb.module_time, self.ue.module_time

    def run_trials(self, trials: int, settle: float = 0.5) -> list:
        """Run ``trials`` attach/detach cycles; return per-trial samples."""
        samples = []
        for _ in range(trials):
            before = self._module_snapshot()
            before_count = len(self._results)
            self.ue.attach()
            deadline = self.sim.now + settle
            while len(self._results) == before_count \
                    and self.sim.now < deadline:
                self.sim.run(until=self.sim.now + 0.01)
            if len(self._results) == before_count:
                raise RuntimeError(
                    f"attach did not complete within {settle}s "
                    f"({self.arch}/{self.placement})")
            result, after = self._results[-1]
            if not result.success:
                raise RuntimeError(f"attach failed: {result.cause}")
            samples.append(AttachSample(
                total_ms=result.latency * 1000,
                agw_brokerd_ms=(after[0] - before[0]) * 1000,
                enb_ms=(after[1] - before[1]) * 1000,
                ue_ms=(after[2] - before[2]) * 1000))
            # Detach and settle before the next trial.
            self.ue.detach()
            self.sim.run(until=self.sim.now + 0.1)
        return samples


def run_attach_benchmark(arch: str, placement: str, trials: int = 100,
                         seed: int = 0) -> AttachBenchmarkResult:
    """Run one Fig 7 cell and return the averaged breakdown."""
    if placement not in PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}")
    harness = _BenchHarness(arch, placement, seed=seed)
    result = AttachBenchmarkResult(arch=arch, placement=placement)
    result.samples = harness.run_trials(trials)
    return result


def run_traced_attach(arch: str = ARCH_CELLBRICKS,
                      placement: str = "us-west-1", trials: int = 20,
                      seed: int = 0, obs: Optional[Obs] = None):
    """One Fig 7 cell with tracing installed.

    Returns ``(result, obs, harness)``: the averaged module breakdown,
    the telemetry handle holding the span tree of every attach, and the
    harness (whose nodes expose their metric registries).
    """
    if placement not in PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}")
    if obs is None:
        obs = Obs()
    harness = _BenchHarness(arch, placement, seed=seed, obs=obs)
    result = AttachBenchmarkResult(arch=arch, placement=placement)
    result.samples = harness.run_trials(trials)
    # Fold the nodes' registries into the run's fleet-wide snapshot.
    for node in (harness.ue, harness.enb, harness.agw, harness.cloud_node):
        obs.metrics.merge_from(node.metrics)
    return result, obs, harness


def run_figure7(trials: int = 100, seed: int = 0) -> list:
    """All six Fig 7 cells: {BL, CB} x {local, us-west-1, us-east-1}."""
    results = []
    for placement in ("local", "us-west-1", "us-east-1"):
        for arch in (ARCH_BASELINE, ARCH_CELLBRICKS):
            results.append(run_attach_benchmark(arch, placement,
                                                trials=trials, seed=seed))
    return results
