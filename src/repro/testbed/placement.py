"""The §6.1 prototype testbed: UE + eNodeB + AGW, with the SubscriberDB /
brokerd placed locally or in a cloud region.

Latency calibration (see DESIGN.md §6): the AGW-to-cloud round-trip times
are solved from the paper's Fig 7 pairs — the baseline pays the RTT twice
(AIR + ULR), CellBricks once (SAP), which is what makes CB *faster* than
BL for remote placements despite its ~identical processing cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net import Host, Link, Simulator

# One-way AGW <-> SubscriberDB/brokerd delays per placement (seconds).
PLACEMENTS = {
    "local": 0.0002,
    "us-west-1": 0.0025,
    "us-east-1": 0.0355,
}

UE_ADDRESS = "10.200.0.2"
ENB_ADDRESS = "10.200.0.1"
AGW_ADDRESS = "10.201.0.1"
CLOUD_DB_ADDRESS = "52.10.0.1"

RADIO_SIGNALING_DELAY = 0.0001   # UE <-> eNB NAS transport (RRC excluded)
BACKHAUL_DELAY = 0.00015         # eNB <-> AGW (same rack in the testbed)
SIGNALING_BANDWIDTH = 1e9        # control-plane links are never the bottleneck


@dataclass
class TestbedTopology:
    """Hosts and links of the Fig 6 testbed."""

    __test__ = False  # not a pytest class, despite the name

    sim: Simulator
    ue_host: Host
    enb_host: Host
    agw_host: Host
    db_host: Host
    placement: str

    @classmethod
    def build(cls, sim: Simulator, placement: str = "local",
              name: str = "testbed") -> "TestbedTopology":
        """Wire up the testbed with the SubscriberDB/brokerd at ``placement``."""
        if placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r}; "
                             f"choose from {sorted(PLACEMENTS)}")
        ue = Host(sim, f"{name}-ue", address=UE_ADDRESS)
        enb = Host(sim, f"{name}-enb", address=ENB_ADDRESS)
        agw = Host(sim, f"{name}-agw", address=AGW_ADDRESS)
        db = Host(sim, f"{name}-db", address=CLOUD_DB_ADDRESS)

        radio = Link(sim, f"{name}-radio", ue, enb,
                     bandwidth_bps=SIGNALING_BANDWIDTH,
                     delay_s=RADIO_SIGNALING_DELAY)
        backhaul = Link(sim, f"{name}-backhaul", enb, agw,
                        bandwidth_bps=SIGNALING_BANDWIDTH,
                        delay_s=BACKHAUL_DELAY)
        cloud = Link(sim, f"{name}-cloud", agw, db,
                     bandwidth_bps=SIGNALING_BANDWIDTH,
                     delay_s=PLACEMENTS[placement])

        # Multihomed signaling routes.
        enb.add_route(AGW_ADDRESS.rsplit(".", 1)[0], backhaul)
        enb.add_route(UE_ADDRESS.rsplit(".", 1)[0], radio)
        agw.add_route(UE_ADDRESS.rsplit(".", 1)[0], backhaul)
        agw.add_route(CLOUD_DB_ADDRESS.rsplit(".", 1)[0], cloud)
        return cls(sim=sim, ue_host=ue, enb_host=enb, agw_host=agw,
                   db_host=db, placement=placement)
