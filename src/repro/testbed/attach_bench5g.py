"""Fig 7 over the 5G control plane (``--rat 5g``).

The 5G twin of :mod:`repro.testbed.attach_bench`: repeated registration
cycles through the full NAS-5G stack — baseline (5G-AKA with the AUSF and
UDM behind the placement link, two visited↔home round trips) vs
CellBricks (SAP to brokerd, one) — reporting the same per-module
breakdown the figure plots.  The "AGW + Brokerd Proc." column folds in
the AMF plus whichever home-side functions the architecture uses (AUSF +
UDM for the baseline, brokerd for CellBricks), so the columns stay
comparable across generations.
"""

from __future__ import annotations

from typing import Optional

from repro.core import Brokerd, UeSapCredentials
from repro.core.qos import QosCapabilities
from repro.crypto import CertificateAuthority
from repro.crypto.keypool import pooled_keypair
from repro.lte.aka import UsimState
from repro.net import Simulator
from repro.obs import Obs, install as install_obs

from .attach_bench import (
    ARCH_BASELINE,
    ARCH_CELLBRICKS,
    AttachBenchmarkResult,
    AttachSample,
)
from .placement import PLACEMENTS

_USIM_K = bytes(range(16))


class _Bench5GHarness:
    """One simulator instance running repeated 5G register/deregister
    cycles (the NAS-5G mirror of :class:`_BenchHarness`)."""

    def __init__(self, arch: str, placement: str, seed: int = 0,
                 obs: Optional[Obs] = None):
        # Imported lazily: repro.fivegc.topology5g pulls placement
        # constants from this package, so a module-level import here
        # would close an import cycle.
        from repro.core.btelco5g import CellBricksAmf, CellBricksUe5G
        from repro.fivegc import Amf, Ausf, Gnb, Smf, Udm, Ue5G, make_supi
        from repro.fivegc.topology5g import (
            AMF_ADDRESS,
            AUSF_ADDRESS,
            BROKER_ADDRESS,
            GNB_ADDRESS,
            SMF_ADDRESS,
            Topology5G,
            UDM_ADDRESS,
        )

        self.arch = arch
        self.placement = placement
        self.sim = Simulator()
        if obs is not None:
            install_obs(self.sim, obs)
        self.topology = Topology5G.build(self.sim, placement)

        if arch == ARCH_BASELINE:
            home_key = pooled_keypair(820)
            self.udm = Udm(self.topology.udm_host, home_network_key=home_key)
            self.ausf = Ausf(self.topology.ausf_host, udm_ip=UDM_ADDRESS)
            self.smf = Smf(self.topology.smf_host)
            self.amf = Amf(self.topology.amf_host, ausf_ip=AUSF_ADDRESS,
                           smf_ip=SMF_ADDRESS)
            self.enb = Gnb(self.topology.gnb_host, agw_ip=AMF_ADDRESS)
            supi = make_supi(7 + seed)
            self.udm.provision(supi, _USIM_K)
            self.ue = Ue5G(self.topology.ue_host, GNB_ADDRESS, supi,
                           UsimState(k=_USIM_K), home_key.public_key,
                           serving_network=self.amf.serving_network)
            self.cloud_nodes = (self.ausf, self.udm)
        elif arch == ARCH_CELLBRICKS:
            ca = CertificateAuthority(key=pooled_keypair(821))
            brokerd = Brokerd(self.topology.broker_host,
                              id_b="brokerd.bench5g",
                              ca_public_key=ca.public_key,
                              key=pooled_keypair(822))
            telco_key = pooled_keypair(823)
            certificate = ca.issue("bench-telco5g", "btelco",
                                   telco_key.public_key)
            self.smf = Smf(self.topology.smf_host)
            self.amf = CellBricksAmf(
                self.topology.amf_host, broker_ip=BROKER_ADDRESS,
                smf_ip=SMF_ADDRESS, id_t="bench-telco5g", key=telco_key,
                certificate=certificate, ca_public_key=ca.public_key,
                qos_capabilities=QosCapabilities(supported_qcis=(8, 9)))
            self.amf.trust_broker("brokerd.bench5g", brokerd.public_key)
            self.enb = Gnb(self.topology.gnb_host, agw_ip=AMF_ADDRESS)
            ue_key = pooled_keypair(824)
            credentials = UeSapCredentials(
                id_u="bench-ue5g", id_b="brokerd.bench5g", ue_key=ue_key,
                broker_public_key=brokerd.public_key)
            brokerd.enroll_subscriber("bench-ue5g", ue_key.public_key)
            self.ue = CellBricksUe5G(self.topology.ue_host, GNB_ADDRESS,
                                     credentials,
                                     target_id_t="bench-telco5g")
            self.cloud_nodes = (brokerd,)
        else:
            raise ValueError(f"unknown architecture {arch!r}")

        self.agw = self.amf  # RAT-generic alias for shared tooling
        self._results: list = []
        self.ue.on_attach_done = self._record_result

    def _record_result(self, result) -> None:
        # Snapshot module times the instant the registration completes so
        # post-accept processing (RegistrationComplete, dereg) stays out.
        self._results.append((result, self._module_snapshot()))

    def _module_snapshot(self) -> tuple[float, float, float]:
        home = self.amf.module_time + sum(node.module_time
                                          for node in self.cloud_nodes)
        return home, self.enb.module_time, self.ue.module_time

    def run_trials(self, trials: int, settle: float = 0.5) -> list:
        """Run ``trials`` register/deregister cycles; return samples."""
        samples = []
        for _ in range(trials):
            before = self._module_snapshot()
            before_count = len(self._results)
            self.ue.attach()
            deadline = self.sim.now + settle
            while len(self._results) == before_count \
                    and self.sim.now < deadline:
                self.sim.run(until=self.sim.now + 0.01)
            if len(self._results) == before_count:
                raise RuntimeError(
                    f"registration did not complete within {settle}s "
                    f"({self.arch}/{self.placement})")
            result, after = self._results[-1]
            if not result.success:
                raise RuntimeError(f"registration failed: {result.cause}")
            samples.append(AttachSample(
                total_ms=result.latency * 1000,
                agw_brokerd_ms=(after[0] - before[0]) * 1000,
                enb_ms=(after[1] - before[1]) * 1000,
                ue_ms=(after[2] - before[2]) * 1000))
            # Deregister and settle before the next trial.
            self.ue.detach_and_forget()
            self.sim.run(until=self.sim.now + 0.1)
        return samples

    def reliable_retransmissions(self) -> int:
        """Total supervised retransmissions anywhere in the stack —
        exactly zero on a fault-free run."""
        total = self.ue.nas_retransmissions
        total += self.amf.accept_retransmissions
        for node in (self.amf,) + tuple(self.cloud_nodes):
            stats = node.reliable_stats()
            total += stats.get("retransmissions", 0)
        return total


def run_attach_benchmark_5g(arch: str, placement: str, trials: int = 100,
                            seed: int = 0) -> AttachBenchmarkResult:
    """Run one 5G Fig 7 cell and return the averaged breakdown."""
    if placement not in PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}")
    harness = _Bench5GHarness(arch, placement, seed=seed)
    result = AttachBenchmarkResult(arch=arch, placement=placement)
    result.samples = harness.run_trials(trials)
    return result


def run_traced_attach_5g(arch: str = ARCH_CELLBRICKS,
                         placement: str = "us-west-1", trials: int = 20,
                         seed: int = 0, obs: Optional[Obs] = None):
    """One 5G Fig 7 cell with tracing installed.

    Returns ``(result, obs, harness)`` exactly like
    :func:`repro.testbed.run_traced_attach` so RAT-generic callers (the
    CLI ``trace``/``metrics`` subcommands) need only pick the function.
    """
    if placement not in PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}")
    if obs is None:
        obs = Obs()
    harness = _Bench5GHarness(arch, placement, seed=seed, obs=obs)
    result = AttachBenchmarkResult(arch=arch, placement=placement)
    result.samples = harness.run_trials(trials)
    # Fold the nodes' registries into the run's fleet-wide snapshot.
    for node in (harness.ue, harness.enb, harness.amf) \
            + tuple(harness.cloud_nodes):
        obs.metrics.merge_from(node.metrics)
    return result, obs, harness


def run_figure7_5g(trials: int = 100, seed: int = 0) -> list:
    """All six 5G Fig 7 cells: {BL, CB} x {local, us-west-1, us-east-1}."""
    results = []
    for placement in ("local", "us-west-1", "us-east-1"):
        for arch in (ARCH_BASELINE, ARCH_CELLBRICKS):
            results.append(run_attach_benchmark_5g(
                arch, placement, trials=trials, seed=seed))
    return results
