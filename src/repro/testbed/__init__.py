"""§6.1 prototype-benchmark harness (testbed topology + attach latency)."""

from .attach_bench import (
    ARCH_BASELINE,
    ARCH_CELLBRICKS,
    AttachBenchmarkResult,
    AttachSample,
    run_attach_benchmark,
    run_figure7,
    run_traced_attach,
)
from .placement import PLACEMENTS, TestbedTopology

__all__ = [
    "ARCH_BASELINE",
    "ARCH_CELLBRICKS",
    "AttachBenchmarkResult",
    "AttachSample",
    "PLACEMENTS",
    "TestbedTopology",
    "run_attach_benchmark",
    "run_figure7",
    "run_traced_attach",
]
