"""§6.1 prototype-benchmark harness (testbed topology + attach latency)."""

from .attach_bench import (
    ARCH_BASELINE,
    ARCH_CELLBRICKS,
    AttachBenchmarkResult,
    AttachSample,
    run_attach_benchmark,
    run_figure7,
    run_traced_attach,
)
from .attach_bench5g import (
    run_attach_benchmark_5g,
    run_figure7_5g,
    run_traced_attach_5g,
)
from .megaload import MegaloadWorkload, run_megaload
from .megaload import run_cell as run_megaload_cell
from .placement import PLACEMENTS, TestbedTopology
from .traced_drive import run_traced_drive

__all__ = [
    "MegaloadWorkload",
    "run_megaload",
    "run_megaload_cell",
    "ARCH_BASELINE",
    "ARCH_CELLBRICKS",
    "AttachBenchmarkResult",
    "AttachSample",
    "PLACEMENTS",
    "TestbedTopology",
    "run_attach_benchmark",
    "run_attach_benchmark_5g",
    "run_figure7",
    "run_figure7_5g",
    "run_traced_attach",
    "run_traced_attach_5g",
    "run_traced_drive",
]
