"""S6a interface messages (Diameter AIR/AIA, ULR/ULA — TS 29.272 subset).

The baseline attach costs **two** round-trips on this interface
(Authentication Information then Update Location); the paper's Fig 7
analysis attributes CellBricks' cloud-placement win to eliminating the
second one ("a bTelco does not send the second (ULR) request").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .aka import AuthVector


@dataclass(frozen=True)
class S6aMessage:
    """Marker base class for S6a messages."""


@dataclass(frozen=True)
class AuthenticationInformationRequest(S6aMessage):
    imsi: str
    visited_plmn: str
    num_vectors: int = 1


@dataclass(frozen=True)
class AuthenticationInformationAnswer(S6aMessage):
    imsi: str
    result: str                      # "SUCCESS" or an error cause
    vectors: tuple = ()              # tuple[AuthVector, ...]


@dataclass(frozen=True)
class UpdateLocationRequest(S6aMessage):
    imsi: str
    mme_identity: str
    visited_plmn: str


@dataclass(frozen=True)
class SubscriptionData:
    """The slice of the HSS profile the MME needs to admit a UE."""

    apn: str = "internet"
    qci: int = 9
    ambr_dl_bps: float = 100e6
    ambr_ul_bps: float = 50e6


@dataclass(frozen=True)
class UpdateLocationAnswer(S6aMessage):
    imsi: str
    result: str
    subscription: SubscriptionData = field(default_factory=SubscriptionData)


MESSAGE_SIZES = {
    AuthenticationInformationRequest: 180,
    AuthenticationInformationAnswer: 320,
    UpdateLocationRequest: 200,
    UpdateLocationAnswer: 400,
}


def message_size(message: S6aMessage) -> int:
    return MESSAGE_SIZES.get(type(message), 128)
