"""Access Gateway: Magma-style integrated MME + SGW/PGW.

This is the component the paper modifies ("we extend AGW to support our
secure attachment protocol... 2,493 LoC in the AGW").  The class here is
the *unmodified baseline*: the standard EPS attach with EPS-AKA against
the SubscriberDB over S6a (two round-trips: AIR, then ULR).  The
CellBricks extension lives in :class:`repro.core.btelco.CellBricksAgw`,
which subclasses this and replaces the authentication phase with SAP —
mirroring how the real prototype layers its changes onto Magma.

Per-handler processing costs are explicit and calibrated to reproduce the
module breakdown of Fig 7 (the "AGW + Brokerd Proc." bars).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto import hmac_sha256
from repro.net import Host

from . import s6a
from .bearer import EpsBearer, SgwPgw
from .enodeb import S1DownlinkNas, S1UeContextRelease, S1UplinkNas
from .identifiers import Guti, Plmn, TEST_PLMN
from .nas import (
    AttachAccept,
    AttachComplete,
    AttachReject,
    AttachRequest,
    AuthenticationReject,
    AuthenticationRequest,
    AuthenticationResponse,
    DetachAccept,
    DetachRequest,
    NasMessage,
    SecurityModeCommand,
    SecurityModeComplete,
    message_size,
)
from .nas_transport import ProtectedNas
from .nas_transport import protect as protect_nas
from .nas_transport import unprotect as unprotect_nas
from .security import NAS_MAC_SIZE, SecurityContext, SecurityError
from .signaling import CounterAttr, SignalingNode

# Handler processing costs (seconds) — see DESIGN.md §6 for the
# calibration that reproduces Fig 7's module breakdown.
BASELINE_COSTS = {
    "attach_request": 0.0033,
    "auth_info_answer": 0.0031,
    "auth_response": 0.0036,
    "smc_complete": 0.0026,
    "update_location_answer": 0.0031,
    "attach_complete": 0.0015,
}


def smc_mac(k_nas_int: bytes, enc_alg: int, int_alg: int) -> bytes:
    """Integrity tag for the Security Mode Command/Complete exchange."""
    return hmac_sha256(k_nas_int, bytes([enc_alg, int_alg]))[:NAS_MAC_SIZE]


@dataclass
class UeContext:
    """Per-UE MME state."""

    enb_ue_id: int
    enb_ip: str
    state: str = "INITIAL"
    imsi: Optional[str] = None
    subscriber_id: Optional[str] = None  # opaque id in CellBricks
    auth_vector: object = None
    security: Optional[SecurityContext] = None
    guti: Optional[Guti] = None
    bearer: Optional[EpsBearer] = None
    subscription: Optional[s6a.SubscriptionData] = None
    attach_started_at: float = 0.0
    sap_session: object = None  # CellBricks: the broker-authorized session
    broker_id: str = ""         # CellBricks: which broker authorized us
    # -- retransmission bookkeeping --
    sap_request_key: Optional[bytes] = None  # dedup key for SAP attaches
    sap_challenge: object = None      # cached challenge for leg replay
    broker_token: Optional[int] = None     # outstanding broker reply token
    broker_corr_id: int = 0                # reliable-request correlation id
    accept_retx: int = 0                   # AttachAccept retransmissions


class Agw(SignalingNode):
    """Baseline access gateway (MME + SPGW), one per bTelco site."""

    # AttachAccept retransmission supervision: the accept is the one
    # downlink whose loss the UE cannot detect by itself mid-attach (it
    # has already stopped resending SMC complete once the accept leaves).
    accept_retx_timeout = 0.4
    accept_retx_backoff = 2.0
    accept_max_retx = 3
    obs_category = "agw"
    _NAS_SPAN_NAMES = {
        AttachRequest: "nas.agw_attach_req",
        AuthenticationResponse: "nas.agw_auth_resp",
        SecurityModeComplete: "nas.agw_smc_complete",
        AttachComplete: "nas.agw_attach_complete",
        ProtectedNas: "nas.agw_protected",
    }
    attaches_completed = CounterAttr("agw.attaches_completed")
    attaches_rejected = CounterAttr("agw.attaches_rejected")
    accept_retransmissions = CounterAttr("agw.accept_retransmissions")
    accept_give_ups = CounterAttr("agw.accept_give_ups")

    def span_name(self, message: object) -> str:
        if isinstance(message, S1UplinkNas):
            name = self._NAS_SPAN_NAMES.get(type(message.nas))
            return name if name is not None else \
                self.nas_span_name(message.nas)
        if isinstance(message, s6a.AuthenticationInformationAnswer):
            return "s6a.agw_aia"
        if isinstance(message, s6a.UpdateLocationAnswer):
            return "s6a.agw_ula"
        return super().span_name(message)

    def nas_span_name(self, nas: NasMessage) -> str:
        """Span-name hook for NAS types added by subclasses."""
        return f"nas.agw_{type(nas).__name__}"

    def __init__(self, host: Host, subscriber_db_ip: str,
                 name: str = "agw", plmn: Plmn = TEST_PLMN,
                 ue_pool_prefix: str = "10.128.0"):
        super().__init__(host, name)
        self.subscriber_db_ip = subscriber_db_ip
        self.plmn = plmn
        self.spgw = SgwPgw(pool_prefix=ue_pool_prefix)
        self.contexts: dict[int, UeContext] = {}   # enb_ue_id -> context
        self._by_imsi: dict[str, int] = {}
        self._tmsi_counter = itertools.count(0x1000)
        self.attaches_completed = 0
        self.attaches_rejected = 0
        self.accept_retransmissions = 0
        self.accept_give_ups = 0
        #: fired as (context) when an attach completes — the harness uses
        #: it to install the UE's new address on the data plane.
        self.on_attached: Optional[Callable[[UeContext], None]] = None
        self.costs = dict(BASELINE_COSTS)

        self.on(S1UplinkNas, self._handle_uplink)
        self.on(s6a.AuthenticationInformationAnswer, self._handle_aia)
        self.on(s6a.UpdateLocationAnswer, self._handle_ula)

    # Cost model: S1 messages are charged per inner NAS type.
    def processing_cost(self, message: object) -> float:
        if isinstance(message, S1UplinkNas):
            nas = message.nas
            if isinstance(nas, AttachRequest):
                return self.costs["attach_request"]
            if isinstance(nas, AuthenticationResponse):
                return self.costs["auth_response"]
            if isinstance(nas, SecurityModeComplete):
                return self.costs["smc_complete"]
            if isinstance(nas, AttachComplete):
                return self.costs["attach_complete"]
            if isinstance(nas, ProtectedNas):
                # Post-SMC envelopes (complete/detach); charged like the
                # completion handler plus the deciphering it implies.
                return self.costs["attach_complete"]
            return self.nas_processing_cost(nas)
        if isinstance(message, s6a.AuthenticationInformationAnswer):
            return self.costs["auth_info_answer"]
        if isinstance(message, s6a.UpdateLocationAnswer):
            return self.costs["update_location_answer"]
        return self.default_processing_cost

    def nas_processing_cost(self, nas: NasMessage) -> float:
        """Cost hook for NAS types added by subclasses."""
        return self.default_processing_cost

    # -- S1 uplink dispatch ---------------------------------------------------
    def _handle_uplink(self, enb_ip: str, wrapped: S1UplinkNas) -> None:
        nas = wrapped.nas
        context = self.contexts.get(wrapped.enb_ue_id)
        if context is None:
            context = UeContext(enb_ue_id=wrapped.enb_ue_id, enb_ip=enb_ip,
                                attach_started_at=self.sim.now)
            self.contexts[wrapped.enb_ue_id] = context
        if isinstance(nas, ProtectedNas):
            if context.security is None:
                return  # protected NAS before key agreement: drop
            try:
                nas = unprotect_nas(context.security, nas, downlink=False)
            except SecurityError:
                return  # tampered/replayed: drop silently
        if isinstance(nas, AttachRequest):
            self._on_attach_request(context, nas)
        elif isinstance(nas, AuthenticationResponse):
            self._on_auth_response(context, nas)
        elif isinstance(nas, SecurityModeComplete):
            self._on_smc_complete(context, nas)
        elif isinstance(nas, AttachComplete):
            self._on_attach_complete(context)
        elif isinstance(nas, DetachRequest):
            self._on_detach(context, nas)
        else:
            self.handle_extension_nas(context, nas)

    def handle_extension_nas(self, context: UeContext, nas: NasMessage) -> None:
        """Hook for NAS messages added by subclasses (SAP)."""

    def downlink(self, context: UeContext, nas: NasMessage) -> None:
        self.send(context.enb_ip,
                  S1DownlinkNas(enb_ue_id=context.enb_ue_id, nas=nas),
                  size=message_size(nas) + 24)

    def downlink_protected(self, context: UeContext,
                           nas: NasMessage) -> None:
        """Cipher + integrity-protect a post-SMC downlink NAS message."""
        if context.security is not None:
            nas = protect_nas(context.security, nas, downlink=True)
        self.downlink(context, nas)

    def reject(self, context: UeContext, cause: str) -> None:
        self.attaches_rejected += 1
        context.state = "REJECTED"
        self.downlink(context, AttachReject(cause=cause))

    # -- baseline attach state machine ----------------------------------------
    def _on_attach_request(self, context: UeContext,
                           request: AttachRequest) -> None:
        context.imsi = request.imsi
        context.subscriber_id = request.imsi
        context.state = "WAIT_AUTH_INFO"
        context.attach_started_at = self.sim.now
        self._by_imsi[request.imsi] = context.enb_ue_id
        air = s6a.AuthenticationInformationRequest(
            imsi=request.imsi, visited_plmn=str(self.plmn))
        self.send(self.subscriber_db_ip, air, size=s6a.message_size(air))

    def _handle_aia(self, src_ip: str,
                    answer: s6a.AuthenticationInformationAnswer) -> None:
        ue_id = self._by_imsi.get(answer.imsi)
        context = self.contexts.get(ue_id) if ue_id is not None else None
        if context is None or context.state != "WAIT_AUTH_INFO":
            return
        if answer.result != "SUCCESS" or not answer.vectors:
            self.reject(context, f"S6a AIR failed: {answer.result}")
            return
        context.auth_vector = answer.vectors[0]
        context.state = "WAIT_AUTH_RESPONSE"
        self.downlink(context, AuthenticationRequest(
            rand=context.auth_vector.rand, autn=context.auth_vector.autn))

    def _on_auth_response(self, context: UeContext,
                          response: AuthenticationResponse) -> None:
        if context.state == "WAIT_SMC_COMPLETE" \
                and context.auth_vector is not None \
                and response.res == context.auth_vector.xres:
            # Duplicate response: our SMC was likely lost — replay it.
            self.send_smc(context)
            return
        if context.state != "WAIT_AUTH_RESPONSE":
            return
        if context.auth_vector is None \
                or response.res != context.auth_vector.xres:
            self.attaches_rejected += 1
            context.state = "REJECTED"
            self.downlink(context, AuthenticationReject())
            return
        context.security = SecurityContext(kasme=context.auth_vector.kasme)
        context.state = "WAIT_SMC_COMPLETE"
        self.send_smc(context)

    def send_smc(self, context: UeContext) -> None:
        security = context.security
        mac = smc_mac(security.k_nas_int, security.enc_alg, security.int_alg)
        self.downlink(context, SecurityModeCommand(
            enc_alg=security.enc_alg, int_alg=security.int_alg, mac=mac))

    def _on_smc_complete(self, context: UeContext,
                         complete: SecurityModeComplete) -> None:
        if context.state == "WAIT_ATTACH_COMPLETE" \
                and context.security is not None:
            # Duplicate SMC complete: the UE never saw our AttachAccept —
            # re-send it (freshly protected) after re-verifying the MAC.
            expected = smc_mac(context.security.k_nas_int, 0xFF, 0xFF)
            if complete.mac == expected:
                self._send_attach_accept(context)
            return
        if context.state != "WAIT_SMC_COMPLETE":
            return
        expected = smc_mac(context.security.k_nas_int, 0xFF, 0xFF)
        if complete.mac != expected:
            self.reject(context, "SMC integrity failure")
            return
        self.after_security_established(context)

    def after_security_established(self, context: UeContext) -> None:
        """Baseline: second S6a round-trip (ULR) before admitting the UE.

        CellBricks overrides this to go straight to session setup — the
        bTelco "does not send the second (ULR) request" (§6.1).
        """
        context.state = "WAIT_LOCATION_UPDATE"
        ulr = s6a.UpdateLocationRequest(
            imsi=context.imsi, mme_identity=self.name,
            visited_plmn=str(self.plmn))
        self.send(self.subscriber_db_ip, ulr, size=s6a.message_size(ulr))

    def _handle_ula(self, src_ip: str,
                    answer: s6a.UpdateLocationAnswer) -> None:
        ue_id = self._by_imsi.get(answer.imsi)
        context = self.contexts.get(ue_id) if ue_id is not None else None
        if context is None or context.state != "WAIT_LOCATION_UPDATE":
            return
        if answer.result != "SUCCESS":
            self.reject(context, f"S6a ULR failed: {answer.result}")
            return
        context.subscription = answer.subscription
        self.establish_session(context)

    def establish_session(self, context: UeContext) -> None:
        """Create the default bearer and send Attach Accept."""
        subscription = context.subscription or s6a.SubscriptionData()
        context.bearer = self.spgw.create_default_bearer(
            subscriber_id=context.subscriber_id,
            qci=subscription.qci,
            ambr_dl_bps=subscription.ambr_dl_bps,
            ambr_ul_bps=subscription.ambr_ul_bps,
            apn=subscription.apn)
        context.guti = Guti(self.plmn, mme_group=1, mme_code=1,
                            m_tmsi=next(self._tmsi_counter))
        context.state = "WAIT_ATTACH_COMPLETE"
        context.accept_retx = 0
        self._send_attach_accept(context)
        self.sim.schedule(self.accept_retx_timeout,
                          self._check_attach_accept, context,
                          self.accept_retx_timeout)

    def _send_attach_accept(self, context: UeContext) -> None:
        self.downlink_protected(context, AttachAccept(
            guti=context.guti, ue_ip=context.bearer.ue_ip,
            bearer_id=context.bearer.ebi, qci=context.bearer.qci,
            ambr_dl_bps=context.bearer.ambr_dl_bps,
            ambr_ul_bps=context.bearer.ambr_ul_bps,
            apn=context.bearer.apn))

    def _check_attach_accept(self, context: UeContext,
                             timeout: float) -> None:
        """AttachAccept supervision: resend until AttachComplete arrives,
        then give up and release everything the half-open attach holds."""
        if self.contexts.get(context.enb_ue_id) is not context \
                or context.state != "WAIT_ATTACH_COMPLETE":
            return  # completed, torn down, or superseded — nothing to do
        if context.accept_retx >= self.accept_max_retx:
            self.accept_give_ups += 1
            self._abandon_attach(context)
            return
        context.accept_retx += 1
        self.accept_retransmissions += 1
        self._send_attach_accept(context)
        next_timeout = timeout * self.accept_retx_backoff
        self.sim.schedule(next_timeout, self._check_attach_accept, context,
                          next_timeout)

    def _abandon_attach(self, context: UeContext) -> None:
        """Release a half-open attach whose UE went silent (bearer,
        context, S1 association) so nothing leaks."""
        if context.bearer is not None and context.bearer.active:
            self.spgw.delete_bearer(context.bearer.ebi)
        context.state = "ABANDONED"
        self.send(context.enb_ip,
                  S1UeContextRelease(enb_ue_id=context.enb_ue_id), size=32)
        self.contexts.pop(context.enb_ue_id, None)
        if context.imsi:
            self._by_imsi.pop(context.imsi, None)

    def _on_attach_complete(self, context: UeContext) -> None:
        if context.state != "WAIT_ATTACH_COMPLETE":
            return
        context.state = "ATTACHED"
        self.attaches_completed += 1
        if self.on_attached is not None:
            self.on_attached(context)

    # -- detach -----------------------------------------------------------------
    def _on_detach(self, context: UeContext,
                   request: Optional[DetachRequest] = None) -> None:
        if context.bearer is not None and context.bearer.active:
            self.spgw.delete_bearer(context.bearer.ebi)
        context.state = "DETACHED"
        if request is None or not request.switch_off:
            # Switch-off detaches expect no acknowledgement (TS 24.301).
            self.downlink_protected(context, DetachAccept())
        self.send(context.enb_ip,
                  S1UeContextRelease(enb_ue_id=context.enb_ue_id), size=32)
        self.contexts.pop(context.enb_ue_id, None)
        if context.imsi:
            self._by_imsi.pop(context.imsi, None)

    # -- introspection -----------------------------------------------------------
    def context_for_imsi(self, imsi: str) -> Optional[UeContext]:
        ue_id = self._by_imsi.get(imsi)
        return self.contexts.get(ue_id) if ue_id is not None else None
