"""eNodeB: the base station as an S1 signaling relay.

CellBricks "allows reuse of unmodified commercially available cellular
base station equipment" (§5) — accordingly this component is identical in
both architectures: it terminates the (unmodeled) radio stack and relays
NAS transparently between UEs and the AGW, charging only forwarding time.
The Fig 7 experiment excludes RRC/lower-layer time exactly as the paper
does, so only NAS-relay processing appears in the "eNB Proc." bars.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.net import Host

from .nas import NasMessage, message_size
from .signaling import CounterAttr, SignalingNode

# Per-relay-pass processing (seconds); ~7 passes per baseline attach gives
# the ~4.5 ms "eNB Proc." share of Fig 7.
RELAY_PROCESSING = 0.00065


@dataclass(frozen=True)
class S1UplinkNas:
    """eNodeB -> MME: NAS from a connected UE."""

    enb_ue_id: int
    nas: NasMessage
    initial: bool = False


@dataclass(frozen=True)
class S1DownlinkNas:
    """MME -> eNodeB: NAS towards a connected UE."""

    enb_ue_id: int
    nas: NasMessage


@dataclass(frozen=True)
class S1UeContextRelease:
    """MME -> eNodeB: drop the UE's RRC connection (detach)."""

    enb_ue_id: int


class ENodeB(SignalingNode):
    """Relays NAS between UEs (by source address) and the AGW."""

    default_processing_cost = RELAY_PROCESSING
    obs_category = "enb"
    relayed_uplink = CounterAttr("enb.relayed_uplink")
    relayed_downlink = CounterAttr("enb.relayed_downlink")

    def span_name(self, message: object) -> str:
        if isinstance(message, S1DownlinkNas):
            return "nas.enb_relay_down"
        if isinstance(message, S1UeContextRelease):
            return "nas.enb_release"
        return "nas.enb_relay_up"

    def __init__(self, host: Host, agw_ip: str, name: str = "enb"):
        super().__init__(host, name)
        self.agw_ip = agw_ip
        self._ue_ids = itertools.count(1)
        self._ue_by_id: dict[int, str] = {}      # enb_ue_id -> UE address
        self._id_by_ue: dict[str, int] = {}
        self.default_handler = self._relay_uplink
        self.on(S1DownlinkNas, self._relay_downlink)
        self.on(S1UeContextRelease, self._release_context)
        self.relayed_uplink = 0
        self.relayed_downlink = 0

    # -- uplink: UE -> AGW ---------------------------------------------------
    def _relay_uplink(self, src_ip: str, nas: object) -> None:
        if not isinstance(nas, NasMessage):
            return
        ue_id = self._id_by_ue.get(src_ip)
        initial = ue_id is None
        if initial:
            ue_id = next(self._ue_ids)
            self._id_by_ue[src_ip] = ue_id
            self._ue_by_id[ue_id] = src_ip
        self.relayed_uplink += 1
        wrapped = S1UplinkNas(enb_ue_id=ue_id, nas=nas, initial=initial)
        self.send(self.agw_ip, wrapped, size=message_size(nas) + 24)

    # -- downlink: AGW -> UE ----------------------------------------------------
    def _relay_downlink(self, src_ip: str, wrapped: S1DownlinkNas) -> None:
        ue_ip = self._ue_by_id.get(wrapped.enb_ue_id)
        if ue_ip is None:
            return  # UE context released meanwhile
        self.relayed_downlink += 1
        self.send(ue_ip, wrapped.nas, size=message_size(wrapped.nas))

    def _release_context(self, src_ip: str,
                         release: S1UeContextRelease) -> None:
        ue_ip = self._ue_by_id.pop(release.enb_ue_id, None)
        if ue_ip is not None:
            self._id_by_ue.pop(ue_ip, None)

    @property
    def connected_ues(self) -> int:
        return len(self._ue_by_id)
