"""Signaling framework shared by every control-plane component.

Each component (UE NAS stack, eNodeB, AGW/MME, SubscriberDB, brokerd) is a
:class:`SignalingNode`: a UDP endpoint with a per-message-type handler
table and *explicit processing costs*.  Costs are charged to the virtual
clock before the handler's outbound messages go out, and accumulated into
``module_time`` — which is exactly the per-module breakdown Fig 7 plots
(AGW + Brokerd proc / eNB proc / UE proc / Other).

Reliability layer
-----------------

Signaling rides single UDP datagrams over links that model loss and
outages, so the framework also provides an *optional* reliable-request
facility (:meth:`SignalingNode.send_request`):

* the sender retransmits on a per-request timeout with capped exponential
  backoff and deterministic (seeded) jitter, keyed by a correlation id,
  until a response arrives, the attempt budget is spent, or an absolute
  deadline passes;
* the receiver keeps a bounded, TTL-evicted duplicate-suppression cache:
  a retransmitted request whose handler already ran has its cached
  response(s) replayed verbatim instead of re-executing the handler — the
  idempotency backstop every SAP exchange relies on.

Plain :meth:`SignalingNode.send` datagrams are untouched, so the layer is
strictly pay-for-use: a loss-free run issues zero retransmissions and
identical wire traffic.

Observability
-------------

Every node owns a :class:`~repro.obs.MetricsRegistry` (``self.metrics``)
— the single source of truth for its counters; the legacy integer
attributes are descriptor views onto it and ``reliable_stats()`` stays a
thin dict view.  When an :class:`repro.obs.Obs` is installed on the
simulator, each handler execution is recorded as a span (named by
:meth:`SignalingNode.span_name`) whose causal parent rides the envelope
alongside the correlation id, and retransmissions / duplicate deliveries
/ dedup-cache replays are annotated as instants.  Without an installed
``Obs`` (the default) the only cost is one failed ``getattr`` per
datagram — no spans, no events, no behavioural change.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net import Host, UdpSocket
from repro.obs import CounterAttr, MetricsRegistry

SIGNALING_PORT = 36412  # S1AP's SCTP port, reused for our UDP transport

#: envelope kinds: plain datagram, reliable request, matched response.
KIND_DATAGRAM = "dgram"
KIND_REQUEST = "req"
KIND_RESPONSE = "resp"


@dataclass
class SignalingEnvelope:
    """What actually rides inside the UDP datagram."""

    message: object
    correlation_id: int = 0
    kind: str = KIND_DATAGRAM
    attempt: int = 1
    #: trace propagation (0 = untraced): the sender's trace id and the
    #: span under which the receiver's processing span parents itself.
    trace_id: int = 0
    parent_span: int = 0


@dataclass
class _PendingRequest:
    """Sender-side bookkeeping for one reliable request in flight."""

    dst_ip: str
    dst_port: int
    message: object
    size: int
    timeout: float
    max_attempts: int
    deadline: Optional[float]
    attempts: int = 1
    timer_event: object = None
    on_give_up: Optional[Callable] = None
    on_retransmit: Optional[Callable] = None
    #: trace context captured at send_request time so retransmissions
    #: stay causally linked to the originating span.
    trace_ctx: Optional[tuple] = None


@dataclass
class _CachedRequest:
    """Receiver-side dedup entry: the replies the handler produced."""

    #: (dst_ip, dst_port, message, size) tuples captured from the handler.
    responses: list = field(default_factory=list)
    #: True once the handler has run (duplicates arriving before that are
    #: dropped — the original is still queued behind the processing cost).
    handled: bool = False
    #: True while the handler has deferred its reply (see
    #: :meth:`SignalingNode.defer_reply`): duplicates are dropped, not
    #: replayed, until the deferred completion marks the entry handled.
    deferred: bool = False


@dataclass
class _ReplyContext:
    """Active while a request handler runs: routes its sends back as
    correlated responses and captures them for duplicate replay."""

    src_ip: str
    correlation_id: int
    entry: _CachedRequest


@dataclass
class DeferredReply:
    """A request handler's captured reply/trace context, for completing
    the exchange asynchronously (e.g. from a batching pipeline).

    Obtained via :meth:`SignalingNode.defer_reply` *inside* a handler.
    Until :meth:`complete` is called, retransmitted duplicates of the
    request are dropped (the original is still being processed); after
    it, they replay whatever :meth:`send` produced, exactly as if the
    handler had replied synchronously.
    """

    node: "SignalingNode"
    reply_context: Optional[_ReplyContext]
    obs_ctx: Optional[tuple]
    done: bool = False

    def send(self, dst_ip: str, message: object, size: int = 256,
             dst_port: int = SIGNALING_PORT) -> None:
        """Send under the captured contexts: the message is correlated
        to the original request and recorded for duplicate replay."""
        node = self.node
        saved_reply = node._reply_context
        saved_obs = node._obs_ctx
        node._reply_context = self.reply_context
        node._obs_ctx = self.obs_ctx
        try:
            node.send(dst_ip, message, size=size, dst_port=dst_port)
        finally:
            node._reply_context = saved_reply
            node._obs_ctx = saved_obs

    def complete(self) -> None:
        """Close the exchange: duplicates now replay the captured
        response(s) instead of being dropped.  Idempotent."""
        if self.done:
            return
        self.done = True
        if self.reply_context is not None:
            self.reply_context.entry.deferred = False
            self.reply_context.entry.handled = True


class SignalingNode:
    """Base class for control-plane components.

    Subclasses register handlers with :meth:`on` and send messages with
    :meth:`send`.  ``processing_cost(message)`` consults the subclass's
    cost table (per message type); the handler runs after that delay and
    the time is attributed to this module.
    """

    #: message-type -> seconds of processing charged on receipt.
    processing_costs: dict = {}
    #: fallback per-message processing cost.
    default_processing_cost = 0.0005
    # -- reliable-request knobs (overridable per node/instance) ----------
    #: initial retransmission timeout (seconds).
    request_timeout = 0.4
    #: total transmission attempts before giving up.
    request_max_attempts = 5
    #: exponential backoff factor applied per retransmission.
    retx_backoff = 2.0
    #: cap on the backed-off timeout (seconds).
    retx_max_timeout = 3.0
    #: jitter fraction applied to every retransmission delay.
    retx_jitter = 0.1
    #: receiver-side duplicate-suppression cache TTL (seconds).
    response_cache_ttl = 30.0
    #: span category this node's processing is attributed to in the
    #: Fig 7 leg decomposition ("ue" / "enb" / "agw" / "cloud").
    obs_category = "node"

    # -- registry-backed counters (attribute style preserved; the node's
    # MetricsRegistry is the single source of truth) ----------------------
    messages_handled = CounterAttr("signaling.messages_handled")
    messages_sent = CounterAttr("signaling.messages_sent")
    requests_sent = CounterAttr("signaling.requests_sent")
    retransmissions = CounterAttr("signaling.retransmissions")
    requests_failed = CounterAttr("signaling.requests_failed")
    requests_completed = CounterAttr("signaling.requests_completed")
    requests_cancelled = CounterAttr("signaling.requests_cancelled")
    dup_requests = CounterAttr("signaling.dup_requests")
    dup_responses_replayed = CounterAttr("signaling.dup_responses_replayed")
    responses_unmatched = CounterAttr("signaling.responses_unmatched")
    retransmitted_deliveries = \
        CounterAttr("signaling.retransmitted_deliveries")

    def __init__(self, host: Host, name: str, port: int = SIGNALING_PORT):
        self.host = host
        self.sim = host.sim
        self.name = name
        #: per-node metrics; merge registries for a fleet-wide view.
        self.metrics = MetricsRegistry(node=name)
        self.socket = UdpSocket(host, port)
        self.socket.on_datagram = self._on_datagram
        self.port = self.socket.port
        self._handlers: dict[type, Callable] = {}
        #: catch-all handler for message types without a registration
        #: (used by relays like the eNodeB).
        self.default_handler: Optional[Callable] = None
        self.module_time = 0.0
        self.messages_handled = 0
        self.messages_sent = 0
        # Components are single-threaded servers: concurrent messages
        # queue behind each other (what makes attach latency grow under
        # load in the XTRA-SCALE benchmark).
        self._busy_until = 0.0
        #: active trace context (trace_id, span_id) stamped onto sends;
        #: set around handler execution and by long-running procedures.
        self._obs_ctx: Optional[tuple] = None
        # -- reliable-request state (sender side) ------------------------
        self._correlation_ids = itertools.count(1)
        self._pending_requests: dict[int, _PendingRequest] = {}
        #: deterministic jitter source, seeded by the node's name so runs
        #: replay bit-identically under a fixed topology.
        self._retx_rng = random.Random(f"retx:{name}")
        # -- reliable-request state (receiver side) ----------------------
        self._request_cache: dict[tuple, _CachedRequest] = {}
        self._request_cache_expiry: list[tuple[float, tuple]] = []  # heap
        self._reply_context: Optional[_ReplyContext] = None
        # -- reliability counters ----------------------------------------
        self.requests_sent = 0
        self.retransmissions = 0
        self.requests_failed = 0
        self.requests_completed = 0
        self.requests_cancelled = 0
        self.dup_requests = 0
        self.dup_responses_replayed = 0
        self.responses_unmatched = 0
        self.retransmitted_deliveries = 0

    # -- registration -------------------------------------------------------
    def on(self, message_type: type, handler: Callable) -> None:
        self._handlers[message_type] = handler

    # -- observability ------------------------------------------------------
    def obs(self):
        """The simulator's installed telemetry handle, or None (the
        zero-cost default: one attribute miss, nothing recorded)."""
        return getattr(self.sim, "obs", None)

    def span_name(self, message: object) -> str:
        """Span name for processing ``message`` at this node.  Subclasses
        override to map message types onto protocol legs (e.g.
        ``sap.broker_verify``)."""
        return f"handle.{type(message).__name__}"

    # -- sending --------------------------------------------------------------
    def send(self, dst_ip: str, message: object, size: int = 256,
             dst_port: int = SIGNALING_PORT) -> None:
        """Send a signaling message (``size`` = wire bytes).

        Inside a reliable-request handler, a send addressed back to the
        requester is automatically tagged as the request's response and
        recorded for duplicate replay.
        """
        self.messages_sent += 1
        envelope = SignalingEnvelope(message)
        if self._obs_ctx is not None:
            envelope.trace_id, envelope.parent_span = self._obs_ctx
        context = self._reply_context
        if context is not None and dst_ip == context.src_ip:
            envelope.correlation_id = context.correlation_id
            envelope.kind = KIND_RESPONSE
            context.entry.responses.append((dst_ip, dst_port, message, size))
        self.socket.send_to(dst_ip, dst_port, size, envelope)

    def send_request(self, dst_ip: str, message: object, size: int = 256,
                     dst_port: int = SIGNALING_PORT, *,
                     timeout: Optional[float] = None,
                     max_attempts: Optional[int] = None,
                     deadline: Optional[float] = None,
                     on_give_up: Optional[Callable] = None,
                     on_retransmit: Optional[Callable] = None) -> int:
        """Send ``message`` reliably: retransmit with capped exponential
        backoff until a correlated response arrives, ``max_attempts``
        transmissions have been made, or ``deadline`` (absolute sim time)
        passes.  Returns the correlation id.

        ``on_give_up(message)`` fires when the request is abandoned;
        ``on_retransmit(message, attempt)`` before each retransmission.
        The response is dispatched through the normal handler table.
        """
        correlation_id = next(self._correlation_ids)
        pending = _PendingRequest(
            dst_ip=dst_ip, dst_port=dst_port, message=message, size=size,
            timeout=timeout if timeout is not None else self.request_timeout,
            max_attempts=(max_attempts if max_attempts is not None
                          else self.request_max_attempts),
            deadline=deadline, on_give_up=on_give_up,
            on_retransmit=on_retransmit, trace_ctx=self._obs_ctx)
        self._pending_requests[correlation_id] = pending
        self.requests_sent += 1
        self._transmit_request(correlation_id, pending)
        return correlation_id

    def cancel_request(self, correlation_id: int) -> bool:
        """Stop retransmitting a request (e.g. its purpose lapsed).

        A cancelled request is neither completed nor failed: it gets its
        own counter so ``requests_sent == completed + failed + cancelled
        + outstanding`` holds at quiescence.
        """
        pending = self._pending_requests.pop(correlation_id, None)
        if pending is None:
            return False
        if pending.timer_event is not None:
            pending.timer_event.cancel()
        self.requests_cancelled += 1
        return True

    def _transmit_request(self, correlation_id: int,
                          pending: _PendingRequest) -> None:
        self.messages_sent += 1
        envelope = SignalingEnvelope(
            pending.message, correlation_id=correlation_id,
            kind=KIND_REQUEST, attempt=pending.attempts)
        if pending.trace_ctx is not None:
            envelope.trace_id, envelope.parent_span = pending.trace_ctx
        self.socket.send_to(pending.dst_ip, pending.dst_port, pending.size,
                            envelope)
        delay = pending.timeout * (
            1.0 + self.retx_jitter * (2.0 * self._retx_rng.random() - 1.0))
        pending.timer_event = self.sim.schedule(
            delay, self._request_timed_out, correlation_id)

    def _request_timed_out(self, correlation_id: int) -> None:
        pending = self._pending_requests.get(correlation_id)
        if pending is None:
            return
        out_of_attempts = pending.attempts >= pending.max_attempts
        past_deadline = (pending.deadline is not None
                         and self.sim.now >= pending.deadline)
        obs = self.obs()
        tracer = obs.tracer if obs is not None and obs.tracing else None
        ctx = pending.trace_ctx or (0, 0)
        if out_of_attempts or past_deadline:
            del self._pending_requests[correlation_id]
            self.requests_failed += 1
            if tracer is not None:
                tracer.instant(
                    "signaling.give_up", self.name, self.sim.now,
                    trace_id=ctx[0], parent_id=ctx[1],
                    category=self.obs_category,
                    data={"corr_id": correlation_id,
                          "attempts": pending.attempts})
            if pending.on_give_up is not None:
                pending.on_give_up(pending.message)
            return
        pending.attempts += 1
        pending.timeout = min(pending.timeout * self.retx_backoff,
                              self.retx_max_timeout)
        self.retransmissions += 1
        if tracer is not None:
            tracer.instant(
                "signaling.retransmit", self.name, self.sim.now,
                trace_id=ctx[0], parent_id=ctx[1],
                category=self.obs_category,
                data={"corr_id": correlation_id,
                      "attempt": pending.attempts})
        if pending.on_retransmit is not None:
            pending.on_retransmit(pending.message, pending.attempts)
        self._transmit_request(correlation_id, pending)

    def charge(self, seconds: float) -> None:
        """Attribute extra processing time to this module (e.g. crypto)."""
        self.module_time += seconds

    def processing_cost(self, message: object) -> float:
        return self.processing_costs.get(type(message),
                                         self.default_processing_cost)

    # -- receiving --------------------------------------------------------------
    def _on_datagram(self, src_ip: str, src_port: int, body: object,
                     sent_at: float) -> None:
        if not isinstance(body, SignalingEnvelope):
            return
        obs = self.obs()
        tracer = obs.tracer if obs is not None and obs.tracing else None
        if body.kind == KIND_RESPONSE:
            pending = self._pending_requests.pop(body.correlation_id, None)
            if pending is None:
                # A duplicate/stale response to a request already answered
                # or abandoned: processing it again would double side
                # effects, so drop it.
                self.responses_unmatched += 1
                return
            if pending.timer_event is not None:
                pending.timer_event.cancel()
            self.requests_completed += 1
        elif body.kind == KIND_REQUEST:
            if body.attempt > 1:
                self.retransmitted_deliveries += 1
                if tracer is not None:
                    tracer.instant(
                        "signaling.retx_delivery", self.name, self.sim.now,
                        trace_id=body.trace_id, parent_id=body.parent_span,
                        category=self.obs_category,
                        data={"corr_id": body.correlation_id,
                              "attempt": body.attempt})
                self.note_retransmitted_request(body.message)
            self._evict_request_cache()
            key = (src_ip, body.correlation_id)
            entry = self._request_cache.get(key)
            if entry is not None:
                # Duplicate: replay the cached response(s) instead of
                # re-executing the handler (idempotent receive).
                self.dup_requests += 1
                if entry.handled:
                    if tracer is not None:
                        tracer.instant(
                            "signaling.dedup_replay", self.name,
                            self.sim.now, trace_id=body.trace_id,
                            parent_id=body.parent_span,
                            category=self.obs_category,
                            data={"corr_id": body.correlation_id,
                                  "responses": len(entry.responses)})
                    for dst_ip, dst_port, message, size in entry.responses:
                        self.dup_responses_replayed += 1
                        self.messages_sent += 1
                        self.socket.send_to(
                            dst_ip, dst_port, size,
                            SignalingEnvelope(
                                message, correlation_id=body.correlation_id,
                                kind=KIND_RESPONSE,
                                trace_id=body.trace_id,
                                parent_span=body.parent_span))
                return
            entry = _CachedRequest()
            self._request_cache[key] = entry
            heapq.heappush(self._request_cache_expiry,
                           (self.sim.now + self.response_cache_ttl, key))
        message = body.message
        handler = self._handlers.get(type(message), self.default_handler)
        if handler is None:
            self.unhandled(src_ip, message)
            return
        cost = self.processing_cost(message)
        self.module_time += cost
        self.messages_handled += 1
        start = max(self.sim.now, self._busy_until)
        finish = start + cost
        self._busy_until = finish
        ctx = None
        if tracer is not None and (body.trace_id or cost > 0.0):
            span = tracer.begin(
                self.span_name(message), self.name, self.obs_category,
                start=start, end=finish, trace_id=body.trace_id,
                parent_id=body.parent_span, corr_id=body.correlation_id)
            ctx = span.context
        if body.kind == KIND_REQUEST:
            runner = self._run_request_handler
            args = (handler, src_ip, body.correlation_id, entry, message,
                    ctx)
        else:
            runner = self._run_traced_handler
            args = (handler, src_ip, message, ctx)
        if finish > self.sim.now:
            self.sim.schedule(finish - self.sim.now, runner, *args)
        else:
            runner(*args)

    def _run_traced_handler(self, handler: Callable, src_ip: str,
                            message: object,
                            ctx: Optional[tuple]) -> None:
        """Execute a plain handler with the trace context active, so any
        sends it makes carry the causal parent."""
        saved = self._obs_ctx
        if ctx is not None:
            self._obs_ctx = ctx
        try:
            handler(src_ip, message)
        finally:
            self._obs_ctx = saved

    def defer_reply(self) -> DeferredReply:
        """Capture the current handler's reply/trace context so the
        response can be produced after the handler returns (the entry
        stays unhandled — duplicates are dropped, not replayed — until
        :meth:`DeferredReply.complete`)."""
        context = self._reply_context
        if context is not None:
            context.entry.deferred = True
        return DeferredReply(node=self, reply_context=context,
                             obs_ctx=self._obs_ctx)

    def _run_request_handler(self, handler: Callable, src_ip: str,
                             correlation_id: int, entry: _CachedRequest,
                             message: object,
                             ctx: Optional[tuple] = None) -> None:
        """Execute a request handler with reply capture active."""
        self._reply_context = _ReplyContext(
            src_ip=src_ip, correlation_id=correlation_id, entry=entry)
        saved = self._obs_ctx
        if ctx is not None:
            self._obs_ctx = ctx
        try:
            handler(src_ip, message)
        finally:
            self._reply_context = None
            self._obs_ctx = saved
            if not entry.deferred:
                entry.handled = True

    def _evict_request_cache(self) -> None:
        """Drop dedup entries whose TTL has passed (monotone sweep)."""
        heap = self._request_cache_expiry
        now = self.sim.now
        while heap and heap[0][0] <= now:
            _, key = heapq.heappop(heap)
            self._request_cache.pop(key, None)

    def note_retransmitted_request(self, message: object) -> None:
        """Hook: a request delivery arrived with attempt > 1 (the sender
        retransmitted, i.e. an earlier copy or its response was lost)."""

    def reliable_stats(self) -> dict:
        """Counter snapshot for the reliability layer (all bounded)."""
        return {
            "requests_sent": self.requests_sent,
            "requests_completed": self.requests_completed,
            "requests_failed": self.requests_failed,
            "requests_cancelled": self.requests_cancelled,
            "requests_outstanding": len(self._pending_requests),
            "retransmissions": self.retransmissions,
            "dup_requests": self.dup_requests,
            "dup_responses_replayed": self.dup_responses_replayed,
            "responses_unmatched": self.responses_unmatched,
            "retransmitted_deliveries": self.retransmitted_deliveries,
            "response_cache_size": len(self._request_cache),
        }

    def unhandled(self, src_ip: str, message: object) -> None:
        """Hook for unexpected messages; default is to drop silently."""
