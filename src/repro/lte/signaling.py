"""Signaling framework shared by every control-plane component.

Each component (UE NAS stack, eNodeB, AGW/MME, SubscriberDB, brokerd) is a
:class:`SignalingNode`: a UDP endpoint with a per-message-type handler
table and *explicit processing costs*.  Costs are charged to the virtual
clock before the handler's outbound messages go out, and accumulated into
``module_time`` — which is exactly the per-module breakdown Fig 7 plots
(AGW + Brokerd proc / eNB proc / UE proc / Other).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net import Host, UdpSocket

SIGNALING_PORT = 36412  # S1AP's SCTP port, reused for our UDP transport


@dataclass
class SignalingEnvelope:
    """What actually rides inside the UDP datagram."""

    message: object
    correlation_id: int = 0


class SignalingNode:
    """Base class for control-plane components.

    Subclasses register handlers with :meth:`on` and send messages with
    :meth:`send`.  ``processing_cost(message)`` consults the subclass's
    cost table (per message type); the handler runs after that delay and
    the time is attributed to this module.
    """

    #: message-type -> seconds of processing charged on receipt.
    processing_costs: dict = {}
    #: fallback per-message processing cost.
    default_processing_cost = 0.0005

    def __init__(self, host: Host, name: str, port: int = SIGNALING_PORT):
        self.host = host
        self.sim = host.sim
        self.name = name
        self.socket = UdpSocket(host, port)
        self.socket.on_datagram = self._on_datagram
        self.port = self.socket.port
        self._handlers: dict[type, Callable] = {}
        #: catch-all handler for message types without a registration
        #: (used by relays like the eNodeB).
        self.default_handler: Optional[Callable] = None
        self.module_time = 0.0
        self.messages_handled = 0
        self.messages_sent = 0
        # Components are single-threaded servers: concurrent messages
        # queue behind each other (what makes attach latency grow under
        # load in the XTRA-SCALE benchmark).
        self._busy_until = 0.0

    # -- registration -------------------------------------------------------
    def on(self, message_type: type, handler: Callable) -> None:
        self._handlers[message_type] = handler

    # -- sending --------------------------------------------------------------
    def send(self, dst_ip: str, message: object, size: int = 256,
             dst_port: int = SIGNALING_PORT) -> None:
        """Send a signaling message (``size`` = wire bytes)."""
        self.messages_sent += 1
        self.socket.send_to(dst_ip, dst_port, size,
                            SignalingEnvelope(message))

    def charge(self, seconds: float) -> None:
        """Attribute extra processing time to this module (e.g. crypto)."""
        self.module_time += seconds

    def processing_cost(self, message: object) -> float:
        return self.processing_costs.get(type(message),
                                         self.default_processing_cost)

    # -- receiving --------------------------------------------------------------
    def _on_datagram(self, src_ip: str, src_port: int, body: object,
                     sent_at: float) -> None:
        if not isinstance(body, SignalingEnvelope):
            return
        message = body.message
        handler = self._handlers.get(type(message), self.default_handler)
        if handler is None:
            self.unhandled(src_ip, message)
            return
        cost = self.processing_cost(message)
        self.module_time += cost
        self.messages_handled += 1
        start = max(self.sim.now, self._busy_until)
        finish = start + cost
        self._busy_until = finish
        if finish > self.sim.now:
            self.sim.schedule(finish - self.sim.now, handler, src_ip,
                              message)
        else:
            handler(src_ip, message)

    def unhandled(self, src_ip: str, message: object) -> None:
        """Hook for unexpected messages; default is to drop silently."""
