"""NAS message definitions (TS 24.301 subset + CellBricks extensions).

The baseline attach uses the standard message sequence::

    UE -> MME : AttachRequest(imsi)
    MME-> HSS : AIR            (S6a round-trip #1)
    MME-> UE  : AuthenticationRequest(rand, autn)
    UE -> MME : AuthenticationResponse(res)
    MME-> UE  : SecurityModeCommand           } SMC, reused by CellBricks
    UE -> MME : SecurityModeComplete          }
    MME-> HSS : ULR            (S6a round-trip #2 - skipped by CellBricks)
    MME-> UE  : AttachAccept(guti, ip, bearer)
    UE -> MME : AttachComplete

CellBricks replaces the first four lines with the SAP exchange ("we define
new NAS messages and handlers" — §5): :class:`SapAttachRequest` carries the
opaque ``authReqU`` blob, and :class:`SapAttachChallenge` returns
``authRespU``; everything from SMC onward is reused unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .identifiers import Guti


@dataclass(frozen=True)
class NasMessage:
    """Marker base class for NAS messages."""


# -- legacy attach ----------------------------------------------------------

@dataclass(frozen=True)
class AttachRequest(NasMessage):
    imsi: str
    ue_network_capability: tuple = ("EEA2", "EIA2")


@dataclass(frozen=True)
class AuthenticationRequest(NasMessage):
    rand: bytes
    autn: bytes


@dataclass(frozen=True)
class AuthenticationResponse(NasMessage):
    res: bytes


@dataclass(frozen=True)
class AuthenticationReject(NasMessage):
    cause: str = "authentication failure"


@dataclass(frozen=True)
class SecurityModeCommand(NasMessage):
    """Integrity-protected algorithm selection (TS 33.401 SMC)."""

    enc_alg: int
    int_alg: int
    mac: bytes  # over (enc_alg, int_alg) with the new K_NASint


@dataclass(frozen=True)
class SecurityModeComplete(NasMessage):
    mac: bytes


@dataclass(frozen=True)
class SecurityModeReject(NasMessage):
    cause: str = "security mode failure"


@dataclass(frozen=True)
class AttachAccept(NasMessage):
    guti: Optional[Guti]
    ue_ip: str
    bearer_id: int
    qci: int
    ambr_dl_bps: float
    ambr_ul_bps: float
    apn: str = "internet"


@dataclass(frozen=True)
class AttachComplete(NasMessage):
    pass


@dataclass(frozen=True)
class AttachReject(NasMessage):
    cause: str


@dataclass(frozen=True)
class DetachRequest(NasMessage):
    switch_off: bool = False


@dataclass(frozen=True)
class DetachAccept(NasMessage):
    pass


# -- CellBricks SAP extensions (new NAS messages, §5) -------------------------

@dataclass(frozen=True)
class SapAttachRequest(NasMessage):
    """Carries the UE's opaque authReqU: (sig, authVec*, idB).

    The bTelco cannot read the encrypted authentication vector — it only
    learns the broker identity it must forward to.
    """

    auth_req_u: object  # repro.core.messages.AuthReqU
    ue_network_capability: tuple = ("EEA2", "EIA2")


@dataclass(frozen=True)
class SapAttachChallenge(NasMessage):
    """Returns the broker's authRespU blob to the UE (step 4 of SAP)."""

    auth_resp_u: object  # repro.core.messages.SealedResponse


@dataclass(frozen=True)
class SapAttachReject(NasMessage):
    cause: str
    #: broker-side transient condition (degraded shard): the UE should
    #: back off and retry instead of treating this as EMM-reset give-up.
    retryable: bool = False


@dataclass(frozen=True)
class SapScopedAttachRequest(NasMessage):
    """Mobility-scoped re-attach (§4.2): the broker-signed scope token
    plus a proof-of-possession MAC over (sid, counter, target bTelco).

    The serving bTelco validates everything locally — no broker
    round-trip on the attach critical path.
    """

    token: object   # repro.core.messages.ScopeToken
    counter: int
    mac: bytes
    ue_network_capability: tuple = ("EEA2", "EIA2")


# Wire-size estimates (bytes) used for transport accounting.
MESSAGE_SIZES = {
    AttachRequest: 120,
    AuthenticationRequest: 68,
    AuthenticationResponse: 24,
    AuthenticationReject: 16,
    SecurityModeCommand: 28,
    SecurityModeComplete: 20,
    SecurityModeReject: 16,
    AttachAccept: 180,
    AttachComplete: 16,
    AttachReject: 24,
    DetachRequest: 20,
    DetachAccept: 12,
    SapAttachRequest: 680,    # RSA-hybrid authReqU dominates
    SapAttachChallenge: 560,  # sealed authRespU
    SapAttachReject: 24,
    SapScopedAttachRequest: 840,  # signed scope token + ess map + MAC
}


def message_size(message: NasMessage) -> int:
    """Wire size of a NAS message (default 64 B for unknown types).

    Messages with a dynamic ``wire_size`` (protected envelopes, SAP
    blobs) report their own size.
    """
    dynamic = getattr(message, "wire_size", None)
    if dynamic is not None:
        return dynamic
    return MESSAGE_SIZES.get(type(message), 64)
