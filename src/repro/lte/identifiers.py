"""Cellular identifiers: PLMN, IMSI, GUTI, TAI, and generators."""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True)
class Plmn:
    """Public Land Mobile Network identity (MCC + MNC)."""

    mcc: str
    mnc: str

    def __post_init__(self):
        if not (self.mcc.isdigit() and len(self.mcc) == 3):
            raise ValueError(f"MCC must be 3 digits, got {self.mcc!r}")
        if not (self.mnc.isdigit() and len(self.mnc) in (2, 3)):
            raise ValueError(f"MNC must be 2-3 digits, got {self.mnc!r}")

    def __str__(self) -> str:
        return f"{self.mcc}{self.mnc}"


TEST_PLMN = Plmn("001", "01")


@dataclass(frozen=True)
class Imsi:
    """International Mobile Subscriber Identity.

    In CellBricks the IMSI is only ever sent *encrypted to the broker*
    (§4.1: the bTelco "never observes a cleartext identifier for U" and so
    cannot act as an IMSI catcher); in the legacy baseline it is sent in
    the clear during the initial attach, as today.
    """

    plmn: Plmn
    msin: str  # 9-10 digit subscriber number

    def __post_init__(self):
        if not (self.msin.isdigit() and 9 <= len(self.msin) <= 10):
            raise ValueError(f"MSIN must be 9-10 digits, got {self.msin!r}")

    def __str__(self) -> str:
        return f"{self.plmn}{self.msin}"


@dataclass(frozen=True)
class Guti:
    """Globally Unique Temporary Identity assigned post-attach."""

    plmn: Plmn
    mme_group: int
    mme_code: int
    m_tmsi: int

    def __str__(self) -> str:
        return (f"{self.plmn}-{self.mme_group:04x}-{self.mme_code:02x}-"
                f"{self.m_tmsi:08x}")


@dataclass(frozen=True)
class Tai:
    """Tracking Area Identity."""

    plmn: Plmn
    tac: int

    def __str__(self) -> str:
        return f"{self.plmn}-{self.tac:04x}"


class ImsiGenerator:
    """Sequential IMSI factory for populating subscriber databases."""

    def __init__(self, plmn: Plmn = TEST_PLMN, start: int = 1):
        self.plmn = plmn
        self._counter = itertools.count(start)

    def next(self) -> Imsi:
        return Imsi(self.plmn, f"{next(self._counter):09d}")
