"""Protected NAS transport: ciphering + integrity after the SMC.

Once the security mode procedure completes, real networks carry every NAS
message ciphered and integrity-protected under the context's keys with
anti-replay counters (TS 33.401 §8).  This module applies that to the
simulator's message objects:

* :func:`protect` seals a NAS message into a :class:`ProtectedNas`
  envelope — the payload is the canonically-serialized message encrypted
  and MAC'd by :class:`~repro.lte.security.SecurityContext` (which also
  advances the NAS COUNT);
* :func:`unprotect` verifies and recovers the message, raising
  :class:`~repro.lte.security.SecurityError` on tampering, replay of a
  stale count, or a wrong-direction/wrong-key envelope.

Serialization note: message objects are flattened via a registry of
field encoders (bytes/str/numbers/nested GUTIs), so the MAC covers the
actual field values, not Python object identity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, is_dataclass

from .identifiers import Guti
from .nas import NasMessage
from .security import SecurityContext, SecurityError

_REGISTRY: dict[str, type] = {}


def register_protected_type(message_type: type) -> None:
    """Make a NAS message type carryable inside ProtectedNas."""
    _REGISTRY[message_type.__name__] = message_type


def _encode_value(value):
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, Guti):
        return {"__guti__": [str(value.plmn.mcc), str(value.plmn.mnc),
                             value.mme_group, value.mme_code, value.m_tmsi]}
    if isinstance(value, (list, tuple)):
        return list(_encode_value(item) for item in value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise SecurityError(
        f"field of type {type(value).__name__} is not NAS-serializable")


def _decode_value(value):
    if isinstance(value, dict) and "__bytes__" in value:
        return bytes.fromhex(value["__bytes__"])
    if isinstance(value, dict) and "__guti__" in value:
        from .identifiers import Plmn
        mcc, mnc, group, code, tmsi = value["__guti__"]
        return Guti(Plmn(mcc, mnc), group, code, tmsi)
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def serialize_nas(message: NasMessage) -> bytes:
    """Canonical byte form of a (registered, flat-dataclass) NAS message."""
    if not is_dataclass(message):
        raise SecurityError("only dataclass NAS messages are serializable")
    name = type(message).__name__
    if name not in _REGISTRY:
        raise SecurityError(f"{name} is not registered for protection")
    payload = {"__type__": name}
    for field_info in fields(message):
        payload[field_info.name] = _encode_value(
            getattr(message, field_info.name))
    return json.dumps(payload, sort_keys=True).encode()


def deserialize_nas(raw: bytes) -> NasMessage:
    try:
        payload = json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SecurityError(f"malformed NAS payload: {exc}") from exc
    name = payload.pop("__type__", None)
    message_type = _REGISTRY.get(name)
    if message_type is None:
        raise SecurityError(f"unknown protected NAS type {name!r}")
    kwargs = {key: _decode_value(value) for key, value in payload.items()}
    return message_type(**kwargs)


@dataclass(frozen=True)
class ProtectedNas(NasMessage):
    """The over-the-air envelope: an opaque protected blob."""

    blob: bytes

    @property
    def wire_size(self) -> int:
        return len(self.blob) + 8


def protect(context: SecurityContext, message: NasMessage,
            downlink: bool) -> ProtectedNas:
    """Seal ``message`` under the security context (advances NAS COUNT)."""
    raw = serialize_nas(message)
    if downlink:
        blob = context.protect_downlink(raw)
    else:
        blob = context.protect_uplink(raw)
    return ProtectedNas(blob=blob)


def unprotect(context: SecurityContext, envelope: ProtectedNas,
              downlink: bool) -> NasMessage:
    """Verify and open a protected envelope.

    Raises :class:`SecurityError` on MAC failure or direction mismatch.
    """
    if downlink:
        raw = context.unprotect_downlink(envelope.blob)
    else:
        raw = context.unprotect_uplink(envelope.blob)
    return deserialize_nas(raw)


# Register the post-SMC messages of both attach flows.
def _register_defaults() -> None:
    from . import nas

    for message_type in (nas.AttachAccept, nas.AttachComplete,
                         nas.DetachRequest, nas.DetachAccept):
        register_protected_type(message_type)


_register_defaults()
