"""EPS-AKA: the legacy shared-secret authentication CellBricks replaces.

This implements the authentication-and-key-agreement procedure of TS
33.401 with MILENAGE-style f1..f5 functions realized over HMAC-SHA256
(the standard's functions are AES-based; only their *interface* matters
here: same inputs, same derived-key structure, same failure modes).

The baseline attach (Fig 7 "BL") runs this: the HSS generates an
authentication vector from the UE's pre-shared key K; the MME challenges
the UE with (RAND, AUTN); the USIM checks AUTN (network authentication),
returns RES (subscriber authentication), and both sides derive KASME.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto import hmac_sha256, kdf_3gpp

KEY_SIZE = 16        # 128-bit subscriber key K
RAND_SIZE = 16
SQN_SIZE = 6
AMF = b"\x80\x00"    # "separation bit" set, per TS 33.401
MAC_SIZE = 8
RES_SIZE = 8
AK_SIZE = 6

FC_KASME = 0x10      # KDF function code for KASME derivation


class AkaError(Exception):
    """Raised when an AKA check (MAC, SQN, RES) fails."""


def _f(key: bytes, tag: bytes, *parts: bytes) -> bytes:
    """One MILENAGE-family function: domain-separated HMAC."""
    data = tag + b"".join(parts)
    return hmac_sha256(key, data)


def f1(k: bytes, rand: bytes, sqn: bytes, amf: bytes) -> bytes:
    """Network authentication code MAC-A."""
    return _f(k, b"f1", rand, sqn, amf)[:MAC_SIZE]


def f2(k: bytes, rand: bytes) -> bytes:
    """Subscriber response RES / XRES."""
    return _f(k, b"f2", rand)[:RES_SIZE]


def f3(k: bytes, rand: bytes) -> bytes:
    """Cipher key CK."""
    return _f(k, b"f3", rand)[:16]


def f4(k: bytes, rand: bytes) -> bytes:
    """Integrity key IK."""
    return _f(k, b"f4", rand)[:16]


def f5(k: bytes, rand: bytes) -> bytes:
    """Anonymity key AK (conceals SQN on the air interface)."""
    return _f(k, b"f5", rand)[:AK_SIZE]


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def derive_kasme(ck: bytes, ik: bytes, serving_network: str,
                 sqn_xor_ak: bytes) -> bytes:
    """KASME = KDF(CK || IK, FC=0x10, SN id, SQN xor AK) per TS 33.401 A.2."""
    return kdf_3gpp(ck + ik, FC_KASME, serving_network.encode(), sqn_xor_ak)


@dataclass(frozen=True)
class AuthVector:
    """An EPS authentication vector (RAND, AUTN, XRES, KASME)."""

    rand: bytes
    autn: bytes
    xres: bytes
    kasme: bytes


def generate_auth_vector(k: bytes, sqn: int, serving_network: str,
                         rand: bytes | None = None) -> AuthVector:
    """HSS side: build one authentication vector for a subscriber."""
    if len(k) != KEY_SIZE:
        raise ValueError(f"K must be {KEY_SIZE} bytes")
    if rand is None:
        rand = secrets.token_bytes(RAND_SIZE)
    sqn_bytes = sqn.to_bytes(SQN_SIZE, "big")
    mac_a = f1(k, rand, sqn_bytes, AMF)
    xres = f2(k, rand)
    ck = f3(k, rand)
    ik = f4(k, rand)
    ak = f5(k, rand)
    sqn_xor_ak = _xor(sqn_bytes, ak)
    autn = sqn_xor_ak + AMF + mac_a
    kasme = derive_kasme(ck, ik, serving_network, sqn_xor_ak)
    return AuthVector(rand=rand, autn=autn, xres=xres, kasme=kasme)


@dataclass
class UsimState:
    """UE-side (USIM) AKA state: the shared key and the SQN window."""

    k: bytes
    highest_sqn: int = 0
    sqn_window: int = 32  # accept SQN in (highest, highest + window]


def usim_authenticate(usim: UsimState, rand: bytes, autn: bytes,
                      serving_network: str) -> tuple[bytes, bytes]:
    """UE side: verify the network and derive (RES, KASME).

    Raises :class:`AkaError` on MAC failure (network not authentic) or SQN
    out of range (replay).
    """
    if len(autn) != SQN_SIZE + len(AMF) + MAC_SIZE:
        raise AkaError("malformed AUTN")
    sqn_xor_ak = autn[:SQN_SIZE]
    amf = autn[SQN_SIZE:SQN_SIZE + len(AMF)]
    mac_a = autn[SQN_SIZE + len(AMF):]
    ak = f5(usim.k, rand)
    sqn_bytes = _xor(sqn_xor_ak, ak)
    expected_mac = f1(usim.k, rand, sqn_bytes, amf)
    if expected_mac != mac_a:
        raise AkaError("AUTN MAC check failed: network not authentic")
    sqn = int.from_bytes(sqn_bytes, "big")
    if not usim.highest_sqn < sqn <= usim.highest_sqn + usim.sqn_window:
        raise AkaError(f"SQN {sqn} outside acceptance window "
                       f"({usim.highest_sqn}, "
                       f"{usim.highest_sqn + usim.sqn_window}]")
    usim.highest_sqn = sqn
    res = f2(usim.k, rand)
    ck = f3(usim.k, rand)
    ik = f4(usim.k, rand)
    kasme = derive_kasme(ck, ik, serving_network, sqn_xor_ak)
    return res, kasme
