"""EPS bearers and the SGW/PGW user-plane anchor.

The packet gateway is where a UE's IP address lives in LTE — the mobility
anchor CellBricks deliberately does *not* try to preserve across bTelcos.
:class:`SgwPgw` allocates addresses from the bTelco's pool, creates
default bearers with the subscription's QoS, and tracks per-bearer usage
counters (the same counters today's billing reads, and the ones the bTelco
side of the §4.3 accounting protocol reports from).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.net import AddressPool


@dataclass
class UsageCounters:
    """Byte/packet counters maintained per bearer (PGW accounting)."""

    dl_bytes: int = 0
    ul_bytes: int = 0
    dl_packets: int = 0
    ul_packets: int = 0

    def record_dl(self, nbytes: int) -> None:
        self.dl_bytes += nbytes
        self.dl_packets += 1

    def record_ul(self, nbytes: int) -> None:
        self.ul_bytes += nbytes
        self.ul_packets += 1


@dataclass
class EpsBearer:
    """A default EPS bearer: identity, QoS, tunnel ids, usage."""

    ebi: int                      # EPS bearer identity (5..15)
    imsi_or_id: str               # subscriber identity (opaque id in SAP)
    ue_ip: str
    qci: int
    ambr_dl_bps: float
    ambr_ul_bps: float
    s1_teid_ul: int
    s1_teid_dl: int
    apn: str = "internet"
    usage: UsageCounters = field(default_factory=UsageCounters)
    active: bool = True


class BearerError(Exception):
    """Raised on bearer management failures (exhausted pool, bad id)."""


class SgwPgw:
    """Combined serving/packet gateway (as Magma's AGW integrates them)."""

    def __init__(self, pool_prefix: str = "10.128.0"):
        self.pool = AddressPool(pool_prefix)
        self.bearers: dict[int, EpsBearer] = {}      # ebi -> bearer
        self.by_subscriber: dict[str, int] = {}      # subscriber -> ebi
        self.by_ue_ip: dict[str, int] = {}           # ue_ip -> ebi
        self._ebi_counter = itertools.count(5)
        self._teid_counter = itertools.count(0x1000)

    def create_default_bearer(self, subscriber_id: str, qci: int,
                              ambr_dl_bps: float, ambr_ul_bps: float,
                              apn: str = "internet") -> EpsBearer:
        """Allocate an IP and set up the default bearer for a subscriber."""
        if subscriber_id in self.by_subscriber:
            # Re-attach: tear down the stale bearer first.
            self.delete_bearer(self.by_subscriber[subscriber_id])
        ue_ip = self.pool.allocate()
        bearer = EpsBearer(
            ebi=next(self._ebi_counter), imsi_or_id=subscriber_id,
            ue_ip=ue_ip, qci=qci, ambr_dl_bps=ambr_dl_bps,
            ambr_ul_bps=ambr_ul_bps, s1_teid_ul=next(self._teid_counter),
            s1_teid_dl=next(self._teid_counter), apn=apn)
        self.bearers[bearer.ebi] = bearer
        self.by_subscriber[subscriber_id] = bearer.ebi
        self.by_ue_ip[ue_ip] = bearer.ebi
        return bearer

    def delete_bearer(self, ebi: int) -> None:
        bearer = self.bearers.pop(ebi, None)
        if bearer is None:
            raise BearerError(f"no bearer with EBI {ebi}")
        bearer.active = False
        self.pool.release(bearer.ue_ip)
        self.by_subscriber.pop(bearer.imsi_or_id, None)
        self.by_ue_ip.pop(bearer.ue_ip, None)

    def bearer_for(self, subscriber_id: str) -> Optional[EpsBearer]:
        ebi = self.by_subscriber.get(subscriber_id)
        return self.bearers.get(ebi) if ebi is not None else None

    def bearer_by_ip(self, ue_ip: str) -> Optional[EpsBearer]:
        """O(1) active-bearer lookup by assigned UE address.

        Per-attach callers (AMBR enforcement) used to scan every bearer;
        at population scale that scan made each attach O(fleet)."""
        ebi = self.by_ue_ip.get(ue_ip)
        bearer = self.bearers.get(ebi) if ebi is not None else None
        return bearer if bearer is not None and bearer.active else None

    @property
    def active_count(self) -> int:
        return len(self.bearers)
