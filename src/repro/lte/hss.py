"""HSS / SubscriberDB: the subscriber database service.

In the baseline this is Magma's SubscriberDB answering S6a requests (two
round-trips per attach).  It can be placed "local", "us-west-1", or
"us-east-1" in the Fig 7 experiment — placement only changes the link it
sits behind, not this code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.net import Host

from . import s6a
from .aka import KEY_SIZE, generate_auth_vector
from .identifiers import Imsi
from .signaling import SignalingNode

# Per-request processing costs (seconds), calibrated so the SubscriberDB
# contributes ~2.5 ms per baseline attach (Fig 7 local bars).
AIR_PROCESSING = 0.0015
ULR_PROCESSING = 0.0010


@dataclass
class SubscriberRecord:
    """One provisioned subscriber."""

    imsi: str
    k: bytes
    sqn: int = 0
    subscription: s6a.SubscriptionData = field(
        default_factory=s6a.SubscriptionData)
    barred: bool = False


class SubscriberDb(SignalingNode):
    """The HSS: answers AIR (vector generation) and ULR (location update)."""

    processing_costs = {
        s6a.AuthenticationInformationRequest: AIR_PROCESSING,
        s6a.UpdateLocationRequest: ULR_PROCESSING,
    }
    obs_category = "cloud"

    def span_name(self, message: object) -> str:
        if isinstance(message, s6a.AuthenticationInformationRequest):
            return "s6a.hss_air"
        if isinstance(message, s6a.UpdateLocationRequest):
            return "s6a.hss_ulr"
        return super().span_name(message)

    def __init__(self, host: Host, name: str = "subscriberdb",
                 rng: Optional[random.Random] = None):
        super().__init__(host, name)
        self.subscribers: dict[str, SubscriberRecord] = {}
        self.rng = rng or random.Random(0)
        self.air_count = 0
        self.ulr_count = 0
        self.on(s6a.AuthenticationInformationRequest, self._handle_air)
        self.on(s6a.UpdateLocationRequest, self._handle_ulr)

    # -- provisioning ---------------------------------------------------------
    def provision(self, imsi: Imsi | str, k: Optional[bytes] = None,
                  subscription: Optional[s6a.SubscriptionData] = None
                  ) -> SubscriberRecord:
        """Add a subscriber (SIM provisioning).  Returns the record."""
        imsi_str = str(imsi)
        if k is None:
            k = bytes(self.rng.getrandbits(8) for _ in range(KEY_SIZE))
        record = SubscriberRecord(
            imsi=imsi_str, k=k,
            subscription=subscription or s6a.SubscriptionData())
        self.subscribers[imsi_str] = record
        return record

    def bar(self, imsi: Imsi | str) -> None:
        """Bar a subscriber (attach attempts will be rejected)."""
        self.subscribers[str(imsi)].barred = True

    # -- S6a handlers -----------------------------------------------------------
    def _handle_air(self, src_ip: str,
                    request: s6a.AuthenticationInformationRequest) -> None:
        self.air_count += 1
        record = self.subscribers.get(request.imsi)
        if record is None or record.barred:
            answer = s6a.AuthenticationInformationAnswer(
                imsi=request.imsi, result="USER_UNKNOWN")
        else:
            vectors = []
            for _ in range(request.num_vectors):
                record.sqn += 1
                rand = bytes(self.rng.getrandbits(8) for _ in range(16))
                vectors.append(generate_auth_vector(
                    record.k, record.sqn, request.visited_plmn, rand=rand))
            answer = s6a.AuthenticationInformationAnswer(
                imsi=request.imsi, result="SUCCESS", vectors=tuple(vectors))
        self.send(src_ip, answer, size=s6a.message_size(answer))

    def _handle_ulr(self, src_ip: str,
                    request: s6a.UpdateLocationRequest) -> None:
        self.ulr_count += 1
        record = self.subscribers.get(request.imsi)
        if record is None or record.barred:
            answer = s6a.UpdateLocationAnswer(
                imsi=request.imsi, result="USER_UNKNOWN")
        else:
            answer = s6a.UpdateLocationAnswer(
                imsi=request.imsi, result="SUCCESS",
                subscription=record.subscription)
        self.send(src_ip, answer, size=s6a.message_size(answer))
