"""NAS/AS security contexts (TS 33.401 key hierarchy).

Both architectures end up here: EPS-AKA produces KASME from the shared
secret; SAP produces it from the broker-issued shared secret ``ss``
("the shared secret ss is used as the master key (KASME)" — §4.1).  From
KASME the NAS encryption/integrity keys and KeNB are derived, and the
security-mode-control (SMC) exchange activates them.  CellBricks reuses
all of this unmodified, which is why only the *source* of KASME differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import IntegrityError, hmac_sha256, kdf_3gpp, open_sealed, seal

# TS 33.401 Annex A function codes.
FC_KENB = 0x11
FC_NAS_ALG = 0x15

# Algorithm-type distinguishers (Annex A.7).
ALG_NAS_ENC = b"\x01"
ALG_NAS_INT = b"\x02"

# Algorithm identities; EEA2/EIA2 are the AES-based standard algorithms —
# ours are the HMAC/stream-cipher stand-ins with the same interface.
EEA2 = 2
EIA2 = 2

NAS_MAC_SIZE = 4


class SecurityError(Exception):
    """Raised when a NAS integrity check fails."""


@dataclass
class SecurityContext:
    """An EPS security context: KASME-derived NAS keys and counters."""

    kasme: bytes
    enc_alg: int = EEA2
    int_alg: int = EIA2
    ul_count: int = 0
    dl_count: int = 0
    # Receive-side anti-replay: the next acceptable peer count.
    peer_ul_count: int = 0
    peer_dl_count: int = 0
    k_nas_enc: bytes = field(init=False)
    k_nas_int: bytes = field(init=False)

    def __post_init__(self):
        self.k_nas_enc = kdf_3gpp(self.kasme, FC_NAS_ALG, ALG_NAS_ENC,
                                  bytes([self.enc_alg]))
        self.k_nas_int = kdf_3gpp(self.kasme, FC_NAS_ALG, ALG_NAS_INT,
                                  bytes([self.int_alg]))

    def derive_kenb(self) -> bytes:
        """KeNB for AS (radio) security, bound to the uplink NAS count."""
        return kdf_3gpp(self.kasme, FC_KENB,
                        self.ul_count.to_bytes(4, "big"))

    # -- NAS message protection -------------------------------------------
    def protect_uplink(self, plaintext: bytes) -> bytes:
        """Encrypt + integrity-protect an uplink NAS payload."""
        count = self.ul_count
        self.ul_count += 1
        return self._protect(plaintext, count, direction=b"\x00")

    def protect_downlink(self, plaintext: bytes) -> bytes:
        count = self.dl_count
        self.dl_count += 1
        return self._protect(plaintext, count, direction=b"\x01")

    def _protect(self, plaintext: bytes, count: int, direction: bytes) -> bytes:
        header = count.to_bytes(4, "big") + direction
        sealed = seal(self.k_nas_enc, plaintext, associated_data=header)
        mac = hmac_sha256(self.k_nas_int, header + sealed)[:NAS_MAC_SIZE]
        return header + mac + sealed

    def unprotect(self, protected: bytes, expect_direction: bytes) -> bytes:
        """Verify and decrypt a protected NAS payload."""
        if len(protected) < 5 + NAS_MAC_SIZE:
            raise SecurityError("protected NAS payload too short")
        header = protected[:5]
        if header[4:5] != expect_direction:
            raise SecurityError("NAS direction mismatch")
        mac = protected[5:5 + NAS_MAC_SIZE]
        sealed = protected[5 + NAS_MAC_SIZE:]
        expected = hmac_sha256(self.k_nas_int, header + sealed)[:NAS_MAC_SIZE]
        if mac != expected:
            raise SecurityError("NAS MAC verification failed")
        # Anti-replay: the peer's count must not run backwards.
        count = int.from_bytes(header[:4], "big")
        if expect_direction == b"\x00":
            if count < self.peer_ul_count:
                raise SecurityError(f"replayed NAS count {count}")
            self.peer_ul_count = count + 1
        else:
            if count < self.peer_dl_count:
                raise SecurityError(f"replayed NAS count {count}")
            self.peer_dl_count = count + 1
        try:
            return open_sealed(self.k_nas_enc, sealed, associated_data=header)
        except IntegrityError as exc:
            raise SecurityError(str(exc)) from exc

    def unprotect_uplink(self, protected: bytes) -> bytes:
        return self.unprotect(protected, b"\x00")

    def unprotect_downlink(self, protected: bytes) -> bytes:
        return self.unprotect(protected, b"\x01")
