"""UE NAS stack: the baseline (srsUE-like) attach procedure.

The CellBricks UE extension (running SAP instead of EPS-AKA) subclasses
this in :class:`repro.core.ue_agent.CellBricksUe`, mirroring how the
prototype "adds 940 LoC to the srsUE".

Attach latency is measured exactly as in §6.1: from when the UE issues the
attachment request to when attachment completes, with RRC/lower-layer time
excluded (the radio link here carries signaling with negligible delay; all
measured time is NAS processing + backhaul/cloud transport).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net import Host

from .aka import AkaError, UsimState, usim_authenticate
from .agw import smc_mac
from .identifiers import Imsi
from .nas import (
    AttachAccept,
    AttachComplete,
    AttachReject,
    AttachRequest,
    AuthenticationReject,
    AuthenticationRequest,
    AuthenticationResponse,
    DetachAccept,
    DetachRequest,
    SecurityModeCommand,
    SecurityModeComplete,
    message_size,
)
from .nas_transport import ProtectedNas
from .nas_transport import protect as protect_nas
from .nas_transport import unprotect as unprotect_nas
from .security import SecurityContext, SecurityError
from .signaling import SignalingNode

# UE-side processing costs (seconds); sum ≈ 3.0 ms per baseline attach.
UE_COSTS = {
    "craft_attach_request": 0.0005,
    AuthenticationRequest: 0.0010,
    SecurityModeCommand: 0.00075,
    AttachAccept: 0.00075,
}


@dataclass
class AttachResult:
    """Outcome of one attach attempt."""

    success: bool
    ue_ip: Optional[str]
    latency: float
    cause: Optional[str] = None


class UeNas(SignalingNode):
    """Baseline UE: EPS-AKA + SMC + attach, via the eNodeB."""

    processing_costs = {
        AuthenticationRequest: UE_COSTS[AuthenticationRequest],
        SecurityModeCommand: UE_COSTS[SecurityModeCommand],
        AttachAccept: UE_COSTS[AttachAccept],
        # Protected envelopes post-SMC carry the accept/detach messages;
        # charged like an accept (deciphering included).
        ProtectedNas: UE_COSTS[AttachAccept],
    }

    def __init__(self, host: Host, enb_ip: str, imsi: Imsi | str,
                 usim: UsimState, serving_network: str,
                 name: str = "ue-nas"):
        super().__init__(host, name)
        self.enb_ip = enb_ip
        self.imsi = str(imsi)
        self.usim = usim
        self.serving_network = serving_network
        self.state = "DEREGISTERED"
        self.security: Optional[SecurityContext] = None
        self.ue_ip: Optional[str] = None
        self.attach_started_at: Optional[float] = None
        self.on_attach_done: Optional[Callable[[AttachResult], None]] = None
        self.on_detached: Optional[Callable[[], None]] = None

        self.on(AuthenticationRequest, self._on_auth_request)
        self.on(SecurityModeCommand, self._on_smc)
        self.on(AttachAccept, self._on_attach_accept)
        self.on(AttachReject, self._on_reject)
        self.on(AuthenticationReject, self._on_reject)
        self.on(DetachAccept, self._on_detach_accept)
        self.on(DetachRequest, self._on_network_detach)
        self.on(ProtectedNas, self._on_protected)

    # -- attach ---------------------------------------------------------------
    def attach(self) -> None:
        """Start the attach procedure (the §6.1 latency clock starts now)."""
        if self.state not in ("DEREGISTERED", "REJECTED"):
            raise RuntimeError(f"attach() in state {self.state}")
        self.state = "ATTACHING"
        self.attach_started_at = self.sim.now
        craft = UE_COSTS["craft_attach_request"]
        self.charge(craft)
        self.sim.schedule(craft, self._send_attach_request)

    def _send_attach_request(self) -> None:
        request = self.initial_request()
        self.send(self.enb_ip, request, size=message_size(request))

    def initial_request(self):
        """The first NAS message (overridden by the CellBricks UE)."""
        return AttachRequest(imsi=self.imsi)

    # -- EPS-AKA ------------------------------------------------------------------
    def _on_auth_request(self, src_ip: str,
                         request: AuthenticationRequest) -> None:
        try:
            res, kasme = usim_authenticate(
                self.usim, request.rand, request.autn, self.serving_network)
        except AkaError as exc:
            self._fail(f"network authentication failed: {exc}")
            return
        self.security = SecurityContext(kasme=kasme)
        self.send(self.enb_ip, AuthenticationResponse(res=res),
                  size=message_size(AuthenticationResponse(res=res)))

    # -- SMC (shared by baseline and CellBricks) -----------------------------------
    def _on_smc(self, src_ip: str, command: SecurityModeCommand) -> None:
        if self.security is None:
            self._fail("SMC before key agreement")
            return
        expected = smc_mac(self.security.k_nas_int,
                           command.enc_alg, command.int_alg)
        if command.mac != expected:
            self._fail("SMC MAC verification failed")
            return
        reply = SecurityModeComplete(
            mac=smc_mac(self.security.k_nas_int, 0xFF, 0xFF))
        self.send(self.enb_ip, reply, size=message_size(reply))

    # -- protected transport ---------------------------------------------------------
    def _on_protected(self, src_ip: str, envelope: ProtectedNas) -> None:
        """Open a post-SMC envelope and dispatch the inner message."""
        if self.security is None:
            return
        try:
            inner = unprotect_nas(self.security, envelope, downlink=True)
        except SecurityError:
            return  # tampered/replayed: drop silently
        handler = self._handlers.get(type(inner))
        if handler is not None:
            handler(src_ip, inner)

    def send_protected(self, nas) -> None:
        """Send an uplink NAS message, protected when keys exist."""
        if self.security is not None:
            nas = protect_nas(self.security, nas, downlink=False)
        self.send(self.enb_ip, nas, size=message_size(nas))

    # -- completion -------------------------------------------------------------------
    def _on_attach_accept(self, src_ip: str, accept: AttachAccept) -> None:
        self.ue_ip = accept.ue_ip
        self.state = "ATTACHED"
        self.send_protected(AttachComplete())
        latency = self.sim.now - self.attach_started_at
        if self.on_attach_done is not None:
            self.on_attach_done(AttachResult(
                success=True, ue_ip=accept.ue_ip, latency=latency))

    def _on_reject(self, src_ip: str, reject) -> None:
        self._fail(getattr(reject, "cause", "rejected"))

    def _fail(self, cause: str) -> None:
        self.state = "REJECTED"
        latency = (self.sim.now - self.attach_started_at
                   if self.attach_started_at is not None else 0.0)
        if self.on_attach_done is not None:
            self.on_attach_done(AttachResult(
                success=False, ue_ip=None, latency=latency, cause=cause))

    # -- detach ------------------------------------------------------------------------
    def detach(self) -> None:
        if self.state != "ATTACHED":
            raise RuntimeError(f"detach() in state {self.state}")
        self.state = "DETACHING"
        self.send_protected(DetachRequest())

    def detach_and_forget(self) -> None:
        """Switch-off style detach (TS 24.301): tell the network we are
        leaving and deregister locally without waiting for an accept —
        what a CellBricks UE does the instant it decides to move."""
        if self.state == "ATTACHED":
            self.send_protected(DetachRequest(switch_off=True))
        self.state = "DEREGISTERED"
        self.ue_ip = None
        self.security = None

    def _on_detach_accept(self, src_ip: str, accept: DetachAccept) -> None:
        if self.state != "DETACHING":
            return
        self.state = "DEREGISTERED"
        self.ue_ip = None
        self.security = None
        if self.on_detached is not None:
            self.on_detached()

    def _on_network_detach(self, src_ip: str,
                           request: DetachRequest) -> None:
        """Network-initiated detach (e.g. the SAP authorization expired)."""
        if self.state != "ATTACHED" or src_ip != self.enb_ip:
            return  # not attached, or a stale network we already left
        self.send_protected(DetachAccept())
        self.state = "DEREGISTERED"
        self.ue_ip = None
        self.security = None
        if self.on_detached is not None:
            self.on_detached()
