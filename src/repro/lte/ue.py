"""UE NAS stack: the baseline (srsUE-like) attach procedure.

The CellBricks UE extension (running SAP instead of EPS-AKA) subclasses
this in :class:`repro.core.ue_agent.CellBricksUe`, mirroring how the
prototype "adds 940 LoC to the srsUE".

Attach latency is measured exactly as in §6.1: from when the UE issues the
attachment request to when attachment completes, with RRC/lower-layer time
excluded (the radio link here carries signaling with negligible delay; all
measured time is NAS processing + backhaul/cloud transport).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net import Host

from .aka import AkaError, UsimState, usim_authenticate
from .agw import smc_mac
from .identifiers import Imsi
from .nas import (
    AttachAccept,
    AttachComplete,
    AttachReject,
    AttachRequest,
    AuthenticationReject,
    AuthenticationRequest,
    AuthenticationResponse,
    DetachAccept,
    DetachRequest,
    SecurityModeCommand,
    SecurityModeComplete,
    message_size,
)
from .nas_transport import ProtectedNas
from .nas_transport import protect as protect_nas
from .nas_transport import unprotect as unprotect_nas
from .security import SecurityContext, SecurityError
from .signaling import CounterAttr, SignalingNode

# UE-side processing costs (seconds); sum ≈ 3.0 ms per baseline attach.
UE_COSTS = {
    "craft_attach_request": 0.0005,
    AuthenticationRequest: 0.0010,
    SecurityModeCommand: 0.00075,
    AttachAccept: 0.00075,
}


@dataclass
class AttachResult:
    """Outcome of one attach attempt."""

    success: bool
    ue_ip: Optional[str]
    latency: float
    cause: Optional[str] = None


class UeNas(SignalingNode):
    """Baseline UE: EPS-AKA + SMC + attach, via the eNodeB.

    Attach legs are supervised by a retransmission timer: the last uplink
    NAS message of an in-progress attach is re-sent on timeout with
    capped exponential backoff (seeded jitter), and the attempt is
    abandoned cleanly — EMM state reset, ``attach_timeouts`` bumped, the
    failure delivered via ``on_attach_done`` — once the per-leg budget is
    spent.  A loss-free attach completes well inside the first timeout,
    so the supervision never fires on the clean path.
    """

    processing_costs = {
        AuthenticationRequest: UE_COSTS[AuthenticationRequest],
        SecurityModeCommand: UE_COSTS[SecurityModeCommand],
        AttachAccept: UE_COSTS[AttachAccept],
        # Protected envelopes post-SMC carry the accept/detach messages;
        # charged like an accept (deciphering included).
        ProtectedNas: UE_COSTS[AttachAccept],
    }
    obs_category = "ue"
    #: span name for the initial-request crafting work ("sap.ue_craft"
    #: on the CellBricks UE).
    craft_span_name = "nas.ue_craft"
    _SPAN_NAMES = {
        AuthenticationRequest: "nas.ue_auth",
        SecurityModeCommand: "nas.ue_smc",
        AttachAccept: "nas.ue_attach_accept",
        ProtectedNas: "nas.ue_protected",
    }
    nas_retransmissions = CounterAttr("ue.nas_retransmissions")
    attach_timeouts = CounterAttr("ue.attach_timeouts")
    retryable_rejects = CounterAttr("ue.retryable_rejects")
    # -- attach retransmission knobs --
    attach_retx_timeout = 0.4
    attach_retx_backoff = 2.0
    attach_retx_max_timeout = 3.0
    attach_retx_jitter = 0.1
    attach_max_attempts = 5
    # -- retryable-reject backoff knobs (degraded broker shard) --
    reject_backoff = 0.15
    reject_backoff_factor = 2.0
    reject_max_retries = 4

    def __init__(self, host: Host, enb_ip: str, imsi: Imsi | str,
                 usim: UsimState, serving_network: str,
                 name: str = "ue-nas"):
        super().__init__(host, name)
        self.enb_ip = enb_ip
        self.imsi = str(imsi)
        self.usim = usim
        self.serving_network = serving_network
        self.state = "DEREGISTERED"
        self.security: Optional[SecurityContext] = None
        self.ue_ip: Optional[str] = None
        self.attach_started_at: Optional[float] = None
        self.on_attach_done: Optional[Callable[[AttachResult], None]] = None
        self.on_detached: Optional[Callable[[], None]] = None
        # -- attach supervision state --
        self._attach_resend: Optional[Callable[[], None]] = None
        self._attach_timer_event = None
        self._attach_attempts = 0
        self._attach_timeout_cur = 0.0
        self._initial_request_cache = None
        self._last_auth_rand: Optional[bytes] = None
        self._auth_response = None
        self._attach_span = None
        self._reject_retries = 0
        self.nas_retransmissions = 0
        self.attach_timeouts = 0
        self.retryable_rejects = 0

        self.on(AuthenticationRequest, self._on_auth_request)
        self.on(SecurityModeCommand, self._on_smc)
        self.on(AttachAccept, self._on_attach_accept)
        self.on(AttachReject, self._on_reject)
        self.on(AuthenticationReject, self._on_reject)
        self.on(DetachAccept, self._on_detach_accept)
        self.on(DetachRequest, self._on_network_detach)
        self.on(ProtectedNas, self._on_protected)

    # -- observability --------------------------------------------------------
    def span_name(self, message: object) -> str:
        name = self._SPAN_NAMES.get(type(message))
        return name if name is not None else super().span_name(message)

    def _obs_begin_attach(self, craft: float) -> None:
        """Open the root ``attach`` span plus its crafting child; every
        send in this procedure then carries the root trace context."""
        obs = self.obs()
        if obs is None or not obs.tracing:
            return
        tracer = obs.tracer
        # Inside a mobility switch the manager sets ``_obs_parent_ctx``
        # so the re-auth nests under the migration root (parent_id != 0
        # keeps these out of the Fig 7 attach breakdowns).
        root = tracer.start_trace("attach", self.name, self.obs_category,
                                  start=self.sim.now,
                                  ctx=getattr(self, "_obs_parent_ctx", None))
        self._attach_span = root
        self._obs_ctx = root.context
        tracer.begin(self.craft_span_name, self.name, self.obs_category,
                     start=self.sim.now, end=self.sim.now + craft,
                     trace_id=root.trace_id, parent_id=root.span_id)

    def _obs_end_attach(self, status: str, latency: float) -> None:
        """Close the root span and record the outcome in the registry."""
        span = self._attach_span
        if span is not None:
            self._attach_span = None
            obs = self.obs()
            if obs is not None and obs.tracing:
                obs.tracer.finish(span, self.sim.now, status=status)
        if status == "ok":
            self.metrics.histogram("attach.latency_ms").observe(
                latency * 1000.0)
        else:
            self.metrics.counter("attach.failures").inc()

    def _obs_degraded_retry(self, reject, delay: float) -> None:
        """Annotate the open attach span when a retryable (degraded
        shard) denial forces a backoff — the trace then shows *why*
        this attach was slow, not just that it was."""
        span = self._attach_span
        if span is None:
            return
        obs = self.obs()
        if obs is not None and obs.tracing:
            obs.tracer.instant(
                "attach.degraded_retry", self.name, self.sim.now,
                trace_id=span.trace_id, parent_id=span.span_id,
                category=self.obs_category,
                data={"retry": self._reject_retries,
                      "backoff_ms": round(delay * 1000.0, 3),
                      "cause": getattr(reject, "cause", "") or "degraded"})

    # -- attach ---------------------------------------------------------------
    def attach(self) -> None:
        """Start the attach procedure (the §6.1 latency clock starts now)."""
        if self.state not in ("DEREGISTERED", "REJECTED"):
            raise RuntimeError(f"attach() in state {self.state}")
        self.state = "ATTACHING"
        self.attach_started_at = self.sim.now
        self.security = None  # a fresh attempt starts from clean EMM state
        self._last_auth_rand = None
        self._auth_response = None
        self._reject_retries = 0
        craft = UE_COSTS["craft_attach_request"]
        self.charge(craft)
        self._obs_begin_attach(craft)
        self.sim.schedule(craft, self._send_attach_request)

    def _send_attach_request(self) -> None:
        # The request is crafted ONCE per attach attempt and the same
        # bytes are retransmitted: for the CellBricks UE this keeps the
        # SAP nonce stable so the broker's idempotency cache (not its
        # replay window) catches the duplicate.
        request = self.initial_request()
        self._initial_request_cache = request
        self.send(self.enb_ip, request, size=message_size(request))
        self._supervise_attach(self._resend_initial_request)

    def _resend_initial_request(self) -> None:
        request = self._initial_request_cache
        if request is not None:
            self.send(self.enb_ip, request, size=message_size(request))

    def initial_request(self):
        """The first NAS message (overridden by the CellBricks UE)."""
        return AttachRequest(imsi=self.imsi)

    # -- attach retransmission supervision -------------------------------------
    def _supervise_attach(self, resend: Callable[[], None]) -> None:
        """(Re)arm the retransmission timer around the given attach leg.

        Each leg (initial request, auth response, SMC complete) gets a
        fresh attempt budget: any downlink progress proves the path was
        recently alive.
        """
        self._attach_resend = resend
        self._attach_attempts = 1
        self._attach_timeout_cur = self.attach_retx_timeout
        self._arm_attach_timer()

    def _arm_attach_timer(self) -> None:
        self._cancel_attach_timer()
        jitter = 1.0 + self.attach_retx_jitter \
            * (2.0 * self._retx_rng.random() - 1.0)
        self._attach_timer_event = self.sim.schedule(
            self._attach_timeout_cur * jitter, self._attach_timer_fired)

    def _cancel_attach_timer(self) -> None:
        if self._attach_timer_event is not None:
            self._attach_timer_event.cancel()
            self._attach_timer_event = None

    def _stop_attach_supervision(self) -> None:
        self._cancel_attach_timer()
        self._attach_resend = None

    def _attach_timer_fired(self) -> None:
        self._attach_timer_event = None
        if self.state != "ATTACHING" or self._attach_resend is None:
            return
        if self._attach_attempts >= self.attach_max_attempts:
            self.attach_timeouts += 1
            self._attach_resend = None
            self._on_attach_give_up()
            self._fail(f"attach timed out after "
                       f"{self.attach_max_attempts} attempts")
            return
        self._attach_attempts += 1
        self._attach_timeout_cur = min(
            self._attach_timeout_cur * self.attach_retx_backoff,
            self.attach_retx_max_timeout)
        self.nas_retransmissions += 1
        obs = self.obs()
        if obs is not None and obs.tracing and self._attach_span is not None:
            obs.tracer.instant(
                "nas.retransmit", self.name, self.sim.now,
                trace_id=self._attach_span.trace_id,
                parent_id=self._attach_span.span_id,
                category=self.obs_category,
                data={"attempt": self._attach_attempts})
        self._attach_resend()
        self._arm_attach_timer()

    def _on_attach_give_up(self) -> None:
        """Hook: reset EMM state when an attach attempt is abandoned."""
        self.security = None
        self.ue_ip = None

    # -- EPS-AKA ------------------------------------------------------------------
    def _on_auth_request(self, src_ip: str,
                         request: AuthenticationRequest) -> None:
        if self.state != "ATTACHING":
            return  # stale challenge from an abandoned attempt
        if request.rand == self._last_auth_rand \
                and self._auth_response is not None:
            # Duplicate challenge (our response was lost): replaying the
            # stored response avoids re-running AKA, whose SQN check
            # would reject the repeated vector.
            self._resend_auth_response()
            return
        try:
            res, kasme = usim_authenticate(
                self.usim, request.rand, request.autn, self.serving_network)
        except AkaError as exc:
            self._fail(f"network authentication failed: {exc}")
            return
        self.security = SecurityContext(kasme=kasme)
        self._last_auth_rand = request.rand
        self._auth_response = AuthenticationResponse(res=res)
        self._resend_auth_response()
        self._supervise_attach(self._resend_auth_response)

    def _resend_auth_response(self) -> None:
        response = self._auth_response
        if response is not None:
            self.send(self.enb_ip, response, size=message_size(response))

    # -- SMC (shared by baseline and CellBricks) -----------------------------------
    def _on_smc(self, src_ip: str, command: SecurityModeCommand) -> None:
        if self.state != "ATTACHING":
            return  # stale command from an abandoned attempt
        if self.security is None:
            # The key-agreement downlink (AKA challenge / SAP response)
            # was lost and the SMC overtook its retransmission: drop it.
            # Our own resend of the previous uplink makes the network
            # replay both legs, so the attach still converges.
            return
        expected = smc_mac(self.security.k_nas_int,
                           command.enc_alg, command.int_alg)
        if command.mac != expected:
            self._fail("SMC MAC verification failed")
            return
        self._send_smc_complete()
        self._supervise_attach(self._send_smc_complete)

    def _send_smc_complete(self) -> None:
        if self.security is None:
            return
        reply = SecurityModeComplete(
            mac=smc_mac(self.security.k_nas_int, 0xFF, 0xFF))
        self.send(self.enb_ip, reply, size=message_size(reply))

    # -- protected transport ---------------------------------------------------------
    def _on_protected(self, src_ip: str, envelope: ProtectedNas) -> None:
        """Open a post-SMC envelope and dispatch the inner message."""
        if self.security is None:
            return
        try:
            inner = unprotect_nas(self.security, envelope, downlink=True)
        except SecurityError:
            return  # tampered/replayed: drop silently
        handler = self._handlers.get(type(inner))
        if handler is not None:
            handler(src_ip, inner)

    def send_protected(self, nas) -> None:
        """Send an uplink NAS message, protected when keys exist."""
        if self.security is not None:
            nas = protect_nas(self.security, nas, downlink=False)
        self.send(self.enb_ip, nas, size=message_size(nas))

    # -- completion -------------------------------------------------------------------
    def _on_attach_accept(self, src_ip: str, accept: AttachAccept) -> None:
        if self.state == "ATTACHED":
            # Duplicate accept: our AttachComplete was lost — re-send it
            # (freshly protected) without re-firing the completion hook.
            self.send_protected(AttachComplete())
            return
        if self.state != "ATTACHING":
            return  # stale accept from an abandoned attempt
        self._stop_attach_supervision()
        self.ue_ip = accept.ue_ip
        self.state = "ATTACHED"
        self.send_protected(AttachComplete())
        latency = self.sim.now - self.attach_started_at
        self._obs_end_attach("ok", latency)
        if self.on_attach_done is not None:
            self.on_attach_done(AttachResult(
                success=True, ue_ip=accept.ue_ip, latency=latency))

    def _on_reject(self, src_ip: str, reject) -> None:
        if self.state != "ATTACHING":
            return  # stale reject (e.g. we already timed out and moved on)
        if getattr(reject, "retryable", False) \
                and self._reject_retries < self.reject_max_retries:
            # Transient broker-side denial (degraded shard mid-failover):
            # back off and re-attach with a fresh nonce instead of
            # treating it as a terminal EMM reject.
            self._reject_retries += 1
            self.retryable_rejects += 1
            self._stop_attach_supervision()
            self._on_attach_give_up()
            delay = self.reject_backoff * (
                self.reject_backoff_factor ** (self._reject_retries - 1))
            delay *= 1.0 + self.attach_retx_jitter \
                * (2.0 * self._retx_rng.random() - 1.0)
            self._obs_degraded_retry(reject, delay)
            self.sim.schedule(delay, self._retry_after_reject)
            return
        self._fail(getattr(reject, "cause", "rejected"))

    def _retry_after_reject(self) -> None:
        if self.state != "ATTACHING":
            return  # detached or abandoned while backing off
        self._send_attach_request()

    def _fail(self, cause: str) -> None:
        self._stop_attach_supervision()
        self.state = "REJECTED"
        latency = (self.sim.now - self.attach_started_at
                   if self.attach_started_at is not None else 0.0)
        self._obs_end_attach("error", latency)
        if self.on_attach_done is not None:
            self.on_attach_done(AttachResult(
                success=False, ue_ip=None, latency=latency, cause=cause))

    # -- detach ------------------------------------------------------------------------
    def detach(self) -> None:
        if self.state != "ATTACHED":
            raise RuntimeError(f"detach() in state {self.state}")
        self.state = "DETACHING"
        self.send_protected(DetachRequest())

    def detach_and_forget(self) -> None:
        """Switch-off style detach (TS 24.301): tell the network we are
        leaving and deregister locally without waiting for an accept —
        what a CellBricks UE does the instant it decides to move."""
        if self.state == "ATTACHED":
            self.send_protected(DetachRequest(switch_off=True))
        self.state = "DEREGISTERED"
        self.ue_ip = None
        self.security = None

    def _on_detach_accept(self, src_ip: str, accept: DetachAccept) -> None:
        if self.state != "DETACHING":
            return
        self.state = "DEREGISTERED"
        self.ue_ip = None
        self.security = None
        if self.on_detached is not None:
            self.on_detached()

    def _on_network_detach(self, src_ip: str,
                           request: DetachRequest) -> None:
        """Network-initiated detach (e.g. the SAP authorization expired)."""
        if self.state != "ATTACHED" or src_ip != self.enb_ip:
            return  # not attached, or a stale network we already left
        self.send_protected(DetachAccept())
        self.state = "DEREGISTERED"
        self.ue_ip = None
        self.security = None
        if self.on_detached is not None:
            self.on_detached()
