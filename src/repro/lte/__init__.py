"""Emulated LTE substrate: identifiers, EPS-AKA, NAS, S6a, EPC, UE.

This is the *legacy baseline* architecture (srsLTE + unmodified Magma in
the paper's testbed).  The CellBricks extensions subclass these
components from :mod:`repro.core`, exactly as the prototype layers its
changes onto srsUE and Magma's AGW.
"""

from . import aka, nas, s6a
from .agw import Agw, UeContext, smc_mac
from .aka import (
    AkaError,
    AuthVector,
    UsimState,
    derive_kasme,
    generate_auth_vector,
    usim_authenticate,
)
from .bearer import BearerError, EpsBearer, SgwPgw, UsageCounters
from .enodeb import ENodeB, S1DownlinkNas, S1UeContextRelease, S1UplinkNas
from .hss import SubscriberDb, SubscriberRecord
from .identifiers import Guti, Imsi, ImsiGenerator, Plmn, Tai, TEST_PLMN
from .security import SecurityContext, SecurityError
from .signaling import SIGNALING_PORT, SignalingEnvelope, SignalingNode
from .ue import AttachResult, UeNas

__all__ = [
    "Agw",
    "AkaError",
    "AttachResult",
    "AuthVector",
    "BearerError",
    "ENodeB",
    "EpsBearer",
    "Guti",
    "Imsi",
    "ImsiGenerator",
    "Plmn",
    "S1DownlinkNas",
    "S1UeContextRelease",
    "S1UplinkNas",
    "SIGNALING_PORT",
    "SecurityContext",
    "SecurityError",
    "SgwPgw",
    "SignalingEnvelope",
    "SignalingNode",
    "SubscriberDb",
    "SubscriberRecord",
    "Tai",
    "TEST_PLMN",
    "UeContext",
    "UeNas",
    "UsageCounters",
    "UsimState",
    "aka",
    "derive_kasme",
    "generate_auth_vector",
    "nas",
    "s6a",
    "smc_mac",
    "usim_authenticate",
]
