"""CellBricks (SIGCOMM 2021) reproduction.

"Democratizing Cellular Access with CellBricks" proposes a cellular
architecture where users consume access on-demand from untrusted operators
of any scale, with authentication/billing refactored between the end host
and a broker (the SAP protocol), and mobility moved entirely into the host
(MPTCP subflow replacement).

Package map:

* :mod:`repro.core`      — the CellBricks contribution: SAP, brokerd, the
  bTelco AGW, verifiable billing, reputation, host-driven mobility.
* :mod:`repro.lte`       — the legacy LTE substrate: EPS-AKA, NAS, S6a,
  HSS, MME/AGW, eNodeB, UE (the baseline being compared against).
* :mod:`repro.net`       — discrete-event network simulator: links, token
  buckets, TCP (SACK), MPTCP, topologies.
* :mod:`repro.crypto`    — stdlib-only RSA/PKI/AEAD/KDF substrate.
* :mod:`repro.apps`      — ping / iperf / VoIP / HLS video / web workloads.
* :mod:`repro.testbed`   — §6.1 attachment-latency benchmark (Fig 7).
* :mod:`repro.emulation` — §6.2 drive emulation (Table 1, Fig 8-10).
* :mod:`repro.analysis`  — statistics and the E-model MOS.

Quickstart::

    from repro.net import Simulator
    from repro.core.mobility import build_cellbricks_network, MobilityManager

    sim = Simulator()
    network = build_cellbricks_network(sim)
    manager = MobilityManager(network)
    manager.start("btelco-a")
    sim.run(until=1.0)
    assert manager.ue.state == "ATTACHED"
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
