"""Nodes: hosts with transport demultiplexing and prefix routers.

The topologies in this reproduction are small (UE — radio — gateway — WAN —
server), so routing is longest-prefix over /24s plus default routes.  What
matters for CellBricks is the *host* side: interfaces whose address can be
invalidated and re-assigned at runtime, with listeners (the MPTCP path
manager, the UE agent) notified of every change — that is the hook
host-driven mobility hangs off.
"""

from __future__ import annotations

from typing import Callable, Optional

from .link import Link
from .packet import (
    PROTO_TCP,
    PROTO_UDP,
    UDP_HEADER,
    IP_HEADER,
    UNSPECIFIED,
    FlowKey,
    Packet,
)
from .sim import Simulator

AddressListener = Callable[[str, str], None]  # (old_ip, new_ip)


class Node:
    """Base class: anything attachable to links."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.links: list[Link] = []

    def attach_link(self, link: Link) -> None:
        self.links.append(link)

    def detach_link(self, link: Link) -> None:
        if link in self.links:
            self.links.remove(link)

    def receive(self, packet: Packet, link: Link) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """An end host: one or more addresses, UDP/TCP demux, a default route.

    The UE and the server VMs are Hosts.  ``set_address`` implements the
    emulation harness's "ifconfig to 0.0.0.0 then reassign" sequence; every
    registered address listener (MPTCP's path manager, application proxies)
    is notified synchronously, mirroring how the kernel notifies the MPTCP
    stack of address invalidation (§4.2, §6.2(iii)).
    """

    def __init__(self, sim: Simulator, name: str, address: str = UNSPECIFIED):
        super().__init__(sim, name)
        self.address = address
        self._flows: dict[FlowKey, object] = {}
        self._listeners: dict[tuple[int, int], object] = {}  # (proto, port)
        self._address_listeners: list[AddressListener] = []
        self._routes: dict[str, Link] = {}  # /24 prefix -> link (multihomed)
        self._next_ephemeral = 49152

    # -- addressing -------------------------------------------------------
    def set_address(self, new_address: str) -> None:
        """Change this host's address, notifying listeners."""
        old = self.address
        if new_address == old:
            return
        self.address = new_address
        for listener in list(self._address_listeners):
            listener(old, new_address)

    def invalidate_address(self) -> None:
        """Drop the current address (interface shows 0.0.0.0)."""
        self.set_address(UNSPECIFIED)

    @property
    def has_address(self) -> bool:
        return self.address != UNSPECIFIED

    def add_address_listener(self, listener: AddressListener) -> None:
        self._address_listeners.append(listener)

    def remove_address_listener(self, listener: AddressListener) -> None:
        if listener in self._address_listeners:
            self._address_listeners.remove(listener)

    def allocate_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 65535:
            self._next_ephemeral = 49152
        return port

    # -- demux registration -------------------------------------------------
    def register_flow(self, key: FlowKey, endpoint: object) -> None:
        self._flows[key] = endpoint

    def unregister_flow(self, key: FlowKey) -> None:
        self._flows.pop(key, None)

    def register_listener(self, protocol: int, port: int, endpoint: object) -> None:
        demux_key = (protocol, port)
        if demux_key in self._listeners:
            raise ValueError(f"port {port}/{protocol} already bound on {self.name}")
        self._listeners[demux_key] = endpoint

    def unregister_listener(self, protocol: int, port: int) -> None:
        self._listeners.pop((protocol, port), None)

    # -- data path ----------------------------------------------------------
    def add_route(self, prefix: str, link: Link) -> None:
        """Pin a destination /24 prefix to a specific link (multihomed
        hosts, e.g. an eNodeB with a radio side and a backhaul side)."""
        self._routes[prefix] = link

    def send_packet(self, packet: Packet) -> bool:
        """Send via the routed link, defaulting to the first attached."""
        if not self.links:
            return False
        packet.created_at = self.sim.now
        link = self._routes.get(packet.dst.rsplit(".", 1)[0], self.links[0])
        return link.send_from(self, packet)

    def receive(self, packet: Packet, link: Link) -> None:
        if packet.dst != self.address or not self.has_address:
            return  # not ours (stale address after a handover) - drop
        segment = packet.payload
        src_port = getattr(segment, "src_port", 0)
        dst_port = getattr(segment, "dst_port", 0)
        key = FlowKey(packet.dst, dst_port, packet.src, src_port)
        endpoint = self._flows.get(key)
        if endpoint is None:
            endpoint = self._listeners.get((packet.protocol, dst_port))
        if endpoint is not None:
            endpoint.handle_packet(packet)


class Router(Node):
    """Longest-prefix (/24 or default) packet forwarder.

    Carrier gateways and the WAN core are Routers.  Routes map a /24 prefix
    string (``"10.1.5"``) to the link used to reach it; ``default`` catches
    everything else.
    """

    def __init__(self, sim: Simulator, name: str,
                 forwarding_delay_s: float = 0.0002):
        super().__init__(sim, name)
        self.routes: dict[str, Link] = {}
        self.default_route: Optional[Link] = None
        self.forwarding_delay_s = forwarding_delay_s
        self.forwarded = 0
        self.dropped = 0

    def add_route(self, prefix: str, link: Link) -> None:
        self.routes[prefix] = link

    def remove_route(self, prefix: str) -> None:
        self.routes.pop(prefix, None)

    def set_default_route(self, link: Link) -> None:
        self.default_route = link

    def route_for(self, address: str) -> Optional[Link]:
        prefix = address.rsplit(".", 1)[0]
        return self.routes.get(prefix, self.default_route)

    def receive(self, packet: Packet, link: Link) -> None:
        if packet.ttl <= 0:
            self.dropped += 1
            return
        out = self.route_for(packet.dst)
        if out is None or out is link:
            self.dropped += 1
            return
        forwarded = packet.copy_for_forwarding()
        self.forwarded += 1
        if self.forwarding_delay_s:
            self.sim.schedule(self.forwarding_delay_s,
                              out.send_from, self, forwarded)
        else:
            out.send_from(self, forwarded)

    def send_packet(self, packet: Packet) -> bool:
        """Originate a packet from this router (used by in-network agents)."""
        out = self.route_for(packet.dst)
        if out is None:
            return False
        return out.send_from(self, packet)


class UdpDatagram:
    """Payload object carried by UDP packets."""

    __slots__ = ("src_port", "dst_port", "body", "sent_at")

    def __init__(self, src_port: int, dst_port: int, body: object,
                 sent_at: float):
        self.src_port = src_port
        self.dst_port = dst_port
        self.body = body
        self.sent_at = sent_at


class UdpSocket:
    """A minimal UDP endpoint bound to a host and port.

    VoIP (RTP), ping, and the SAP/S6a signaling transport all ride on this.
    """

    def __init__(self, host: Host, port: int = 0):
        self.host = host
        self.port = port or host.allocate_port()
        self.on_datagram: Optional[Callable[[str, int, object, float], None]] = None
        host.register_listener(PROTO_UDP, self.port, self)
        self._closed = False

    def send_to(self, dst_ip: str, dst_port: int, payload_size: int,
                body: object = None) -> bool:
        """Send a datagram; ``payload_size`` is the UDP payload in bytes."""
        if self._closed or not self.host.has_address:
            return False
        datagram = UdpDatagram(self.port, dst_port, body, self.host.sim.now)
        packet = Packet(src=self.host.address, dst=dst_ip, protocol=PROTO_UDP,
                        size=IP_HEADER + UDP_HEADER + payload_size,
                        payload=datagram)
        return self.host.send_packet(packet)

    def handle_packet(self, packet: Packet) -> None:
        if self._closed:
            return
        datagram: UdpDatagram = packet.payload
        if self.on_datagram is not None:
            self.on_datagram(packet.src, datagram.src_port, datagram.body,
                             datagram.sent_at)

    def close(self) -> None:
        if not self._closed:
            self.host.unregister_listener(PROTO_UDP, self.port)
            self._closed = True
