"""Links: bandwidth, propagation delay, loss, shaping, and outages.

Two constructs matter for the CellBricks experiments:

* :class:`TokenBucket` — models carrier rate limiting (the paper's
  Appendix A shows T-Mobile enforcing ~1 Mbps day-time policies and
  relaxing them at night).  Crucially, the bucket keeps accumulating
  credit while a UE is detached during a handover, which is what lets the
  fresh MPTCP subflow briefly *overshoot* steady-state throughput after
  re-attachment (Fig 8's spike).
* :class:`SimplexLink` — a one-way pipe with serialization (size /
  bandwidth), propagation delay, drop-tail queue, random loss, and an
  up/down state used to model the radio interruption around handovers.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from .packet import Packet
from .sim import Simulator


def _seed_from_name(name: str) -> int:
    """Deterministic per-link RNG seed derived from the link name.

    Unseeded links used to share ``random.Random(0)``, so every link in a
    fleet drew the *same* loss sequence — correlated drops that made
    chaos runs look far worse (or better) than independent losses would.
    ``zlib.crc32`` is stable across processes and platforms (unlike
    ``hash``), so identically-named links still replay identically
    run-to-run while differently-named links decorrelate.
    """
    return zlib.crc32(name.encode("utf-8"))


class TokenBucket:
    """Token-bucket shaper with lazy refill.

    ``rate_bps`` is the policed rate in bits/second, ``burst_bytes`` the
    bucket depth.  ``delay_until_conforming`` returns how long a packet of
    a given size must wait before it conforms (0.0 if it can go now).
    """

    def __init__(self, rate_bps: float, burst_bytes: float):
        if rate_bps <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = burst_bytes
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.burst_bytes,
                               self._tokens + elapsed * self.rate_bps / 8.0)
            self._last_refill = now

    def tokens_at(self, now: float) -> float:
        """Bucket level (bytes) at time ``now`` without consuming."""
        self._refill(now)
        return self._tokens

    def delay_until_conforming(self, size_bytes: int, now: float) -> float:
        """Seconds until a packet of ``size_bytes`` conforms (0 = now)."""
        self._refill(now)
        if self._tokens >= size_bytes:
            return 0.0
        deficit = size_bytes - self._tokens
        return deficit * 8.0 / self.rate_bps

    def consume(self, size_bytes: int, now: float) -> None:
        """Debit ``size_bytes`` (may drive the bucket negative briefly when
        callers pre-computed a conforming time; kept clamped at -burst)."""
        self._refill(now)
        self._tokens = max(-self.burst_bytes, self._tokens - size_bytes)

    def reset(self, now: float) -> None:
        """Refill the bucket completely (a fresh attachment's policer)."""
        self._tokens = self.burst_bytes
        self._last_refill = now

    def set_rate(self, rate_bps: float) -> None:
        """Change the policed rate (e.g. the midnight policy switch)."""
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps


@dataclass
class LinkStats:
    """Counters exposed by every simplex link."""

    sent_packets: int = 0
    sent_bytes: int = 0
    delivered_packets: int = 0
    delivered_bytes: int = 0
    dropped_loss: int = 0
    dropped_queue: int = 0
    dropped_down: int = 0
    dropped_police: int = 0


class SimplexLink:
    """A one-way link delivering packets to a receiver callback."""

    def __init__(self, sim: Simulator, name: str,
                 bandwidth_bps: float, delay_s: float,
                 loss_rate: float = 0.0,
                 queue_limit_bytes: int = 256 * 1024,
                 shaper: Optional[TokenBucket] = None,
                 police: bool = True,
                 rng: Optional[random.Random] = None):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.loss_rate = loss_rate
        self.queue_limit_bytes = queue_limit_bytes
        self.shaper = shaper
        # Policing drops non-conforming packets immediately (how carrier
        # rate limiting behaves); shaping queues them until tokens accrue.
        self.police = police
        self.rng = rng if rng is not None else \
            random.Random(_seed_from_name(name))
        self.receiver: Optional[Callable[[Packet], None]] = None
        self.stats = LinkStats()
        self.up = True
        self._busy_until = 0.0
        self._paused_until = 0.0
        self._down_until = 0.0
        self._queued_bytes = 0
        self._in_flight: dict[int, object] = {}  # packet_id -> Event

    # -- dynamic reconfiguration (driven by the emulation harness) -------
    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Retune link capacity; affects packets enqueued from now on."""
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bps = bandwidth_bps

    def set_up(self, up: bool) -> None:
        """Bring the link up or down (radio outage during handover)."""
        self.up = up
        if up:
            # Manual restore overrides any pending interrupt window, so a
            # later _maybe_restore must not re-trip on a stale deadline.
            self._down_until = self.sim.now

    def interrupt(self, duration_s: float) -> None:
        """Take the link down for ``duration_s`` seconds (traffic lost).

        Overlapping interrupts extend the outage: the link comes back up
        only when the *latest* deadline passes, not when the first timer
        fires (which used to cut a long outage short).
        """
        self.up = False
        self._down_until = max(self._down_until, self.sim.now + duration_s)
        self.sim.schedule(duration_s, self._maybe_restore)

    def _maybe_restore(self) -> None:
        if not self.up and self.sim.now >= self._down_until - 1e-12:
            self.set_up(True)

    def pause(self, duration_s: float) -> None:
        """Stall delivery for ``duration_s`` without losing traffic.

        Models a network-managed handover: the source/target eNodeBs
        buffer and forward in-flight data (X2 forwarding), so the UE sees
        a delay bubble rather than a loss burst.
        """
        self._paused_until = max(self._paused_until,
                                 self.sim.now + duration_s)

    # -- data path --------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.  Returns False if dropped at entry."""
        self.stats.sent_packets += 1
        self.stats.sent_bytes += packet.size
        if not self.up:
            self.stats.dropped_down += 1
            return False
        if self.loss_rate and self.rng.random() < self.loss_rate:
            self.stats.dropped_loss += 1
            return False
        if self._queued_bytes + packet.size > self.queue_limit_bytes:
            self.stats.dropped_queue += 1
            return False

        now = self.sim.now
        start = max(now, self._busy_until)
        if self.shaper is not None:
            conform_wait = self.shaper.delay_until_conforming(packet.size, start)
            if self.police and conform_wait > 0:
                self.stats.dropped_police += 1
                return False
            start += conform_wait
            self.shaper.consume(packet.size, start)
        serialization = packet.size * 8.0 / self.bandwidth_bps
        self._busy_until = start + serialization
        self._queued_bytes += packet.size
        arrival = self._busy_until + self.delay_s
        event = self.sim.schedule_at(arrival, self._deliver, packet)
        self._in_flight[packet.packet_id] = event
        return True

    def flush(self) -> None:
        """Discard everything queued or in flight (bearer teardown).

        When a UE detaches from a bTelco, the radio bearer and its queue
        are destroyed; packets buffered for the old attachment never reach
        the UE and must not occupy the new attachment's air time.
        """
        for event in self._in_flight.values():
            event.cancel()
        self._in_flight.clear()
        self._queued_bytes = 0
        self._busy_until = self.sim.now

    def _deliver(self, packet: Packet) -> None:
        if self.sim.now < self._paused_until:
            # Re-queue at pause end; FIFO order is preserved because
            # same-time events run in scheduling order.
            event = self.sim.schedule_at(self._paused_until, self._deliver,
                                         packet)
            self._in_flight[packet.packet_id] = event
            return
        self._in_flight.pop(packet.packet_id, None)
        self._queued_bytes -= packet.size
        if not self.up:
            # The link went down while the packet was in flight.
            self.stats.dropped_down += 1
            return
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += packet.size
        if self.receiver is not None:
            self.receiver(packet)

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes


class Link:
    """A full-duplex link: two simplex halves joining two nodes.

    ``a`` and ``b`` are objects exposing ``attach_link(link, endpoint)`` and
    ``receive(packet)`` (see :mod:`repro.net.node`).  Asymmetric parameters
    (e.g. cellular UL vs DL) are supported via the ``*_up`` overrides.
    """

    def __init__(self, sim: Simulator, name: str, a, b,
                 bandwidth_bps: float, delay_s: float,
                 loss_rate: float = 0.0,
                 queue_limit_bytes: int = 256 * 1024,
                 shaper_down: Optional[TokenBucket] = None,
                 shaper_up: Optional[TokenBucket] = None,
                 bandwidth_up_bps: Optional[float] = None,
                 rng: Optional[random.Random] = None):
        # Explicitly-seeded links stay byte-identical to earlier builds;
        # unseeded ones decorrelate via a name-derived seed.
        rng = rng if rng is not None else random.Random(_seed_from_name(name))
        # a -> b is the "down" direction by convention (network -> UE when
        # a is the infrastructure side; callers pick the orientation).
        self.a_to_b = SimplexLink(
            sim, f"{name}:a->b", bandwidth_bps, delay_s, loss_rate,
            queue_limit_bytes, shaper_down,
            random.Random(rng.getrandbits(32)))
        self.b_to_a = SimplexLink(
            sim, f"{name}:b->a", bandwidth_up_bps or bandwidth_bps, delay_s,
            loss_rate, queue_limit_bytes, shaper_up,
            random.Random(rng.getrandbits(32)))
        self.name = name
        self.a = a
        self.b = b
        self.a_to_b.receiver = lambda packet: b.receive(packet, self)
        self.b_to_a.receiver = lambda packet: a.receive(packet, self)
        a.attach_link(self)
        b.attach_link(self)

    def half_from(self, node) -> SimplexLink:
        """The simplex half that carries traffic *sent by* ``node``."""
        if node is self.a:
            return self.a_to_b
        if node is self.b:
            return self.b_to_a
        raise ValueError(f"{node!r} is not an endpoint of {self.name}")

    def send_from(self, node, packet: Packet) -> bool:
        """Send ``packet`` out of this link from ``node``'s side."""
        return self.half_from(node).send(packet)

    def other_end(self, node):
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of {self.name}")

    def set_up(self, up: bool) -> None:
        """Bring both directions up or down together."""
        self.a_to_b.set_up(up)
        self.b_to_a.set_up(up)

    def interrupt(self, duration_s: float) -> None:
        """Symmetric outage, e.g. the radio gap around a handover."""
        self.a_to_b.interrupt(duration_s)
        self.b_to_a.interrupt(duration_s)

    def flush(self) -> None:
        """Discard queued traffic in both directions (bearer teardown)."""
        self.a_to_b.flush()
        self.b_to_a.flush()

    def pause(self, duration_s: float) -> None:
        """Lossless delivery stall in both directions (X2 forwarding)."""
        self.a_to_b.pause(duration_s)
        self.b_to_a.pause(duration_s)
