"""Discrete-event simulation engine.

Every substrate in this reproduction (LTE signaling, SAP, TCP/MPTCP, the
drive-test emulation) runs on this engine: a single virtual clock and a
binary-heap event queue.  Using virtual time makes every experiment
deterministic and hardware-independent — protocol processing costs are
explicit, calibrated parameters rather than wall-clock artifacts.

Scale notes (the megaload workload drives this engine with 10^5-10^6
UEs, see ``repro.testbed.megaload``):

* Cancellation is *lazy* — ``Event.cancel`` flags the entry, and the run
  loop discards it when popped.  At population scale the dominant event
  pattern is restartable timers (every ``Timer.start`` cancels the
  previous deadline), so the heap would otherwise fill with dead
  entries and every push/pop would pay ``O(log garbage)``.  The
  simulator therefore counts dead entries and compacts the heap when
  they outnumber the live ones.
* ``pending()`` is O(1): live events are counted at schedule/cancel/run
  time instead of scanning the queue.
"""

from __future__ import annotations

import heapq
import itertools
from array import array
from typing import Any, Callable, Optional


class SimulationError(Exception):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "sim")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: owning simulator while the entry is still queued; detached
        #: (None) once the event has run or been discarded, so a late
        #: ``cancel`` on a stale handle cannot skew the live counters.
        self.sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the callback from running.  Safe to call repeatedly."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} {name}{flag}>"


#: below this queue size compaction is never worth the heapify.
_COMPACT_MIN_QUEUE = 512


class Simulator:
    """A deterministic event loop with a virtual clock (seconds)."""

    def __init__(self, compaction: bool = True):
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self._live = 0          # queued events that are not cancelled
        self._dead = 0          # cancelled events still in the heap
        #: lazy-compaction switch; benches flip it off to measure the
        #: pre-compaction event core.
        self.compaction = compaction
        # -- engine statistics (read by the megaload bench) --------------
        self.events_scheduled = 0
        self.compactions = 0
        self.peak_queue = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})")
        event = Event(time, next(self._counter), callback, args)
        event.sim = self
        queue = self._queue
        heapq.heappush(queue, event)
        self._live += 1
        self.events_scheduled += 1
        if len(queue) > self.peak_queue:
            self.peak_queue = len(queue)
        return event

    def _note_cancelled(self) -> None:
        """A queued event was cancelled: keep the counters exact and
        compact the heap once dead entries dominate the live ones."""
        self._live -= 1
        self._dead += 1
        if (self.compaction and self._dead > self._live
                and len(self._queue) >= _COMPACT_MIN_QUEUE):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors.

        Amortized O(1) per cancellation: a compaction costs O(n) but only
        runs after >= n/2 cancellations accumulated.
        """
        survivors = [event for event in self._queue if not event.cancelled]
        self._queue = survivors
        heapq.heapify(survivors)
        self._dead = 0
        self.compactions += 1

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the number of events processed.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drained earlier, so back-to-back ``run`` calls
        compose naturally.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                event = queue[0]
                if event.cancelled:
                    pop(queue)
                    self._dead -= 1
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                pop(queue)
                self._live -= 1
                event.sim = None
                self._now = event.time
                event.callback(*event.args)
                processed += 1
                if queue is not self._queue:
                    # A callback triggered compaction; rebind.
                    queue = self._queue
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return processed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    def clear(self) -> None:
        """Drop all queued events (used between experiment repetitions)."""
        for event in self._queue:
            event.cancelled = True
            event.sim = None
        self._queue.clear()
        self._live = 0
        self._dead = 0


class TickCalendar:
    """Quantized wakeup calendar: one heap event per *occupied* tick.

    Population-scale workloads (``repro.testbed.megaload``) step millions
    of lightweight actors whose wakeups all land on a fixed tick grid.
    Scheduling each wakeup as its own :class:`Event` costs a heap push, a
    heap pop, and a retained ``Event`` + args tuple per action; the
    calendar instead appends a ``(key, code)`` pair of **packed
    integers** to a per-tick bucket and schedules a single simulator
    event the first time a tick is occupied.  Firing a tick dispatches
    every pair in append order.

    The hot path is pure index arithmetic with no per-wake retained
    allocation: buckets are paired ``array('i')`` columns (8 bytes per
    pending wakeup, vs ~100 B for a tuple entry) recycled through a
    freelist, so steady-state stepping allocates no fresh containers.
    The split into two 31-bit words is deliberate: a single 64-bit word
    holding an actor id above the low bits forces every decode through
    CPython's multi-digit int path, while key (actor id) and code
    (action/token payload) each stay single-digit.  Callers invalidate
    superseded wakeups by token at dispatch time instead of heap
    cancellation, which keeps the heap free of dead entries.
    """

    #: calendars cannot cancel an individual wakeup — callers invalidate
    #: by token at dispatch time instead (the megaload engines key off
    #: this to decide whether ``wake`` returns a cancellable handle).
    cancellable = False

    __slots__ = ("sim", "tick", "dispatch", "_buckets", "_freelist")

    def __init__(self, sim: "Simulator", tick: float,
                 dispatch: Callable[[int, int], Any]):
        if tick <= 0:
            raise SimulationError(f"tick must be positive, got {tick}")
        self.sim = sim
        self.tick = tick
        #: ``dispatch(key, code)`` is called once per queued pair, in
        #: the order the pairs were appended within each tick.
        self.dispatch = dispatch
        self._buckets: dict[int, tuple[array, array]] = {}
        self._freelist: list[tuple[array, array]] = []

    def wake(self, idx: int, key: int, code: int = 0) -> None:
        """Queue ``(key, code)`` for dispatch at tick ``idx``
        (virtual time ``idx * tick``); both must fit a signed 32-bit
        array slot."""
        bucket = self._buckets.get(idx)
        if bucket is None:
            bucket = self._freelist.pop() if self._freelist \
                else (array("i"), array("i"))
            self._buckets[idx] = bucket
            self.sim.schedule_at(idx * self.tick, self._fire, idx)
        bucket[0].append(key)
        bucket[1].append(code)

    def pending(self) -> int:
        """Queued wakeups across all occupied ticks (diagnostics only)."""
        return sum(len(keys) for keys, _ in self._buckets.values())

    def _fire(self, idx: int) -> None:
        keys, codes = self._buckets.pop(idx)
        dispatch = self.dispatch
        # tolist() boxes each column in one C call; iterating the arrays
        # would re-box per element through the iterator protocol.  The
        # unpacking loop lets zip recycle its result tuple.
        for key, code in zip(keys.tolist(), codes.tolist()):
            dispatch(key, code)
        del keys[:]
        del codes[:]
        if len(self._freelist) < 64:
            self._freelist.append((keys, codes))


class Timer:
    """A restartable one-shot timer (e.g. a TCP retransmission timer)."""

    __slots__ = ("_sim", "_callback", "_event")

    def __init__(self, sim: Simulator, callback: Callable[[], Any]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire after ``delay`` seconds."""
        self.stop()
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
