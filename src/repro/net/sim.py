"""Discrete-event simulation engine.

Every substrate in this reproduction (LTE signaling, SAP, TCP/MPTCP, the
drive-test emulation) runs on this engine: a single virtual clock and a
binary-heap event queue.  Using virtual time makes every experiment
deterministic and hardware-independent — protocol processing costs are
explicit, calibrated parameters rather than wall-clock artifacts.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class SimulationError(Exception):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} {name}{flag}>"


class Simulator:
    """A deterministic event loop with a virtual clock (seconds)."""

    def __init__(self):
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})")
        event = Event(time, next(self._counter), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the number of events processed.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drained earlier, so back-to-back ``run`` calls
        compose naturally.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if max_events is not None and processed >= max_events:
                    heapq.heappush(self._queue, event)
                    break
                self._now = event.time
                event.callback(*event.args)
                processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return processed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    def clear(self) -> None:
        """Drop all queued events (used between experiment repetitions)."""
        for event in self._queue:
            event.cancel()
        self._queue.clear()


class Timer:
    """A restartable one-shot timer (e.g. a TCP retransmission timer)."""

    def __init__(self, sim: Simulator, callback: Callable[[], Any]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire after ``delay`` seconds."""
        self.stop()
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
