"""Discrete-event network simulation substrate.

Layered exactly as a real stack would be:

* :mod:`repro.net.sim` — the event loop and virtual clock,
* :mod:`repro.net.packet` — datagrams, flow keys, address pools,
* :mod:`repro.net.link` — bandwidth/delay/loss pipes, token-bucket shaping,
* :mod:`repro.net.node` — hosts (with runtime address changes), routers, UDP,
* :mod:`repro.net.tcp` — Reno/NewReno TCP,
* :mod:`repro.net.mptcp` — multipath TCP with subflow replacement,
* :mod:`repro.net.topology` — canonical UE-to-server paths.
"""

from .link import Link, LinkStats, SimplexLink, TokenBucket
from .mptcp import (
    DEFAULT_ADDRESS_TIMEOUT,
    DEFAULT_ADDRESS_WAIT,
    DssMapping,
    MptcpConnection,
    MptcpListener,
    MptcpServerConnection,
)
from .node import Host, Node, Router, UdpSocket
from .packet import (
    PROTO_GRE,
    PROTO_TCP,
    PROTO_UDP,
    UNSPECIFIED,
    AddressPool,
    FlowKey,
    Packet,
    same_prefix,
)
from .sim import Event, SimulationError, Simulator, TickCalendar, Timer
from .tcp import DEFAULT_MSS, Segment, TcpConnection, TcpListener, TcpStats
from .topology import CellularPath
from .tunnel import GreEndpoint, TunneledHost

__all__ = [
    "AddressPool",
    "CellularPath",
    "DEFAULT_ADDRESS_TIMEOUT",
    "DEFAULT_ADDRESS_WAIT",
    "DEFAULT_MSS",
    "DssMapping",
    "Event",
    "FlowKey",
    "GreEndpoint",
    "Host",
    "Link",
    "LinkStats",
    "MptcpConnection",
    "MptcpListener",
    "MptcpServerConnection",
    "Node",
    "PROTO_GRE",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "Router",
    "Segment",
    "SimplexLink",
    "SimulationError",
    "Simulator",
    "TickCalendar",
    "TcpConnection",
    "TcpListener",
    "TcpStats",
    "Timer",
    "TokenBucket",
    "TunneledHost",
    "UNSPECIFIED",
    "UdpSocket",
    "same_prefix",
]
