"""MPTCP: one logical connection over replaceable TCP subflows.

This is the host-side mechanism CellBricks relies on for seamless mobility
(§4.2): when a UE detaches from one bTelco and attaches to another, its IP
address changes; the MPTCP endpoint opens a *new subflow* from the new
address (a fresh 3WHS + slow-start), tells the peer to drop the old one
(REMOVE_ADDR), and the connection-level byte stream continues unbroken.

Modeled faithfully from the paper's description of the mainline Linux
implementation:

* the **address worker wait** — mainline MPTCP waits a hard-coded 500 ms
  between detecting an address change and taking corrective action
  (``mptcp_fullmesh.c::address_worker``); the paper keeps it for default
  runs and removes it for Fig 9's factor analysis.  Here it is the
  ``address_wait`` parameter.
* the **60 s address timeout** — if no new address appears, the connection
  is torn down.
* **re-injection** — connection-level data that was queued or in flight on
  a dead subflow is re-sent on the replacement subflow; the receiver
  deduplicates via DSS sequence space.

Both endpoints are symmetric byte-stream endpoints; the *client* (UE) side
drives subflow management, matching the UE-driven design.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs import CounterAttr, MetricsRegistry

from .node import Host
from .packet import UNSPECIFIED
from .sim import Timer
from .tcp import DEFAULT_MSS, TcpConnection, TcpListener

DEFAULT_ADDRESS_WAIT = 0.5     # mainline MPTCP address_worker period
DEFAULT_ADDRESS_TIMEOUT = 60.0  # paper §4.2: teardown if no address by 60 s


@dataclass(frozen=True)
class DssMapping:
    """DSS option: maps subflow payload bytes to connection sequence space."""

    conn_seq: int

    def advance(self, nbytes: int) -> "DssMapping":
        return DssMapping(self.conn_seq + nbytes)


@dataclass(frozen=True)
class MpCapable:
    """SYN meta for the initial subflow."""

    token: int


@dataclass(frozen=True)
class MpJoin:
    """SYN meta for additional subflows joining an existing connection."""

    token: int


@dataclass(frozen=True)
class RemoveAddr:
    """Control meta asking the peer to drop subflows from ``address``."""

    token: int
    address: str


class _ConnReceiver:
    """Connection-level reassembly: dedups and orders DSS-mapped bytes."""

    def __init__(self):
        self.rcv_nxt = 0
        self._pending: dict[int, int] = {}  # conn_seq -> length

    def on_mapped_data(self, conn_seq: int, length: int) -> int:
        """Register ``length`` bytes at ``conn_seq``; returns bytes newly
        deliverable in order (0 for duplicates/out-of-order)."""
        end = conn_seq + length
        if end <= self.rcv_nxt:
            return 0  # pure duplicate (re-injection overlap)
        if conn_seq > self.rcv_nxt:
            existing = self._pending.get(conn_seq, 0)
            self._pending[conn_seq] = max(existing, length)
            return 0
        delivered = end - self.rcv_nxt
        self.rcv_nxt = end
        # Drain any out-of-order ranges now contiguous.  One ascending
        # pass suffices: each range either extends rcv_nxt (possibly
        # making the next one contiguous too) or sits past a gap, and
        # everything after a gap is even further out.
        for seq in sorted(self._pending):
            if seq > self.rcv_nxt:
                break
            tail = seq + self._pending.pop(seq)
            if tail > self.rcv_nxt:
                delivered += tail - self.rcv_nxt
                self.rcv_nxt = tail
        return delivered


class MptcpEndpoint:
    """Common machinery for both ends of an MPTCP connection."""

    subflows_added = CounterAttr("mptcp.subflows_added")
    subflows_failed = CounterAttr("mptcp.subflows_failed")
    subflows_removed = CounterAttr("mptcp.subflows_removed")

    def __init__(self, host: Host, mss: int = DEFAULT_MSS):
        self.host = host
        self.sim = host.sim
        self.metrics = MetricsRegistry(node=f"mptcp:{host.name}")
        self.mss = mss
        self.subflows: list[TcpConnection] = []
        self.active_subflow: Optional[TcpConnection] = None
        self._receiver = _ConnReceiver()
        self._snd_conn_nxt = 0          # next conn seq to assign
        self._delivered_ranges: set = set()
        self.bytes_delivered = 0        # in-order bytes handed to the app
        self.on_data: Optional[Callable[[int], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_fail: Optional[Callable[[str], None]] = None
        self.closed = False
        self._fin_requested = False
        self.subflow_count = 0

    # -- sending ----------------------------------------------------------
    def send(self, nbytes: int) -> None:
        """Queue ``nbytes`` on the connection-level stream."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if self._fin_requested:
            raise RuntimeError("cannot send after close()")
        mapping = DssMapping(self._snd_conn_nxt)
        self._snd_conn_nxt += nbytes
        if self.active_subflow is not None \
                and self.active_subflow.state != "DONE":
            self.active_subflow.send(nbytes, meta=mapping)
        else:
            self._backlog.append((nbytes, mapping))

    _backlog: list

    def close(self) -> None:
        self._fin_requested = True
        if self.active_subflow is not None:
            self.active_subflow.close()

    # -- observability ------------------------------------------------------
    def _obs_instant(self, name: str, **data) -> None:
        """Annotate a subflow-lifecycle event when tracing is installed."""
        obs = getattr(self.sim, "obs", None)
        if obs is not None and obs.tracing:
            obs.tracer.instant(name, f"mptcp:{self.host.name}",
                               self.sim.now, category="mptcp",
                               data=data or None)

    def _obs_begin_span(self, name: str, **data):
        """Open a data-path span.  When a mobility switch is in flight for
        this host (``obs.active_migrations``), the span parents under the
        migration root so the handover stall decomposes into legs; outside
        a switch it roots a trace of its own."""
        obs = getattr(self.sim, "obs", None)
        if obs is None or not obs.tracing:
            return None
        parent = obs.active_migrations.get(self.host.name)
        ctx = parent.context if parent is not None \
            and parent.end is None else None
        span = obs.tracer.start_trace(name, f"mptcp:{self.host.name}",
                                      "mptcp", self.sim.now, ctx=ctx)
        if data:
            span.data = data
        return span

    @staticmethod
    def _obs_finish(span, end: float, status: str = "ok") -> None:
        """Close an open data-path span (idempotent; no-op on None)."""
        if span is not None and span.end is None:
            span.end = end
            span.status = status

    # -- subflow plumbing ---------------------------------------------------
    def _wire_subflow(self, subflow: TcpConnection) -> None:
        self.subflows.append(subflow)
        self.subflow_count += 1
        self.subflows_added += 1
        self._obs_instant("mptcp.subflow_add",
                          local=subflow.local_ip, remote=subflow.remote_ip)
        subflow.on_data = self._on_subflow_data
        subflow.on_close = self._on_subflow_close
        subflow.on_fail = lambda reason, sf=subflow: \
            self._on_subflow_fail(sf, reason)

    def _on_subflow_data(self, nbytes: int, meta: object) -> None:
        if isinstance(meta, RemoveAddr):
            self._handle_remove_addr(meta)
            return
        if isinstance(meta, DssMapping):
            delivered = self._receiver.on_mapped_data(meta.conn_seq, nbytes)
        else:
            # Untagged data (plain-TCP fallback peers): treat as in-order.
            delivered = nbytes
        if delivered > 0:
            self.bytes_delivered += delivered
            if self.on_data is not None:
                self.on_data(delivered)

    def _handle_remove_addr(self, control: RemoveAddr) -> None:
        for subflow in list(self.subflows):
            if subflow.remote_ip == control.address \
                    and subflow is not self.active_subflow:
                subflow.abort("REMOVE_ADDR")
                self.subflows.remove(subflow)
                self.subflows_removed += 1
                self._obs_instant("mptcp.subflow_remove",
                                  remote=subflow.remote_ip,
                                  reason="REMOVE_ADDR")

    def _on_subflow_close(self) -> None:
        if not self.closed:
            self.closed = True
            if self.on_close is not None:
                self.on_close()

    def _on_subflow_fail(self, subflow: TcpConnection, reason: str) -> None:
        self._obs_finish(getattr(subflow, "_obs_span", None),
                         self.sim.now, status="error")
        if subflow in self.subflows:
            self.subflows.remove(subflow)
            self.subflows_failed += 1
            self._obs_instant("mptcp.subflow_fail",
                              remote=subflow.remote_ip, reason=reason)

    # -- re-injection -------------------------------------------------------
    def _salvage(self, subflow: TcpConnection) -> list[tuple[int, DssMapping]]:
        """Collect conn-level ranges not known-delivered on ``subflow``."""
        ranges: list[tuple[int, DssMapping]] = []
        for chunk in subflow.unacked_chunks():
            if isinstance(chunk.meta, DssMapping):
                ranges.append((chunk.length, chunk.meta))
        for nbytes, meta in subflow.take_unsent_ranges():
            if isinstance(meta, DssMapping):
                ranges.append((nbytes, meta))
        ranges.sort(key=lambda item: item[1].conn_seq)
        return ranges


class MptcpConnection(MptcpEndpoint):
    """Client (UE) side: owns subflow lifecycle and address management."""

    handover_count = CounterAttr("mptcp.handovers")

    def __init__(self, host: Host, remote_ip: str, remote_port: int,
                 mss: int = DEFAULT_MSS,
                 address_wait: float = DEFAULT_ADDRESS_WAIT,
                 address_timeout: float = DEFAULT_ADDRESS_TIMEOUT,
                 token: int = 0):
        super().__init__(host, mss)
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.address_wait = address_wait
        self.address_timeout = address_timeout
        self.token = token or id(self) & 0xFFFFFFFF
        self._backlog = []
        self._established_once = False
        self._worker_timer = Timer(self.sim, self._address_worker)
        self._timeout_timer = Timer(self.sim, self._on_address_timeout)
        self._previous_address: Optional[str] = None
        self._pending_remove: Optional[str] = None
        self._started = False
        self.handover_count = 0
        self.subflow_established_times: list[float] = []
        self._wait_span = None
        host.add_address_listener(self._on_address_change)

    # -- lifecycle ----------------------------------------------------------
    def connect(self) -> None:
        """Open the initial subflow (MP_CAPABLE)."""
        self._started = True
        self._open_subflow(MpCapable(self.token))

    def _open_subflow(self, syn_meta: object) -> None:
        subflow = TcpConnection(self.host, self.remote_ip, self.remote_port,
                                mss=self.mss)
        subflow._obs_span = self._obs_begin_span(
            "mptcp.subflow_establish", syn=type(syn_meta).__name__)
        self._wire_subflow(subflow)
        subflow.on_established = lambda sf=subflow: \
            self._on_subflow_established(sf)
        # Carry the MPTCP option on the SYN via a side channel: the listener
        # inspects it to MP_CAPABLE-create or MP_JOIN an existing connection.
        subflow.syn_meta = syn_meta
        subflow.connect()

    def _on_subflow_established(self, subflow: TcpConnection) -> None:
        self._obs_finish(getattr(subflow, "_obs_span", None), self.sim.now)
        self.active_subflow = subflow
        self.subflow_established_times.append(self.sim.now)
        if self._pending_remove is not None \
                and self._pending_remove != subflow.local_ip:
            # Tell the peer to forget the pre-handover address (§4.2 step
            # iii: REMOVE_ADDR for the previous subflow).
            subflow.send(1, meta=RemoveAddr(self.token, self._pending_remove))
            self._pending_remove = None
        for nbytes, mapping in self._backlog:
            subflow.send(nbytes, meta=mapping)
        self._backlog.clear()
        if self._fin_requested:
            subflow.close()
        if not self._established_once:
            self._established_once = True
            if self.on_established is not None:
                self.on_established()

    # -- address management ---------------------------------------------------
    def _on_address_change(self, old_ip: str, new_ip: str) -> None:
        if self.closed:
            return
        if new_ip == UNSPECIFIED:
            # Invalidation: remember the stale address, start the watch
            # timeout, and (as mainline does) defer action to the worker.
            self._previous_address = old_ip
            if self._wait_span is None or self._wait_span.end is not None:
                self._wait_span = self._obs_begin_span(
                    "mptcp.address_wait", stale=old_ip)
            self._timeout_timer.start(self.address_timeout)
            self._worker_timer.start(self.address_wait)
        else:
            self._timeout_timer.stop()
            if not self._worker_timer.armed:
                # The wait period already elapsed while we had no address;
                # act immediately now that one exists.
                self._address_worker()

    def _address_worker(self) -> None:
        """The deferred corrective action after an address change."""
        if self.closed or not self._started:
            return
        if not self.host.has_address:
            return  # still no address; we re-run when one shows up
        self._obs_finish(self._wait_span, self.sim.now)
        self._wait_span = None
        stale = [sf for sf in self.subflows
                 if sf.local_ip != self.host.address]
        active_ok = (self.active_subflow is not None
                     and self.active_subflow not in stale
                     and self.active_subflow.state != "DONE")
        if active_ok and not stale:
            return  # address came back unchanged; nothing to do
        salvaged: list[tuple[int, DssMapping]] = []
        for subflow in stale:
            salvaged.extend(self._salvage(subflow))
            subflow.abort("address changed")
            if subflow in self.subflows:
                self.subflows.remove(subflow)
            if subflow is self.active_subflow:
                self.active_subflow = None
        salvaged.sort(key=lambda item: item[1].conn_seq)
        if self.active_subflow is None:
            self._pending_remove = self._previous_address
            self.handover_count += 1
            self._obs_instant("mptcp.handover",
                              new_local=self.host.address,
                              salvaged=len(salvaged))
            self._open_and_reinject(salvaged)

    def _open_and_reinject(self, salvaged: list[tuple[int, DssMapping]]) -> None:
        self._backlog = salvaged + self._backlog
        if self._established_once:
            self._open_subflow(MpJoin(self.token))
        else:
            # The initial handshake never completed, so the listener may
            # not know our token yet and would reset an MP_JOIN
            # (RFC 8684 §3.2): restart with MP_CAPABLE instead.
            self._open_subflow(MpCapable(self.token))

    def _on_address_timeout(self) -> None:
        """No new address within the timeout: tear the connection down."""
        self.closed = True
        self._obs_finish(self._wait_span, self.sim.now, status="timeout")
        self._wait_span = None
        self._worker_timer.stop()
        for subflow in self.subflows:
            subflow.abort("address timeout")
        self.subflows.clear()
        if self.on_fail is not None:
            self.on_fail("no address within timeout")

    def _on_subflow_fail(self, subflow: TcpConnection, reason: str) -> None:
        super()._on_subflow_fail(subflow, reason)
        if self.closed or reason in ("address changed", "address timeout"):
            return
        if subflow is self.active_subflow:
            self.active_subflow = None
            if self.host.has_address:
                # e.g. SYN timeout right after attachment: retry.
                self._open_and_reinject(self._salvage(subflow))


class MptcpServerConnection(MptcpEndpoint):
    """Server side: subflows are attached by :class:`MptcpListener`."""

    def __init__(self, host: Host, token: int, mss: int = DEFAULT_MSS):
        super().__init__(host, mss)
        self.token = token
        self._backlog = []

    def attach_subflow(self, subflow: TcpConnection) -> None:
        self._wire_subflow(subflow)
        previous = self.active_subflow
        salvaged: list[tuple[int, DssMapping]] = []
        if previous is not None and previous.state != "ESTABLISHED":
            salvaged = self._salvage(previous)
        self.active_subflow = subflow
        for nbytes, mapping in salvaged + self._backlog:
            subflow.send(nbytes, meta=mapping)
        self._backlog = []

    def _handle_remove_addr(self, control: RemoveAddr) -> None:
        """Peer asks us to drop subflows towards a stale client address."""
        for subflow in list(self.subflows):
            if subflow.remote_ip == control.address:
                salvaged = self._salvage(subflow)
                subflow.abort("REMOVE_ADDR")
                if subflow in self.subflows:
                    self.subflows.remove(subflow)
                if subflow is self.active_subflow:
                    self.active_subflow = None
                if salvaged and self.active_subflow is not None:
                    for nbytes, mapping in salvaged:
                        self.active_subflow.send(nbytes, meta=mapping)
                elif salvaged:
                    self._backlog = salvaged + self._backlog

    def send(self, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        mapping = DssMapping(self._snd_conn_nxt)
        self._snd_conn_nxt += nbytes
        subflow = self.active_subflow
        if subflow is not None and subflow.state not in ("DONE",):
            # TCP buffers sends made before establishment completes.
            subflow.send(nbytes, meta=mapping)
        else:
            self._backlog.append((nbytes, mapping))


class MptcpListener:
    """Accepts MP_CAPABLE subflows as new connections and MP_JOIN subflows
    into existing ones (matched by token)."""

    def __init__(self, host: Host, port: int,
                 on_connection: Callable[[MptcpServerConnection], None],
                 mss: int = DEFAULT_MSS):
        self.host = host
        self.port = port
        self.on_connection = on_connection
        self.mss = mss
        self.connections: dict[int, MptcpServerConnection] = {}
        # Plain-TCP fallback peers carry no MPTCP option, so they get
        # listener-local tokens from the negative space (a real MP_JOIN
        # token can never collide with them).
        self._fallback_tokens = itertools.count(-1, -1)
        self.rejected_joins = 0
        self._listener = TcpListener(host, port, self._on_accept, mss=mss)

    def _on_accept(self, subflow: TcpConnection) -> None:
        # The SYN meta rode in on the client subflow object; our simulator
        # delivers it via the packet that created this connection.  The
        # listener stores it on the accepted connection (see TcpListener).
        meta = getattr(subflow, "syn_meta", None)
        if isinstance(meta, MpJoin):
            if meta.token in self.connections:
                self.connections[meta.token].attach_subflow(subflow)
            else:
                # RFC 8684 §3.2: a JOIN for an unknown token is answered
                # with a reset, never a silently minted connection.
                self.rejected_joins += 1
                self.host.sim.schedule(0.0, subflow.abort,
                                       "unknown MPTCP token")
            return
        if isinstance(meta, MpCapable):
            token = meta.token
            if token in self.connections:
                # The client restarted its initial subflow (our SYN-ACK
                # died before it established): rejoin the connection we
                # already minted rather than shadowing it with a new one.
                self.connections[token].attach_subflow(subflow)
                return
        else:
            token = next(self._fallback_tokens)
        connection = MptcpServerConnection(self.host, token, mss=self.mss)
        connection.attach_subflow(subflow)
        self.connections[token] = connection
        self.on_connection(connection)

    def close(self) -> None:
        self._listener.close()
