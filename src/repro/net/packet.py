"""Packet and address primitives for the network simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

# Protocol numbers (mirroring IANA where it helps readability).
PROTO_UDP = 17
PROTO_TCP = 6
PROTO_GRE = 47

UNSPECIFIED = "0.0.0.0"

_packet_ids = itertools.count(1)

# Header sizes used for wire accounting (bytes).
IP_HEADER = 20
UDP_HEADER = 8
TCP_HEADER = 20
TCP_TIMESTAMP_OPTION = 12
MPTCP_DSS_OPTION = 20
GRE_HEADER = 4


@dataclass(slots=True)
class Packet:
    """An IP datagram.

    ``payload`` carries the transport-layer segment object (a
    :class:`~repro.net.tcp.Segment`, a UDP datagram body, or a tunnelled
    inner :class:`Packet`).  ``size`` is the on-the-wire size in bytes and
    is what links charge for serialization and queuing.
    """

    src: str
    dst: str
    protocol: int
    size: int
    payload: Any = None
    ttl: int = 64
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError("packet size must be positive")

    def copy_for_forwarding(self) -> "Packet":
        """Duplicate the packet with a decremented TTL.

        This is the per-hop allocation on the forwarding hot path, so it
        bypasses the dataclass ``__init__`` (and its re-validation of an
        already-validated size) and fills the slots directly.  The copy
        still gets a fresh ``packet_id`` — links key their in-flight
        events by it, so each hop must be distinct.
        """
        clone = object.__new__(Packet)
        clone.src = self.src
        clone.dst = self.dst
        clone.protocol = self.protocol
        clone.size = self.size
        clone.payload = self.payload
        clone.ttl = self.ttl - 1
        clone.created_at = self.created_at
        clone.packet_id = next(_packet_ids)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Packet #{self.packet_id} {self.src}->{self.dst} "
                f"proto={self.protocol} {self.size}B>")


@dataclass(frozen=True)
class FlowKey:
    """Demultiplexing key for a transport endpoint."""

    local_ip: str
    local_port: int
    remote_ip: str
    remote_port: int

    def reversed(self) -> "FlowKey":
        return FlowKey(self.remote_ip, self.remote_port,
                       self.local_ip, self.local_port)


class AddressPool:
    """Allocates IPv4 addresses from a /24-style prefix.

    Each bTelco's packet gateway owns a pool; a UE attaching to a different
    bTelco therefore receives an address under a different prefix — the IP
    change that CellBricks' host-driven mobility must absorb.
    """

    def __init__(self, prefix: str, first_host: int = 2, last_host: int = 254):
        parts = prefix.split(".")
        if len(parts) != 3 or not all(p.isdigit() and 0 <= int(p) <= 255
                                      for p in parts):
            raise ValueError(f"prefix must look like 'a.b.c', got {prefix!r}")
        self.prefix = prefix
        self._available = list(range(first_host, last_host + 1))
        self._allocated: dict[str, int] = {}

    def allocate(self) -> str:
        """Return a fresh address, raising when the pool is exhausted."""
        if not self._available:
            raise RuntimeError(f"address pool {self.prefix}.0/24 exhausted")
        host = self._available.pop(0)
        address = f"{self.prefix}.{host}"
        self._allocated[address] = host
        return address

    def release(self, address: str) -> None:
        """Return ``address`` to the pool; unknown addresses are ignored."""
        host = self._allocated.pop(address, None)
        if host is not None:
            self._available.append(host)

    def owns(self, address: str) -> bool:
        """True when ``address`` belongs to this pool's prefix."""
        return address.rsplit(".", 1)[0] == self.prefix

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)


def same_prefix(address_a: str, address_b: str) -> bool:
    """True when two addresses share the same /24 prefix."""
    return address_a.rsplit(".", 1)[0] == address_b.rsplit(".", 1)[0]
