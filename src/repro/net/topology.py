"""Topology builders for the CellBricks experiments.

The canonical data-path topology (mirroring the paper's §6.2 setup) is::

    UE host -- radio link -- bTelco gateway -- WAN link -- server host
                (shaped,        (router,        (fat,
                 lossy,          owns the        fixed
                 outages)        UE address      delay)
                                 pool)

:class:`CellularPath` wires it together and exposes the knobs the
emulation driver turns: radio bandwidth, the carrier token-bucket policy,
handover interruptions, and UE address (re)assignment from per-bTelco
pools.
"""

from __future__ import annotations

import random
from typing import Optional

from .link import Link, TokenBucket
from .node import Host, Router
from .packet import AddressPool
from .sim import Simulator

# Latency calibration (one-way, seconds).  Radio + core + WAN(us-west)
# yields the ~45-50 ms UE->EC2 ping p50 reported in Table 1.
DEFAULT_RADIO_DELAY = 0.018
DEFAULT_CORE_DELAY = 0.002
DEFAULT_WAN_DELAY = 0.004

DEFAULT_RADIO_BANDWIDTH = 75e6   # LTE cat-4-ish air interface ceiling
DEFAULT_UPLINK_BANDWIDTH = 25e6
DEFAULT_WAN_BANDWIDTH = 1e9
DEFAULT_RADIO_LOSS = 0.0005


class CellularPath:
    """A UE's end-to-end path through one bTelco to a fixed server."""

    def __init__(self, sim: Simulator, name: str = "path",
                 radio_delay: float = DEFAULT_RADIO_DELAY,
                 core_delay: float = DEFAULT_CORE_DELAY,
                 wan_delay: float = DEFAULT_WAN_DELAY,
                 radio_bandwidth: float = DEFAULT_RADIO_BANDWIDTH,
                 uplink_bandwidth: float = DEFAULT_UPLINK_BANDWIDTH,
                 radio_loss: float = DEFAULT_RADIO_LOSS,
                 shaper_rate: Optional[float] = None,
                 shaper_burst: Optional[float] = None,
                 server_address: str = "52.9.0.10",
                 ue_pool_prefix: str = "10.128.0",
                 queue_limit_bytes: int = 384 * 1024,
                 seed: int = 0):
        self.sim = sim
        rng = random.Random(seed)
        self.ue = Host(sim, f"{name}-ue")
        self.gateway = Router(sim, f"{name}-gw",
                              forwarding_delay_s=core_delay)
        self.server = Host(sim, f"{name}-server", address=server_address)

        shaper = None
        if shaper_rate is not None:
            burst = shaper_burst if shaper_burst is not None \
                else shaper_rate / 8.0 * 1.5  # 1.5 s of credit
            shaper = TokenBucket(shaper_rate, burst)
        self.downlink_shaper = shaper

        # gateway is endpoint "a" on the radio link, so a->b (gateway->UE)
        # is the downlink and carries the carrier's shaper.
        self.radio_link = Link(
            sim, f"{name}-radio", self.gateway, self.ue,
            bandwidth_bps=radio_bandwidth, delay_s=radio_delay,
            loss_rate=radio_loss, queue_limit_bytes=queue_limit_bytes,
            shaper_down=shaper, bandwidth_up_bps=uplink_bandwidth,
            rng=random.Random(rng.getrandbits(32)))
        self.wan_link = Link(
            sim, f"{name}-wan", self.gateway, self.server,
            bandwidth_bps=DEFAULT_WAN_BANDWIDTH, delay_s=wan_delay,
            queue_limit_bytes=4 * 1024 * 1024,
            rng=random.Random(rng.getrandbits(32)))

        self.pools: dict[str, AddressPool] = {}
        self._register_pool(ue_pool_prefix)
        self.gateway.set_default_route(self.wan_link)

        self._current_pool = ue_pool_prefix

    # -- address management -------------------------------------------------
    def _register_pool(self, prefix: str) -> AddressPool:
        if prefix not in self.pools:
            self.pools[prefix] = AddressPool(prefix)
            self.gateway.add_route(prefix, self.radio_link)
        return self.pools[prefix]

    def assign_ue_address(self, pool_prefix: Optional[str] = None) -> str:
        """Allocate and install a UE address (a fresh attach)."""
        prefix = pool_prefix or self._current_pool
        pool = self._register_pool(prefix)
        old = self.ue.address
        address = pool.allocate()
        self.ue.set_address(address)
        for candidate in self.pools.values():
            if candidate.owns(old):
                candidate.release(old)
        self._current_pool = prefix
        return address

    def install_ue_address(self, address: str) -> None:
        """Install a specific UE address (one granted by a bTelco's PGW),
        adding the gateway route for its prefix."""
        prefix = address.rsplit(".", 1)[0]
        self._register_pool(prefix)
        self.gateway.add_route(prefix, self.radio_link)
        self.ue.set_address(address)
        self._current_pool = prefix
        if self.downlink_shaper is not None:
            self.downlink_shaper.reset(self.sim.now)

    def invalidate_ue_address(self) -> None:
        """Model detachment: the interface shows 0.0.0.0."""
        self.ue.invalidate_address()

    def detach(self, interruption_s: float = 0.0) -> None:
        """Full detach from the current bTelco (CellBricks switch).

        Tears down the radio bearer (flushing its queues — packets buffered
        for the old attachment are gone), drops the gateway route for the
        old prefix so stale server traffic no longer consumes air time, and
        invalidates the UE address.
        """
        old = self.ue.address
        self.radio_link.flush()
        if interruption_s > 0:
            self.radio_link.interrupt(interruption_s)
        old_prefix = old.rsplit(".", 1)[0]
        self.gateway.remove_route(old_prefix)
        self.invalidate_ue_address()

    def attach(self, pool_prefix: Optional[str] = None,
               reset_shaper: bool = True) -> str:
        """Attach to a (new) bTelco: fresh address, fresh shaper credit."""
        address = self.assign_ue_address(pool_prefix)
        prefix = address.rsplit(".", 1)[0]
        self.gateway.add_route(prefix, self.radio_link)
        if reset_shaper and self.downlink_shaper is not None:
            # A different bTelco's policer starts with a full bucket.
            self.downlink_shaper.reset(self.sim.now)
        return address

    # -- emulation knobs ------------------------------------------------------
    def set_radio_bandwidth(self, bandwidth_bps: float) -> None:
        """Per-sample radio capacity (downlink); uplink scales at 1/3."""
        self.radio_link.a_to_b.set_bandwidth(bandwidth_bps)
        self.radio_link.b_to_a.set_bandwidth(max(bandwidth_bps / 3.0, 1e6))

    def set_shaper_rate(self, rate_bps: Optional[float]) -> None:
        """Switch the carrier policing rate (day/night policy change)."""
        if rate_bps is None:
            self.radio_link.a_to_b.shaper = None
        elif self.downlink_shaper is None:
            self.downlink_shaper = TokenBucket(rate_bps, rate_bps / 8.0 * 1.5)
            self.radio_link.a_to_b.shaper = self.downlink_shaper
        else:
            self.downlink_shaper.set_rate(rate_bps)
            self.radio_link.a_to_b.shaper = self.downlink_shaper

    def radio_interruption(self, duration_s: float) -> None:
        """A hard radio gap: traffic in the air is lost."""
        self.radio_link.interrupt(duration_s)

    def radio_pause(self, duration_s: float) -> None:
        """A network-managed handover: delivery stalls but nothing is
        lost (source-to-target forwarding)."""
        self.radio_link.pause(duration_s)
