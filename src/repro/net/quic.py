"""A QUIC-style transport with connection migration.

§4.2 names two host-side answers to CellBricks' IP churn: MPTCP (what the
prototype uses) and QUIC — "these protocols have explicit connection
identifiers within their L4 header and use IP addresses only for packet
delivery".  The paper leaves QUIC "to future work"; this module builds it
so the two approaches can be compared (the XTRA-QUIC benchmark):

* connection IDs — packets are demultiplexed by CID, not 4-tuple, so a
  client address change needs *no new connection state*;
* **connection migration** — when the client's address changes it sends a
  PATH_CHALLENGE from the new address; the server validates the path
  (echoes PATH_RESPONSE) and re-points the connection.  One round trip,
  no handshake, no subflow, no 500 ms worker wait;
* a Reno-style congestion controller with packet-number loss detection
  (packet threshold 3) and a probe timeout (PTO), per RFC 9002's shape;
* stream data as (offset, length) ranges with exact-once in-order
  delivery, like the MPTCP DSS machinery.

Modeled simplifications: a 1-RTT handshake, a single stream, ACKs on
every packet, and no flow control (the simulator's receivers consume
instantly).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from .node import Host, UdpSocket
from .packet import UNSPECIFIED
from .sim import Simulator, Timer

QUIC_MAX_PAYLOAD = 1350   # QUIC's typical UDP payload budget
QUIC_HEADER = 28          # short header + auth tag, approximate
INITIAL_WINDOW = 10 * QUIC_MAX_PAYLOAD
MIN_PTO = 0.2
MAX_PTO = 60.0
PACKET_LOSS_THRESHOLD = 3

_connection_ids = itertools.count(0x51C0)


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StreamFrame:
    offset: int
    length: int


@dataclass(frozen=True)
class AckFrame:
    largest: int
    acked: tuple          # packet numbers (bounded set per ACK)


@dataclass(frozen=True)
class HandshakeFrame:
    is_response: bool = False


@dataclass(frozen=True)
class PathChallenge:
    token: int


@dataclass(frozen=True)
class PathResponse:
    token: int


@dataclass(frozen=True)
class QuicDatagram:
    """What rides inside the UDP payload."""

    cid: int
    packet_number: int
    frames: tuple


@dataclass(slots=True)
class _SentPacket:
    packet_number: int
    frames: tuple
    sent_at: float
    in_flight_bytes: int
    lost: bool = False
    acked: bool = False


class _StreamReceiver:
    """Exact-once, in-order delivery of (offset, length) ranges."""

    def __init__(self):
        self.delivered = 0
        self._pending: dict[int, int] = {}

    def receive(self, offset: int, length: int) -> int:
        end = offset + length
        if end <= self.delivered:
            return 0
        if offset > self.delivered:
            self._pending[offset] = max(self._pending.get(offset, 0), length)
            return 0
        newly = end - self.delivered
        self.delivered = end
        progressed = True
        while progressed:
            progressed = False
            for start in sorted(self._pending):
                size = self._pending[start]
                if start <= self.delivered:
                    del self._pending[start]
                    tail = start + size
                    if tail > self.delivered:
                        newly += tail - self.delivered
                        self.delivered = tail
                    progressed = True
                    break
        return newly


class QuicEndpoint:
    """Shared sender/receiver machinery for one side of a connection."""

    def __init__(self, host: Host, cid: int):
        self.host = host
        self.sim: Simulator = host.sim
        self.cid = cid
        self.socket: Optional[UdpSocket] = None
        self.peer_ip: Optional[str] = None
        self.peer_port: Optional[int] = None

        # Sender state
        self.next_packet_number = 0
        self.cwnd = INITIAL_WINDOW
        self.ssthresh = float("inf")
        self.bytes_in_flight = 0
        self.stream_offset = 0          # next offset to assign
        self._send_queue = 0            # bytes queued, not yet framed
        self._retransmit: list[StreamFrame] = []
        self._sent: dict[int, _SentPacket] = {}
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self._pto_timer = Timer(self.sim, self._on_pto)
        self._pto_count = 0
        self.established = False

        # Receiver state
        self._receiver = _StreamReceiver()
        self._largest_received = -1
        self._recent_received: list[int] = []

        # Callbacks
        self.on_data: Optional[Callable[[int], None]] = None
        self.on_established: Optional[Callable[[], None]] = None

        self.stats_packets_sent = 0
        self.stats_packets_lost = 0
        self.migrations = 0

    # -- observability ------------------------------------------------------
    def _obs_instant(self, name: str, **data) -> None:
        """Annotate a connection-lifecycle event when tracing is installed."""
        obs = getattr(self.sim, "obs", None)
        if obs is not None and obs.tracing:
            obs.tracer.instant(name, f"quic:{self.host.name}",
                               self.sim.now, category="quic",
                               data=data or None)

    def _obs_begin_span(self, name: str, **data):
        """Open a data-path span, parented under an in-flight mobility
        switch for this host when one is registered (so the handover
        stall decomposes into legs); otherwise a fresh root."""
        obs = getattr(self.sim, "obs", None)
        if obs is None or not obs.tracing:
            return None
        parent = obs.active_migrations.get(self.host.name)
        ctx = parent.context if parent is not None \
            and parent.end is None else None
        span = obs.tracer.start_trace(name, f"quic:{self.host.name}",
                                      "quic", self.sim.now, ctx=ctx)
        if data:
            span.data = data
        return span

    @staticmethod
    def _obs_finish(span, end: float, status: str = "ok") -> None:
        """Close an open data-path span (idempotent; no-op on None)."""
        if span is not None and span.end is None:
            span.end = end
            span.status = status

    # -- sending ------------------------------------------------------------
    def send(self, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self._send_queue += nbytes
        self._pump()

    def _pump(self) -> None:
        if not self.established or self.peer_ip is None:
            return
        while self.bytes_in_flight < self.cwnd:
            frame = self._next_stream_frame()
            if frame is None:
                break
            self._emit([frame], in_flight=frame.length)

    def _next_stream_frame(self) -> Optional[StreamFrame]:
        if self._retransmit:
            return self._retransmit.pop(0)
        if self._send_queue <= 0:
            return None
        length = min(QUIC_MAX_PAYLOAD, self._send_queue)
        frame = StreamFrame(offset=self.stream_offset, length=length)
        self.stream_offset += length
        self._send_queue -= length
        return frame

    def _emit(self, frames: list, in_flight: int = 0,
              to_ip: Optional[str] = None, to_port: Optional[int] = None
              ) -> None:
        pn = self.next_packet_number
        self.next_packet_number += 1
        datagram = QuicDatagram(cid=self.cid, packet_number=pn,
                                frames=tuple(frames))
        payload = QUIC_HEADER + sum(
            f.length for f in frames if isinstance(f, StreamFrame))
        self.socket.send_to(to_ip or self.peer_ip,
                            to_port or self.peer_port, payload, datagram)
        self.stats_packets_sent += 1
        if in_flight:
            self._sent[pn] = _SentPacket(pn, tuple(frames), self.sim.now,
                                         in_flight)
            self.bytes_in_flight += in_flight
            if not self._pto_timer.armed:
                self._pto_timer.start(self._pto_interval())

    # -- receiving -------------------------------------------------------------
    def handle_datagram(self, src_ip: str, src_port: int,
                        datagram: QuicDatagram) -> None:
        if datagram.cid != self.cid:
            return
        ack_worthy = False
        for frame in datagram.frames:
            if isinstance(frame, StreamFrame):
                delivered = self._receiver.receive(frame.offset, frame.length)
                ack_worthy = True
                if delivered and self.on_data is not None:
                    self.on_data(delivered)
            elif isinstance(frame, AckFrame):
                self._process_ack(frame)
            elif isinstance(frame, PathChallenge):
                self._on_path_challenge(src_ip, src_port, frame)
            elif isinstance(frame, PathResponse):
                self._on_path_response(src_ip, src_port, frame)
            elif isinstance(frame, HandshakeFrame):
                self._on_handshake(src_ip, src_port, frame)
        if ack_worthy:
            self._track_and_ack(datagram.packet_number)

    def _track_and_ack(self, packet_number: int) -> None:
        self._largest_received = max(self._largest_received, packet_number)
        self._recent_received.append(packet_number)
        if len(self._recent_received) > 32:
            self._recent_received = self._recent_received[-32:]
        ack = AckFrame(largest=self._largest_received,
                       acked=tuple(self._recent_received))
        self._emit([ack])

    # -- ACK processing / loss detection -------------------------------------------
    def _process_ack(self, ack: AckFrame) -> None:
        newly_acked = 0
        for pn in ack.acked:
            packet = self._sent.get(pn)
            if packet is None or packet.acked:
                continue
            packet.acked = True
            if not packet.lost:
                self.bytes_in_flight -= packet.in_flight_bytes
            newly_acked += packet.in_flight_bytes
            if pn == ack.largest:
                self._sample_rtt(self.sim.now - packet.sent_at)
        if newly_acked:
            self._pto_count = 0
            self._grow_cwnd(newly_acked)
        lost = self._detect_losses(ack.largest)
        if lost:
            self._on_congestion()
        self._gc_sent()
        if self._sent:
            self._pto_timer.start(self._pto_interval())
        else:
            self._pto_timer.stop()
        self._pump()

    def _detect_losses(self, largest_acked: int) -> bool:
        lost_any = False
        for pn, packet in self._sent.items():
            if packet.acked or packet.lost:
                continue
            if pn + PACKET_LOSS_THRESHOLD <= largest_acked:
                packet.lost = True
                lost_any = True
                self.stats_packets_lost += 1
                self.bytes_in_flight -= packet.in_flight_bytes
                for frame in packet.frames:
                    if isinstance(frame, StreamFrame):
                        self._retransmit.append(frame)
        return lost_any

    def _gc_sent(self) -> None:
        done = [pn for pn, p in self._sent.items() if p.acked or p.lost]
        for pn in done:
            del self._sent[pn]

    def _grow_cwnd(self, acked_bytes: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked_bytes, QUIC_MAX_PAYLOAD)
        else:
            self.cwnd += max(
                1, QUIC_MAX_PAYLOAD * QUIC_MAX_PAYLOAD // int(self.cwnd))

    def _on_congestion(self) -> None:
        self.ssthresh = max(self.bytes_in_flight // 2, 2 * QUIC_MAX_PAYLOAD)
        self.cwnd = max(self.ssthresh, 2 * QUIC_MAX_PAYLOAD)

    def _sample_rtt(self, rtt: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt

    def _pto_interval(self) -> float:
        base = (self.srtt or 0.5) + 4 * self.rttvar + 0.001
        return min(MAX_PTO, max(MIN_PTO, base * (2 ** self._pto_count)))

    def _on_pto(self) -> None:
        if not self._sent:
            return
        self._pto_count += 1
        self.retransmit_outstanding()
        if self._sent:
            self._pto_timer.start(self._pto_interval())

    def retransmit_outstanding(self) -> None:
        """Declare all outstanding data lost and rebuild from slow start.

        Used by the probe timeout and by path migration (RFC 9002 resets
        the congestion controller on a path change; in-flight data from
        the old path is not coming back)."""
        for packet in self._sent.values():
            if not packet.acked and not packet.lost:
                packet.lost = True
                self.stats_packets_lost += 1
                self.bytes_in_flight -= packet.in_flight_bytes
                for frame in packet.frames:
                    if isinstance(frame, StreamFrame):
                        self._retransmit.append(frame)
        self._gc_sent()
        self.ssthresh = max(self.cwnd // 2, 2 * QUIC_MAX_PAYLOAD)
        self.cwnd = 2 * QUIC_MAX_PAYLOAD
        self._pump()

    def close(self) -> None:
        """Stop timers and drop pending state (CONNECTION_CLOSE-lite)."""
        self._pto_timer.stop()
        self._send_queue = 0
        self._retransmit.clear()
        self._sent.clear()
        self.bytes_in_flight = 0

    # -- path management hooks (overridden per side) ---------------------------------
    def _on_handshake(self, src_ip: str, src_port: int,
                      frame: HandshakeFrame) -> None:
        raise NotImplementedError

    def _on_path_challenge(self, src_ip: str, src_port: int,
                           challenge: PathChallenge) -> None:
        # Echo from wherever it came; the peer validates the round trip.
        self._emit([PathResponse(token=challenge.token)],
                   to_ip=src_ip, to_port=src_port)

    def _on_path_response(self, src_ip: str, src_port: int,
                          response: PathResponse) -> None:
        pass


class QuicConnection(QuicEndpoint):
    """Client side: handshake + address-change-driven migration."""

    def __init__(self, host: Host, server_ip: str, server_port: int):
        super().__init__(host, cid=next(_connection_ids))
        self.peer_ip = server_ip
        self.peer_port = server_port
        self.socket = UdpSocket(host)
        self.socket.on_datagram = self._on_udp
        self._handshake_timer = Timer(self.sim, self._send_handshake)
        self._challenge_timer = Timer(self.sim, self._resend_challenge)
        self._challenge_token = 0
        self._path_pending = False
        self._handshake_span = None
        self._path_span = None
        host.add_address_listener(self._on_address_change)

    def connect(self) -> None:
        self._send_handshake()

    def _send_handshake(self) -> None:
        if self._handshake_span is None:
            self._handshake_span = self._obs_begin_span("quic.handshake",
                                                        cid=self.cid)
        else:
            self._obs_instant("quic.handshake_retx", cid=self.cid)
        self._emit([HandshakeFrame()])
        self._handshake_timer.start(1.0)

    def _on_udp(self, src_ip: str, src_port: int, body: object,
                sent_at: float) -> None:
        if isinstance(body, QuicDatagram):
            self.handle_datagram(src_ip, src_port, body)

    def _on_handshake(self, src_ip: str, src_port: int,
                      frame: HandshakeFrame) -> None:
        if frame.is_response and not self.established:
            self.established = True
            self._obs_finish(self._handshake_span, self.sim.now)
            self._handshake_timer.stop()
            if self.on_established is not None:
                self.on_established()
            self._pump()

    # -- migration -----------------------------------------------------------------
    def _on_address_change(self, old_ip: str, new_ip: str) -> None:
        if new_ip == UNSPECIFIED or not self.established:
            return
        # New address: validate the new path immediately.  No worker
        # delay, no handshake - this is QUIC's advantage over MPTCP here.
        self.migrations += 1
        self._challenge_token += 1
        self._path_pending = True
        self._obs_finish(self._path_span, self.sim.now, status="superseded")
        self._path_span = self._obs_begin_span(
            "quic.path_validation", new_local=new_ip,
            token=self._challenge_token)
        self._emit([PathChallenge(token=self._challenge_token)])
        # RFC 9000 §8.2.1: PATH_CHALLENGE is retransmitted if the probe
        # is lost (a real risk here — the challenge races the radio
        # interruption that accompanies the switch).
        self._challenge_timer.start(self._pto_interval())

    def _resend_challenge(self) -> None:
        if not self._path_pending:
            return
        self._obs_instant("quic.path_challenge_retx",
                          token=self._challenge_token)
        self._emit([PathChallenge(token=self._challenge_token)])
        self._challenge_timer.start(self._pto_interval())

    def _on_path_response(self, src_ip: str, src_port: int,
                          response: PathResponse) -> None:
        if self._path_pending and response.token == self._challenge_token:
            self._path_pending = False
            self._challenge_timer.stop()
            self._obs_finish(self._path_span, self.sim.now)
            self._path_span = None
            # Path validated: resume sending; anything lost during the
            # blackout is recovered by normal loss detection/PTO.
            self._pump()


class QuicServerConnection(QuicEndpoint):
    """Server side: adopts whatever validated address the client uses."""

    def __init__(self, host: Host, socket: UdpSocket, cid: int,
                 client_ip: str, client_port: int):
        super().__init__(host, cid=cid)
        self.socket = socket
        self.peer_ip = client_ip
        self.peer_port = client_port
        self.established = True

    def handle_datagram(self, src_ip: str, src_port: int,
                        datagram: QuicDatagram) -> None:
        if (src_ip, src_port) != (self.peer_ip, self.peer_port):
            # A known CID from a new address: adopt it (RFC 9000 migrates
            # on the highest-numbered packet from a new path; the CID
            # match stands in for packet protection here) and answer the
            # accompanying PATH_CHALLENGE, validating the path.  Data in
            # flight towards the old address is gone: reset the congestion
            # controller and retransmit immediately (RFC 9002 §B.4-ish).
            self.peer_ip = src_ip
            self.peer_port = src_port
            self.migrations += 1
            self._obs_instant("quic.peer_migrated", cid=self.cid,
                              new_peer=src_ip)
            self.retransmit_outstanding()
        super().handle_datagram(src_ip, src_port, datagram)

    def _on_handshake(self, src_ip: str, src_port: int,
                      frame: HandshakeFrame) -> None:
        if not frame.is_response:
            self._emit([HandshakeFrame(is_response=True)],
                       to_ip=src_ip, to_port=src_port)


class QuicListener:
    """Accepts QUIC connections on a UDP port, demuxing by CID."""

    def __init__(self, host: Host, port: int,
                 on_connection: Callable[[QuicServerConnection], None]):
        self.host = host
        self.socket = UdpSocket(host, port)
        self.socket.on_datagram = self._on_udp
        self.on_connection = on_connection
        self.connections: dict[int, QuicServerConnection] = {}

    def _on_udp(self, src_ip: str, src_port: int, body: object,
                sent_at: float) -> None:
        if not isinstance(body, QuicDatagram):
            return
        connection = self.connections.get(body.cid)
        if connection is None:
            is_handshake = any(isinstance(f, HandshakeFrame)
                               and not f.is_response
                               for f in body.frames)
            if not is_handshake:
                return  # stray packet for an unknown connection
            connection = QuicServerConnection(self.host, self.socket,
                                              body.cid, src_ip, src_port)
            self.connections[body.cid] = connection
            self.on_connection(connection)
        connection.handle_datagram(src_ip, src_port, body)

    def close(self) -> None:
        self.socket.close()
