"""GRE tunneling — the paper's emulation transport (§6.2(iii)).

The drive-test methodology carries packets bearing *emulated* UE
addresses across the real carrier network by tunneling them between an
OVS switch at the client and one at the server: "the client-side OVS
switch tunnels the packet to the OVS switch at the server, which strips
off the packet's outer header such that the server sees packets with the
UE's new IP address.  Tunneling is used only for emulating IP changes in
today's infrastructure, and will not be needed in a real CellBricks
deployment."

:class:`GreEndpoint` reproduces that mechanism: it encapsulates inner
packets (whatever their addresses) into GRE packets between the two
endpoints' *real* addresses, and decapsulates on arrival — so a transport
stack can converse using addresses the underlying network cannot route.
"""

from __future__ import annotations

from typing import Callable, Optional

from .node import Host
from .packet import GRE_HEADER, IP_HEADER, PROTO_GRE, Packet


class GreEndpoint:
    """One side of a GRE tunnel, attached to a host.

    ``on_inner_packet`` receives decapsulated inner packets.  The
    endpoint registers itself for protocol 47 on its host; exactly one
    GRE endpoint per host.
    """

    def __init__(self, host: Host, peer_address: str):
        self.host = host
        self.peer_address = peer_address
        self.on_inner_packet: Optional[Callable[[Packet], None]] = None
        self.encapsulated = 0
        self.decapsulated = 0
        host.register_listener(PROTO_GRE, 0, self)
        self._closed = False

    def encapsulate(self, inner: Packet) -> bool:
        """Wrap ``inner`` and send it to the peer endpoint."""
        if self._closed:
            return False
        outer = Packet(src=self.host.address, dst=self.peer_address,
                       protocol=PROTO_GRE,
                       size=inner.size + IP_HEADER + GRE_HEADER,
                       payload=inner)
        self.encapsulated += 1
        return self.host.send_packet(outer)

    def handle_packet(self, outer: Packet) -> None:
        if self._closed:
            return
        inner = outer.payload
        if not isinstance(inner, Packet):
            return
        self.decapsulated += 1
        if self.on_inner_packet is not None:
            self.on_inner_packet(inner)

    def close(self) -> None:
        if not self._closed:
            self.host.unregister_listener(PROTO_GRE, 0)
            self._closed = True


class TunneledHost(Host):
    """A host whose traffic rides a GRE tunnel instead of its links.

    This is the emulation container of §6.2: applications bind to the
    *emulated* address; every packet they emit is encapsulated by the
    attached carrier host's GRE endpoint, and packets decapsulated at
    this side are delivered up the normal demux path.
    """

    def __init__(self, sim, name: str, emulated_address: str,
                 carrier: GreEndpoint):
        super().__init__(sim, name, address=emulated_address)
        self.carrier = carrier
        carrier.on_inner_packet = self._deliver_inner

    def send_packet(self, packet: Packet) -> bool:
        packet.created_at = self.sim.now
        return self.carrier.encapsulate(packet)

    def _deliver_inner(self, packet: Packet) -> None:
        self.receive(packet, link=None)
